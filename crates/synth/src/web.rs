//! The Web page universe.
//!
//! Pages are the surrogates everything hinges on (paper Definition 5):
//! the search engine retrieves them for canonical queries, users click
//! them for informal queries, and the intersection of the two is the
//! mining signal.
//!
//! The generator reproduces the paper's central observation about Web
//! content: *content creators plant alternative names*. Shop and fan
//! pages include nicknames, acronyms and marketing names in their text
//! ("Digital REBEL XT 350D" on an eBay listing), which is what makes
//! informal queries retrieve and click on entity pages at all.

use crate::alias::{AliasSource, AliasTarget, AliasUniverse, AspectKind, Relation};
use crate::catalog::Catalog;
use crate::entity::Domain;
use rand::Rng;
use websyn_common::{PageId, SeedSequence};

/// The species of a page — drives its text, its URL and its affinity to
/// user intents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PageKind {
    /// Manufacturer/studio page: canonical description only.
    Official,
    /// Encyclopedia page: canonical plus some alternatives.
    Wiki,
    /// Review site page.
    Review,
    /// Retail listing: plants the most alternatives.
    Shop,
    /// Fan page: plants nicknames and acronyms.
    Fan,
    /// News article mentioning the entity.
    News,
    /// A page about one aspect of the entity (trailer, price, manual…).
    Aspect(AspectKind),
    /// A hub page about a whole franchise/line.
    FranchiseHub,
    /// A hub page about a concept (actor, brand).
    ConceptHub,
    /// Unrelated content.
    Noise,
}

impl PageKind {
    /// Stable label used in synthetic URLs.
    pub fn label(self) -> &'static str {
        match self {
            PageKind::Official => "official",
            PageKind::Wiki => "wiki",
            PageKind::Review => "review",
            PageKind::Shop => "shop",
            PageKind::Fan => "fan",
            PageKind::News => "news",
            PageKind::Aspect(a) => a.suffix(),
            PageKind::FranchiseHub => "franchise",
            PageKind::ConceptHub => "concept",
            PageKind::Noise => "noise",
        }
    }
}

/// One synthetic Web page.
#[derive(Debug, Clone, PartialEq)]
pub struct Page {
    /// Dense id; index into `World::pages`.
    pub id: PageId,
    /// Synthetic URL (unique).
    pub url: String,
    /// Page species.
    pub kind: PageKind,
    /// What the page is about, if anything.
    pub target: Option<AliasTarget>,
    /// Title text (normalized tokens).
    pub title: String,
    /// Body text (normalized tokens, space separated).
    pub body: String,
}

/// Per-kind boilerplate vocabulary: words the engine will see on every
/// page of this kind. Realistic noise that keeps BM25 honest.
fn boilerplate(kind: PageKind, domain: Domain) -> &'static str {
    match (kind, domain) {
        (PageKind::Official, Domain::Movies) => "official site studio synopsis release date",
        (PageKind::Official, Domain::Cameras) => {
            "official product specifications megapixel sensor lens"
        }
        (PageKind::Wiki, _) => "encyclopedia article references external links history",
        (PageKind::Review, Domain::Movies) => "review rating critics verdict stars opinion",
        (PageKind::Review, Domain::Cameras) => "review rating image quality verdict sample shots",
        (PageKind::Shop, Domain::Movies) => "buy dvd bluray price shipping cart order",
        (PageKind::Shop, Domain::Cameras) => "buy price shipping cart order deal bundle kit",
        (PageKind::Fan, _) => "fan community forum discussion wallpaper gallery",
        (PageKind::News, _) => "news announcement report interview coverage",
        (PageKind::Aspect(AspectKind::Trailer), _) => "watch trailer teaser video clip hd",
        (PageKind::Aspect(AspectKind::Review), _) => "review rating verdict opinion detailed",
        (PageKind::Aspect(AspectKind::Cast), _) => "cast crew characters starring credits",
        (PageKind::Aspect(AspectKind::Price), _) => "price compare deal cheapest offers",
        (PageKind::Aspect(AspectKind::Manual), _) => "manual guide instructions pdf download",
        (PageKind::FranchiseHub, _) => "series overview complete list all entries timeline",
        (PageKind::ConceptHub, _) => "profile biography portfolio overview catalog",
        (PageKind::Noise, _) => "",
    }
}

/// Noise-page vocabulary (none of these words appear in catalogs).
const NOISE_WORDS: &[&str] = &[
    "recipe",
    "garden",
    "weather",
    "football",
    "election",
    "travel",
    "hotel",
    "flight",
    "insurance",
    "mortgage",
    "fitness",
    "yoga",
    "stocks",
    "crypto",
    "knitting",
    "puzzle",
    "horoscope",
    "lottery",
    "casino",
    "karaoke",
    "aquarium",
    "origami",
    "chess",
    "marathon",
];

/// The entity-page kinds for a domain, in decreasing order of how early
/// the engine tends to rank them.
fn entity_page_kinds(domain: Domain) -> &'static [PageKind] {
    match domain {
        Domain::Movies => &[
            PageKind::Official,
            PageKind::Wiki,
            PageKind::Review,
            PageKind::Shop,
            PageKind::Fan,
            PageKind::News,
        ],
        Domain::Cameras => &[
            PageKind::Official,
            PageKind::Shop,
            PageKind::Review,
            PageKind::Wiki,
            PageKind::Fan,
            PageKind::News,
        ],
    }
}

/// Builds the page universe for a catalog.
///
/// Page counts scale with popularity: the head entity gets all six page
/// kinds (plus extra shop/fan mirrors), tail entities get three. Every
/// entity keeps at least `Official`, `Shop`/`Wiki` and `Review` so that
/// surrogates exist for everyone.
pub fn build_pages(catalog: &Catalog, universe: &AliasUniverse, seq: &SeedSequence) -> Vec<Page> {
    let mut rng = seq.rng("web.pages");
    let domain = catalog.domain();
    let mut pages = Vec::new();
    let n = catalog.entities.len();

    // Per-domain page floor. Movies: tail titles have a thin Web
    // presence (3 pages). Cameras: every retail product has listings on
    // many shops plus reviews — a floor of 5 kinds (plus the mirrors
    // and aspect pages below) keeps a tail camera's top-10 dominated by
    // its *own* pages, which is what bounds the IPC of brand/line
    // generic queries below the β threshold (paper Section III-B).
    let floor = match domain {
        Domain::Movies => 3.0,
        Domain::Cameras => 5.0,
    };
    for entity in &catalog.entities {
        // Popularity-scaled page count.
        let pop = 1.0 - entity.rank as f64 / n.max(1) as f64; // 1 head .. 0 tail
        let kinds = entity_page_kinds(domain);
        let n_kinds = (floor + pop * (kinds.len() as f64 - floor)).round() as usize;
        let n_kinds = n_kinds.clamp(floor as usize, kinds.len());

        // Gather the entity's alternative surfaces once.
        let alt_surfaces: Vec<(&str, AliasSource)> = universe
            .of_entity(entity.id)
            .filter(|a| a.relation == Relation::Synonym && a.source != AliasSource::Canonical)
            .map(|a| (a.text.as_str(), a.source))
            .collect();

        for &kind in &kinds[..n_kinds] {
            let id = PageId::from_usize(pages.len());
            pages.push(entity_page(
                id,
                entity,
                kind,
                &alt_surfaces,
                &mut rng,
                domain,
            ));
        }

        // Extra retail mirrors (more shop pages → more distinct
        // surrogate URLs, like the real Web). Every camera is listed on
        // at least two shops; movie mirrors scale with popularity.
        let extra_mirrors = match domain {
            Domain::Movies => (pop * 2.0).round() as usize,
            Domain::Cameras => 2 + (pop * 2.0).round() as usize,
        };
        for m in 0..extra_mirrors {
            let id = PageId::from_usize(pages.len());
            let mut page = entity_page(id, entity, PageKind::Shop, &alt_surfaces, &mut rng, domain);
            page.url = format!("https://shop{m}.example.com/{}/{}", domain, entity.id);
            pages.push(page);
        }

        // Aspect pages: one per applicable aspect for head entities,
        // one for the most common aspect for everyone.
        let aspects: &[AspectKind] = match domain {
            Domain::Movies => &AspectKind::MOVIE_ASPECTS,
            Domain::Cameras => &AspectKind::CAMERA_ASPECTS,
        };
        let n_aspects = match domain {
            Domain::Movies => {
                if pop > 0.6 {
                    aspects.len()
                } else {
                    1
                }
            }
            // Review and price pages exist for every camera.
            Domain::Cameras => {
                if pop > 0.6 {
                    aspects.len()
                } else {
                    2
                }
            }
        };
        for &aspect in &aspects[..n_aspects] {
            let id = PageId::from_usize(pages.len());
            let title = format!("{} {}", entity.canonical_norm, aspect.suffix());
            // Aspect pages are *about the aspect*: the entity name
            // appears once, the aspect vocabulary dominates. For the
            // canonical query they therefore rank below the entity's
            // own pages; for "<entity> <aspect>" queries they win.
            let body = format!(
                "{} {} {} {}",
                entity.canonical_norm,
                repeat_tokens(aspect.suffix(), 3),
                boilerplate(PageKind::Aspect(aspect), domain),
                boilerplate(PageKind::Aspect(aspect), domain),
            );
            pages.push(Page {
                id,
                url: format!(
                    "https://aspects.example.com/{}/{}/{}",
                    domain,
                    entity.id,
                    aspect.suffix()
                ),
                kind: PageKind::Aspect(aspect),
                target: Some(AliasTarget::Entity(entity.id)),
                title,
                body,
            });
        }
    }

    // Franchise hub pages: franchise name + nickname + the most
    // popular members' canonical surfaces. The cap matters: a real
    // brand/series page *features* a handful of products, it does not
    // embed the full canonical name of every tail model — and that is
    // exactly what keeps the hub out of tail entities' surrogate sets
    // (otherwise hypernym clicks would land "inside the intersection"
    // for every member and ICR could not separate them, breaking the
    // paper's Fig. 1b geometry).
    const HUB_FEATURED: usize = 6;
    for franchise in &catalog.franchises {
        if franchise.members.is_empty() {
            continue;
        }
        let id = PageId::from_usize(pages.len());
        let mut body = String::new();
        body.push_str(&repeat_tokens(&franchise.name, 3));
        if let Some(nick) = &franchise.nickname {
            body.push(' ');
            body.push_str(&repeat_tokens(nick, 2));
        }
        for &m in franchise.members.iter().take(HUB_FEATURED) {
            body.push(' ');
            body.push_str(&catalog.entities[m.as_usize()].canonical_norm);
        }
        body.push(' ');
        body.push_str(boilerplate(PageKind::FranchiseHub, domain));
        pages.push(Page {
            id,
            url: format!("https://series.example.com/{}/{}", domain, franchise.id),
            kind: PageKind::FranchiseHub,
            target: Some(AliasTarget::Franchise(franchise.id)),
            title: franchise.name.clone(),
            body,
        });
    }

    // Concept hub pages: concept name + the most popular members'
    // canonical surfaces (same featuring cap as franchise hubs).
    for concept in &catalog.concepts {
        if concept.members.is_empty() {
            continue;
        }
        let id = PageId::from_usize(pages.len());
        let mut body = repeat_tokens(&concept.name, 3);
        for &m in concept.members.iter().take(HUB_FEATURED) {
            body.push(' ');
            body.push_str(&catalog.entities[m.as_usize()].canonical_norm);
        }
        body.push(' ');
        body.push_str(boilerplate(PageKind::ConceptHub, domain));
        pages.push(Page {
            id,
            url: format!("https://people.example.com/{}/{}", domain, concept.id),
            kind: PageKind::ConceptHub,
            target: Some(AliasTarget::Concept(concept.id)),
            title: concept.name.clone(),
            body,
        });
    }

    // Noise pages: ~12% of the universe.
    let n_noise = (pages.len() as f64 * 0.12).ceil() as usize;
    for i in 0..n_noise {
        let id = PageId::from_usize(pages.len());
        let mut w = || NOISE_WORDS[rng.gen_range(0..NOISE_WORDS.len())];
        let title = format!("{} {}", w(), w());
        let body = (0..12).map(|_| w()).collect::<Vec<_>>().join(" ");
        pages.push(Page {
            id,
            url: format!("https://misc.example.com/{i}"),
            kind: PageKind::Noise,
            target: None,
            title,
            body,
        });
    }

    pages
}

/// Builds one entity page of the given kind.
fn entity_page<R: Rng>(
    id: PageId,
    entity: &crate::entity::Entity,
    kind: PageKind,
    alt_surfaces: &[(&str, AliasSource)],
    rng: &mut R,
    domain: Domain,
) -> Page {
    let mut body = String::new();
    // The canonical surface dominates the page text.
    body.push_str(&repeat_tokens(&entity.canonical_norm, 3));

    // Content creators plant alternatives, with kind-dependent zeal.
    let plant_prob = match kind {
        PageKind::Shop => 0.9,
        PageKind::Fan => 0.8,
        PageKind::Wiki => 0.6,
        PageKind::Review => 0.4,
        PageKind::News => 0.3,
        PageKind::Official => 0.15,
        _ => 0.0,
    };
    for (surface, source) in alt_surfaces {
        // Semantic aliases (nickname/marketing) are the ones sellers
        // bother to plant; mechanical variants appear less often
        // (truncations occur "for free" as token subsets anyway).
        let p = match source {
            AliasSource::Nickname | AliasSource::Marketing => plant_prob,
            _ => plant_prob * 0.4,
        };
        if p > 0.0 && rng.gen_bool(p) {
            body.push(' ');
            body.push_str(surface);
        }
    }

    body.push(' ');
    body.push_str(boilerplate(kind, domain));

    Page {
        id,
        url: format!(
            "https://{}.example.com/{}/{}",
            kind.label(),
            domain,
            entity.id
        ),
        kind,
        target: Some(AliasTarget::Entity(entity.id)),
        title: entity.canonical_norm.clone(),
        body,
    }
}

/// Repeats a token string `k` times, space separated (term-frequency
/// emphasis for BM25).
fn repeat_tokens(s: &str, k: usize) -> String {
    let mut out = String::with_capacity((s.len() + 1) * k);
    for i in 0..k {
        if i > 0 {
            out.push(' ');
        }
        out.push_str(s);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::movies;
    use websyn_common::SeedSequence;

    fn world_pages() -> (Catalog, AliasUniverse, Vec<Page>) {
        let seq = SeedSequence::new(11);
        let catalog = movies::build(30, &seq);
        let universe = crate::world::build_alias_universe(&catalog, &seq);
        let pages = build_pages(&catalog, &universe, &seq);
        (catalog, universe, pages)
    }

    #[test]
    fn ids_are_dense_and_urls_unique() {
        let (_, _, pages) = world_pages();
        let mut urls = std::collections::HashSet::new();
        for (i, p) in pages.iter().enumerate() {
            assert_eq!(p.id.as_usize(), i);
            assert!(urls.insert(&p.url), "duplicate url {}", p.url);
        }
    }

    #[test]
    fn every_entity_has_at_least_three_pages() {
        let (catalog, _, pages) = world_pages();
        for e in &catalog.entities {
            let count = pages
                .iter()
                .filter(|p| {
                    p.target == Some(AliasTarget::Entity(e.id))
                        && !matches!(p.kind, PageKind::Aspect(_))
                })
                .count();
            assert!(count >= 3, "{} has {count} pages", e.canonical);
        }
    }

    #[test]
    fn popular_entities_have_more_pages() {
        let (catalog, _, pages) = world_pages();
        let count_for = |rank: usize| {
            let id = catalog.entities[rank].id;
            pages
                .iter()
                .filter(|p| p.target == Some(AliasTarget::Entity(id)))
                .count()
        };
        assert!(count_for(0) > count_for(catalog.entities.len() - 1));
    }

    #[test]
    fn entity_pages_contain_canonical_tokens() {
        let (catalog, _, pages) = world_pages();
        for p in &pages {
            if let Some(AliasTarget::Entity(e)) = p.target {
                let canonical = &catalog.entities[e.as_usize()].canonical_norm;
                assert!(
                    p.body.contains(canonical.as_str()),
                    "page {} missing canonical {canonical}",
                    p.url
                );
            }
        }
    }

    #[test]
    fn shop_or_fan_pages_plant_nicknames() {
        // At least some planted semantic aliases must appear in page
        // bodies, or nickname queries could never be retrieved.
        let (catalog, _, pages) = world_pages();
        let planted_texts: Vec<&str> = catalog.planted.iter().map(|p| p.text.as_str()).collect();
        if planted_texts.is_empty() {
            return; // tiny catalog may have no franchises
        }
        let planted_found = planted_texts
            .iter()
            .filter(|t| pages.iter().any(|p| p.body.contains(*t)))
            .count();
        assert!(
            planted_found * 2 >= planted_texts.len(),
            "only {planted_found}/{} planted aliases appear on any page",
            planted_texts.len()
        );
    }

    #[test]
    fn franchise_hubs_list_members() {
        let (catalog, _, pages) = world_pages();
        for f in &catalog.franchises {
            let hub = pages
                .iter()
                .find(|p| p.target == Some(AliasTarget::Franchise(f.id)))
                .expect("hub exists");
            for &m in &f.members {
                let canonical = &catalog.entities[m.as_usize()].canonical_norm;
                assert!(hub.body.contains(canonical.as_str()));
            }
        }
    }

    #[test]
    fn noise_pages_have_no_target() {
        let (_, _, pages) = world_pages();
        let noise: Vec<_> = pages.iter().filter(|p| p.kind == PageKind::Noise).collect();
        assert!(!noise.is_empty());
        for p in noise {
            assert!(p.target.is_none());
        }
    }

    #[test]
    fn deterministic() {
        let (_, _, a) = world_pages();
        let (_, _, b) = world_pages();
        assert_eq!(a, b);
    }

    #[test]
    fn kind_labels_unique_enough_for_urls() {
        let labels: std::collections::HashSet<_> = [
            PageKind::Official,
            PageKind::Wiki,
            PageKind::Review,
            PageKind::Shop,
            PageKind::Fan,
            PageKind::News,
            PageKind::FranchiseHub,
            PageKind::ConceptHub,
            PageKind::Noise,
        ]
        .iter()
        .map(|k| k.label())
        .collect();
        assert_eq!(labels.len(), 9);
    }
}
