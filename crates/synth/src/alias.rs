//! The alias universe: every string surface users apply to entities,
//! franchises and concepts, each labeled with its ground-truth relation.
//!
//! This is the synthetic equivalent of the oracle `F` from the paper's
//! Section II: because *we* generate the surfaces, we know exactly which
//! entity subset each string refers to, so [`Relation`] labels are exact
//! rather than human-judged.

use crate::entity::{ConceptId, FranchiseId};
use serde::{Deserialize, Serialize};
use std::fmt;
use websyn_common::{EntityId, FxHashMap};
use websyn_text::AbbrevKind;

/// The ground-truth relation of a string surface to an entity, per the
/// paper's Definitions 1–3 (plus Related, Figure 1d).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Relation {
    /// Refers to exactly the same entity set (Definition 1).
    Synonym,
    /// Refers to a strict superset: franchise/line names (Definition 2).
    Hypernym,
    /// Refers to a strict subset / narrower concept: aspect strings
    /// like "… trailer" (Definition 3).
    Hyponym,
    /// Associated but referring to different things: actors, brands
    /// (Figure 1d).
    Related,
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Relation::Synonym => "synonym",
            Relation::Hypernym => "hypernym",
            Relation::Hyponym => "hyponym",
            Relation::Related => "related",
        };
        f.write_str(s)
    }
}

/// The aspect of an entity a hyponym string targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AspectKind {
    /// Movie trailer ("indy 4 trailer").
    Trailer,
    /// Reviews ("eos 350d review").
    Review,
    /// Movie cast listing.
    Cast,
    /// Price/shopping queries (cameras).
    Price,
    /// Manual/support queries (cameras).
    Manual,
}

impl AspectKind {
    /// The query suffix users append for this aspect.
    pub fn suffix(self) -> &'static str {
        match self {
            AspectKind::Trailer => "trailer",
            AspectKind::Review => "review",
            AspectKind::Cast => "cast",
            AspectKind::Price => "price",
            AspectKind::Manual => "manual",
        }
    }

    /// Aspects that occur in the movie domain.
    pub const MOVIE_ASPECTS: [AspectKind; 3] =
        [AspectKind::Trailer, AspectKind::Review, AspectKind::Cast];

    /// Aspects that occur in the camera domain.
    pub const CAMERA_ASPECTS: [AspectKind; 3] =
        [AspectKind::Review, AspectKind::Price, AspectKind::Manual];
}

/// What a string surface refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AliasTarget {
    /// A single entity (synonyms and hyponym/aspect strings).
    Entity(EntityId),
    /// A franchise (hypernym strings).
    Franchise(FranchiseId),
    /// A concept (related strings).
    Concept(ConceptId),
}

/// How a surface came to exist — carried through experiments so recall
/// can be reported per transform family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AliasSource {
    /// The canonical name itself.
    Canonical,
    /// A mechanical abbreviation ([`AbbrevKind`]).
    Mechanical(AbbrevKind),
    /// A franchise-nickname-based surface ("indy 4"). No string overlap
    /// with the canonical title is guaranteed.
    Nickname,
    /// A marketing/alternative product name ("digital rebel xt").
    Marketing,
    /// A franchise or product-line name (hypernym).
    FranchiseName,
    /// An entity surface plus an aspect suffix (hyponym).
    Aspect(AspectKind),
    /// A concept name: actor/brand (related).
    ConceptName,
    /// A typo-channel corruption of another surface; planted lazily by
    /// the query generator.
    Misspelling,
}

/// One alias record: a surface, its target, relation, provenance and
/// the probability weight with which users choose it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Alias {
    /// Normalized surface text.
    pub text: String,
    /// What the surface refers to.
    pub target: AliasTarget,
    /// Ground-truth relation of this surface to its target's entities.
    /// For `AliasTarget::Entity` targets this is `Synonym` (true
    /// synonyms) or `Hyponym` (aspect strings); franchise targets are
    /// `Hypernym`; concept targets are `Related`.
    pub relation: Relation,
    /// Provenance.
    pub source: AliasSource,
    /// Relative popularity weight among surfaces of the same target
    /// (need not be normalized).
    pub weight: f64,
}

/// The complete alias universe with its inverted text index.
///
/// Surfaces are unique per text: a mechanically generated variant that
/// collides with a surface of a *different* target (e.g. two movies
/// both truncating to "the chronicles") is ambiguous in the oracle
/// sense — it no longer refers to a single entity set — so both records
/// are dropped and counted in [`AliasUniverse::ambiguous_dropped`].
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct AliasUniverse {
    aliases: Vec<Alias>,
    /// text -> index into `aliases`.
    #[serde(skip)]
    by_text: FxHashMap<String, usize>,
    /// Texts proven ambiguous (seen with two different targets). Once
    /// banned, a text can never re-enter the universe.
    banned: websyn_common::FxHashSet<String>,
    /// Number of insert attempts rejected due to cross-target
    /// collisions (both the incumbent and the newcomer count).
    ambiguous_dropped: usize,
    /// Number of entity surfaces shadowed by a broader
    /// franchise/concept reading of the same text.
    shadowed: usize,
}

impl AliasUniverse {
    /// Creates an empty universe.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts an alias. Collision policy:
    /// - same text, same target: keep the existing record (first
    ///   producer wins; weights are not merged);
    /// - same text, an *entity* incumbent vs a different *entity*
    ///   newcomer: the surface is ambiguous — it refers to more than
    ///   one entity set, so by Definition 1 it is a synonym of neither.
    ///   Drop the incumbent, reject the newcomer, ban the text;
    /// - same text, one side a franchise/concept: the broader reading
    ///   wins (a string that names a whole franchise *is* a hypernym,
    ///   even if one movie's truncation also produces it). The
    ///   franchise/concept record is kept or installed; the entity
    ///   record is counted in [`AliasUniverse::shadowed`].
    pub fn insert(&mut self, alias: Alias) {
        debug_assert!(!alias.text.is_empty(), "empty alias surface");
        if self.banned.contains(&alias.text) {
            self.ambiguous_dropped += 1;
            return;
        }
        match self.by_text.get(&alias.text) {
            None => {
                self.by_text.insert(alias.text.clone(), self.aliases.len());
                self.aliases.push(alias);
            }
            Some(&idx) => {
                let incumbent_entity = matches!(self.aliases[idx].target, AliasTarget::Entity(_));
                let newcomer_entity = matches!(alias.target, AliasTarget::Entity(_));
                if self.aliases[idx].target == alias.target {
                    // Same target duplicate: ignore.
                } else if incumbent_entity && newcomer_entity {
                    // Ambiguous between two entities: drop both, ban.
                    let text = alias.text.clone();
                    self.remove_text(&text);
                    self.banned.insert(text);
                    self.ambiguous_dropped += 2;
                } else if incumbent_entity {
                    // Broader newcomer evicts the entity reading.
                    let text = alias.text.clone();
                    self.remove_text(&text);
                    self.by_text.insert(text, self.aliases.len());
                    self.aliases.push(alias);
                    self.shadowed += 1;
                } else {
                    // Incumbent is broader (franchise/concept): keep it.
                    self.shadowed += 1;
                }
            }
        }
    }

    /// Removes a surface entirely (swap-remove, index map repaired).
    fn remove_text(&mut self, text: &str) {
        if let Some(idx) = self.by_text.remove(text) {
            self.aliases.swap_remove(idx);
            if idx < self.aliases.len() {
                let moved_text = self.aliases[idx].text.clone();
                self.by_text.insert(moved_text, idx);
            }
        }
    }

    /// Looks up the alias record for a surface.
    pub fn get(&self, text: &str) -> Option<&Alias> {
        self.by_text.get(text).map(|&i| &self.aliases[i])
    }

    /// All alias records.
    pub fn iter(&self) -> impl Iterator<Item = &Alias> + '_ {
        self.aliases.iter()
    }

    /// Alias records whose target is the given entity.
    pub fn of_entity(&self, e: EntityId) -> impl Iterator<Item = &Alias> + '_ {
        self.aliases
            .iter()
            .filter(move |a| a.target == AliasTarget::Entity(e))
    }

    /// True-synonym surfaces of an entity (relation == Synonym),
    /// *excluding* the canonical surface itself.
    pub fn synonyms_of(&self, e: EntityId) -> impl Iterator<Item = &Alias> + '_ {
        self.of_entity(e)
            .filter(|a| a.relation == Relation::Synonym && a.source != AliasSource::Canonical)
    }

    /// Number of alias records.
    pub fn len(&self) -> usize {
        self.aliases.len()
    }

    /// Whether the universe is empty.
    pub fn is_empty(&self) -> bool {
        self.aliases.is_empty()
    }

    /// Number of surfaces dropped as cross-target collisions.
    pub fn ambiguous_dropped(&self) -> usize {
        self.ambiguous_dropped
    }

    /// Number of entity surfaces shadowed by broader readings.
    pub fn shadowed(&self) -> usize {
        self.shadowed
    }

    /// Rebuilds the text index (needed after deserialization, since the
    /// index is not serialized).
    pub fn rebuild_index(&mut self) {
        self.by_text = self
            .aliases
            .iter()
            .enumerate()
            .map(|(i, a)| (a.text.clone(), i))
            .collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alias(text: &str, target: AliasTarget) -> Alias {
        Alias {
            text: text.to_string(),
            target,
            relation: Relation::Synonym,
            source: AliasSource::Canonical,
            weight: 1.0,
        }
    }

    #[test]
    fn insert_and_lookup() {
        let mut u = AliasUniverse::new();
        u.insert(alias("indy 4", AliasTarget::Entity(EntityId::new(0))));
        assert_eq!(u.len(), 1);
        assert!(u.get("indy 4").is_some());
        assert!(u.get("indy 5").is_none());
    }

    #[test]
    fn duplicate_same_target_ignored() {
        let mut u = AliasUniverse::new();
        let e = AliasTarget::Entity(EntityId::new(0));
        u.insert(alias("indy 4", e));
        u.insert(alias("indy 4", e));
        assert_eq!(u.len(), 1);
        assert_eq!(u.ambiguous_dropped(), 0);
    }

    #[test]
    fn cross_target_collision_drops_both() {
        let mut u = AliasUniverse::new();
        u.insert(alias(
            "the chronicles",
            AliasTarget::Entity(EntityId::new(0)),
        ));
        u.insert(alias("other", AliasTarget::Entity(EntityId::new(0))));
        u.insert(alias(
            "the chronicles",
            AliasTarget::Entity(EntityId::new(1)),
        ));
        assert!(u.get("the chronicles").is_none(), "ambiguous surface kept");
        assert!(u.get("other").is_some(), "unrelated surface lost");
        assert_eq!(u.ambiguous_dropped(), 2);
        assert_eq!(u.len(), 1);
    }

    #[test]
    fn of_entity_and_synonyms_filter() {
        let mut u = AliasUniverse::new();
        let e0 = EntityId::new(0);
        u.insert(Alias {
            text: "canonical name".into(),
            target: AliasTarget::Entity(e0),
            relation: Relation::Synonym,
            source: AliasSource::Canonical,
            weight: 1.0,
        });
        u.insert(Alias {
            text: "nick".into(),
            target: AliasTarget::Entity(e0),
            relation: Relation::Synonym,
            source: AliasSource::Nickname,
            weight: 2.0,
        });
        u.insert(Alias {
            text: "nick trailer".into(),
            target: AliasTarget::Entity(e0),
            relation: Relation::Hyponym,
            source: AliasSource::Aspect(AspectKind::Trailer),
            weight: 0.5,
        });
        u.insert(alias("elsewhere", AliasTarget::Entity(EntityId::new(1))));
        assert_eq!(u.of_entity(e0).count(), 3);
        let syns: Vec<&str> = u.synonyms_of(e0).map(|a| a.text.as_str()).collect();
        assert_eq!(syns, vec!["nick"]);
    }

    #[test]
    fn rebuild_index_restores_lookup() {
        let mut u = AliasUniverse::new();
        u.insert(alias("a", AliasTarget::Entity(EntityId::new(0))));
        u.insert(alias("b", AliasTarget::Entity(EntityId::new(1))));
        let mut copy = AliasUniverse {
            aliases: u.aliases.clone(),
            by_text: Default::default(),
            banned: Default::default(),
            ambiguous_dropped: 0,
            shadowed: 0,
        };
        assert!(copy.get("a").is_none());
        copy.rebuild_index();
        assert!(copy.get("a").is_some());
        assert!(copy.get("b").is_some());
    }

    #[test]
    fn aspect_suffixes() {
        assert_eq!(AspectKind::Trailer.suffix(), "trailer");
        assert_eq!(AspectKind::Price.suffix(), "price");
        let movie: std::collections::HashSet<_> = AspectKind::MOVIE_ASPECTS
            .iter()
            .map(|a| a.suffix())
            .collect();
        assert_eq!(movie.len(), 3);
    }

    #[test]
    fn relation_display() {
        assert_eq!(Relation::Synonym.to_string(), "synonym");
        assert_eq!(Relation::Hypernym.to_string(), "hypernym");
        assert_eq!(Relation::Hyponym.to_string(), "hyponym");
        assert_eq!(Relation::Related.to_string(), "related");
    }
}
