//! The D1 dataset builder: a synthetic stand-in for "the titles of the
//! top 100 movies of 2008 Box office".
//!
//! Structural properties matched to the real list (these are what the
//! mining algorithm actually sees):
//! - ~40% of titles belong to franchises of 2–4 movies, so hypernym
//!   strings exist and sequel-numbering synonymy is productive;
//! - franchise titles frequently omit the episode number
//!   ("Indiana Jones and the Kingdom of the Crystal Skull"), so the
//!   most popular user surface ("indy 4") shares almost no tokens with
//!   the canonical string;
//! - standalone titles carry subtitles that users truncate away;
//! - a shared actor pool links movies into "related" concepts.

use crate::alias::AliasSource;
use crate::catalog::{
    Catalog, PlantedAlias, ACTOR_FIRST, ACTOR_LAST, ADJECTIVES, HERO_FIRST, HERO_LAST, NOUNS,
    PLACES,
};
use crate::entity::{Concept, ConceptId, ConceptKind, Domain, Entity, Franchise, FranchiseId};
use rand::seq::SliceRandom;
use rand::Rng;
use websyn_common::{EntityId, SeedSequence};
use websyn_text::{arabic_to_roman, normalize};

/// Fraction of entities that belong to a franchise.
const FRANCHISE_FRACTION: f64 = 0.4;
/// Actor pool size.
const ACTOR_POOL: usize = 40;
/// Actors per movie.
const ACTORS_PER_MOVIE: std::ops::RangeInclusive<usize> = 2..=3;

/// Builds the movie catalog with `n` entities (the paper uses 100).
///
/// Deterministic for a given `seq`.
pub fn build(n: usize, seq: &SeedSequence) -> Catalog {
    let mut rng = seq.rng("movies.catalog");
    let mut catalog = Catalog::default();

    // --- actor pool -> concepts -------------------------------------
    let mut actor_names: Vec<String> = Vec::with_capacity(ACTOR_POOL);
    let mut used = std::collections::HashSet::new();
    while actor_names.len() < ACTOR_POOL {
        let first = ACTOR_FIRST[rng.gen_range(0..ACTOR_FIRST.len())];
        let last = ACTOR_LAST[rng.gen_range(0..ACTOR_LAST.len())];
        let name = format!("{first} {last}");
        if used.insert(name.clone()) {
            actor_names.push(name);
        }
    }
    for (i, name) in actor_names.iter().enumerate() {
        catalog.concepts.push(Concept {
            id: ConceptId(i as u32),
            name: name.clone(),
            kind: ConceptKind::Actor,
            members: Vec::new(),
        });
    }

    // --- franchise skeletons -----------------------------------------
    // Decide how many franchise slots we need to cover ~40% of n with
    // series of 2..=4 episodes.
    let franchise_entity_target = ((n as f64) * FRANCHISE_FRACTION).round() as usize;
    let mut franchise_specs: Vec<(String, Option<String>, usize)> = Vec::new();
    let mut covered = 0usize;
    let mut used_names = std::collections::HashSet::new();
    while covered < franchise_entity_target {
        let first = HERO_FIRST[rng.gen_range(0..HERO_FIRST.len())];
        let last = HERO_LAST[rng.gen_range(0..HERO_LAST.len())];
        let name = format!("{first} {last}");
        if !used_names.insert(name.clone()) {
            continue;
        }
        // Nickname: usually the surname or a clipped form.
        let nickname = if rng.gen_bool(0.8) {
            Some(if rng.gen_bool(0.5) {
                last.to_string()
            } else {
                // Clipped form: first 4+ letters of the surname, e.g.
                // "sterling" -> "ster" — a fully synthetic "indy".
                let clip_len = 4.min(last.len());
                last[..clip_len].to_string()
            })
        } else {
            None
        };
        let episodes = rng
            .gen_range(2..=4usize)
            .min(franchise_entity_target - covered);
        if episodes < 2 {
            // A 1-episode franchise is just a standalone title; stop.
            break;
        }
        covered += episodes;
        franchise_specs.push((name, nickname, episodes));
    }

    // --- title construction ------------------------------------------
    // Interleave franchise episodes and standalone titles across the
    // rank order so popularity is not correlated with franchise
    // membership.
    #[derive(Clone)]
    enum Slot {
        Franchise { spec: usize, episode: usize },
        Standalone,
    }
    let mut slots: Vec<Slot> = Vec::with_capacity(n);
    for (spec, &(_, _, eps)) in franchise_specs.iter().enumerate() {
        for episode in 1..=eps {
            slots.push(Slot::Franchise { spec, episode });
        }
    }
    while slots.len() < n {
        slots.push(Slot::Standalone);
    }
    slots.truncate(n);
    slots.shuffle(&mut rng);

    let mut franchise_ids: Vec<Option<FranchiseId>> = vec![None; franchise_specs.len()];
    let mut used_titles = std::collections::HashSet::new();

    for (rank, slot) in slots.iter().enumerate() {
        let id = EntityId::from_usize(rank);
        let (canonical, franchise, planted) = match slot {
            Slot::Franchise { spec, episode } => {
                let (name, nickname, _) = &franchise_specs[*spec];
                let fid = *franchise_ids[*spec].get_or_insert_with(|| {
                    let fid = FranchiseId(catalog.franchises.len() as u32);
                    catalog.franchises.push(Franchise {
                        id: fid,
                        name: name.clone(),
                        nickname: nickname.clone(),
                        members: Vec::new(),
                    });
                    fid
                });
                catalog.franchises[fid.as_usize()].members.push(id);
                let title = franchise_title(name, *episode, &mut rng, &mut used_titles);
                // Plant the nickname+number synonym ("indy 4") and, when
                // the canonical title hides the number, "name 4" too.
                let mut planted = Vec::new();
                let norm_title = normalize(&title);
                if let Some(nick) = nickname {
                    planted.push(PlantedAlias {
                        entity: id,
                        text: format!("{nick} {episode}"),
                        source: AliasSource::Nickname,
                        // The informal nickname is the *preferred* user
                        // surface — weight above the canonical's 1.0.
                        weight: 2.5,
                    });
                }
                let name_number = format!("{name} {episode}");
                if name_number != norm_title {
                    planted.push(PlantedAlias {
                        entity: id,
                        text: name_number,
                        source: AliasSource::Nickname,
                        weight: 1.8,
                    });
                }
                (title, Some(fid), planted)
            }
            Slot::Standalone => {
                let title = standalone_title(&mut rng, &mut used_titles);
                (title, None, Vec::new())
            }
        };

        // Cast: 2-3 actors, chosen from the pool.
        let n_actors = rng.gen_range(ACTORS_PER_MOVIE);
        let mut concepts = Vec::with_capacity(n_actors);
        while concepts.len() < n_actors {
            let c = ConceptId(rng.gen_range(0..ACTOR_POOL) as u32);
            if !concepts.contains(&c) {
                concepts.push(c);
            }
        }
        for &c in &concepts {
            catalog.concepts[c.as_usize()].members.push(id);
        }

        catalog.entities.push(Entity {
            id,
            canonical_norm: normalize(&canonical),
            canonical,
            domain: Domain::Movies,
            rank,
            franchise,
            concepts,
        });
        catalog.planted.extend(planted);
    }

    // Drop actors that ended up in no movie (keeps ids dense by
    // compacting) — simpler: keep them; empty concepts are harmless and
    // exercise the "no members" paths.
    debug_assert!(catalog.check_invariants().is_ok());
    catalog
}

/// A franchise episode title. Mirrors real naming: episode 1 is the
/// bare series name or name+subtitle; later episodes use the number
/// (arabic or roman) or a pure subtitle that *hides* the number.
fn franchise_title<R: Rng>(
    name: &str,
    episode: usize,
    rng: &mut R,
    used: &mut std::collections::HashSet<String>,
) -> String {
    let display_name = titlecase(name);
    for attempt in 0..64 {
        let candidate = if episode == 1 {
            if rng.gen_bool(0.5) || attempt > 0 {
                format!("{display_name}: {}", subtitle(rng))
            } else {
                display_name.clone()
            }
        } else {
            match rng.gen_range(0..4) {
                0 => format!("{display_name} {episode}"),
                1 => format!(
                    "{display_name} {}",
                    arabic_to_roman(episode as u32).expect("episode in range")
                ),
                2 => format!("{display_name} and the {}", subtitle_tail(rng)),
                _ => format!("{display_name}: {}", subtitle(rng)),
            }
        };
        if used.insert(normalize(&candidate)) {
            return candidate;
        }
    }
    // Deterministic fallback: guaranteed unique by the episode suffix.
    let fallback = format!("{display_name} Episode {episode}");
    used.insert(normalize(&fallback));
    fallback
}

/// A standalone title: "The Crimson Kingdom", "Silent Phoenix:
/// Escape from Avalon", ...
fn standalone_title<R: Rng>(rng: &mut R, used: &mut std::collections::HashSet<String>) -> String {
    for _ in 0..256 {
        let adj = titlecase(ADJECTIVES[rng.gen_range(0..ADJECTIVES.len())]);
        let noun = titlecase(NOUNS[rng.gen_range(0..NOUNS.len())]);
        // Bare two-word titles are kept rare: they admit no abbreviation
        // at all, and real box-office lists are dominated by articled,
        // subtitled or prepositional titles.
        let base = match rng.gen_range(0..100) {
            0..=44 => format!("The {adj} {noun}"),
            45..=59 => format!("{adj} {noun}"),
            _ => format!(
                "{noun} of {}",
                titlecase(PLACES[rng.gen_range(0..PLACES.len())])
            ),
        };
        let candidate = if rng.gen_bool(0.35) {
            format!("{base}: {}", subtitle(rng))
        } else {
            base
        };
        if used.insert(normalize(&candidate)) {
            return candidate;
        }
    }
    unreachable!("title space exhausted — lexicons too small for catalog size");
}

/// A subtitle phrase: "Rise of the Serpent", "Escape from Avalon", ...
fn subtitle<R: Rng>(rng: &mut R) -> String {
    match rng.gen_range(0..4) {
        0 => format!(
            "Rise of the {}",
            titlecase(NOUNS[rng.gen_range(0..NOUNS.len())])
        ),
        1 => format!(
            "Escape from {}",
            titlecase(PLACES[rng.gen_range(0..PLACES.len())])
        ),
        2 => format!(
            "The {} of the {}",
            titlecase(NOUNS[rng.gen_range(0..NOUNS.len())]),
            titlecase(NOUNS[rng.gen_range(0..NOUNS.len())])
        ),
        _ => format!(
            "{} {}",
            titlecase(ADJECTIVES[rng.gen_range(0..ADJECTIVES.len())]),
            titlecase(NOUNS[rng.gen_range(0..NOUNS.len())])
        ),
    }
}

/// Tail for "NAME and the ..." titles: "Kingdom of the Crystal Skull"
/// shapes.
fn subtitle_tail<R: Rng>(rng: &mut R) -> String {
    format!(
        "{} of the {} {}",
        titlecase(NOUNS[rng.gen_range(0..NOUNS.len())]),
        titlecase(ADJECTIVES[rng.gen_range(0..ADJECTIVES.len())]),
        titlecase(NOUNS[rng.gen_range(0..NOUNS.len())])
    )
}

/// Uppercases the first letter of every word.
fn titlecase(s: &str) -> String {
    s.split_whitespace()
        .map(|w| {
            let mut chars = w.chars();
            match chars.next() {
                Some(first) => first.to_uppercase().collect::<String>() + chars.as_str(),
                None => String::new(),
            }
        })
        .collect::<Vec<_>>()
        .join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn catalog100() -> Catalog {
        build(100, &SeedSequence::new(42))
    }

    #[test]
    fn builds_requested_count() {
        let c = catalog100();
        assert_eq!(c.entities.len(), 100);
        c.check_invariants().expect("invariants");
    }

    #[test]
    fn deterministic() {
        let a = build(50, &SeedSequence::new(7));
        let b = build(50, &SeedSequence::new(7));
        assert_eq!(a.entities, b.entities);
        assert_eq!(a.franchises, b.franchises);
        assert_eq!(a.planted, b.planted);
    }

    #[test]
    fn different_seeds_differ() {
        let a = build(50, &SeedSequence::new(7));
        let b = build(50, &SeedSequence::new(8));
        let titles_a: Vec<_> = a.entities.iter().map(|e| &e.canonical).collect();
        let titles_b: Vec<_> = b.entities.iter().map(|e| &e.canonical).collect();
        assert_ne!(titles_a, titles_b);
    }

    #[test]
    fn canonical_names_unique() {
        let c = catalog100();
        let set: std::collections::HashSet<_> =
            c.entities.iter().map(|e| &e.canonical_norm).collect();
        assert_eq!(set.len(), 100);
    }

    #[test]
    fn franchise_coverage_near_target() {
        let c = catalog100();
        let in_franchise = c.entities.iter().filter(|e| e.franchise.is_some()).count();
        assert!(
            (25..=55).contains(&in_franchise),
            "franchise coverage {in_franchise}"
        );
        for f in &c.franchises {
            assert!(f.members.len() >= 2, "franchise {} too small", f.name);
            assert!(f.members.len() <= 4);
        }
    }

    #[test]
    fn nicknames_planted_for_franchise_movies() {
        let c = catalog100();
        let nick_count = c
            .planted
            .iter()
            .filter(|p| p.source == AliasSource::Nickname)
            .count();
        assert!(nick_count > 10, "only {nick_count} nicknames planted");
        // Every planted surface is normalized.
        for p in &c.planted {
            assert_eq!(normalize(&p.text), p.text);
        }
    }

    #[test]
    fn planted_nicknames_attach_to_franchise_members() {
        let c = catalog100();
        for p in &c.planted {
            let e = &c.entities[p.entity.as_usize()];
            assert!(
                e.franchise.is_some(),
                "nickname planted on standalone movie {}",
                e.canonical
            );
        }
    }

    #[test]
    fn ranks_are_dense() {
        let c = catalog100();
        for (i, e) in c.entities.iter().enumerate() {
            assert_eq!(e.rank, i);
        }
    }

    #[test]
    fn every_movie_has_cast() {
        let c = catalog100();
        for e in &c.entities {
            assert!(
                (2..=3).contains(&e.concepts.len()),
                "cast size {} for {}",
                e.concepts.len(),
                e.canonical
            );
        }
    }

    #[test]
    fn titlecase_works() {
        assert_eq!(titlecase("captain orion"), "Captain Orion");
        assert_eq!(titlecase(""), "");
    }

    #[test]
    fn small_catalog() {
        let c = build(5, &SeedSequence::new(1));
        assert_eq!(c.entities.len(), 5);
        c.check_invariants().expect("invariants");
    }
}
