//! World assembly: catalog → alias universe → pages → ground truth.

use crate::alias::{Alias, AliasSource, AliasTarget, AliasUniverse, AspectKind, Relation};
use crate::catalog::Catalog;
use crate::config::WorldConfig;
use crate::entity::{Concept, Domain, Entity, Franchise};
use crate::truth::GroundTruth;
use crate::web::{self, Page};
use crate::{cameras, movies};
use rand::Rng;
use websyn_common::{EntityId, SeedSequence};
use websyn_text::tokenize::token_texts;

/// The fully built synthetic world: the input the rest of the workspace
/// consumes.
#[derive(Debug, Clone)]
pub struct World {
    /// The configuration the world was built from.
    pub config: WorldConfig,
    /// Entities in rank order.
    pub entities: Vec<Entity>,
    /// Franchises.
    pub franchises: Vec<Franchise>,
    /// Concepts.
    pub concepts: Vec<Concept>,
    /// The alias universe (all surfaces with relations and weights).
    pub aliases: AliasUniverse,
    /// The page universe.
    pub pages: Vec<Page>,
    /// The evaluation oracle. Mutable: the query generator registers
    /// misspelled surfaces as it mints them.
    pub truth: GroundTruth,
    seq: SeedSequence,
}

impl World {
    /// Builds the world for `config`.
    ///
    /// # Panics
    /// Panics if the configuration is invalid (use
    /// [`WorldConfig::validate`] to check first).
    pub fn build(config: &WorldConfig) -> Self {
        config.validate().expect("invalid WorldConfig");
        let seq = SeedSequence::new(config.seed);
        let catalog = match config.domain {
            Domain::Movies => movies::build(config.n_entities, &seq),
            Domain::Cameras => cameras::build(config.n_entities, &seq),
        };
        debug_assert!(catalog.check_invariants().is_ok());
        let aliases = build_alias_universe_with(&catalog, &seq, config);
        let pages = web::build_pages(&catalog, &aliases, &seq);
        let truth = GroundTruth::from_universe(&aliases);
        let Catalog {
            entities,
            franchises,
            concepts,
            ..
        } = catalog;
        Self {
            config: config.clone(),
            entities,
            franchises,
            concepts,
            aliases,
            pages,
            truth,
            seq,
        }
    }

    /// The seed sequence (for downstream components that must share the
    /// world's determinism, e.g. the query generator).
    pub fn seq(&self) -> &SeedSequence {
        &self.seq
    }

    /// The domain of this world.
    pub fn domain(&self) -> Domain {
        self.config.domain
    }

    /// The ground-truth relation of surface `text` to entity `e`:
    /// `Synonym` / `Hyponym` when the surface targets `e` itself,
    /// `Hypernym` when it targets `e`'s franchise, `Related` when it
    /// targets one of `e`'s concepts, `None` when the surface is
    /// unknown or refers to something unconnected.
    pub fn relation_of(&self, text: &str, e: EntityId) -> Option<Relation> {
        let entry = self.truth.lookup(text)?;
        match entry.target {
            AliasTarget::Entity(te) => (te == e).then_some(entry.relation),
            AliasTarget::Franchise(f) => {
                (self.entities[e.as_usize()].franchise == Some(f)).then_some(Relation::Hypernym)
            }
            AliasTarget::Concept(c) => self.entities[e.as_usize()]
                .concepts
                .contains(&c)
                .then_some(Relation::Related),
        }
    }
}

/// [`build_alias_universe_with`] under a default-shaped config; used by
/// module tests.
pub fn build_alias_universe(catalog: &Catalog, seq: &SeedSequence) -> AliasUniverse {
    let config = match catalog.domain() {
        Domain::Movies => WorldConfig::small_movies(catalog.entities.len(), seq.master()),
        Domain::Cameras => WorldConfig::small_cameras(catalog.entities.len(), seq.master()),
    };
    build_alias_universe_with(catalog, seq, &config)
}

/// Builds the alias universe for a catalog.
///
/// Insertion order encodes precedence (see [`AliasUniverse::insert`]):
/// franchise and concept names go first so that an entity variant
/// colliding with a broader name is shadowed rather than poisoning it.
pub fn build_alias_universe_with(
    catalog: &Catalog,
    seq: &SeedSequence,
    config: &WorldConfig,
) -> AliasUniverse {
    let mut rng = seq.rng("alias.universe");
    let mut universe = AliasUniverse::new();

    // 1. Hypernym surfaces: franchise names and nicknames.
    for franchise in &catalog.franchises {
        universe.insert(Alias {
            text: franchise.name.clone(),
            target: AliasTarget::Franchise(franchise.id),
            relation: Relation::Hypernym,
            source: AliasSource::FranchiseName,
            weight: 1.0,
        });
        if let Some(nick) = &franchise.nickname {
            universe.insert(Alias {
                text: nick.clone(),
                target: AliasTarget::Franchise(franchise.id),
                relation: Relation::Hypernym,
                source: AliasSource::FranchiseName,
                weight: 1.5,
            });
        }
    }

    // 2. Related surfaces: concept names.
    for concept in &catalog.concepts {
        if concept.members.is_empty() {
            continue;
        }
        universe.insert(Alias {
            text: concept.name.clone(),
            target: AliasTarget::Concept(concept.id),
            relation: Relation::Related,
            source: AliasSource::ConceptName,
            weight: 1.0,
        });
    }

    // 3. Entity surfaces.
    let (w_lo, w_hi) = config.mechanical_weight_range;
    for entity in &catalog.entities {
        let target = AliasTarget::Entity(entity.id);
        // Canonical. Its weight encodes how often users type the full
        // data value — rarely, and almost never for cameras.
        universe.insert(Alias {
            text: entity.canonical_norm.clone(),
            target,
            relation: Relation::Synonym,
            source: AliasSource::Canonical,
            weight: config.canonical_weight,
        });
        // Mechanical variants.
        let tokens = token_texts(&entity.canonical_norm);
        for variant in websyn_text::abbrev::variants(&tokens) {
            // Model-number tails ("350d") are the *preferred* camera
            // surface, not a marginal variant.
            let weight = if variant.kind == websyn_text::AbbrevKind::TailToken {
                rng.gen_range(1.8..2.6)
            } else {
                rng.gen_range(w_lo..w_hi)
            };
            universe.insert(Alias {
                text: variant.text,
                target,
                relation: Relation::Synonym,
                source: AliasSource::Mechanical(variant.kind),
                weight,
            });
        }
    }

    // 4. Planted semantic synonyms (nicknames, marketing names).
    for planted in &catalog.planted {
        universe.insert(Alias {
            text: planted.text.clone(),
            target: AliasTarget::Entity(planted.entity),
            relation: Relation::Synonym,
            source: planted.source,
            weight: planted.weight,
        });
    }

    // 5. Hyponym surfaces: aspect strings built on the entity's most
    // popular synonym surface.
    let domain = catalog.domain();
    let aspects: &[AspectKind] = match domain {
        Domain::Movies => &AspectKind::MOVIE_ASPECTS,
        Domain::Cameras => &AspectKind::CAMERA_ASPECTS,
    };
    // Collect first to avoid borrowing `universe` while inserting.
    let mut aspect_aliases = Vec::new();
    for entity in &catalog.entities {
        let base = universe
            .of_entity(entity.id)
            .filter(|a| a.relation == Relation::Synonym)
            .max_by(|a, b| {
                a.weight
                    .partial_cmp(&b.weight)
                    .expect("weights are finite")
                    // Deterministic tie-break on text.
                    .then_with(|| a.text.cmp(&b.text))
            })
            .map(|a| a.text.clone())
            .unwrap_or_else(|| entity.canonical_norm.clone());
        for &aspect in aspects {
            aspect_aliases.push(Alias {
                text: format!("{base} {}", aspect.suffix()),
                target: AliasTarget::Entity(entity.id),
                relation: Relation::Hyponym,
                source: AliasSource::Aspect(aspect),
                weight: 0.5,
            });
        }
    }
    for alias in aspect_aliases {
        universe.insert(alias);
    }

    universe
}

#[cfg(test)]
mod tests {
    use super::*;

    fn movie_world() -> World {
        World::build(&WorldConfig::small_movies(40, 5))
    }

    fn camera_world() -> World {
        World::build(&WorldConfig::small_cameras(60, 5))
    }

    #[test]
    fn build_produces_consistent_world() {
        let w = movie_world();
        assert_eq!(w.entities.len(), 40);
        assert!(!w.pages.is_empty());
        assert!(!w.aliases.is_empty());
        assert!(!w.truth.is_empty());
    }

    #[test]
    fn deterministic_build() {
        let a = movie_world();
        let b = movie_world();
        assert_eq!(a.entities, b.entities);
        assert_eq!(a.pages, b.pages);
        assert_eq!(a.aliases.len(), b.aliases.len());
    }

    #[test]
    fn every_entity_has_canonical_and_some_synonyms() {
        let w = movie_world();
        let mut entities_with_synonyms = 0;
        for e in &w.entities {
            assert!(
                w.aliases.get(&e.canonical_norm).is_some()
                    || w.aliases.shadowed() > 0
                    || w.aliases.ambiguous_dropped() > 0,
                "canonical surface missing for {}",
                e.canonical
            );
            if w.aliases.synonyms_of(e.id).next().is_some() {
                entities_with_synonyms += 1;
            }
        }
        // Most entities should have at least one non-canonical synonym
        // surface. Short two-word standalone titles legitimately have
        // none (their log synonyms arise from misspellings instead), so
        // the bound is 70%, not 100%.
        assert!(
            entities_with_synonyms >= w.entities.len() * 7 / 10,
            "{entities_with_synonyms}/{} entities have synonyms",
            w.entities.len()
        );
    }

    #[test]
    fn franchise_names_are_hypernyms_not_synonyms() {
        let w = movie_world();
        for f in &w.franchises {
            if let Some(alias) = w.aliases.get(&f.name) {
                assert_eq!(alias.relation, Relation::Hypernym, "{}", f.name);
                assert_eq!(alias.target, AliasTarget::Franchise(f.id));
            }
        }
    }

    #[test]
    fn relation_oracle_works() {
        let w = movie_world();
        // Canonical is a synonym of its own entity.
        let e0 = &w.entities[0];
        assert_eq!(
            w.relation_of(&e0.canonical_norm, e0.id),
            Some(Relation::Synonym)
        );
        // ...and unrelated to a different entity.
        let e1 = &w.entities[1];
        assert_eq!(w.relation_of(&e0.canonical_norm, e1.id), None);
        // Franchise name is a hypernym of members.
        if let Some(f) = w.franchises.first() {
            let member = f.members[0];
            assert_eq!(w.relation_of(&f.name, member), Some(Relation::Hypernym));
        }
        // Unknown surface → None.
        assert_eq!(w.relation_of("nonexistent query", e0.id), None);
    }

    #[test]
    fn aspect_surfaces_are_hyponyms() {
        let w = movie_world();
        let hyponyms: Vec<&Alias> = w
            .aliases
            .iter()
            .filter(|a| a.relation == Relation::Hyponym)
            .collect();
        assert!(!hyponyms.is_empty());
        for h in hyponyms {
            assert!(matches!(h.source, AliasSource::Aspect(_)));
            assert!(matches!(h.target, AliasTarget::Entity(_)));
        }
    }

    #[test]
    fn camera_world_builds_with_marketing_synonyms() {
        let w = camera_world();
        let marketing = w
            .aliases
            .iter()
            .filter(|a| a.source == AliasSource::Marketing)
            .count();
        assert!(marketing > 0, "no marketing aliases survived");
        // Tail tokens are true synonyms.
        let tails = w
            .aliases
            .iter()
            .filter(|a| {
                matches!(
                    a.source,
                    AliasSource::Mechanical(websyn_text::AbbrevKind::TailToken)
                )
            })
            .count();
        assert!(tails > w.entities.len() / 2, "tail tokens: {tails}");
    }

    #[test]
    fn truth_and_universe_agree() {
        let w = movie_world();
        for alias in w.aliases.iter() {
            let entry = w.truth.lookup(&alias.text).expect("truth entry");
            assert_eq!(entry.target, alias.target);
            assert_eq!(entry.relation, alias.relation);
        }
    }

    #[test]
    #[should_panic(expected = "invalid WorldConfig")]
    fn invalid_config_panics() {
        let mut c = WorldConfig::small_movies(10, 1);
        c.n_entities = 0;
        let _ = World::build(&c);
    }
}
