//! The ground-truth oracle.
//!
//! The paper assumes an abstract oracle `F(s, E)` that lives "only in
//! the collective minds of all users" and therefore has to be
//! approximated with Web data. In the synthetic world we *are* the
//! collective mind: every surface was generated with a known target, so
//! the oracle is a lookup table. The mining algorithm never touches
//! this — it is used exclusively for evaluation (precision is exact
//! instead of human-judged).

use crate::alias::{AliasSource, AliasTarget, AliasUniverse, Relation};
use serde::{Deserialize, Serialize};
use websyn_common::{EntityId, FxHashMap};

/// What a query string truly refers to.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TruthEntry {
    /// The true referent.
    pub target: AliasTarget,
    /// The relation of the surface to its target's entity set.
    pub relation: Relation,
    /// Provenance of the surface.
    pub source: AliasSource,
}

/// The oracle: normalized surface text → truth.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct GroundTruth {
    map: FxHashMap<String, TruthEntry>,
}

impl GroundTruth {
    /// Builds the oracle from a finished alias universe.
    pub fn from_universe(universe: &AliasUniverse) -> Self {
        let mut map = FxHashMap::default();
        for alias in universe.iter() {
            map.insert(
                alias.text.clone(),
                TruthEntry {
                    target: alias.target,
                    relation: alias.relation,
                    source: alias.source,
                },
            );
        }
        Self { map }
    }

    /// Registers a derived surface (the typo channel calls this when it
    /// mints a misspelling). Returns `false` — and registers nothing —
    /// if the text already means something else.
    pub fn register(&mut self, text: &str, entry: TruthEntry) -> bool {
        match self.map.get(text) {
            Some(existing) => existing.target == entry.target,
            None => {
                self.map.insert(text.to_string(), entry);
                true
            }
        }
    }

    /// Looks up a surface.
    pub fn lookup(&self, text: &str) -> Option<&TruthEntry> {
        self.map.get(text)
    }

    /// True iff `text` is a true synonym of entity `e` (refers to
    /// exactly that entity, with Synonym relation — misspellings of
    /// synonyms count, aspect strings do not).
    pub fn is_true_synonym(&self, text: &str, e: EntityId) -> bool {
        matches!(
            self.map.get(text),
            Some(TruthEntry {
                target: AliasTarget::Entity(te),
                relation: Relation::Synonym,
                ..
            }) if *te == e
        )
    }

    /// Number of known surfaces.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the oracle is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterates over `(text, entry)` pairs (unspecified order).
    pub fn iter(&self) -> impl Iterator<Item = (&str, &TruthEntry)> + '_ {
        self.map.iter().map(|(k, v)| (k.as_str(), v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alias::Alias;

    fn universe() -> AliasUniverse {
        let mut u = AliasUniverse::new();
        u.insert(Alias {
            text: "indy 4".into(),
            target: AliasTarget::Entity(EntityId::new(0)),
            relation: Relation::Synonym,
            source: AliasSource::Nickname,
            weight: 2.0,
        });
        u.insert(Alias {
            text: "indy 4 trailer".into(),
            target: AliasTarget::Entity(EntityId::new(0)),
            relation: Relation::Hyponym,
            source: AliasSource::Aspect(crate::alias::AspectKind::Trailer),
            weight: 0.4,
        });
        u
    }

    #[test]
    fn from_universe_copies_entries() {
        let t = GroundTruth::from_universe(&universe());
        assert_eq!(t.len(), 2);
        let e = t.lookup("indy 4").unwrap();
        assert_eq!(e.relation, Relation::Synonym);
    }

    #[test]
    fn synonym_judgement() {
        let t = GroundTruth::from_universe(&universe());
        assert!(t.is_true_synonym("indy 4", EntityId::new(0)));
        assert!(!t.is_true_synonym("indy 4", EntityId::new(1)));
        // Aspect strings are never synonyms.
        assert!(!t.is_true_synonym("indy 4 trailer", EntityId::new(0)));
        assert!(!t.is_true_synonym("unknown", EntityId::new(0)));
    }

    #[test]
    fn register_misspelling() {
        let mut t = GroundTruth::from_universe(&universe());
        let entry = TruthEntry {
            target: AliasTarget::Entity(EntityId::new(0)),
            relation: Relation::Synonym,
            source: AliasSource::Misspelling,
        };
        assert!(t.register("indy 4 misspelt", entry));
        assert!(t.is_true_synonym("indy 4 misspelt", EntityId::new(0)));
        // Re-registering the same text for the same target is fine...
        assert!(t.register("indy 4 misspelt", entry));
        // ...but a conflicting target is refused and not overwritten.
        let conflicting = TruthEntry {
            target: AliasTarget::Entity(EntityId::new(9)),
            relation: Relation::Synonym,
            source: AliasSource::Misspelling,
        };
        assert!(!t.register("indy 4 misspelt", conflicting));
        assert!(t.is_true_synonym("indy 4 misspelt", EntityId::new(0)));
    }

    #[test]
    fn iteration_and_len() {
        let t = GroundTruth::from_universe(&universe());
        assert_eq!(t.iter().count(), t.len());
        assert!(!t.is_empty());
        assert!(GroundTruth::default().is_empty());
    }
}
