//! # websyn-synth
//!
//! Synthetic world generator: the stand-in for the paper's proprietary
//! substrate (Bing query/click logs, the 2008 box-office movie list and
//! the MSN Shopping camera catalog — see DESIGN.md §2).
//!
//! The generator tells the same generative story the paper relies on:
//!
//! 1. A catalog of **entities** exists ([`catalog`], [`movies`],
//!    [`cameras`]), with heavy-tailed popularity.
//! 2. Each entity is referred to by many **alias surfaces** ([`alias`])
//!    — the canonical name, mechanical abbreviations, nicknames and
//!    marketing names (true synonyms); franchise/brand strings
//!    (hypernyms); aspect strings like "… trailer" (hyponyms); and
//!    actor/brand concepts (merely related). Every surface carries its
//!    ground-truth relation, which is what lets us *measure* precision
//!    instead of paying human judges.
//! 3. Content creators publish **Web pages** about entities ([`web`]),
//!    planting alternative names in page text exactly as the paper
//!    describes eBay sellers doing.
//! 4. Users issue **queries** drawn from an intent mixture
//!    ([`intent`], [`queries`]), choosing surfaces by popularity and
//!    occasionally mistyping them.
//!
//! Everything is deterministic under a [`websyn_common::SeedSequence`].

pub mod alias;
pub mod cameras;
pub mod catalog;
pub mod config;
pub mod entity;
pub mod intent;
pub mod movies;
pub mod queries;
pub mod report;
pub mod truth;
pub mod web;
pub mod world;

pub use alias::{Alias, AliasSource, AliasTarget, AliasUniverse, AspectKind, Relation};
pub use config::WorldConfig;
pub use entity::{Concept, ConceptId, ConceptKind, Domain, Entity, Franchise, FranchiseId};
pub use intent::{affinity, Intent};
pub use queries::{QueryEvent, QueryStreamConfig};
pub use report::WorldReport;
pub use truth::GroundTruth;
pub use web::{Page, PageKind};
pub use world::World;
