//! World configuration and the dataset presets used by the paper's
//! experiments.

use crate::entity::Domain;
use serde::{Deserialize, Serialize};
use websyn_common::{Error, Result};

/// Configuration for building a [`crate::World`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorldConfig {
    /// Master seed; every stream in the world derives from it.
    pub seed: u64,
    /// Entity domain.
    pub domain: Domain,
    /// Number of entities in the catalog.
    pub n_entities: usize,
    /// Zipf exponent of entity popularity for intent sampling. Higher
    /// → more head-heavy traffic.
    pub entity_zipf: f64,
    /// Range of weights assigned to mechanical alias variants
    /// (planted nicknames/marketing carry their own weights).
    pub mechanical_weight_range: (f64, f64),
    /// Weight of the canonical surface among an entity's synonym
    /// surfaces. The paper's premise is that users rarely type the
    /// full canonical form — especially for cameras, whose data values
    /// "usually come in the canonical form … and therefore may not be
    /// used as queries by people".
    pub canonical_weight: f64,
    /// Maximum distinct misspellings the typo channel mints per
    /// surface. Real misspelling distributions are heavy-tailed: the
    /// same few typos recur, rather than every user inventing a new
    /// one.
    pub misspelling_pool: usize,
}

impl WorldConfig {
    /// The paper's D1: top-100 movies.
    pub fn movies_2008() -> Self {
        Self {
            seed: 2008,
            domain: Domain::Movies,
            n_entities: 100,
            entity_zipf: 0.9,
            mechanical_weight_range: (0.2, 1.2),
            canonical_weight: 0.6,
            misspelling_pool: 2,
        }
    }

    /// The paper's D2: 882 cameras. Heavier tail than movies: camera
    /// query traffic concentrates on a few hot models.
    pub fn cameras_msn() -> Self {
        Self {
            seed: 882,
            domain: Domain::Cameras,
            n_entities: 882,
            entity_zipf: 1.05,
            mechanical_weight_range: (0.2, 1.2),
            canonical_weight: 0.03,
            misspelling_pool: 3,
        }
    }

    /// A small movie world for tests.
    pub fn small_movies(n_entities: usize, seed: u64) -> Self {
        Self {
            seed,
            domain: Domain::Movies,
            n_entities,
            entity_zipf: 0.9,
            mechanical_weight_range: (0.2, 1.2),
            canonical_weight: 0.6,
            misspelling_pool: 3,
        }
    }

    /// A small camera world for tests.
    pub fn small_cameras(n_entities: usize, seed: u64) -> Self {
        Self {
            seed,
            domain: Domain::Cameras,
            n_entities,
            entity_zipf: 1.05,
            mechanical_weight_range: (0.2, 1.2),
            canonical_weight: 0.03,
            misspelling_pool: 3,
        }
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<()> {
        if self.n_entities == 0 {
            return Err(Error::invalid_config("n_entities", "must be >= 1"));
        }
        if !self.entity_zipf.is_finite() || self.entity_zipf < 0.0 {
            return Err(Error::invalid_config(
                "entity_zipf",
                format!("must be finite and >= 0, got {}", self.entity_zipf),
            ));
        }
        let (lo, hi) = self.mechanical_weight_range;
        if !(lo.is_finite() && hi.is_finite()) || lo <= 0.0 || hi < lo {
            return Err(Error::invalid_config(
                "mechanical_weight_range",
                format!("must satisfy 0 < lo <= hi, got ({lo}, {hi})"),
            ));
        }
        if !self.canonical_weight.is_finite() || self.canonical_weight <= 0.0 {
            return Err(Error::invalid_config(
                "canonical_weight",
                format!("must be finite and > 0, got {}", self.canonical_weight),
            ));
        }
        if self.misspelling_pool == 0 {
            return Err(Error::invalid_config(
                "misspelling_pool",
                "must be >= 1 (use typo rate 0 to disable misspellings)",
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        WorldConfig::movies_2008().validate().unwrap();
        WorldConfig::cameras_msn().validate().unwrap();
        WorldConfig::small_movies(5, 1).validate().unwrap();
        WorldConfig::small_cameras(5, 1).validate().unwrap();
    }

    #[test]
    fn preset_shapes_match_paper() {
        assert_eq!(WorldConfig::movies_2008().n_entities, 100);
        assert_eq!(WorldConfig::movies_2008().domain, Domain::Movies);
        assert_eq!(WorldConfig::cameras_msn().n_entities, 882);
        assert_eq!(WorldConfig::cameras_msn().domain, Domain::Cameras);
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut c = WorldConfig::movies_2008();
        c.n_entities = 0;
        assert!(c.validate().is_err());

        let mut c = WorldConfig::movies_2008();
        c.entity_zipf = f64::NAN;
        assert!(c.validate().is_err());

        let mut c = WorldConfig::movies_2008();
        c.mechanical_weight_range = (0.0, 1.0);
        assert!(c.validate().is_err());

        let mut c = WorldConfig::movies_2008();
        c.mechanical_weight_range = (1.0, 0.5);
        assert!(c.validate().is_err());

        let mut c = WorldConfig::movies_2008();
        c.canonical_weight = 0.0;
        assert!(c.validate().is_err());

        let mut c = WorldConfig::movies_2008();
        c.misspelling_pool = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn cameras_canonical_rarely_queried() {
        // The structural premise behind Table I's Walk row: camera data
        // values are rarely used as queries.
        assert!(
            WorldConfig::cameras_msn().canonical_weight
                < WorldConfig::movies_2008().canonical_weight
        );
    }
}
