//! Catalog assembly: the common output shape of the dataset generators
//! and the word lexicons they draw from.
//!
//! Both dataset builders ([`crate::movies`], [`crate::cameras`])
//! produce a [`Catalog`]: entities with popularity ranks, franchises
//! (hypernym groupings), concepts (actors/brands) and *planted*
//! synonyms — the semantic aliases (nicknames, marketing names) that no
//! mechanical transform could derive, which is precisely the class of
//! synonym the paper says substring approaches are "hopeless" on.

use crate::alias::AliasSource;
use crate::entity::{Concept, Domain, Entity, Franchise};
use websyn_common::EntityId;

/// A semantic synonym planted at generation time.
#[derive(Debug, Clone, PartialEq)]
pub struct PlantedAlias {
    /// The entity this surface refers to.
    pub entity: EntityId,
    /// Normalized surface text.
    pub text: String,
    /// Provenance: `Nickname` or `Marketing`.
    pub source: AliasSource,
    /// Relative popularity among the entity's surfaces.
    pub weight: f64,
}

/// The output of a dataset builder.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    /// Entities in rank order (index == `EntityId` == popularity rank).
    pub entities: Vec<Entity>,
    /// Franchises (movie series / camera product lines).
    pub franchises: Vec<Franchise>,
    /// Concepts (actors / brands).
    pub concepts: Vec<Concept>,
    /// Planted semantic synonyms.
    pub planted: Vec<PlantedAlias>,
}

impl Catalog {
    /// The domain of the catalog (all entities share one).
    ///
    /// # Panics
    /// Panics on an empty catalog.
    pub fn domain(&self) -> Domain {
        self.entities.first().expect("empty catalog").domain
    }

    /// Validates internal invariants; used by tests and debug builds.
    ///
    /// Checks: dense entity ids equal to index; unique canonical names;
    /// franchise membership is consistent in both directions; concept
    /// membership consistent.
    pub fn check_invariants(&self) -> Result<(), String> {
        let mut seen = std::collections::HashSet::new();
        for (i, e) in self.entities.iter().enumerate() {
            if e.id.as_usize() != i {
                return Err(format!("entity id {} at index {i}", e.id));
            }
            if !seen.insert(e.canonical_norm.clone()) {
                return Err(format!("duplicate canonical: {}", e.canonical_norm));
            }
            if let Some(f) = e.franchise {
                let fr = self
                    .franchises
                    .get(f.as_usize())
                    .ok_or_else(|| format!("entity {} has unknown franchise {f}", e.id))?;
                if !fr.members.contains(&e.id) {
                    return Err(format!("franchise {f} missing member {}", e.id));
                }
            }
            for &c in &e.concepts {
                let concept = self
                    .concepts
                    .get(c.as_usize())
                    .ok_or_else(|| format!("entity {} has unknown concept {c}", e.id))?;
                if !concept.members.contains(&e.id) {
                    return Err(format!("concept {c} missing member {}", e.id));
                }
            }
        }
        for (i, f) in self.franchises.iter().enumerate() {
            if f.id.as_usize() != i {
                return Err(format!("franchise id {} at index {i}", f.id));
            }
            for &m in &f.members {
                let e = self
                    .entities
                    .get(m.as_usize())
                    .ok_or_else(|| format!("franchise {} has unknown member {m}", f.id))?;
                if e.franchise != Some(f.id) {
                    return Err(format!("member {m} does not point back to {}", f.id));
                }
            }
        }
        for (i, c) in self.concepts.iter().enumerate() {
            if c.id.as_usize() != i {
                return Err(format!("concept id {} at index {i}", c.id));
            }
            for &m in &c.members {
                let e = self
                    .entities
                    .get(m.as_usize())
                    .ok_or_else(|| format!("concept {} has unknown member {m}", c.id))?;
                if !e.concepts.contains(&c.id) {
                    return Err(format!("member {m} does not point back to {}", c.id));
                }
            }
        }
        for p in &self.planted {
            if self.entities.get(p.entity.as_usize()).is_none() {
                return Err(format!("planted alias for unknown entity {}", p.entity));
            }
            if p.text.is_empty() {
                return Err("empty planted alias".to_string());
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Lexicons. All invented words; any resemblance to real titles is the
// point (the generator must produce *plausible* catalogs) but the
// strings themselves are synthetic.
// ---------------------------------------------------------------------

/// Adjectives for title grammars.
pub const ADJECTIVES: &[&str] = &[
    "crimson",
    "silent",
    "golden",
    "iron",
    "frozen",
    "scarlet",
    "midnight",
    "savage",
    "broken",
    "hidden",
    "burning",
    "eternal",
    "lost",
    "rising",
    "fallen",
    "neon",
    "hollow",
    "ancient",
    "thunder",
    "emerald",
    "shattered",
    "velvet",
    "obsidian",
    "radiant",
    "grim",
    "howling",
    "phantom",
    "solar",
    "lunar",
    "untamed",
];

/// Nouns for title grammars.
pub const NOUNS: &[&str] = &[
    "kingdom",
    "empire",
    "horizon",
    "legacy",
    "phoenix",
    "tempest",
    "odyssey",
    "covenant",
    "redemption",
    "frontier",
    "prophecy",
    "guardian",
    "eclipse",
    "labyrinth",
    "citadel",
    "voyager",
    "reckoning",
    "dominion",
    "serpent",
    "monolith",
    "harbinger",
    "sentinel",
    "abyss",
    "crucible",
    "vanguard",
    "paradox",
    "requiem",
    "bastion",
    "chimera",
    "zenith",
];

/// Place-ish nouns for subtitle grammars ("escape from ...").
pub const PLACES: &[&str] = &[
    "avalon",
    "karakorum",
    "eldoria",
    "novaterra",
    "zephyria",
    "mirador",
    "thornfield",
    "blackmere",
    "suncrest",
    "vostok",
    "meridian",
    "caldera",
    "ironhaven",
    "duskwall",
];

/// Hero/series head words for franchise names.
pub const HERO_FIRST: &[&str] = &[
    "captain",
    "agent",
    "doctor",
    "professor",
    "commander",
    "detective",
    "baron",
    "madame",
    "sergeant",
    "brother",
];

/// Hero/series surname words for franchise names.
pub const HERO_LAST: &[&str] = &[
    "orion", "steele", "marlowe", "vance", "drake", "quill", "harlow", "sterling", "locke", "rook",
    "calloway", "fox", "mercer", "blaze", "frost", "hawke", "stone", "cross", "wilde", "night",
];

/// First names for the actor pool.
pub const ACTOR_FIRST: &[&str] = &[
    "harrison",
    "marion",
    "declan",
    "imelda",
    "rufus",
    "saoirse",
    "caspian",
    "wilhelmina",
    "august",
    "beatrix",
    "cormac",
    "delphine",
    "ezra",
    "florence",
    "gideon",
    "henrietta",
    "ignatius",
    "josephine",
    "kieran",
    "lavinia",
];

/// Last names for the actor pool.
pub const ACTOR_LAST: &[&str] = &[
    "fairbanks",
    "okafor",
    "lindqvist",
    "moreau",
    "castellanos",
    "whitlock",
    "arbuckle",
    "vandermeer",
    "oyelaran",
    "kowalczyk",
    "beaumont",
    "ashdown",
    "pemberton",
    "ricci",
    "halloran",
    "strand",
    "iverson",
    "delacroix",
    "mbeki",
    "thorne",
];

/// Marketing-name head words (camera alternative names).
pub const MARKETING_FIRST: &[&str] = &[
    "digital", "ultra", "prime", "vivid", "swift", "astro", "pixel", "stellar", "aero", "crystal",
    "hyper", "omni", "terra", "nova", "apex",
];

/// Marketing-name tail words.
pub const MARKETING_SECOND: &[&str] = &[
    "rebel", "shot", "view", "snap", "image", "focus", "light", "frame", "vision", "capture",
    "pulse", "wave", "spark", "trace", "core",
];

/// Marketing-name optional suffixes.
pub const MARKETING_SUFFIX: &[&str] = &["xt", "xs", "pro", "plus", "ii", "max"];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexicons_have_unique_entries() {
        fn assert_unique(name: &str, words: &[&str]) {
            let set: std::collections::HashSet<_> = words.iter().collect();
            assert_eq!(set.len(), words.len(), "duplicates in {name}");
            for w in words {
                assert!(!w.is_empty());
                assert_eq!(
                    websyn_text::normalize(w),
                    **w,
                    "lexicon word not normalized: {w}"
                );
            }
        }
        assert_unique("ADJECTIVES", ADJECTIVES);
        assert_unique("NOUNS", NOUNS);
        assert_unique("PLACES", PLACES);
        assert_unique("HERO_FIRST", HERO_FIRST);
        assert_unique("HERO_LAST", HERO_LAST);
        assert_unique("ACTOR_FIRST", ACTOR_FIRST);
        assert_unique("ACTOR_LAST", ACTOR_LAST);
        assert_unique("MARKETING_FIRST", MARKETING_FIRST);
        assert_unique("MARKETING_SECOND", MARKETING_SECOND);
        assert_unique("MARKETING_SUFFIX", MARKETING_SUFFIX);
    }

    #[test]
    fn empty_catalog_invariants_hold() {
        let c = Catalog::default();
        assert!(c.check_invariants().is_ok());
    }

    #[test]
    #[should_panic(expected = "empty catalog")]
    fn domain_of_empty_catalog_panics() {
        let c = Catalog::default();
        let _ = c.domain();
    }
}
