//! User intents and the true relevance (affinity) of pages to intents.
//!
//! An [`Intent`] is what the user actually wants when they type a
//! query; the affinity function is the world's hidden relevance oracle,
//! consumed by the click model. The shapes below implement the paper's
//! Figure 1 geometry:
//!
//! - **Entity intent** (synonym queries): clicks concentrate on the
//!   entity's own pages → high ICR against that entity (Fig. 1a).
//! - **Franchise intent** (hypernym queries): clicks spread across the
//!   hub and *all* member entities → low ICR against any single member
//!   (Fig. 1b).
//! - **Aspect intent** (hyponym queries): clicks concentrate on one
//!   specific aspect page, mostly outside the generic surrogates
//!   (Fig. 1c).
//! - **Concept intent** (related queries): clicks go to the concept hub
//!   (Fig. 1d).

use crate::alias::{AliasTarget, AspectKind};
use crate::entity::{ConceptId, FranchiseId};
use crate::web::{Page, PageKind};
use crate::world::World;
use websyn_common::EntityId;

/// What a query is *for*.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Intent {
    /// Find one specific entity.
    Entity(EntityId),
    /// Browse a franchise/line (hypernym intent).
    Franchise(FranchiseId),
    /// Find one aspect of one entity (hyponym intent).
    Aspect(EntityId, AspectKind),
    /// Find a related concept: actor, brand (related intent).
    Concept(ConceptId),
}

/// True relevance of `page` to `intent` in `[0, 1]`.
///
/// This is the hidden oracle users act on; the click model multiplies
/// it with position bias. It is *not* available to the mining algorithm
/// — only clicks are.
pub fn affinity(intent: Intent, page: &Page, world: &World) -> f64 {
    match intent {
        Intent::Entity(e) => entity_affinity(e, page, world),
        Intent::Franchise(f) => franchise_affinity(f, page, world),
        Intent::Aspect(e, a) => aspect_affinity(e, a, page),
        Intent::Concept(c) => concept_affinity(c, page, world),
    }
}

fn entity_affinity(e: EntityId, page: &Page, world: &World) -> f64 {
    match page.target {
        Some(AliasTarget::Entity(pe)) if pe == e => match page.kind {
            PageKind::Official => 1.0,
            PageKind::Wiki => 0.95,
            PageKind::Shop => 0.8,
            PageKind::Review => 0.7,
            PageKind::Fan => 0.6,
            PageKind::News => 0.5,
            // The entity's own aspect pages are still somewhat what the
            // user wants, but they are a narrower answer.
            PageKind::Aspect(_) => 0.35,
            _ => 0.3,
        },
        Some(AliasTarget::Entity(other)) => {
            // Same-franchise sibling: mildly interesting.
            let entity = &world.entities[e.as_usize()];
            let sibling = &world.entities[other.as_usize()];
            if entity.franchise.is_some() && entity.franchise == sibling.franchise {
                0.08
            } else {
                0.0
            }
        }
        Some(AliasTarget::Franchise(f)) if world.entities[e.as_usize()].franchise == Some(f) => {
            0.25
        }
        Some(AliasTarget::Concept(c)) if world.entities[e.as_usize()].concepts.contains(&c) => 0.05,
        _ => 0.0,
    }
}

fn franchise_affinity(f: FranchiseId, page: &Page, world: &World) -> f64 {
    match page.target {
        Some(AliasTarget::Franchise(pf)) if pf == f => 1.0,
        Some(AliasTarget::Entity(e)) if world.entities[e.as_usize()].franchise == Some(f) => {
            match page.kind {
                // Hypernym browsers sample across member pages.
                PageKind::Official | PageKind::Wiki => 0.55,
                PageKind::Aspect(_) => 0.15,
                _ => 0.35,
            }
        }
        _ => 0.0,
    }
}

fn aspect_affinity(e: EntityId, a: AspectKind, page: &Page) -> f64 {
    match (page.target, page.kind) {
        (Some(AliasTarget::Entity(pe)), PageKind::Aspect(pa)) if pe == e && pa == a => 1.0,
        (Some(AliasTarget::Entity(pe)), PageKind::Aspect(_)) if pe == e => 0.1,
        (Some(AliasTarget::Entity(pe)), kind) if pe == e => match kind {
            // The generic pages answer the aspect need only weakly —
            // this is what pushes aspect clicks *outside* the surrogate
            // intersection (paper Fig. 1c).
            PageKind::Official | PageKind::Wiki => 0.3,
            // A review/price aspect is answered by review/shop pages.
            PageKind::Review if a == AspectKind::Review => 0.9,
            PageKind::Shop if a == AspectKind::Price => 0.9,
            PageKind::Review | PageKind::Shop => 0.15,
            _ => 0.1,
        },
        _ => 0.0,
    }
}

fn concept_affinity(c: ConceptId, page: &Page, world: &World) -> f64 {
    match page.target {
        Some(AliasTarget::Concept(pc)) if pc == c => 1.0,
        Some(AliasTarget::Entity(e)) if world.entities[e.as_usize()].concepts.contains(&c) => 0.12,
        _ => 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WorldConfig;
    use crate::world::World;

    fn small_world() -> World {
        World::build(&WorldConfig::small_movies(20, 3))
    }

    fn page_of(world: &World, e: EntityId, kind: PageKind) -> Option<&Page> {
        world
            .pages
            .iter()
            .find(|p| p.target == Some(AliasTarget::Entity(e)) && p.kind == kind)
    }

    #[test]
    fn own_official_page_is_most_relevant() {
        let w = small_world();
        let e = w.entities[0].id;
        let official = page_of(&w, e, PageKind::Official).expect("official page");
        assert_eq!(affinity(Intent::Entity(e), official, &w), 1.0);
        // Another entity's official page is (near) irrelevant.
        let other = w.entities[10].id;
        let other_page = page_of(&w, other, PageKind::Official).expect("other page");
        assert!(affinity(Intent::Entity(e), other_page, &w) <= 0.08);
    }

    #[test]
    fn franchise_intent_spreads_over_members() {
        let w = small_world();
        let Some(f) = w.franchises.first() else {
            return;
        };
        let hub = w
            .pages
            .iter()
            .find(|p| p.target == Some(AliasTarget::Franchise(f.id)))
            .expect("hub");
        assert_eq!(affinity(Intent::Franchise(f.id), hub, &w), 1.0);
        for &m in &f.members {
            if let Some(p) = page_of(&w, m, PageKind::Official) {
                let a = affinity(Intent::Franchise(f.id), p, &w);
                assert!(a > 0.0 && a < 1.0, "member affinity {a}");
            }
        }
    }

    #[test]
    fn aspect_intent_peaks_on_aspect_page() {
        let w = small_world();
        let e = w.entities[0].id;
        let aspect_page = w
            .pages
            .iter()
            .find(|p| {
                p.target == Some(AliasTarget::Entity(e))
                    && matches!(p.kind, PageKind::Aspect(AspectKind::Trailer))
            })
            .expect("trailer page for head entity");
        let a_peak = affinity(Intent::Aspect(e, AspectKind::Trailer), aspect_page, &w);
        assert_eq!(a_peak, 1.0);
        let official = page_of(&w, e, PageKind::Official).unwrap();
        let a_general = affinity(Intent::Aspect(e, AspectKind::Trailer), official, &w);
        assert!(a_general < a_peak && a_general > 0.0);
    }

    #[test]
    fn concept_intent_peaks_on_hub() {
        let w = small_world();
        let Some(c) = w.concepts.iter().find(|c| !c.members.is_empty()) else {
            return;
        };
        let hub = w
            .pages
            .iter()
            .find(|p| p.target == Some(AliasTarget::Concept(c.id)))
            .expect("concept hub");
        assert_eq!(affinity(Intent::Concept(c.id), hub, &w), 1.0);
        let member = c.members[0];
        if let Some(p) = page_of(&w, member, PageKind::Official) {
            let a = affinity(Intent::Concept(c.id), p, &w);
            assert!(a > 0.0 && a < 0.3);
        }
    }

    #[test]
    fn noise_pages_are_irrelevant_to_everything() {
        let w = small_world();
        let noise = w
            .pages
            .iter()
            .find(|p| p.kind == PageKind::Noise)
            .expect("noise page");
        let e = w.entities[0].id;
        assert_eq!(affinity(Intent::Entity(e), noise, &w), 0.0);
        if let Some(f) = w.franchises.first() {
            assert_eq!(affinity(Intent::Franchise(f.id), noise, &w), 0.0);
        }
    }

    #[test]
    fn affinities_bounded() {
        let w = small_world();
        let e = w.entities[0].id;
        for p in &w.pages {
            for intent in [Intent::Entity(e), Intent::Aspect(e, AspectKind::Trailer)] {
                let a = affinity(intent, p, &w);
                assert!((0.0..=1.0).contains(&a));
            }
        }
    }
}
