//! The D2 dataset builder: a synthetic stand-in for "a collection of
//! 882 canonical camera names crawled from MSN Shopping".
//!
//! Structural properties matched to the real list:
//! - names follow a Brand + Line + Model grammar ("Canon EOS 350D"),
//!   so the tail token is a productive synonym ("350d");
//! - brand+line prefixes are hypernym strings covering many models;
//! - a minority of models carry an unrelated *marketing name*
//!   ("Digital Rebel XT") — the class of synonym that defeats every
//!   string-similarity method;
//! - the catalog is long-tailed: most models receive little query
//!   traffic, which is exactly the regime where the Wikipedia baseline
//!   collapses in the paper's Table I.

use crate::alias::AliasSource;
use crate::catalog::{Catalog, PlantedAlias, MARKETING_FIRST, MARKETING_SECOND, MARKETING_SUFFIX};
use crate::entity::{Concept, ConceptId, ConceptKind, Domain, Entity, Franchise, FranchiseId};
use rand::Rng;
use websyn_common::{EntityId, SeedSequence};
use websyn_text::normalize;

/// Camera brands and their product lines. Brand names are real-world
/// manufacturer names (factual identifiers, like the paper's own
/// examples); model numbers and marketing names are synthetic.
const BRANDS: &[(&str, &[&str])] = &[
    ("Canon", &["EOS", "PowerShot"]),
    ("Nikon", &["Coolpix", "D"]),
    ("Sony", &["Cyber-shot", "Alpha"]),
    ("Olympus", &["Stylus", "Evolt"]),
    ("Panasonic", &["Lumix"]),
    ("Fujifilm", &["FinePix"]),
    ("Pentax", &["Optio", "K"]),
    ("Kodak", &["EasyShare"]),
    ("Casio", &["Exilim"]),
    ("Samsung", &["Digimax"]),
];

/// Fraction of cameras that get a marketing alias.
const MARKETING_FRACTION: f64 = 0.18;

/// Builds the camera catalog with `n` entities (the paper uses 882).
pub fn build(n: usize, seq: &SeedSequence) -> Catalog {
    let mut rng = seq.rng("cameras.catalog");
    let mut catalog = Catalog::default();

    // Brands are concepts ("canon" alone is related, not a synonym);
    // brand+line pairs are franchises ("canon eos" is a hypernym).
    for (i, (brand, _)) in BRANDS.iter().enumerate() {
        catalog.concepts.push(Concept {
            id: ConceptId(i as u32),
            name: normalize(brand),
            kind: ConceptKind::Brand,
            members: Vec::new(),
        });
    }
    let mut line_franchise: Vec<Vec<FranchiseId>> = Vec::with_capacity(BRANDS.len());
    for (brand, lines) in BRANDS {
        let mut per_line = Vec::with_capacity(lines.len());
        for line in *lines {
            let fid = FranchiseId(catalog.franchises.len() as u32);
            catalog.franchises.push(Franchise {
                id: fid,
                name: normalize(&format!("{brand} {line}")),
                // Users shorten "canon eos" to "eos" etc. when the line
                // name is distinctive (length >= 3 letters).
                nickname: (line.len() >= 3).then(|| normalize(line)),
                members: Vec::new(),
            });
            per_line.push(fid);
        }
        line_franchise.push(per_line);
    }

    let mut used_models = std::collections::HashSet::new();
    let mut used_marketing = std::collections::HashSet::new();

    for rank in 0..n {
        let id = EntityId::from_usize(rank);
        // Brand choice is Zipf-ish: earlier brands are bigger, matching
        // real market structure.
        let brand_idx = weighted_brand(&mut rng);
        let (brand, lines) = BRANDS[brand_idx];
        let line_idx = rng.gen_range(0..lines.len());
        let line = lines[line_idx];
        let fid = line_franchise[brand_idx][line_idx];

        let model = unique_model(&mut rng, line, &mut used_models);
        let canonical = format!("{brand} {line} {model}");

        catalog.franchises[fid.as_usize()].members.push(id);
        catalog.concepts[brand_idx].members.push(id);

        // Marketing alias for a minority of models.
        if rng.gen_bool(MARKETING_FRACTION) {
            if let Some(name) = unique_marketing(&mut rng, &mut used_marketing) {
                catalog.planted.push(PlantedAlias {
                    entity: id,
                    text: name,
                    source: AliasSource::Marketing,
                    // Marketing names are pushed hard by retailers; for
                    // the models that have one it rivals the model
                    // number as the preferred surface.
                    weight: 2.0,
                });
            }
        }

        catalog.entities.push(Entity {
            id,
            canonical_norm: normalize(&canonical),
            canonical,
            domain: Domain::Cameras,
            rank,
            franchise: Some(fid),
            concepts: vec![ConceptId(brand_idx as u32)],
        });
    }

    debug_assert!(catalog.check_invariants().is_ok());
    catalog
}

/// Zipf-flavoured brand choice: P(brand i) ∝ 1/(i+1).
fn weighted_brand<R: Rng>(rng: &mut R) -> usize {
    let weights: Vec<f64> = (0..BRANDS.len()).map(|i| 1.0 / (i as f64 + 1.0)).collect();
    let total: f64 = weights.iter().sum();
    let mut u = rng.gen_range(0.0..total);
    for (i, w) in weights.iter().enumerate() {
        if u < *w {
            return i;
        }
        u -= w;
    }
    BRANDS.len() - 1
}

/// A model designation unique across the whole catalog, e.g. "A560",
/// "SD1000", "350D", "W120". Uniqueness is global (not per line) so the
/// tail-token synonym "350d" is unambiguous, as it is in practice.
fn unique_model<R: Rng>(
    rng: &mut R,
    line: &str,
    used: &mut std::collections::HashSet<String>,
) -> String {
    const LETTERS: &[u8] = b"ADFGKLPSTWXZ";
    for _ in 0..4096 {
        let style = rng.gen_range(0..4);
        let candidate = match style {
            // A560 — letter + 3 digits
            0 => format!(
                "{}{}",
                LETTERS[rng.gen_range(0..LETTERS.len())] as char,
                rng.gen_range(100..1000)
            ),
            // SD1000 — two letters + 3-4 digits
            1 => format!(
                "{}{}{}",
                LETTERS[rng.gen_range(0..LETTERS.len())] as char,
                LETTERS[rng.gen_range(0..LETTERS.len())] as char,
                rng.gen_range(100..10_000)
            ),
            // 350D — 3 digits + letter
            2 => format!(
                "{}{}",
                rng.gen_range(100..1000),
                LETTERS[rng.gen_range(0..LETTERS.len())] as char
            ),
            // W120 — letter + 2-3 digits (single-letter lines get
            // slightly longer numbers to stay distinctive)
            _ => format!(
                "{}{}",
                LETTERS[rng.gen_range(0..LETTERS.len())] as char,
                rng.gen_range(10..300)
            ),
        };
        // Avoid a model id equal to its line name (e.g. line "D").
        if candidate.eq_ignore_ascii_case(line) {
            continue;
        }
        if used.insert(normalize(&candidate)) {
            return candidate;
        }
    }
    unreachable!("model space exhausted — increase digit ranges");
}

/// A marketing name unique across the catalog, e.g. "digital rebel xt".
fn unique_marketing<R: Rng>(
    rng: &mut R,
    used: &mut std::collections::HashSet<String>,
) -> Option<String> {
    for _ in 0..64 {
        let first = MARKETING_FIRST[rng.gen_range(0..MARKETING_FIRST.len())];
        let second = MARKETING_SECOND[rng.gen_range(0..MARKETING_SECOND.len())];
        let candidate = if rng.gen_bool(0.5) {
            format!(
                "{first} {second} {}",
                MARKETING_SUFFIX[rng.gen_range(0..MARKETING_SUFFIX.len())]
            )
        } else {
            format!("{first} {second}")
        };
        if used.insert(candidate.clone()) {
            return Some(candidate);
        }
    }
    // Marketing-name space exhausted: rare, and acceptable — the model
    // simply goes without one (the paper's cameras mostly have none).
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn catalog882() -> Catalog {
        build(882, &SeedSequence::new(42))
    }

    #[test]
    fn builds_requested_count() {
        let c = catalog882();
        assert_eq!(c.entities.len(), 882);
        c.check_invariants().expect("invariants");
    }

    #[test]
    fn deterministic() {
        let a = build(200, &SeedSequence::new(9));
        let b = build(200, &SeedSequence::new(9));
        assert_eq!(a.entities, b.entities);
        assert_eq!(a.planted, b.planted);
    }

    #[test]
    fn canonical_names_unique() {
        let c = catalog882();
        let set: std::collections::HashSet<_> =
            c.entities.iter().map(|e| &e.canonical_norm).collect();
        assert_eq!(set.len(), 882);
    }

    #[test]
    fn every_camera_in_a_line_franchise() {
        let c = catalog882();
        for e in &c.entities {
            assert!(e.franchise.is_some());
            assert_eq!(e.concepts.len(), 1, "exactly one brand concept");
        }
    }

    #[test]
    fn marketing_fraction_plausible() {
        let c = catalog882();
        let m = c
            .planted
            .iter()
            .filter(|p| p.source == AliasSource::Marketing)
            .count();
        let frac = m as f64 / 882.0;
        assert!(
            (0.10..=0.25).contains(&frac),
            "marketing fraction {frac} (count {m})"
        );
    }

    #[test]
    fn marketing_names_unique_and_normalized() {
        let c = catalog882();
        let mut seen = std::collections::HashSet::new();
        for p in &c.planted {
            assert_eq!(normalize(&p.text), p.text);
            assert!(seen.insert(&p.text), "duplicate marketing name {}", p.text);
        }
    }

    #[test]
    fn model_tail_tokens_unique() {
        // The final token of each canonical name (the model id) must be
        // globally unique — that is what makes "350d" a true synonym.
        let c = catalog882();
        let mut seen = std::collections::HashSet::new();
        for e in &c.entities {
            let tail = e.canonical_norm.split(' ').next_back().unwrap().to_string();
            assert!(seen.insert(tail.clone()), "duplicate model tail {tail}");
        }
    }

    #[test]
    fn brand_distribution_is_head_heavy() {
        let c = catalog882();
        let canon = c.concepts[0].members.len();
        let samsung = c.concepts[BRANDS.len() - 1].members.len();
        assert!(
            canon > samsung,
            "canon {canon} should out-sell samsung {samsung}"
        );
    }

    #[test]
    fn small_catalog() {
        let c = build(10, &SeedSequence::new(3));
        assert_eq!(c.entities.len(), 10);
        c.check_invariants().expect("invariants");
    }
}
