//! World statistics: a compact structural summary of a built world,
//! used by examples, experiment logs and the full-scale integration
//! tests that pin the generator's distributional properties.

use crate::alias::{AliasSource, Relation};
use crate::world::World;
use std::fmt;

/// Structural summary of a [`World`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorldReport {
    /// Number of entities.
    pub entities: usize,
    /// Number of franchises with at least one member.
    pub franchises: usize,
    /// Number of concepts with at least one member.
    pub concepts: usize,
    /// Number of pages.
    pub pages: usize,
    /// Alias surfaces by relation.
    pub synonyms: usize,
    /// Hypernym surfaces.
    pub hypernyms: usize,
    /// Hyponym (aspect) surfaces.
    pub hyponyms: usize,
    /// Related (concept) surfaces.
    pub related: usize,
    /// Planted semantic synonyms (nicknames + marketing names).
    pub semantic_synonyms: usize,
    /// Surfaces dropped as cross-entity ambiguous.
    pub ambiguous_dropped: usize,
    /// Entity surfaces shadowed by broader readings.
    pub shadowed: usize,
}

impl WorldReport {
    /// Computes the summary.
    pub fn of(world: &World) -> Self {
        let mut synonyms = 0;
        let mut hypernyms = 0;
        let mut hyponyms = 0;
        let mut related = 0;
        let mut semantic = 0;
        for alias in world.aliases.iter() {
            match alias.relation {
                Relation::Synonym => synonyms += 1,
                Relation::Hypernym => hypernyms += 1,
                Relation::Hyponym => hyponyms += 1,
                Relation::Related => related += 1,
            }
            if matches!(alias.source, AliasSource::Nickname | AliasSource::Marketing) {
                semantic += 1;
            }
        }
        Self {
            entities: world.entities.len(),
            franchises: world
                .franchises
                .iter()
                .filter(|f| !f.members.is_empty())
                .count(),
            concepts: world
                .concepts
                .iter()
                .filter(|c| !c.members.is_empty())
                .count(),
            pages: world.pages.len(),
            synonyms,
            hypernyms,
            hyponyms,
            related,
            semantic_synonyms: semantic,
            ambiguous_dropped: world.aliases.ambiguous_dropped(),
            shadowed: world.aliases.shadowed(),
        }
    }

    /// Mean synonym surfaces per entity (canonical included).
    pub fn synonyms_per_entity(&self) -> f64 {
        if self.entities == 0 {
            0.0
        } else {
            self.synonyms as f64 / self.entities as f64
        }
    }

    /// Mean pages per entity (hub/concept/noise pages included).
    pub fn pages_per_entity(&self) -> f64 {
        if self.entities == 0 {
            0.0
        } else {
            self.pages as f64 / self.entities as f64
        }
    }
}

impl fmt::Display for WorldReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "entities={} franchises={} concepts={} pages={} | surfaces: syn={} hyper={} \
             hypo={} related={} (semantic={}) | dropped: ambiguous={} shadowed={}",
            self.entities,
            self.franchises,
            self.concepts,
            self.pages,
            self.synonyms,
            self.hypernyms,
            self.hyponyms,
            self.related,
            self.semantic_synonyms,
            self.ambiguous_dropped,
            self.shadowed,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WorldConfig;

    #[test]
    fn report_adds_up() {
        let world = World::build(&WorldConfig::small_movies(30, 5));
        let r = WorldReport::of(&world);
        assert_eq!(r.entities, 30);
        assert_eq!(
            r.synonyms + r.hypernyms + r.hyponyms + r.related,
            world.aliases.len()
        );
        assert!(r.synonyms >= 30, "at least the canonicals");
        assert!(r.pages_per_entity() > 3.0);
        assert!(r.synonyms_per_entity() >= 1.0);
    }

    #[test]
    fn display_is_informative() {
        let world = World::build(&WorldConfig::small_movies(10, 6));
        let text = WorldReport::of(&world).to_string();
        assert!(text.contains("entities=10"));
        assert!(text.contains("syn="));
    }

    #[test]
    fn empty_denominators_are_safe() {
        let r = WorldReport {
            entities: 0,
            franchises: 0,
            concepts: 0,
            pages: 0,
            synonyms: 0,
            hypernyms: 0,
            hyponyms: 0,
            related: 0,
            semantic_synonyms: 0,
            ambiguous_dropped: 0,
            shadowed: 0,
        };
        assert_eq!(r.synonyms_per_entity(), 0.0);
        assert_eq!(r.pages_per_entity(), 0.0);
    }
}
