//! Entities, franchises and concepts.
//!
//! An [`Entity`] is a row of structured data (one movie, one camera).
//! A [`Franchise`] is a broader grouping whose name acts as a *hypernym*
//! string ("indiana jones" covers several movies; "canon eos" covers
//! several cameras). A [`Concept`] is an associated-but-different thing
//! (an actor, a brand) whose name is *related* to its member entities
//! without referring to them — the paper's Figure 1(d) case.

use serde::{Deserialize, Serialize};
use std::fmt;
use websyn_common::EntityId;

/// The structured-data domain an entity lives in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Domain {
    /// Movie titles (the paper's D1: top-100 2008 box office).
    Movies,
    /// Digital camera names (the paper's D2: 882 MSN Shopping cameras).
    Cameras,
}

impl fmt::Display for Domain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Domain::Movies => f.write_str("movies"),
            Domain::Cameras => f.write_str("cameras"),
        }
    }
}

/// Identifier of a franchise (movie series / camera product line).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct FranchiseId(pub u32);

impl FranchiseId {
    /// The id as a dense index.
    pub const fn as_usize(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for FranchiseId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// Identifier of a concept (actor, brand, genre).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct ConceptId(pub u32);

impl ConceptId {
    /// The id as a dense index.
    pub const fn as_usize(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ConceptId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// What kind of associated concept this is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ConceptKind {
    /// A person appearing in member movies ("harrison ford").
    Actor,
    /// A manufacturer of member cameras ("canon").
    Brand,
}

/// One structured-data entity.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Entity {
    /// Dense id; also the index into `World::entities`.
    pub id: EntityId,
    /// The canonical (content-creator) name, in raw display form,
    /// e.g. `"Madagascar: Escape 2 Africa"`.
    pub canonical: String,
    /// The canonical name normalized (the matching surface).
    pub canonical_norm: String,
    /// Domain of the entity.
    pub domain: Domain,
    /// Popularity rank, 0 = most popular. Drives the Zipf intent
    /// sampler and the popularity gating of the Wikipedia baseline.
    pub rank: usize,
    /// Franchise membership, if any.
    pub franchise: Option<FranchiseId>,
    /// Associated concepts (actors / brand).
    pub concepts: Vec<ConceptId>,
}

/// A franchise: a set of entities sharing a series/line name.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Franchise {
    /// Dense id; index into `World::franchises`.
    pub id: FranchiseId,
    /// Normalized franchise name, e.g. `"indiana jones"`.
    pub name: String,
    /// Popular short nickname, if one exists, e.g. `"indy"`.
    pub nickname: Option<String>,
    /// Member entities, in episode order.
    pub members: Vec<EntityId>,
}

/// A related concept: actor or brand.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Concept {
    /// Dense id; index into `World::concepts`.
    pub id: ConceptId,
    /// Normalized concept name, e.g. `"harrison ford"`.
    pub name: String,
    /// Concept kind.
    pub kind: ConceptKind,
    /// Entities this concept is associated with.
    pub members: Vec<EntityId>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(Domain::Movies.to_string(), "movies");
        assert_eq!(Domain::Cameras.to_string(), "cameras");
        assert_eq!(FranchiseId(3).to_string(), "f3");
        assert_eq!(ConceptId(9).to_string(), "c9");
    }

    #[test]
    fn ids_index_densely() {
        assert_eq!(FranchiseId(4).as_usize(), 4);
        assert_eq!(ConceptId(7).as_usize(), 7);
    }

    #[test]
    fn entity_construction() {
        let e = Entity {
            id: EntityId::new(0),
            canonical: "Madagascar: Escape 2 Africa".into(),
            canonical_norm: "madagascar escape 2 africa".into(),
            domain: Domain::Movies,
            rank: 3,
            franchise: Some(FranchiseId(1)),
            concepts: vec![ConceptId(0)],
        };
        assert_eq!(e.id.raw(), 0);
        assert_eq!(e.franchise, Some(FranchiseId(1)));
    }
}
