//! The query stream generator: the synthetic stand-in for "query logs
//! from Bing Search (July to November 2008)".
//!
//! Users pick an intent (entity lookup / franchise browse / aspect /
//! concept), pick a surface for it by popularity weight, and sometimes
//! mistype it. The output is a stream of [`QueryEvent`]s that the click
//! substrate replays against the search engine.

use crate::alias::{AliasSource, AliasTarget, Relation};
use crate::intent::Intent;
use crate::truth::TruthEntry;
use crate::world::World;
use rand::Rng;
use websyn_common::{EntityId, Zipf};
use websyn_text::TypoModel;

/// One issued query with its (hidden) intent.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryEvent {
    /// The query text as typed (normalized; possibly misspelled).
    pub text: String,
    /// What the user wanted. Hidden from the mining algorithm; used by
    /// the click model and by evaluation.
    pub intent: Intent,
}

/// Mixture weights over intent types (need not sum to 1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IntentMix {
    /// Specific-entity lookups (the bulk of navigational traffic).
    pub entity: f64,
    /// Franchise/line browsing (hypernym queries).
    pub franchise: f64,
    /// Aspect lookups (hyponym queries).
    pub aspect: f64,
    /// Concept lookups (related queries).
    pub concept: f64,
}

impl Default for IntentMix {
    fn default() -> Self {
        Self {
            entity: 0.70,
            franchise: 0.10,
            aspect: 0.12,
            concept: 0.08,
        }
    }
}

/// Configuration of the query stream.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryStreamConfig {
    /// Number of query events to generate.
    pub n_events: usize,
    /// Intent mixture.
    pub mix: IntentMix,
    /// Typo channel.
    pub typo: TypoModel,
}

impl Default for QueryStreamConfig {
    fn default() -> Self {
        Self {
            n_events: 100_000,
            mix: IntentMix::default(),
            typo: TypoModel::default(),
        }
    }
}

impl QueryStreamConfig {
    /// A stream sized for quick tests.
    pub fn small(n_events: usize) -> Self {
        Self {
            n_events,
            ..Default::default()
        }
    }
}

/// Precomputed sampling tables for one world.
struct SamplingTables {
    /// Per entity: (synonym surface texts, cumulative weights).
    entity_surfaces: Vec<WeightedSurfaces>,
    /// Per entity: aspect surface texts.
    aspect_surfaces: Vec<Vec<String>>,
    /// Per franchise: (surface texts, cumulative weights).
    franchise_surfaces: Vec<WeightedSurfaces>,
    /// Per concept: name (empty when the concept has no members).
    concept_surfaces: Vec<Option<String>>,
}

struct WeightedSurfaces {
    texts: Vec<String>,
    cumulative: Vec<f64>,
}

impl WeightedSurfaces {
    fn build(items: impl Iterator<Item = (String, f64)>) -> Self {
        let mut texts = Vec::new();
        let mut cumulative = Vec::new();
        let mut acc = 0.0;
        for (text, weight) in items {
            debug_assert!(weight.is_finite() && weight >= 0.0);
            acc += weight;
            texts.push(text);
            cumulative.push(acc);
        }
        Self { texts, cumulative }
    }

    #[cfg(test)]
    fn is_empty(&self) -> bool {
        self.texts.is_empty()
    }

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&str> {
        let &total = self.cumulative.last()?;
        if total <= 0.0 {
            return None;
        }
        let u = rng.gen_range(0.0..total);
        let idx = self.cumulative.partition_point(|&c| c <= u);
        self.texts
            .get(idx.min(self.texts.len() - 1))
            .map(|s| s.as_str())
    }
}

fn build_tables(world: &World) -> SamplingTables {
    let n = world.entities.len();
    let mut entity_surfaces = Vec::with_capacity(n);
    let mut aspect_surfaces = vec![Vec::new(); n];
    for entity in &world.entities {
        entity_surfaces.push(WeightedSurfaces::build(
            world
                .aliases
                .of_entity(entity.id)
                .filter(|a| a.relation == Relation::Synonym)
                .map(|a| (a.text.clone(), a.weight)),
        ));
        aspect_surfaces[entity.id.as_usize()] = world
            .aliases
            .of_entity(entity.id)
            .filter(|a| a.relation == Relation::Hyponym)
            .map(|a| a.text.clone())
            .collect();
    }
    let franchise_surfaces = world
        .franchises
        .iter()
        .map(|f| {
            WeightedSurfaces::build(
                world
                    .aliases
                    .iter()
                    .filter(|a| a.target == AliasTarget::Franchise(f.id))
                    .map(|a| (a.text.clone(), a.weight)),
            )
        })
        .collect();
    let concept_surfaces = world
        .concepts
        .iter()
        .map(|c| {
            (!c.members.is_empty() && world.aliases.get(&c.name).is_some()).then(|| c.name.clone())
        })
        .collect();
    SamplingTables {
        entity_surfaces,
        aspect_surfaces,
        franchise_surfaces,
        concept_surfaces,
    }
}

/// Generates the query stream for `world`.
///
/// Misspelled surfaces minted by the typo channel are registered in
/// `world.truth` with their source surface's target (a misspelling of a
/// synonym is still a synonym — the intent is what defines the truth).
pub fn generate(world: &mut World, config: &QueryStreamConfig) -> Vec<QueryEvent> {
    let tables = build_tables(world);
    let mut rng = world.seq().rng("queries.stream");
    let zipf =
        Zipf::new(world.entities.len(), world.config.entity_zipf).expect("world has >= 1 entity");

    let mix = config.mix;
    let mix_total = mix.entity + mix.franchise + mix.aspect + mix.concept;
    assert!(
        mix_total > 0.0 && mix_total.is_finite(),
        "intent mix must have positive total weight"
    );

    // Per-surface misspelling pools: real typo distributions are
    // heavy-tailed (the same few misspellings recur), so each surface
    // gets at most `misspelling_pool` distinct corruptions, minted
    // lazily and then reused.
    let pool_cap = world.config.misspelling_pool.max(1);
    let mut typo_pools: websyn_common::FxHashMap<String, Vec<Option<String>>> =
        websyn_common::FxHashMap::default();

    let mut events = Vec::with_capacity(config.n_events);
    while events.len() < config.n_events {
        // Pick an intent type.
        let u = rng.gen_range(0.0..mix_total);
        // Pick the target entity first: franchise/aspect/concept intents
        // are all anchored on an entity draw so that *their* popularity
        // follows entity popularity too.
        let entity_rank = zipf.sample(&mut rng);
        let entity = &world.entities[entity_rank];
        let eid = entity.id;

        let (intent, surface) = if u < mix.entity {
            let Some(s) = tables.entity_surfaces[eid.as_usize()].sample(&mut rng) else {
                continue;
            };
            (Intent::Entity(eid), s.to_string())
        } else if u < mix.entity + mix.franchise {
            let Some(f) = entity.franchise else { continue };
            let Some(s) = tables.franchise_surfaces[f.as_usize()].sample(&mut rng) else {
                continue;
            };
            (Intent::Franchise(f), s.to_string())
        } else if u < mix.entity + mix.franchise + mix.aspect {
            let aspects = &tables.aspect_surfaces[eid.as_usize()];
            if aspects.is_empty() {
                continue;
            }
            let s = &aspects[rng.gen_range(0..aspects.len())];
            // Recover which aspect this surface encodes.
            let Some(TruthEntry {
                source: AliasSource::Aspect(kind),
                ..
            }) = world.truth.lookup(s).copied()
            else {
                continue;
            };
            (Intent::Aspect(eid, kind), s.clone())
        } else {
            if entity.concepts.is_empty() {
                continue;
            }
            let c = entity.concepts[rng.gen_range(0..entity.concepts.len())];
            let Some(Some(s)) = tables.concept_surfaces.get(c.as_usize()) else {
                continue;
            };
            (Intent::Concept(c), s.clone())
        };

        // Typo channel: with the configured rate, replace the surface
        // by one of its pooled misspellings (minting it on first use).
        let text = match world.truth.lookup(&surface).copied() {
            Some(entry) if rng.gen_bool(config.typo.query_error_rate.clamp(0.0, 1.0)) => {
                let slot = rng.gen_range(0..pool_cap);
                let pool = typo_pools
                    .entry(surface.clone())
                    .or_insert_with(|| vec![None; pool_cap]);
                match &pool[slot] {
                    Some(existing) => existing.clone(),
                    None => {
                        let minted =
                            config
                                .typo
                                .apply_one(&surface, &mut rng)
                                .and_then(|corrupted| {
                                    let misspelt = TruthEntry {
                                        target: entry.target,
                                        relation: entry.relation,
                                        source: AliasSource::Misspelling,
                                    };
                                    // Refuse corruptions that collide with a
                                    // surface meaning something else.
                                    world
                                        .truth
                                        .register(&corrupted, misspelt)
                                        .then_some(corrupted)
                                });
                        // Failed mints pin the slot to the clean surface
                        // so the collision is never retried.
                        let text = minted.unwrap_or_else(|| surface.clone());
                        pool[slot] = Some(text.clone());
                        text
                    }
                }
            }
            _ => surface,
        };

        events.push(QueryEvent { text, intent });
    }
    events
}

/// Convenience: the number of distinct query strings in a stream.
pub fn distinct_queries(events: &[QueryEvent]) -> usize {
    let set: websyn_common::FxHashSet<&str> = events.iter().map(|e| e.text.as_str()).collect();
    set.len()
}

/// Convenience: total events whose intent is a specific entity.
pub fn entity_event_count(events: &[QueryEvent], e: EntityId) -> usize {
    events
        .iter()
        .filter(|ev| ev.intent == Intent::Entity(e))
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WorldConfig;

    fn world() -> World {
        World::build(&WorldConfig::small_movies(30, 13))
    }

    fn stream(n: usize) -> (World, Vec<QueryEvent>) {
        let mut w = world();
        let events = generate(&mut w, &QueryStreamConfig::small(n));
        (w, events)
    }

    #[test]
    fn generates_requested_count() {
        let (_, events) = stream(5_000);
        assert_eq!(events.len(), 5_000);
    }

    #[test]
    fn deterministic() {
        let (_, a) = stream(2_000);
        let (_, b) = stream(2_000);
        assert_eq!(a, b);
    }

    #[test]
    fn intent_mix_is_respected() {
        let (_, events) = stream(20_000);
        let entity = events
            .iter()
            .filter(|e| matches!(e.intent, Intent::Entity(_)))
            .count() as f64;
        let franchise = events
            .iter()
            .filter(|e| matches!(e.intent, Intent::Franchise(_)))
            .count() as f64;
        let total = events.len() as f64;
        // Entity lookups dominate; exact shares drift because intents
        // that cannot be served (standalone movie & franchise intent)
        // are resampled.
        assert!(entity / total > 0.6, "entity share {}", entity / total);
        assert!(
            franchise / total > 0.02,
            "franchise share {}",
            franchise / total
        );
        assert!(franchise < entity);
    }

    #[test]
    fn popularity_is_head_heavy() {
        let (w, events) = stream(20_000);
        let head = entity_event_count(&events, w.entities[0].id);
        let tail = entity_event_count(&events, w.entities[w.entities.len() - 1].id);
        assert!(head > tail, "head {head} tail {tail}");
    }

    #[test]
    fn every_query_text_is_known_to_truth() {
        let (w, events) = stream(10_000);
        for ev in &events {
            assert!(
                w.truth.lookup(&ev.text).is_some(),
                "query {:?} unknown to oracle",
                ev.text
            );
        }
    }

    #[test]
    fn misspellings_are_registered_as_synonyms_of_intent() {
        let (w, events) = stream(20_000);
        let misspelt: Vec<&QueryEvent> = events
            .iter()
            .filter(|ev| {
                matches!(
                    w.truth.lookup(&ev.text),
                    Some(TruthEntry {
                        source: AliasSource::Misspelling,
                        ..
                    })
                )
            })
            .collect();
        assert!(
            !misspelt.is_empty(),
            "typo channel produced no misspellings in 20k events"
        );
        for ev in misspelt {
            if let Intent::Entity(e) = ev.intent {
                assert!(
                    w.truth.is_true_synonym(&ev.text, e)
                        || w.truth.lookup(&ev.text).unwrap().relation != Relation::Synonym,
                    "misspelling {:?} lost its entity",
                    ev.text
                );
            }
        }
    }

    #[test]
    fn entity_queries_use_entity_synonym_surfaces() {
        let (w, events) = stream(5_000);
        for ev in events.iter().take(500) {
            if let Intent::Entity(e) = ev.intent {
                let entry = w.truth.lookup(&ev.text).unwrap();
                assert_eq!(entry.target, AliasTarget::Entity(e));
                assert_eq!(entry.relation, Relation::Synonym);
            }
        }
    }

    #[test]
    fn weighted_surfaces_sampler() {
        let mut rng = websyn_common::SeedSequence::new(3).rng("ws");
        let ws = WeightedSurfaces::build(
            vec![("a".to_string(), 9.0), ("b".to_string(), 1.0)].into_iter(),
        );
        let mut a_count = 0;
        for _ in 0..1000 {
            if ws.sample(&mut rng) == Some("a") {
                a_count += 1;
            }
        }
        assert!(
            (800..=980).contains(&a_count),
            "weighted sampling off: {a_count}/1000"
        );
        let empty = WeightedSurfaces::build(std::iter::empty());
        assert!(empty.is_empty());
        assert_eq!(empty.sample(&mut rng), None);
    }

    #[test]
    fn distinct_queries_counts() {
        let (_, events) = stream(5_000);
        let d = distinct_queries(&events);
        assert!(d > 50, "too few distinct queries: {d}");
        assert!(d < events.len());
    }
}
