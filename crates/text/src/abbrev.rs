//! Systematic abbreviation transforms.
//!
//! Given a canonical (normalized, tokenized) entity name, this module
//! enumerates the *mechanical* alternative surfaces users type:
//! acronyms ("lord of the rings" → "lotr"), leading-article drops,
//! stopword drops, subtitle truncations, sequel-numeral respellings
//! ("2" ↔ "ii" ↔ "two") and head+number contractions ("madagascar
//! escape 2 africa" → "madagascar 2").
//!
//! The synthetic alias universe builds on these transforms, and the
//! test-suite uses them to check that mined synonyms recover exactly the
//! surfaces the generator planted. Semantic nicknames with no string
//! overlap ("digital rebel xt" for "canon eos 350d") are *not*
//! derivable mechanically — the synth crate plants those separately,
//! which is precisely the paper's point about substring methods being
//! "hopeless for the rest".

use crate::normalize::is_stopword;
use crate::numerals::{arabic_to_roman, arabic_to_words, roman_to_arabic, words_to_arabic};

/// The transform that produced a variant. Carried through the synth
/// world so experiments can report per-transform recall.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum AbbrevKind {
    /// First letters of content words: "lord of the rings" → "lotr".
    Acronym,
    /// Leading article removed: "the dark knight" → "dark knight".
    DropLeadingArticle,
    /// All stopwords removed: "lord of the rings" → "lord rings".
    DropStopwords,
    /// Trailing tokens truncated to a prefix: "madagascar escape 2
    /// africa" → "madagascar escape".
    Truncate,
    /// A numeral token respelled (arabic/roman/words).
    NumeralRespell,
    /// Head word + sequel numeral: "madagascar escape 2 africa" →
    /// "madagascar 2".
    HeadNumber,
    /// Last token alone (model-number style): "canon eos 350d" → "350d".
    TailToken,
}

impl AbbrevKind {
    /// All kinds, for exhaustive reporting.
    pub const ALL: [AbbrevKind; 7] = [
        AbbrevKind::Acronym,
        AbbrevKind::DropLeadingArticle,
        AbbrevKind::DropStopwords,
        AbbrevKind::Truncate,
        AbbrevKind::NumeralRespell,
        AbbrevKind::HeadNumber,
        AbbrevKind::TailToken,
    ];

    /// Stable lowercase label for reports.
    pub fn label(self) -> &'static str {
        match self {
            AbbrevKind::Acronym => "acronym",
            AbbrevKind::DropLeadingArticle => "drop-leading-article",
            AbbrevKind::DropStopwords => "drop-stopwords",
            AbbrevKind::Truncate => "truncate",
            AbbrevKind::NumeralRespell => "numeral-respell",
            AbbrevKind::HeadNumber => "head-number",
            AbbrevKind::TailToken => "tail-token",
        }
    }
}

/// A generated variant surface with its provenance.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Variant {
    /// The transform that produced this surface.
    pub kind: AbbrevKind,
    /// The variant text (normalized form).
    pub text: String,
}

/// Enumerates mechanical variants of a canonical token sequence.
///
/// Variants equal to the input surface are suppressed, as are
/// duplicates (first producer wins). Order is deterministic.
///
/// # Examples
///
/// ```
/// use websyn_text::abbrev::{variants, AbbrevKind};
///
/// let v = variants(&["lord", "of", "the", "rings"]);
/// assert!(v.iter().any(|x| x.kind == AbbrevKind::Acronym && x.text == "lotr"));
/// assert!(v.iter().any(|x| x.kind == AbbrevKind::DropStopwords && x.text == "lord rings"));
/// ```
pub fn variants(tokens: &[&str]) -> Vec<Variant> {
    let mut out: Vec<Variant> = Vec::new();
    let original = tokens.join(" ");
    let mut push = |kind: AbbrevKind, text: String| {
        if !text.is_empty() && text != original && !out.iter().any(|v| v.text == text) {
            out.push(Variant { kind, text });
        }
    };

    // Acronym: initials of ALL tokens (real acronyms keep stopword
    // initials: "lord of the rings" → "lotr"), at least 3 tokens, all
    // alphabetic (digit-initial words like "350d" make no acronym).
    let content: Vec<&str> = tokens.iter().copied().filter(|t| !is_stopword(t)).collect();
    if tokens.len() >= 3
        && tokens
            .iter()
            .all(|t| t.chars().next().is_some_and(|c| c.is_alphabetic()))
    {
        let acronym: String = tokens.iter().filter_map(|t| t.chars().next()).collect();
        push(AbbrevKind::Acronym, acronym);
    }

    // Drop a leading article.
    if tokens.len() >= 2 && matches!(tokens[0], "the" | "a" | "an") {
        push(AbbrevKind::DropLeadingArticle, tokens[1..].join(" "));
    }

    // Drop all stopwords (only if it actually removes something and
    // leaves at least one token).
    if !content.is_empty() && content.len() < tokens.len() {
        push(AbbrevKind::DropStopwords, content.join(" "));
    }

    // Truncations: prefixes of length 2 .. len-1 over content-bearing
    // boundaries; emit the two most plausible (longest and shortest ≥2)
    // to keep the variant set realistic rather than exhaustive.
    if tokens.len() >= 3 {
        push(AbbrevKind::Truncate, tokens[..tokens.len() - 1].join(" "));
        if tokens.len() >= 4 {
            push(AbbrevKind::Truncate, tokens[..2].join(" "));
        }
    }

    // Numeral respelling: every token that parses as a number in any
    // spelling produces the other spellings in place.
    for (i, tok) in tokens.iter().enumerate() {
        for alt in numeral_respellings(tok) {
            let mut toks: Vec<&str> = tokens.to_vec();
            toks[i] = alt.as_str();
            push(AbbrevKind::NumeralRespell, toks.join(" "));
        }
    }

    // Head + number: first token plus the (unique) numeral token.
    if tokens.len() >= 3 {
        let numerals: Vec<&str> = tokens[1..]
            .iter()
            .copied()
            .filter(|t| parse_any_numeral(t).is_some())
            .collect();
        if numerals.len() == 1 && !is_stopword(tokens[0]) && parse_any_numeral(tokens[0]).is_none()
        {
            push(
                AbbrevKind::HeadNumber,
                format!("{} {}", tokens[0], numerals[0]),
            );
        }
    }

    // Tail token (model-number style): last token alone, if it carries a
    // digit (e.g. "350d"), which is how people shorten product names.
    if tokens.len() >= 2 {
        let last = tokens[tokens.len() - 1];
        if last.chars().any(|c| c.is_ascii_digit()) && last.len() >= 3 {
            push(AbbrevKind::TailToken, last.to_string());
        }
    }

    out
}

/// Parses a token as a number in any supported spelling.
fn parse_any_numeral(tok: &str) -> Option<u32> {
    if let Ok(n) = tok.parse::<u32>() {
        return Some(n);
    }
    if let Some(n) = roman_to_arabic(tok) {
        return Some(n);
    }
    words_to_arabic(tok)
}

/// The alternative spellings of a numeral token (excluding itself).
///
/// Single-letter roman numerals ("i", "x") are only treated as numerals
/// when parsing *from* arabic/words, not from the bare letter — "i"
/// and "x" are too ambiguous in running text.
fn numeral_respellings(tok: &str) -> Vec<String> {
    let mut out = Vec::new();
    let n = if let Ok(n) = tok.parse::<u32>() {
        Some(n)
    } else if tok.len() >= 2 && roman_to_arabic(tok).is_some() {
        roman_to_arabic(tok)
    } else if words_to_arabic(tok).is_some() && tok.len() >= 3 {
        words_to_arabic(tok)
    } else {
        None
    };
    let Some(n) = n else {
        return out;
    };
    // Keep the sequel-plausible range small: respell 1..=20 only.
    if !(1..=20).contains(&n) {
        return out;
    }
    let arabic = n.to_string();
    if arabic != tok {
        out.push(arabic);
    }
    if let Some(r) = arabic_to_roman(n) {
        let r = r.to_ascii_lowercase();
        if r != tok && r.len() >= 2 {
            out.push(r);
        }
    }
    if let Some(w) = arabic_to_words(n) {
        if w != tok {
            out.push(w);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(tokens: &[&str]) -> Vec<String> {
        variants(tokens).into_iter().map(|v| v.text).collect()
    }

    #[test]
    fn acronym_from_content_words() {
        let v = variants(&["lord", "of", "the", "rings"]);
        assert!(v
            .iter()
            .any(|x| x.kind == AbbrevKind::Acronym && x.text == "lotr"));
    }

    #[test]
    fn acronym_needs_three_content_words() {
        let v = variants(&["dark", "knight"]);
        assert!(!v.iter().any(|x| x.kind == AbbrevKind::Acronym));
    }

    #[test]
    fn leading_article_dropped() {
        let t = texts(&["the", "dark", "knight"]);
        assert!(t.contains(&"dark knight".to_string()));
    }

    #[test]
    fn stopwords_dropped() {
        let v = variants(&["lord", "of", "the", "rings"]);
        assert!(v
            .iter()
            .any(|x| x.kind == AbbrevKind::DropStopwords && x.text == "lord rings"));
    }

    #[test]
    fn truncation_produces_prefixes() {
        let t = texts(&["madagascar", "escape", "2", "africa"]);
        assert!(t.contains(&"madagascar escape 2".to_string()));
        assert!(t.contains(&"madagascar escape".to_string()));
    }

    #[test]
    fn numeral_respellings_all_directions() {
        // arabic → roman/words
        let t = texts(&["indiana", "jones", "4"]);
        assert!(t.contains(&"indiana jones iv".to_string()), "{t:?}");
        assert!(t.contains(&"indiana jones four".to_string()));
        // roman → arabic/words
        let t = texts(&["rocky", "iv"]);
        assert!(t.contains(&"rocky 4".to_string()));
        assert!(t.contains(&"rocky four".to_string()));
        // words → arabic/roman
        let t = texts(&["ocean", "eleven"]);
        assert!(t.contains(&"ocean 11".to_string()));
    }

    #[test]
    fn single_letter_roman_not_respelled() {
        // "i" in "mission impossible i" could be a pronoun; we respell
        // only len>=2 roman tokens.
        let t = texts(&["mission", "i"]);
        assert!(!t.contains(&"mission 1".to_string()));
    }

    #[test]
    fn head_number_contraction() {
        let v = variants(&["madagascar", "escape", "2", "africa"]);
        assert!(v
            .iter()
            .any(|x| x.kind == AbbrevKind::HeadNumber && x.text == "madagascar 2"));
    }

    #[test]
    fn head_number_requires_unique_numeral() {
        // Two numerals → ambiguous → no head-number variant.
        let v = variants(&["2", "fast", "2", "furious"]);
        assert!(!v.iter().any(|x| x.kind == AbbrevKind::HeadNumber));
    }

    #[test]
    fn tail_model_number() {
        let v = variants(&["canon", "eos", "350d"]);
        assert!(v
            .iter()
            .any(|x| x.kind == AbbrevKind::TailToken && x.text == "350d"));
        // Pure word tail is not a model number.
        let v = variants(&["dark", "knight"]);
        assert!(!v.iter().any(|x| x.kind == AbbrevKind::TailToken));
    }

    #[test]
    fn no_duplicates_or_identity() {
        let tokens = ["the", "lord", "of", "the", "rings"];
        let v = variants(&tokens);
        let original = tokens.join(" ");
        let mut seen = std::collections::HashSet::new();
        for x in &v {
            assert_ne!(x.text, original);
            assert!(seen.insert(x.text.clone()), "dup {x:?}");
        }
    }

    #[test]
    fn empty_and_single_token_inputs() {
        assert!(variants(&[]).is_empty());
        assert!(variants(&["madagascar"]).is_empty());
    }

    #[test]
    fn deterministic_order() {
        let a = variants(&["indiana", "jones", "4"]);
        let b = variants(&["indiana", "jones", "4"]);
        assert_eq!(a, b);
    }

    #[test]
    fn labels_are_distinct() {
        let labels: std::collections::HashSet<_> =
            AbbrevKind::ALL.iter().map(|k| k.label()).collect();
        assert_eq!(labels.len(), AbbrevKind::ALL.len());
    }
}
