//! Edit-distance metrics.
//!
//! Used by the edit-distance baseline (a Lucene-fuzzy-style comparator
//! the paper's related work motivates), the typo channel's validation
//! tests, and candidate diagnostics. All functions operate on `char`
//! sequences (not bytes) so multi-byte text behaves correctly.

/// Levenshtein distance (insert/delete/substitute, unit costs).
///
/// Classic two-row dynamic program: O(|a|·|b|) time, O(min) space.
///
/// # Examples
///
/// ```
/// use websyn_text::levenshtein;
///
/// assert_eq!(levenshtein("kitten", "sitting"), 3);
/// assert_eq!(levenshtein("indy", "indy"), 0);
/// ```
pub fn levenshtein(a: &str, b: &str) -> usize {
    let (short, long): (Vec<char>, Vec<char>) = {
        let av: Vec<char> = a.chars().collect();
        let bv: Vec<char> = b.chars().collect();
        if av.len() <= bv.len() {
            (av, bv)
        } else {
            (bv, av)
        }
    };
    if short.is_empty() {
        return long.len();
    }
    let mut prev: Vec<usize> = (0..=short.len()).collect();
    let mut cur = vec![0usize; short.len() + 1];
    for (i, &lc) in long.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &sc) in short.iter().enumerate() {
            let sub = prev[j] + usize::from(lc != sc);
            let del = prev[j + 1] + 1;
            let ins = cur[j] + 1;
            cur[j + 1] = sub.min(del).min(ins);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[short.len()]
}

/// Levenshtein similarity normalized into `[0, 1]`:
/// `1 - distance / max_len`. Both-empty strings score 1.
pub fn normalized_levenshtein(a: &str, b: &str) -> f64 {
    let max_len = a.chars().count().max(b.chars().count());
    if max_len == 0 {
        return 1.0;
    }
    1.0 - levenshtein(a, b) as f64 / max_len as f64
}

/// Damerau–Levenshtein distance, optimal string alignment variant
/// (adjacent transposition counts 1; no substring is edited twice).
pub fn damerau_levenshtein(a: &str, b: &str) -> usize {
    let av: Vec<char> = a.chars().collect();
    let bv: Vec<char> = b.chars().collect();
    let (n, m) = (av.len(), bv.len());
    if n == 0 {
        return m;
    }
    if m == 0 {
        return n;
    }
    // Three rolling rows: i-2, i-1, i.
    let mut row0 = vec![0usize; m + 1];
    let mut row1: Vec<usize> = (0..=m).collect();
    let mut row2 = vec![0usize; m + 1];
    for i in 1..=n {
        row2[0] = i;
        for j in 1..=m {
            let cost = usize::from(av[i - 1] != bv[j - 1]);
            let mut d = (row1[j] + 1) // deletion
                .min(row2[j - 1] + 1) // insertion
                .min(row1[j - 1] + cost); // substitution
            if i > 1 && j > 1 && av[i - 1] == bv[j - 2] && av[i - 2] == bv[j - 1] {
                d = d.min(row0[j - 2] + 1); // transposition
            }
            row2[j] = d;
        }
        std::mem::swap(&mut row0, &mut row1);
        std::mem::swap(&mut row1, &mut row2);
    }
    row1[m]
}

/// Bounded Levenshtein distance: `Some(d)` iff `d ≤ k`. ASCII inputs
/// whose post-affix-stripping middle fits one machine word run the
/// bit-parallel Myers kernel (`bitpar`); everything else runs
/// a Ukkonen band of width `2k + 1` — O((2k+1)·|a|) time instead of
/// O(|a|·|b|). This is the verification workhorse of fuzzy candidate
/// checking, where `k` is small (≤ 2) and most candidates are rejected
/// early.
///
/// # Examples
///
/// ```
/// use websyn_text::{levenshtein, levenshtein_within};
///
/// assert_eq!(levenshtein_within("kitten", "sitting", 3), Some(3));
/// assert_eq!(levenshtein_within("kitten", "sitting", 2), None);
/// assert_eq!(levenshtein_within("same", "same", 0), Some(0));
/// // Length gap alone exceeds the budget: rejected without any DP.
/// assert_eq!(levenshtein_within("indy", "indiana", 2), None);
/// ```
pub fn levenshtein_within(a: &str, b: &str, k: usize) -> Option<usize> {
    banded(a, b, k, false)
}

/// Bounded Damerau–Levenshtein (OSA) distance: `Some(d)` iff `d ≤ k`,
/// dispatched like [`levenshtein_within`] (Hyyrö's transposition-aware
/// bit-parallel variant on the fast path) but counting an adjacent
/// transposition as one edit.
pub fn damerau_levenshtein_within(a: &str, b: &str, k: usize) -> Option<usize> {
    banded(a, b, k, true)
}

/// [`levenshtein_within`] pinned to the banded-DP path, bypassing the
/// bit-parallel kernel entirely. Semantically identical; kept public
/// as the reference oracle the kernel's property tests (here and in
/// the workspace suites) compare against.
pub fn levenshtein_within_ref(a: &str, b: &str, k: usize) -> Option<usize> {
    banded_ref(a, b, k, false)
}

/// [`damerau_levenshtein_within`] pinned to the banded-DP path — the
/// transposition-aware reference oracle; see
/// [`levenshtein_within_ref`].
pub fn damerau_levenshtein_within_ref(a: &str, b: &str, k: usize) -> Option<usize> {
    banded_ref(a, b, k, true)
}

/// Process-wide tallies of which verification kernel the bounded
/// dispatcher picked (the reference oracle [`levenshtein_within_ref`]
/// is deliberately uncounted — it is a test fixture, not production
/// traffic). Incremented relaxed on the hot path; read by the serving
/// layer's `/metrics` endpoint.
static BITPAR_DISPATCHES: websyn_obs::Counter = websyn_obs::Counter::new();
static BANDED_DISPATCHES: websyn_obs::Counter = websyn_obs::Counter::new();

/// Point-in-time kernel dispatch counts for this process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct KernelDispatchStats {
    /// Calls resolved by the bit-parallel Myers/Hyyrö kernel.
    pub bitpar: u64,
    /// Calls resolved by the banded DP fallback (long middles or
    /// non-ASCII text).
    pub banded: u64,
}

/// Reads the process-wide [`KernelDispatchStats`].
pub fn kernel_dispatch_stats() -> KernelDispatchStats {
    KernelDispatchStats {
        bitpar: BITPAR_DISPATCHES.get(),
        banded: BANDED_DISPATCHES.get(),
    }
}

/// Strips the common prefix and suffix: edits only live in the
/// differing middle, so both kernels shrink from O(len) to O(middle)
/// columns — on verification workloads candidate and query share
/// almost everything and the middle is a handful of symbols. (Safe for
/// the OSA variant too: a transposition never pays across a boundary
/// of equal symbols; the bounded-vs-full property tests pin this.)
fn strip_affixes<'s, T: Copy + Eq>(a: &'s [T], b: &'s [T]) -> (&'s [T], &'s [T]) {
    let mut lo = 0usize;
    while lo < a.len() && lo < b.len() && a[lo] == b[lo] {
        lo += 1;
    }
    let (mut ae, mut be) = (a.len(), b.len());
    while ae > lo && be > lo && a[ae - 1] == b[be - 1] {
        ae -= 1;
        be -= 1;
    }
    (&a[lo..ae], &b[lo..be])
}

/// Bounded-distance dispatcher. ASCII inputs (every string the
/// normalizer emits) are screened, affix-stripped and — when the
/// shorter stripped side fits the 64-symbol column word — handed to
/// the bit-parallel kernel; longer middles and non-ASCII text fall
/// back to the banded DP, whose working storage (char buffers and the
/// three rolling rows) lives in thread-local scratch so a call
/// allocates nothing once the scratch has grown.
fn banded(a: &str, b: &str, k: usize, transpositions: bool) -> Option<usize> {
    if a.is_ascii() && b.is_ascii() {
        let (ab, bb) = (a.as_bytes(), b.as_bytes());
        if ab.len().abs_diff(bb.len()) > k {
            return None;
        }
        let (sa, sb) = strip_affixes(ab, bb);
        if sa.is_empty() || sb.is_empty() {
            // The survivor is pure insertions/deletions; its length
            // equals the original length gap, already known to be ≤ k.
            return Some(sa.len().max(sb.len()));
        }
        // Both middles are non-empty and start (and end) with a
        // mismatch, so the distance is at least 1.
        if k == 0 {
            return None;
        }
        let (text, pattern) = if sa.len() >= sb.len() {
            (sa, sb)
        } else {
            (sb, sa)
        };
        if pattern.len() <= 64 {
            // The distance never exceeds the longer middle, so a larger
            // bound is equivalent — and clamping keeps the kernel's
            // score arithmetic from overflowing on huge budgets.
            BITPAR_DISPATCHES.incr();
            return crate::bitpar::within_bytes(text, pattern, k.min(text.len()), transpositions);
        }
        BANDED_DISPATCHES.incr();
        return with_dp_scratch(|_, _, row0, row1, row2| {
            banded_core(sa, sb, k, transpositions, row0, row1, row2)
        });
    }
    BANDED_DISPATCHES.incr();
    with_dp_scratch(|av, bv, row0, row1, row2| {
        av.clear();
        av.extend(a.chars());
        bv.clear();
        bv.extend(b.chars());
        banded_core(av, bv, k, transpositions, row0, row1, row2)
    })
}

/// The pre-kernel dispatcher: banded DP always, bit-parallel never —
/// the reference oracle behind [`levenshtein_within_ref`].
fn banded_ref(a: &str, b: &str, k: usize, transpositions: bool) -> Option<usize> {
    with_dp_scratch(|av, bv, row0, row1, row2| {
        // ASCII fast path: char length equals byte length, so the DP
        // runs straight over the byte slices with no char collection.
        if a.is_ascii() && b.is_ascii() {
            return banded_core(
                a.as_bytes(),
                b.as_bytes(),
                k,
                transpositions,
                row0,
                row1,
                row2,
            );
        }
        av.clear();
        av.extend(a.chars());
        bv.clear();
        bv.extend(b.chars());
        banded_core(av, bv, k, transpositions, row0, row1, row2)
    })
}

/// Thread-local working storage shared by the DP paths.
fn with_dp_scratch<R>(
    f: impl FnOnce(
        &mut Vec<char>,
        &mut Vec<char>,
        &mut Vec<usize>,
        &mut Vec<usize>,
        &mut Vec<usize>,
    ) -> R,
) -> R {
    thread_local! {
        #[allow(clippy::type_complexity)]
        static SCRATCH: std::cell::RefCell<(
            Vec<char>,
            Vec<char>,
            Vec<usize>,
            Vec<usize>,
            Vec<usize>,
        )> = const { std::cell::RefCell::new((Vec::new(), Vec::new(), Vec::new(), Vec::new(), Vec::new())) };
    }
    SCRATCH.with_borrow_mut(|(av, bv, row0, row1, row2)| f(av, bv, row0, row1, row2))
}

/// The banded DP over already-decoded symbol slices and caller-provided
/// row scratch. Works on bytes (ASCII fast path) or chars alike.
fn banded_core<T: Copy + Eq>(
    av: &[T],
    bv: &[T],
    k: usize,
    transpositions: bool,
    row0: &mut Vec<usize>,
    row1: &mut Vec<usize>,
    row2: &mut Vec<usize>,
) -> Option<usize> {
    // A sentinel "infinite" cost that survives `+ 1` without overflow.
    const INF: usize = usize::MAX / 2;
    if av.len().abs_diff(bv.len()) > k {
        return None;
    }
    let (av, bv) = strip_affixes(av, bv);
    let (n, m) = (av.len(), bv.len());
    if n == 0 || m == 0 {
        // The survivor is pure insertions/deletions; its length equals
        // the original length gap, already known to be ≤ k.
        return Some(n.max(m));
    }
    if k == 0 {
        return (av == bv).then_some(0);
    }
    // The distance can never exceed max(n, m), so a larger bound is
    // equivalent — and clamping keeps `i + k` from overflowing below.
    let k = k.min(n.max(m));
    // Rolling rows i-2 / i-1 / i, each two cells wider than `b` so the
    // band-edge guard writes below never go out of bounds.
    row0.clear();
    row0.resize(m + 2, INF);
    row1.clear();
    row1.resize(m + 2, INF);
    row2.clear();
    row2.resize(m + 2, INF);
    for (j, cell) in row1.iter_mut().enumerate().take(m.min(k) + 1) {
        *cell = j;
    }
    for i in 1..=n {
        let lo = i.saturating_sub(k);
        let hi = (i + k).min(m);
        // The buffers rotate, so cells just outside the band hold stale
        // values from two rows up; the reads below only ever touch
        // `lo - 1` and (next iteration, via row1) `hi + 1`.
        if lo > 0 {
            row2[lo - 1] = INF;
        }
        let mut row_min = INF;
        for j in lo..=hi {
            let d = if j == 0 {
                i
            } else {
                let cost = usize::from(av[i - 1] != bv[j - 1]);
                let mut d = (row1[j] + 1).min(row2[j - 1] + 1).min(row1[j - 1] + cost);
                if transpositions
                    && i > 1
                    && j > 1
                    && av[i - 1] == bv[j - 2]
                    && av[i - 2] == bv[j - 1]
                {
                    d = d.min(row0[j - 2] + 1);
                }
                d
            };
            row2[j] = d;
            row_min = row_min.min(d);
        }
        if row_min > k {
            return None;
        }
        row2[hi + 1] = INF;
        std::mem::swap(row0, row1);
        std::mem::swap(row1, row2);
    }
    let d = row1[m];
    (d <= k).then_some(d)
}

/// Jaro similarity in `[0, 1]`.
pub fn jaro(a: &str, b: &str) -> f64 {
    let av: Vec<char> = a.chars().collect();
    let bv: Vec<char> = b.chars().collect();
    let (n, m) = (av.len(), bv.len());
    if n == 0 && m == 0 {
        return 1.0;
    }
    if n == 0 || m == 0 {
        return 0.0;
    }
    let window = (n.max(m) / 2).saturating_sub(1);
    let mut b_used = vec![false; m];
    let mut matches = 0usize;
    let mut a_matched = Vec::with_capacity(n.min(m));
    for (i, &ac) in av.iter().enumerate() {
        let lo = i.saturating_sub(window);
        let hi = (i + window + 1).min(m);
        for j in lo..hi {
            if !b_used[j] && bv[j] == ac {
                b_used[j] = true;
                a_matched.push(ac);
                matches += 1;
                break;
            }
        }
    }
    if matches == 0 {
        return 0.0;
    }
    // Count transpositions among matched characters.
    let b_matched: Vec<char> = b_used
        .iter()
        .zip(bv.iter())
        .filter_map(|(&used, &c)| used.then_some(c))
        .collect();
    let transpositions = a_matched
        .iter()
        .zip(b_matched.iter())
        .filter(|(x, y)| x != y)
        .count()
        / 2;
    let m_f = matches as f64;
    (m_f / n as f64 + m_f / m as f64 + (m_f - transpositions as f64) / m_f) / 3.0
}

/// Jaro–Winkler similarity: Jaro boosted by up to 4 chars of common
/// prefix with scaling factor 0.1 (the standard parameters).
pub fn jaro_winkler(a: &str, b: &str) -> f64 {
    let j = jaro(a, b);
    let prefix = a
        .chars()
        .zip(b.chars())
        .take(4)
        .take_while(|(x, y)| x == y)
        .count();
    j + prefix as f64 * 0.1 * (1.0 - j)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levenshtein_known_values() {
        assert_eq!(levenshtein("", ""), 0);
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("flaw", "lawn"), 2);
        assert_eq!(levenshtein("indiana", "indiana"), 0);
        assert_eq!(levenshtein("indy", "indi"), 1);
    }

    #[test]
    fn levenshtein_is_symmetric() {
        for (a, b) in [("abc", "acb"), ("indy 4", "indiana jones 4"), ("", "x")] {
            assert_eq!(levenshtein(a, b), levenshtein(b, a));
        }
    }

    #[test]
    fn levenshtein_unicode_chars_not_bytes() {
        // é is 2 bytes but 1 char; distance must be 1.
        assert_eq!(levenshtein("pokemon", "pokémon"), 1);
    }

    #[test]
    fn normalized_levenshtein_bounds() {
        assert_eq!(normalized_levenshtein("", ""), 1.0);
        assert_eq!(normalized_levenshtein("abc", "abc"), 1.0);
        assert_eq!(normalized_levenshtein("abc", "xyz"), 0.0);
        let v = normalized_levenshtein("kitten", "sitting");
        assert!(v > 0.0 && v < 1.0);
    }

    #[test]
    fn damerau_counts_transposition_as_one() {
        assert_eq!(levenshtein("ca", "ac"), 2);
        assert_eq!(damerau_levenshtein("ca", "ac"), 1);
        assert_eq!(damerau_levenshtein("abcd", "abdc"), 1);
        assert_eq!(damerau_levenshtein("", "abc"), 3);
        assert_eq!(damerau_levenshtein("abc", ""), 3);
        assert_eq!(damerau_levenshtein("same", "same"), 0);
    }

    #[test]
    fn damerau_never_exceeds_levenshtein() {
        for (a, b) in [
            ("indiana jones", "indianajones"),
            ("canon eos", "cannon eso"),
            ("abcdef", "badcfe"),
            ("typo", "tpyo"),
        ] {
            assert!(damerau_levenshtein(a, b) <= levenshtein(a, b));
        }
    }

    #[test]
    fn bounded_matches_unbounded_within_budget() {
        let pairs = [
            ("kitten", "sitting"),
            ("canon eos 350d", "cannon eos 350d"),
            ("indiana jones", "indianna jnoes"),
            ("abc", "abc"),
            ("", ""),
            ("", "ab"),
            ("ab", ""),
            ("typo", "tpyo"),
            ("pokemon", "pokémon"),
        ];
        for (a, b) in pairs {
            for k in 0..=4 {
                let lev = levenshtein(a, b);
                let dam = damerau_levenshtein(a, b);
                assert_eq!(
                    levenshtein_within(a, b, k),
                    (lev <= k).then_some(lev),
                    "lev({a:?},{b:?}) within {k}"
                );
                assert_eq!(
                    damerau_levenshtein_within(a, b, k),
                    (dam <= k).then_some(dam),
                    "dam({a:?},{b:?}) within {k}"
                );
            }
        }
    }

    #[test]
    fn bounded_rejects_far_pairs_fast() {
        assert_eq!(levenshtein_within("abcdefgh", "zyxwvuts", 2), None);
        assert_eq!(
            damerau_levenshtein_within("a", "abcd", 2),
            None,
            "length filter"
        );
    }

    #[test]
    fn bounded_survives_huge_budgets() {
        // A bound beyond any possible distance must behave like the
        // unbounded metric, not overflow the band arithmetic.
        for k in [usize::MAX, usize::MAX / 2, 1 << 40] {
            assert_eq!(levenshtein_within("ab", "ab", k), Some(0));
            assert_eq!(levenshtein_within("kitten", "sitting", k), Some(3));
            assert_eq!(damerau_levenshtein_within("ca", "ac", k), Some(1));
            assert_eq!(levenshtein_within("", "abc", k), Some(3));
        }
    }

    #[test]
    fn jaro_known_values() {
        assert_eq!(jaro("", ""), 1.0);
        assert_eq!(jaro("a", ""), 0.0);
        assert_eq!(jaro("abc", "abc"), 1.0);
        assert_eq!(jaro("abc", "xyz"), 0.0);
        // Classic example: MARTHA vs MARHTA = 0.944...
        let v = jaro("martha", "marhta");
        assert!((v - 0.9444444).abs() < 1e-6, "got {v}");
    }

    #[test]
    fn jaro_winkler_boosts_prefix() {
        let j = jaro("dixon", "dicksonx");
        let jw = jaro_winkler("dixon", "dicksonx");
        assert!(jw >= j);
        // Classic value: jw(dixon, dicksonx) ≈ 0.8133
        assert!((jw - 0.81333333).abs() < 1e-6, "got {jw}");
    }

    #[test]
    fn jaro_winkler_bounds_and_symmetry() {
        for (a, b) in [("indy", "indiana"), ("eos 350d", "350d"), ("", "")] {
            let x = jaro_winkler(a, b);
            let y = jaro_winkler(b, a);
            assert!((0.0..=1.0).contains(&x));
            assert!((x - y).abs() < 1e-12);
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn lev_symmetry(a in "[a-z]{0,12}", b in "[a-z]{0,12}") {
            prop_assert_eq!(levenshtein(&a, &b), levenshtein(&b, &a));
        }

        #[test]
        fn lev_identity(a in "[a-z]{0,16}") {
            prop_assert_eq!(levenshtein(&a, &a), 0);
        }

        #[test]
        fn lev_triangle(a in "[a-z]{0,8}", b in "[a-z]{0,8}", c in "[a-z]{0,8}") {
            let ab = levenshtein(&a, &b);
            let bc = levenshtein(&b, &c);
            let ac = levenshtein(&a, &c);
            prop_assert!(ac <= ab + bc, "ac={} ab={} bc={}", ac, ab, bc);
        }

        #[test]
        fn lev_bounded_by_longer(a in "[a-z]{0,12}", b in "[a-z]{0,12}") {
            let d = levenshtein(&a, &b);
            let max = a.len().max(b.len());
            let min = a.len().min(b.len());
            prop_assert!(d <= max);
            prop_assert!(d >= max - min);
        }

        #[test]
        fn damerau_le_lev(a in "[a-z]{0,10}", b in "[a-z]{0,10}") {
            prop_assert!(damerau_levenshtein(&a, &b) <= levenshtein(&a, &b));
        }

        #[test]
        fn bounded_agrees_with_full_dp(
            a in "[a-z]{0,10}",
            b in "[a-z]{0,10}",
            k in 0usize..5,
        ) {
            let lev = levenshtein(&a, &b);
            prop_assert_eq!(levenshtein_within(&a, &b, k), (lev <= k).then_some(lev));
            let dam = damerau_levenshtein(&a, &b);
            prop_assert_eq!(damerau_levenshtein_within(&a, &b, k), (dam <= k).then_some(dam));
        }

        /// A two-letter alphabet forces long shared affixes and
        /// boundary-hugging transpositions — the adversarial régime for
        /// the bounded kernel's common-affix stripping.
        #[test]
        fn bounded_agrees_with_full_dp_on_dense_alphabet(
            a in "[ab]{0,12}",
            b in "[ab]{0,12}",
            k in 0usize..4,
        ) {
            let lev = levenshtein(&a, &b);
            prop_assert_eq!(levenshtein_within(&a, &b, k), (lev <= k).then_some(lev));
            let dam = damerau_levenshtein(&a, &b);
            prop_assert_eq!(damerau_levenshtein_within(&a, &b, k), (dam <= k).then_some(dam));
        }

        /// The bit-parallel kernel must agree with the banded-DP
        /// reference oracle (which the tests above pin to the full DP)
        /// over ASCII, at every budget including 0.
        #[test]
        fn bitpar_agrees_with_dp_oracle_ascii(
            a in "[a-d ]{0,20}",
            b in "[a-d ]{0,20}",
            k in 0usize..5,
        ) {
            prop_assert_eq!(
                levenshtein_within(&a, &b, k),
                levenshtein_within_ref(&a, &b, k)
            );
            prop_assert_eq!(
                damerau_levenshtein_within(&a, &b, k),
                damerau_levenshtein_within_ref(&a, &b, k)
            );
        }

        /// Multi-byte inputs route around the kernel; the public
        /// functions must still agree with the oracle there.
        #[test]
        fn bitpar_agrees_with_dp_oracle_multibyte(
            a in "[aé東 ]{0,12}",
            b in "[aé東 ]{0,12}",
            k in 0usize..4,
        ) {
            prop_assert_eq!(
                levenshtein_within(&a, &b, k),
                levenshtein_within_ref(&a, &b, k)
            );
            prop_assert_eq!(
                damerau_levenshtein_within(&a, &b, k),
                damerau_levenshtein_within_ref(&a, &b, k)
            );
        }

        /// Long shared affixes around a short differing middle: the
        /// common-affix-stripping fast path, plus strings beyond the
        /// 64-symbol column word (the DP-fallback boundary) when the
        /// affixes fail to cancel.
        #[test]
        fn bitpar_agrees_with_dp_oracle_on_affixed_and_long_inputs(
            prefix in "[ab]{0,70}",
            mid_a in "[ab]{0,6}",
            mid_b in "[ab]{0,6}",
            suffix in "[ab]{0,70}",
            k in 0usize..4,
        ) {
            let a = format!("{prefix}{mid_a}{suffix}");
            let b = format!("{prefix}{mid_b}{suffix}");
            prop_assert_eq!(
                levenshtein_within(&a, &b, k),
                levenshtein_within_ref(&a, &b, k)
            );
            prop_assert_eq!(
                damerau_levenshtein_within(&a, &b, k),
                damerau_levenshtein_within_ref(&a, &b, k)
            );
        }

        /// Dense two-letter strings straddling the 64-symbol boundary:
        /// stripped middles land on both sides of the kernel/DP
        /// dispatch, and both must tell the same story.
        #[test]
        fn bitpar_agrees_with_dp_oracle_across_word_boundary(
            a in "[ab]{55,80}",
            b in "[ab]{55,80}",
            k in 0usize..4,
        ) {
            prop_assert_eq!(
                levenshtein_within(&a, &b, k),
                levenshtein_within_ref(&a, &b, k)
            );
            prop_assert_eq!(
                damerau_levenshtein_within(&a, &b, k),
                damerau_levenshtein_within_ref(&a, &b, k)
            );
        }

        #[test]
        fn jw_in_unit_interval(a in "[a-z]{0,10}", b in "[a-z]{0,10}") {
            let v = jaro_winkler(&a, &b);
            prop_assert!((0.0..=1.0 + 1e-12).contains(&v));
        }

        #[test]
        fn norm_lev_in_unit_interval(a in "[a-z]{0,10}", b in "[a-z]{0,10}") {
            let v = normalized_levenshtein(&a, &b);
            prop_assert!((0.0..=1.0).contains(&v));
        }
    }
}
