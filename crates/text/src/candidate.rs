//! Pluggable candidate generation for approximate dictionary lookup.
//!
//! Every approximate matcher in the workspace has the same two-stage
//! shape: a cheap *generation* stage proposes a handful of dictionary
//! surface ids for a query string, and a *verification* stage decides
//! which proposal (if any) actually resolves. Before this module each
//! consumer hard-wired its own generator — the entity matcher an n-gram
//! signature index, the spelling corrector first-character/length
//! buckets — which made the generators impossible to combine or swap.
//!
//! [`CandidateSource`] is the shared generation interface (cf.
//! Endrullis et al., "Evaluation of Query Generators for Entity Search
//! Engines", which evaluates exactly such pluggable generator stacks).
//! A source proposes ids into a caller-owned buffer; the caller applies
//! its own verification and selection policy. Three generators live
//! here or nearby:
//!
//! - [`NgramIndex`](crate::ngram_index::NgramIndex) — character n-gram
//!   signatures with length/count filters (edit-distance recall);
//! - [`PhoneticIndex`] — per-token Soundex blocking (sound-alike
//!   recall beyond what shared n-grams catch);
//! - [`AbbrevIndex`] — precomputed systematic abbreviations
//!   ([`crate::abbrev`]): acronyms, stopword drops, numeral respells.
//!   Its proposals are deterministic transform hits, not edit-distance
//!   neighbours, so it reports `needs_verification() == false`.

use crate::abbrev;
use crate::phonetic::soundex;
use websyn_common::FxHashMap;

/// A generator of candidate surface ids for approximate lookup.
///
/// Ids are the 0-based build-order positions in whatever surface table
/// the caller indexed — every source built over the same surface list
/// proposes ids from the same space, which is what lets a resolver
/// chain sources. Proposals are suggestions only: unless
/// [`CandidateSource::needs_verification`] returns `false`, the caller
/// must verify each one with a real distance computation before
/// accepting it.
pub trait CandidateSource {
    /// Short stable name, for diagnostics and pipeline descriptions.
    fn name(&self) -> &'static str;

    /// Whether proposals still require edit-distance verification.
    /// Signature filters (n-grams, phonetic blocking) return `true`:
    /// they over-generate. Deterministic transform sources (abbrev)
    /// return `false`: a hit *is* the resolution, at transform
    /// distance 0.
    fn needs_verification(&self) -> bool {
        true
    }

    /// Pushes candidate ids for `query` at edit budget `max_dist` into
    /// `out` (which the caller has cleared), ascending and deduplicated
    /// within this source's own output.
    fn propose(&self, query: &str, max_dist: usize, out: &mut Vec<u32>);

    /// Whether a query of `n_tokens` tokens at edit budget `max_dist`
    /// can produce a **within-budget** proposal even when none of its
    /// tokens occurs verbatim in an indexed surface. Content-free and
    /// transform generators (grams, phonetic keys, abbreviations)
    /// conservatively say `true` for every shape; anchor-keyed
    /// postings (the token-signature index) say `true` only where a
    /// space-damage anchor can still verify. Resolvers use a `false`
    /// across every applicable source to skip all-out-of-vocabulary
    /// queries without any generation work — sound because such a
    /// query's *resolution* is then provably empty (over-generated
    /// proposals that cannot verify do not count).
    fn proposes_unanchored(&self, n_tokens: usize, max_dist: usize) -> bool {
        let _ = (n_tokens, max_dist);
        true
    }

    /// Per-position generation: collect, in **one** pass over `query`
    /// (the longest window starting at a segmenter position), anchored
    /// hits valid for *every* token-aligned prefix window of it, at
    /// the loosest budget any prefix will use (`max_dist`). The caller
    /// then extracts each prefix window's proposals with
    /// [`CandidateSource::filter_prefix`], instead of paying one
    /// [`CandidateSource::propose`] per (position, window-length)
    /// pair.
    ///
    /// Returns `true` when the source supports this form (and has
    /// appended its hits); the default returns `false` and callers
    /// fall back to per-window `propose`.
    fn propose_prefix(&self, query: &str, max_dist: usize, out: &mut Vec<PrefixHit>) -> bool {
        let _ = (query, max_dist, out);
        false
    }

    /// Extracts the proposals for one prefix window of the query that
    /// [`CandidateSource::propose_prefix`] scanned: the window's first
    /// `n_tokens` tokens, `query_chars` chars, at edit budget
    /// `max_dist` (≤ the collection budget). Appends to `out` exactly
    /// the ids `propose` would have produced for that window text —
    /// ascending and deduplicated within this call's output. The
    /// default is for sources that never return `true` from
    /// `propose_prefix` and must not be reached.
    fn filter_prefix(
        &self,
        hits: &[PrefixHit],
        n_tokens: usize,
        query_chars: usize,
        max_dist: usize,
        out: &mut Vec<u32>,
    ) {
        let _ = (hits, n_tokens, query_chars, max_dist, out);
        unimplemented!("filter_prefix without propose_prefix support")
    }
}

/// One anchored candidate occurrence from a per-position generation
/// pass (see [`CandidateSource::propose_prefix`]): enough geometry to
/// re-apply a *shorter* prefix window's filters without re-probing any
/// posting list. All offsets are char-level, relative to the scanned
/// query's start — which is every prefix window's start too.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefixHit {
    /// Proposed surface id.
    pub surface: u32,
    /// Index of the query token that anchored the proposal, or
    /// [`PrefixHit::DESPACED`] for a hit of the two-token de-spaced
    /// probe (valid only for the two-token prefix window).
    pub token_index: u32,
    /// Char offset of the anchor inside the query.
    pub query_offset: u32,
    /// Char offset of the anchored key inside the surface.
    pub surface_offset: u32,
}

impl PrefixHit {
    /// Sentinel `token_index` for hits of the two-token de-spaced
    /// concatenation probe.
    pub const DESPACED: u32 = u32::MAX;
}

/// Per-token Soundex blocking: surfaces sharing the query's phonetic
/// key are proposed, whatever their n-gram overlap.
///
/// The key of a surface is the Soundex code of each token joined by
/// spaces; tokens without an ASCII letter (bare model numbers) keep
/// their literal text, so "canon eos 350d" and "cannon eos 350d" key
/// identically while "canon eos 400d" does not collide with "canon eos
/// 350d".
///
/// # Examples
///
/// ```
/// use websyn_text::{CandidateSource, PhoneticIndex};
///
/// let idx = PhoneticIndex::build(["indiana jones", "madagascar"]);
/// let mut out = Vec::new();
/// idx.propose("indianna jones", 1, &mut out);
/// assert_eq!(out, vec![0]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct PhoneticIndex {
    /// phonetic key → surface ids, ascending.
    keys: FxHashMap<String, Vec<u32>>,
}

/// The phonetic key of a normalized surface (see [`PhoneticIndex`]).
fn phonetic_key(s: &str) -> String {
    let mut key = String::with_capacity(s.len());
    for tok in s.split(' ').filter(|t| !t.is_empty()) {
        if !key.is_empty() {
            key.push(' ');
        }
        // Only purely alphabetic tokens are sound-alike material; a
        // digit-bearing token ("350d") stays literal so model numbers
        // don't collapse onto each other.
        let code = if tok.chars().all(|c| c.is_ascii_alphabetic()) {
            soundex(tok)
        } else {
            None
        };
        match code {
            Some(code) => key.push_str(&code),
            None => key.push_str(tok),
        }
    }
    key
}

impl PhoneticIndex {
    /// Indexes `surfaces` by phonetic key. Ids are build-order
    /// positions, aligned with any other source built over the same
    /// list.
    pub fn build<S: AsRef<str>>(surfaces: impl IntoIterator<Item = S>) -> Self {
        let mut keys: FxHashMap<String, Vec<u32>> = FxHashMap::default();
        for (id, surface) in surfaces.into_iter().enumerate() {
            let id = u32::try_from(id).expect("more than u32::MAX surfaces");
            let key = phonetic_key(surface.as_ref());
            if !key.is_empty() {
                keys.entry(key).or_default().push(id);
            }
        }
        Self { keys }
    }

    /// Number of distinct phonetic keys.
    pub fn n_keys(&self) -> usize {
        self.keys.len()
    }
}

impl CandidateSource for PhoneticIndex {
    fn name(&self) -> &'static str {
        "phonetic"
    }

    fn propose(&self, query: &str, _max_dist: usize, out: &mut Vec<u32>) {
        let key = phonetic_key(query);
        if let Some(ids) = self.keys.get(&key) {
            out.extend_from_slice(ids);
        }
    }
}

/// Precomputed systematic abbreviations: every mechanical variant of
/// every surface ([`crate::abbrev::variants`]) maps back to the surface
/// that generated it, so a query that *is* such a variant resolves in
/// one hash probe.
///
/// Unlike the signature sources, a hit here is exact by construction —
/// "lotr" is not within any edit budget of "lord of the rings", and
/// verifying it with an edit distance would wrongly reject it. The
/// source therefore reports [`CandidateSource::needs_verification`]
/// `false` and resolvers accept its proposals at distance 0.
///
/// # Examples
///
/// ```
/// use websyn_text::{AbbrevIndex, CandidateSource};
///
/// let idx = AbbrevIndex::build(["lord of the rings"]);
/// let mut out = Vec::new();
/// idx.propose("lotr", 0, &mut out);
/// assert_eq!(out, vec![0]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct AbbrevIndex {
    /// abbreviated form → surface ids that generate it, ascending.
    forms: FxHashMap<String, Vec<u32>>,
}

impl AbbrevIndex {
    /// Indexes the mechanical variants of `surfaces`. Ids are
    /// build-order positions. A variant generated by several surfaces
    /// maps to all of them (the resolver's ambiguity policy decides
    /// what a contested form means).
    pub fn build<S: AsRef<str>>(surfaces: impl IntoIterator<Item = S>) -> Self {
        let mut forms: FxHashMap<String, Vec<u32>> = FxHashMap::default();
        for (id, surface) in surfaces.into_iter().enumerate() {
            let id = u32::try_from(id).expect("more than u32::MAX surfaces");
            let tokens: Vec<&str> = surface
                .as_ref()
                .split(' ')
                .filter(|t| !t.is_empty())
                .collect();
            for variant in abbrev::variants(&tokens) {
                let ids = forms.entry(variant.text).or_default();
                if ids.last() != Some(&id) {
                    ids.push(id);
                }
            }
        }
        Self { forms }
    }

    /// Number of distinct abbreviated forms.
    pub fn n_forms(&self) -> usize {
        self.forms.len()
    }
}

impl CandidateSource for AbbrevIndex {
    fn name(&self) -> &'static str {
        "abbrev"
    }

    fn needs_verification(&self) -> bool {
        false
    }

    fn propose(&self, query: &str, _max_dist: usize, out: &mut Vec<u32>) {
        if let Some(ids) = self.forms.get(query) {
            out.extend_from_slice(ids);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phonetic_groups_sound_alikes() {
        let idx = PhoneticIndex::build(["indiana jones", "madagascar 2", "nikon d80"]);
        let mut out = Vec::new();
        idx.propose("indianna jones", 2, &mut out);
        assert_eq!(out, vec![0]);
        out.clear();
        // Different sounds propose nothing.
        idx.propose("totally unrelated", 2, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn phonetic_keeps_literal_numeric_tokens() {
        let idx = PhoneticIndex::build(["canon eos 350d", "canon eos 400d"]);
        let mut out = Vec::new();
        // "cannon" and "canon" share a Soundex code; the numeric tails
        // are literal, so only the 350d surface is proposed.
        idx.propose("cannon eos 350d", 1, &mut out);
        assert_eq!(out, vec![0]);
    }

    #[test]
    fn abbrev_maps_acronyms_and_tails() {
        let idx = AbbrevIndex::build(["lord of the rings", "canon eos 350d"]);
        let mut out = Vec::new();
        idx.propose("lotr", 0, &mut out);
        assert_eq!(out, vec![0]);
        out.clear();
        idx.propose("350d", 0, &mut out);
        assert_eq!(out, vec![1]);
        out.clear();
        idx.propose("lord of the rings", 0, &mut out);
        assert!(out.is_empty(), "the surface itself is not a variant");
        assert!(!idx.needs_verification());
    }

    #[test]
    fn abbrev_contested_form_proposes_all_generators() {
        // Both surfaces acronymize to "lotr": the resolver sees both and
        // applies its own ambiguity policy.
        let idx = AbbrevIndex::build(["lord of the rings", "legend of the ring"]);
        let mut out = Vec::new();
        idx.propose("lotr", 0, &mut out);
        assert_eq!(out, vec![0, 1]);
    }

    #[test]
    fn empty_inputs() {
        let p = PhoneticIndex::build(std::iter::empty::<&str>());
        assert_eq!(p.n_keys(), 0);
        let a = AbbrevIndex::build([""]);
        let mut out = Vec::new();
        a.propose("", 0, &mut out);
        assert!(out.is_empty());
    }
}
