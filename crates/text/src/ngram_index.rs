//! Character n-gram signature index for fuzzy candidate generation.
//!
//! Verifying an edit distance against every dictionary surface is
//! O(dictionary), far too slow for a serving path. The standard fix
//! (Gravano et al., "Approximate String Joins in a Database"; also the
//! filter stack behind Lucene fuzzy queries) is *candidate generation +
//! verification*: an inverted index from character n-grams to the
//! surfaces containing them produces a small candidate set, and only
//! those candidates pay for a real edit-distance computation.
//!
//! [`NgramIndex`] implements the generation half with two filters:
//!
//! - **length filter** — strings within edit distance `k` differ in
//!   length by at most `k`, so candidates outside `len(q) ± k` are
//!   skipped without touching their grams;
//! - **count filter, in prefix form** — one edit operation destroys at
//!   most `n` of a string's padded n-grams, so a surface within
//!   distance `k` must share at least `T = |G(q)| − k·n` of the query's
//!   grams; contrapositively, it must contain at least one of *any*
//!   `|G(q)| − T + 1 = k·n + 1` chosen query grams. Probing only the
//!   `k·n + 1` grams with the shortest posting lists (the classic
//!   prefix filter of the similarity-join literature) therefore touches
//!   every surface that could pass the count bound, without
//!   maintaining per-candidate counts in the hot loop.
//!
//! Both filters are over *distinct* grams (set semantics). For strings
//! with heavily repeated grams the count bound is approximate, so the
//! index is a *filter*, not an oracle: it may very rarely miss a true
//! candidate, and it never certifies one — callers must verify every
//! candidate with a real distance function (see
//! [`crate::distance`]).
//!
//! Grams are stored as 64-bit FNV hashes rather than strings: the
//! query path hashes each padded window in place and never allocates
//! per gram, which matters because the segmenter probes the index for
//! every query window that misses the exact dictionary. A hash
//! collision can only *add* a candidate (later rejected by
//! verification), never lose one.

use crate::candidate::CandidateSource;
use websyn_common::FxHashMap;

/// Inverted index from character n-grams to the ids of the dictionary
/// surfaces that contain them, with length and count filters applied at
/// query time.
///
/// Ids are the 0-based positions of the surfaces in the order they were
/// passed to [`NgramIndex::build`]; [`NgramIndex::candidates`] returns
/// them sorted ascending, so output is deterministic for a fixed build
/// order.
///
/// # Examples
///
/// ```
/// use websyn_text::NgramIndex;
///
/// let idx = NgramIndex::build(["canon eos 350d", "nikon d80"], 2);
/// // One typo away: candidate generation keeps the right surface.
/// assert_eq!(idx.candidates("cannon eos 350d", 1), vec![0]);
/// // Nothing nearby: both filters reject everything.
/// assert!(idx.candidates("zzzzzzzz", 1).is_empty());
/// ```
#[derive(Debug, Clone, Default)]
pub struct NgramIndex {
    /// Gram size `n`.
    n: usize,
    /// gram hash → ids of surfaces containing it, ascending.
    postings: FxHashMap<u64, Vec<u32>>,
    /// Char length of each indexed surface (for the length filter).
    lengths: Vec<u32>,
    /// Grams one edit may destroy: `n` under Levenshtein edits, `n + 1`
    /// once adjacent transpositions count as one edit (a transposition
    /// touches two characters, so it can break `n + 1` windows). Drives
    /// the prefix-probe count.
    per_edit_grams: usize,
}

/// FNV-1a over the chars of one padded gram window.
fn gram_hash(window: &[char]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &c in window {
        h ^= c as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Calls `f` with the hash of every padded `n`-gram of `s`, reusing
/// `buf` as the padded char buffer (no per-gram allocation).
fn for_each_gram(s: &str, n: usize, buf: &mut Vec<char>, mut f: impl FnMut(u64)) {
    buf.clear();
    let pad = n - 1;
    buf.extend(std::iter::repeat_n('#', pad));
    buf.extend(s.chars());
    if buf.len() == pad {
        return; // empty string: no grams, matching `char_ngrams`.
    }
    buf.extend(std::iter::repeat_n('#', pad));
    for w in buf.windows(n) {
        f(gram_hash(w));
    }
}

impl NgramIndex {
    /// Indexes `surfaces` with gram size `n`. Empty surfaces are kept
    /// (they occupy an id) but generate no grams and are never returned
    /// as candidates.
    ///
    /// # Panics
    /// Panics if `n == 0`: a zero-gram index can generate no
    /// signatures.
    pub fn build<S: AsRef<str>>(surfaces: impl IntoIterator<Item = S>, n: usize) -> Self {
        assert!(n > 0, "gram size must be positive");
        let mut postings: FxHashMap<u64, Vec<u32>> = FxHashMap::default();
        let mut lengths = Vec::new();
        let mut buf = Vec::new();
        for (id, surface) in surfaces.into_iter().enumerate() {
            let surface = surface.as_ref();
            let id = u32::try_from(id).expect("more than u32::MAX surfaces");
            lengths.push(surface.chars().count() as u32);
            for_each_gram(surface, n, &mut buf, |gram| {
                let ids = postings.entry(gram).or_default();
                // Ids arrive in ascending order, so a duplicate gram
                // within one surface is always the current tail entry.
                if ids.last() != Some(&id) {
                    ids.push(id);
                }
            });
        }
        Self {
            n,
            postings,
            lengths,
            per_edit_grams: n,
        }
    }

    /// Switches the count filter to its transposition-safe form: the
    /// prefix probe widens from `k·n + 1` to `k·(n + 1) + 1` gram
    /// lists, so a surface reachable only through adjacent
    /// transpositions (one OSA edit, up to `n + 1` destroyed grams)
    /// still passes generation. Callers that verify with a
    /// Damerau/OSA metric and cannot afford transposition misses (the
    /// spelling corrector) build with this; the plain form probes
    /// fewer lists, as the matcher's chain always has.
    pub fn with_transpositions(mut self) -> Self {
        self.per_edit_grams = self.n + 1;
        self
    }

    /// Gram size the index was built with.
    pub fn gram_size(&self) -> usize {
        self.n
    }

    /// Number of indexed surfaces.
    pub fn len(&self) -> usize {
        self.lengths.len()
    }

    /// Whether the index holds no surfaces.
    pub fn is_empty(&self) -> bool {
        self.lengths.is_empty()
    }

    /// Number of distinct grams in the index.
    pub fn n_grams(&self) -> usize {
        self.postings.len()
    }

    /// Char length of surface `id` as recorded at build time.
    pub fn surface_len(&self, id: u32) -> usize {
        self.lengths[id as usize] as usize
    }

    /// Ids of surfaces that pass both filters for `query` at edit
    /// distance `max_dist`, sorted ascending. Every returned id still
    /// needs edit-distance verification; with `max_dist == 0` the
    /// result is empty (use an exact map for distance 0).
    pub fn candidates(&self, query: &str, max_dist: usize) -> Vec<u32> {
        let mut out = Vec::new();
        self.candidates_into(query, max_dist, &mut out);
        out
    }

    /// [`NgramIndex::candidates`] into a caller-owned buffer — the
    /// allocation-free form the serving path uses (and the
    /// [`CandidateSource`] implementation delegates to). Appends to
    /// `out` without clearing it.
    pub fn candidates_into(&self, query: &str, max_dist: usize, out: &mut Vec<u32>) {
        if max_dist == 0 || self.is_empty() {
            return;
        }
        // The segmenter calls this for every window that misses the
        // exact dictionary, so the gram buffers are thread-local
        // scratch rather than per-call allocations.
        thread_local! {
            #[allow(clippy::type_complexity)]
            static SCRATCH: std::cell::RefCell<(Vec<char>, Vec<u64>, Vec<(u32, u64)>)> =
                const { std::cell::RefCell::new((Vec::new(), Vec::new(), Vec::new())) };
        }
        SCRATCH.with_borrow_mut(|(buf, grams, ranked)| {
            grams.clear();
            for_each_gram(query, self.n, buf, |gram| grams.push(gram));
            grams.sort_unstable();
            grams.dedup();
            if grams.is_empty() {
                return;
            }
            let q_len = query.chars().count() as u32;

            // Prefix form of the count filter: a qualifying surface shares
            // at least |G(q)| − k·n query grams, so it must contain one of
            // the k·n + 1 probed grams — probe the rarest (shortest
            // posting lists; a gram absent from the index is rarest of
            // all). This is the segmenter's hottest loop: only the probed
            // lists are scanned, and the length filter keeps far-length
            // surfaces out of the union. Selecting the rarest grams is a
            // partial selection over (list length, gram) pairs in reused
            // scratch — no allocation, no full sort.
            let probe_count = (max_dist * self.per_edit_grams + 1).min(grams.len());
            ranked.clear();
            ranked.extend(grams.iter().map(|&g| {
                let len = self.postings.get(&g).map_or(0, |ids| ids.len()) as u32;
                (len, g)
            }));
            if ranked.len() > probe_count {
                ranked.select_nth_unstable(probe_count - 1);
                ranked.truncate(probe_count);
            }
            let start = out.len();
            for &(len, gram) in ranked.iter() {
                if len == 0 {
                    continue;
                }
                let Some(ids) = self.postings.get(&gram) else {
                    continue;
                };
                for &id in ids {
                    if self.lengths[id as usize].abs_diff(q_len) <= max_dist as u32 {
                        out.push(id);
                    }
                }
            }
            // Sort + dedup only the region this call appended, so the
            // buffer contract (append, never disturb) holds.
            out[start..].sort_unstable();
            let mut w = start;
            for r in start..out.len() {
                if w == start || out[w - 1] != out[r] {
                    out[w] = out[r];
                    w += 1;
                }
            }
            out.truncate(w);
        })
    }
}

impl CandidateSource for NgramIndex {
    fn name(&self) -> &'static str {
        "ngram"
    }

    fn propose(&self, query: &str, max_dist: usize, out: &mut Vec<u32>) {
        self.candidates_into(query, max_dist, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::damerau_levenshtein;

    fn index() -> NgramIndex {
        NgramIndex::build(
            [
                "canon eos 350d",
                "canon eos 400d",
                "nikon d80",
                "indiana jones 4",
                "indy 4",
            ],
            2,
        )
    }

    #[test]
    fn exact_string_is_its_own_candidate() {
        let idx = index();
        let surfaces = [
            "canon eos 350d",
            "canon eos 400d",
            "nikon d80",
            "indiana jones 4",
            "indy 4",
        ];
        for (id, s) in surfaces.iter().enumerate() {
            assert!(
                idx.candidates(s, 1).contains(&(id as u32)),
                "{s} not in its own candidate set"
            );
        }
    }

    #[test]
    fn one_typo_keeps_the_true_surface() {
        let idx = index();
        // substitution, deletion, insertion, transposition.
        for q in [
            "cannon eos 350d",
            "canon eos 350",
            "canon eos 3500d",
            "cnaon eos 350d",
        ] {
            let cands = idx.candidates(q, 2);
            assert!(cands.contains(&0), "{q:?} lost surface 0: {cands:?}");
        }
    }

    #[test]
    fn length_filter_prunes_far_lengths() {
        let idx = index();
        // "indy 4" (6 chars) can never be within distance 1 of a
        // 14-char surface.
        for id in idx.candidates("indy 4", 1) {
            assert!(idx.surface_len(id).abs_diff(6) <= 1);
        }
    }

    #[test]
    fn unrelated_query_yields_nothing() {
        let idx = index();
        assert!(idx.candidates("zzzz qqqq wwww", 2).is_empty());
    }

    #[test]
    fn zero_distance_and_empty_inputs() {
        let idx = index();
        assert!(idx.candidates("canon eos 350d", 0).is_empty());
        assert!(idx.candidates("", 2).is_empty());
        let empty = NgramIndex::build(std::iter::empty::<&str>(), 2);
        assert!(empty.is_empty());
        assert!(empty.candidates("anything", 2).is_empty());
    }

    #[test]
    fn empty_surface_occupies_id_but_never_matches() {
        let idx = NgramIndex::build(["", "abc"], 2);
        assert_eq!(idx.len(), 2);
        assert_eq!(idx.candidates("abc", 1), vec![1]);
    }

    #[test]
    fn candidates_are_sorted_and_deterministic() {
        let idx = index();
        let a = idx.candidates("canon eos 300d", 2);
        let b = idx.candidates("canon eos 300d", 2);
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(a, sorted);
    }

    #[test]
    fn duplicate_grams_counted_once_per_surface() {
        // "aaaa" has padded bigrams {#a, aa, a#}: 3 distinct.
        let idx = NgramIndex::build(["aaaa"], 2);
        assert_eq!(idx.n_grams(), 3);
        // Still recalled under one edit.
        assert_eq!(idx.candidates("aaab", 1), vec![0]);
    }

    #[test]
    fn every_verified_neighbour_survives_generation_on_this_dictionary() {
        // On a duplicate-light dictionary the filter stack is lossless:
        // brute-force every surface within the distance budget and
        // check generation kept it.
        let surfaces = [
            "canon eos 350d",
            "canon eos 400d",
            "nikon d80",
            "indiana jones 4",
            "indy 4",
        ];
        let idx = NgramIndex::build(surfaces, 2);
        for q in ["canon eos 350d", "cannon eos 400d", "nikon d8", "indy 44"] {
            let cands = idx.candidates(q, 2);
            for (id, s) in surfaces.iter().enumerate() {
                if damerau_levenshtein(q, s) <= 2 {
                    assert!(
                        cands.contains(&(id as u32)),
                        "{q:?} lost true neighbour {s:?}"
                    );
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "gram size must be positive")]
    fn zero_gram_size_panics() {
        let _ = NgramIndex::build(["x"], 0);
    }

    #[test]
    fn transposition_safe_probe_recalls_osa_neighbours() {
        // "jnoes" is one OSA edit from "jones" but a transposition
        // destroys 3 bigrams, below the plain count threshold; the
        // widened probe keeps it.
        let idx = NgramIndex::build(["jones", "escape", "kingdom"], 2).with_transpositions();
        assert_eq!(idx.candidates("jnoes", 1), vec![0]);
        // Still a filter: unrelated strings propose nothing.
        assert!(idx.candidates("zzzzz", 1).is_empty());
    }
}
