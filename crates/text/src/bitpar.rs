//! Bit-parallel bounded edit distance (Myers 1999 / Hyyrö 2003).
//!
//! The banded DP in [`crate::distance`] costs O((2k+1)·len) cell
//! updates per verification; this kernel packs one DP *column* into a
//! u64 and advances it with a constant number of word operations per
//! text symbol — the standard constant-factor win for the short surface
//! strings a fuzzy dictionary verifies. Two variants share the column
//! loop:
//!
//! - plain Levenshtein (Myers' original recurrence), and
//! - the optimal-string-alignment Damerau variant (Hyyrö's
//!   transposition term carried across one column).
//!
//! The kernel is *bounded* the same way the band is: the final distance
//! can drop by at most one per remaining text symbol, so a column whose
//! running score can no longer get back under the budget abandons
//! immediately.
//!
//! Scope: patterns of at most 64 symbols (one machine word of column
//! state) over byte alphabets — the ASCII fast path of
//! [`crate::distance`], which is every string the normalizer emits.
//! Longer or non-ASCII inputs stay on the banded DP, which also remains
//! the reference oracle for the kernel's property tests.

/// Bounded edit distance between ASCII byte slices: `Some(d)` iff
/// `d ≤ k`, counting an adjacent transposition as one edit when
/// `transpositions` is set.
///
/// Caller contract (enforced by the dispatcher in
/// [`crate::distance`], debug-asserted here): both slices non-empty,
/// `pattern.len() ≤ 64`, `k ≥ 1`, and the length gap already screened
/// against `k`.
pub(crate) fn within_bytes(
    text: &[u8],
    pattern: &[u8],
    k: usize,
    transpositions: bool,
) -> Option<usize> {
    debug_assert!(!text.is_empty() && !pattern.is_empty());
    debug_assert!(pattern.len() <= 64);
    debug_assert!(k >= 1);
    debug_assert!(text.len().abs_diff(pattern.len()) <= k);
    thread_local! {
        /// Pattern-character match masks, plus the list of entries
        /// touched by the current pattern so reset is O(|pattern|),
        /// not O(alphabet).
        static PEQ: std::cell::RefCell<(Box<[u64; 256]>, Vec<u8>)> =
            std::cell::RefCell::new((Box::new([0u64; 256]), Vec::new()));
    }
    PEQ.with_borrow_mut(|(peq, touched)| {
        for (i, &c) in pattern.iter().enumerate() {
            if peq[c as usize] == 0 {
                touched.push(c);
            }
            peq[c as usize] |= 1u64 << i;
        }
        let d = column_scan(text, pattern.len(), peq, k, transpositions);
        for &c in touched.iter() {
            peq[c as usize] = 0;
        }
        touched.clear();
        d
    })
}

/// The column loop: one u64 of vertical-delta state (`vp`/`vn`)
/// advanced per text symbol. Bits above `m − 1` hold garbage but never
/// flow downward (every shift is a left shift and addition carries
/// propagate upward), so only bit `m − 1` — the score row — is read.
fn column_scan(
    text: &[u8],
    m: usize,
    peq: &[u64; 256],
    k: usize,
    transpositions: bool,
) -> Option<usize> {
    let n = text.len();
    let top = 1u64 << (m - 1);
    let mut vp = !0u64;
    let mut vn = 0u64;
    let mut score = m;
    // Hyyrö's transposition term needs last column's match mask and
    // diagonal vector; both start empty (no column 0 to transpose with).
    let mut pm_prev = 0u64;
    let mut d0_prev = 0u64;
    for (j, &tc) in text.iter().enumerate() {
        let pm = peq[tc as usize];
        let mut d0 = (((pm & vp).wrapping_add(vp)) ^ vp) | pm | vn;
        if transpositions {
            // A diagonal mismatch at (i−1, j−1) whose surrounding
            // symbols cross-match is one transposition edit.
            d0 |= ((!d0_prev & pm) << 1) & pm_prev;
        }
        let hp = vn | !(d0 | vp);
        let hn = d0 & vp;
        score += usize::from(hp & top != 0);
        score -= usize::from(hn & top != 0);
        // The score can shed at most one per remaining symbol; once
        // that best case overshoots the budget, no suffix rescues it.
        if score > k + (n - j - 1) {
            return None;
        }
        let hp = (hp << 1) | 1;
        let hn = hn << 1;
        vp = hn | !(d0 | hp);
        vn = d0 & hp;
        pm_prev = pm;
        d0_prev = d0;
    }
    (score <= k).then_some(score)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn within(a: &str, b: &str, k: usize, transpositions: bool) -> Option<usize> {
        // Test harness mirrors the dispatcher's pattern choice: the
        // shorter side packs into the column word.
        let (t, p) = if a.len() >= b.len() { (a, b) } else { (b, a) };
        within_bytes(t.as_bytes(), p.as_bytes(), k, transpositions)
    }

    #[test]
    fn known_values() {
        assert_eq!(within("kitten", "sitting", 3, false), Some(3));
        assert_eq!(within("kitten", "sitting", 2, false), None);
        assert_eq!(
            within("canon eos 350d", "cannon eos 350d", 2, false),
            Some(1)
        );
        assert_eq!(within("abcd", "abdc", 2, false), Some(2));
        assert_eq!(within("abcd", "abdc", 2, true), Some(1));
        assert_eq!(within("ca", "ac", 1, true), Some(1));
        assert_eq!(within("ca", "ac", 1, false), None);
    }

    #[test]
    fn full_word_pattern() {
        // A 64-byte pattern exercises the `1 << 63` top bit.
        let a = "a".repeat(64);
        let mut b = a.clone();
        b.replace_range(30..31, "b");
        assert_eq!(within(&a, &a, 1, false), Some(0));
        assert_eq!(within(&a, &b, 1, false), Some(1));
        assert_eq!(within(&a, &b, 1, true), Some(1));
    }

    #[test]
    fn early_exit_returns_none() {
        assert_eq!(within("abcdefgh", "zyxwvuts", 2, false), None);
        assert_eq!(within("abcdefgh", "zyxwvuts", 2, true), None);
    }

    #[test]
    fn peq_scratch_resets_between_calls() {
        // A stale mask from call 1 would corrupt call 2's distances.
        assert_eq!(within("abab", "baba", 2, false), Some(2));
        assert_eq!(within("cdcd", "cdcd", 2, false), Some(0));
        assert_eq!(within("abab", "abab", 2, false), Some(0));
    }
}
