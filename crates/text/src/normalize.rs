//! String normalization.
//!
//! All matching in the workspace happens over a *canonical form*: a
//! lowercase string with punctuation mapped to spaces, diacritics
//! folded to ASCII for the Latin-1 range, and whitespace collapsed.
//! Two raw strings are treated as the same query/synonym surface iff
//! their canonical forms are byte-equal.
//!
//! The canonical form is intentionally lossy — "Madagascar: Escape 2
//! Africa", "madagascar escape 2 africa" and "MADAGASCAR — Escape 2
//! Africa!" all normalize identically, which is exactly the equivalence
//! a query log exhibits.

/// Options controlling [`normalize`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NormalizeOptions {
    /// Fold common Latin-1 diacritics to ASCII (`é` → `e`).
    pub fold_diacritics: bool,
    /// Treat `&` as the word `and` (so "Fast & Furious" equals
    /// "fast and furious").
    pub ampersand_to_and: bool,
    /// Drop English possessive markers (`'s` → ``, "schindler's" →
    /// "schindlers").
    pub strip_possessive: bool,
}

impl Default for NormalizeOptions {
    fn default() -> Self {
        Self {
            fold_diacritics: true,
            ampersand_to_and: true,
            strip_possessive: true,
        }
    }
}

/// Normalizes `input` with [`NormalizeOptions::default`].
///
/// # Examples
///
/// ```
/// use websyn_text::normalize;
///
/// assert_eq!(
///     normalize("Madagascar: Escape 2 Africa!"),
///     "madagascar escape 2 africa"
/// );
/// assert_eq!(normalize("Fast & Furious"), "fast and furious");
/// assert_eq!(normalize("  WALL·E  "), "wall e");
/// ```
pub fn normalize(input: &str) -> String {
    normalize_with(input, NormalizeOptions::default())
}

/// Normalizes `input` under explicit options.
pub fn normalize_with(input: &str, opts: NormalizeOptions) -> String {
    let mut out = String::with_capacity(input.len());
    let mut pending_space = false;
    let mut chars = input.chars().peekable();

    // Push a word-character, inserting exactly one separating space if a
    // break is pending and the output is non-empty.
    let push = |out: &mut String, c: char, pending: &mut bool| {
        if *pending && !out.is_empty() {
            out.push(' ');
        }
        *pending = false;
        out.push(c);
    };

    while let Some(c) = chars.next() {
        // Possessive: apostrophe followed by s + word boundary.
        if opts.strip_possessive && (c == '\'' || c == '\u{2019}') {
            if let Some(&next) = chars.peek() {
                if next == 's' || next == 'S' {
                    // Look one past the 's'; only treat as possessive if
                    // the 's' ends the word.
                    let mut look = chars.clone();
                    look.next();
                    let boundary = look.peek().is_none_or(|&c2| !c2.is_alphanumeric());
                    if boundary {
                        chars.next(); // consume the 's'
                        push(&mut out, 's', &mut pending_space);
                        continue;
                    }
                }
            }
            // Bare apostrophe inside a word: drop it entirely
            // ("don't" → "dont"), matching query-log behaviour.
            continue;
        }

        if c == '&' && opts.ampersand_to_and {
            pending_space = true; // break from the preceding word: "AT&T" → "at and t"
            for ch in "and".chars() {
                push(&mut out, ch, &mut pending_space);
            }
            pending_space = true;
            continue;
        }

        let folded = if opts.fold_diacritics {
            fold_char(c)
        } else {
            c
        };
        match folded {
            c if c.is_alphanumeric() => {
                for lc in c.to_lowercase() {
                    push(&mut out, lc, &mut pending_space);
                }
            }
            // Everything else — punctuation, symbols, whitespace — is a
            // word break.
            _ => pending_space = true,
        }
    }
    out
}

/// [`normalize`] without the copy when there is nothing to do: borrows
/// `input` if it is already canonical (lowercase ASCII alphanumeric
/// words separated by single spaces, no leading/trailing space),
/// allocating only otherwise. The matcher's serving path runs on this —
/// real query traffic is mostly lowercase already, and an
/// already-canonical query then segments with zero heap allocation.
///
/// # Examples
///
/// ```
/// use std::borrow::Cow;
/// use websyn_text::normalize::normalized;
///
/// assert!(matches!(normalized("canon eos 350d"), Cow::Borrowed(_)));
/// assert!(matches!(normalized("Canon EOS-350d"), Cow::Owned(_)));
/// assert_eq!(normalized("Canon EOS-350d"), normalized("canon eos 350d"));
/// ```
pub fn normalized(input: &str) -> std::borrow::Cow<'_, str> {
    if is_canonical(input) {
        std::borrow::Cow::Borrowed(input)
    } else {
        std::borrow::Cow::Owned(normalize(input))
    }
}

/// True iff `normalize(s) == s` by construction: lowercase ASCII
/// alphanumerics in single-space-separated words. One branchy byte
/// scan — cheaper than re-normalizing by an order of magnitude.
fn is_canonical(s: &str) -> bool {
    let bytes = s.as_bytes();
    if bytes.is_empty() {
        return true;
    }
    if bytes[0] == b' ' || bytes[bytes.len() - 1] == b' ' {
        return false;
    }
    let mut prev_space = false;
    for &b in bytes {
        match b {
            b'a'..=b'z' | b'0'..=b'9' => prev_space = false,
            b' ' => {
                if prev_space {
                    return false;
                }
                prev_space = true;
            }
            _ => return false,
        }
    }
    true
}

/// Folds common Latin-1 / Latin Extended-A diacritics to ASCII. Leaves
/// anything outside that range untouched.
pub fn fold_char(c: char) -> char {
    match c {
        'à' | 'á' | 'â' | 'ã' | 'ä' | 'å' | 'ā' | 'ă' => 'a',
        'À' | 'Á' | 'Â' | 'Ã' | 'Ä' | 'Å' | 'Ā' => 'A',
        'ç' | 'ć' | 'č' => 'c',
        'Ç' | 'Ć' | 'Č' => 'C',
        'è' | 'é' | 'ê' | 'ë' | 'ē' | 'ĕ' | 'ė' | 'ę' | 'ě' => 'e',
        'È' | 'É' | 'Ê' | 'Ë' | 'Ē' => 'E',
        'ì' | 'í' | 'î' | 'ï' | 'ī' | 'į' => 'i',
        'Ì' | 'Í' | 'Î' | 'Ï' => 'I',
        'ñ' | 'ń' | 'ň' => 'n',
        'Ñ' | 'Ń' => 'N',
        'ò' | 'ó' | 'ô' | 'õ' | 'ö' | 'ø' | 'ō' | 'ő' => 'o',
        'Ò' | 'Ó' | 'Ô' | 'Õ' | 'Ö' | 'Ø' => 'O',
        'ù' | 'ú' | 'û' | 'ü' | 'ū' | 'ů' => 'u',
        'Ù' | 'Ú' | 'Û' | 'Ü' => 'U',
        'ý' | 'ÿ' => 'y',
        'Ý' => 'Y',
        'ž' | 'ź' | 'ż' => 'z',
        'Ž' | 'Ź' | 'Ż' => 'Z',
        'ß' => 's', // lossy but sufficient for matching
        other => other,
    }
}

/// English stopwords relevant to title-style strings. Kept short on
/// purpose: aggressive stopword removal destroys entity names
/// ("The Dark Knight" must not become "dark knight" in the *canonical*
/// form — stopword dropping is an *alias transform*, see `abbrev`).
pub const STOPWORDS: &[&str] = &[
    "a", "an", "and", "at", "by", "for", "from", "in", "of", "on", "or", "the", "to", "with",
];

/// True if `word` (already normalized) is a stopword.
pub fn is_stopword(word: &str) -> bool {
    STOPWORDS.contains(&word)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lowercases_and_strips_punct() {
        assert_eq!(normalize("Indiana Jones 4"), "indiana jones 4");
        assert_eq!(
            normalize("Indiana Jones: The Kingdom!"),
            "indiana jones the kingdom"
        );
    }

    #[test]
    fn normalized_borrows_iff_canonical() {
        use std::borrow::Cow;
        // Borrowing implies normalize() is the identity.
        for s in ["canon eos 350d", "a", "x 2 y", ""] {
            assert!(matches!(normalized(s), Cow::Borrowed(_)), "{s:?}");
            assert_eq!(normalize(s), s);
        }
        // Anything normalize would change must take the owned path and
        // agree with normalize exactly.
        for s in [
            "Canon",
            " leading",
            "trailing ",
            "two  spaces",
            "dash-ed",
            "pokémon",
            "a&b",
            "don't",
            "Ümlaut",
            "tab\tsep",
        ] {
            assert!(matches!(normalized(s), Cow::Owned(_)), "{s:?}");
            assert_eq!(normalized(s), normalize(s), "{s:?}");
        }
    }

    #[test]
    fn collapses_whitespace() {
        assert_eq!(normalize("  a   b\t c \n"), "a b c");
        assert_eq!(normalize(""), "");
        assert_eq!(normalize("   "), "");
        assert_eq!(normalize("---"), "");
    }

    #[test]
    fn ampersand_becomes_and() {
        assert_eq!(normalize("Fast & Furious"), "fast and furious");
        assert_eq!(normalize("AT&T"), "at and t");
        let opts = NormalizeOptions {
            ampersand_to_and: false,
            ..Default::default()
        };
        assert_eq!(normalize_with("Fast & Furious", opts), "fast furious");
    }

    #[test]
    fn possessives_fold() {
        assert_eq!(normalize("Schindler's List"), "schindlers list");
        assert_eq!(normalize("Ocean’s Eleven"), "oceans eleven");
        // 's mid-word is not possessive.
        assert_eq!(normalize("whatsup"), "whatsup");
        // don't → dont (apostrophe dropped).
        assert_eq!(normalize("don't"), "dont");
    }

    #[test]
    fn diacritics_fold() {
        assert_eq!(normalize("Pokémon"), "pokemon");
        assert_eq!(normalize("Les Misérables"), "les miserables");
        assert_eq!(normalize("Björk"), "bjork");
    }

    #[test]
    fn diacritics_kept_when_disabled() {
        let opts = NormalizeOptions {
            fold_diacritics: false,
            ..Default::default()
        };
        assert_eq!(normalize_with("Pokémon", opts), "pokémon");
    }

    #[test]
    fn digits_survive() {
        assert_eq!(normalize("Canon EOS 350D"), "canon eos 350d");
        assert_eq!(normalize("2 Fast 2 Furious"), "2 fast 2 furious");
    }

    #[test]
    fn idempotent() {
        for s in [
            "Madagascar: Escape 2 Africa",
            "Fast & Furious",
            "Schindler's List",
            "Pokémon",
            "  odd   spacing  ",
        ] {
            let once = normalize(s);
            assert_eq!(normalize(&once), once, "input {s:?}");
        }
    }

    #[test]
    fn interpunct_and_dashes_break_words() {
        assert_eq!(normalize("WALL·E"), "wall e");
        assert_eq!(normalize("Spider-Man"), "spider man");
        assert_eq!(normalize("Mad Max — Fury Road"), "mad max fury road");
    }

    #[test]
    fn stopword_table() {
        assert!(is_stopword("the"));
        assert!(is_stopword("of"));
        assert!(!is_stopword("kingdom"));
        assert!(!is_stopword(""));
    }

    #[test]
    fn leading_punctuation_produces_no_leading_space() {
        assert_eq!(normalize(":colon first"), "colon first");
        assert_eq!(normalize("...ellipsis"), "ellipsis");
    }
}
