//! Phonetic codes.
//!
//! Soundex groups sound-alike words ("jones"/"johns"), used by the
//! synthetic misspelling model and as a feature of the edit-distance
//! baseline (fuzzy matchers commonly union trigram and phonetic
//! blocking).

/// American Soundex code of `word` (letter + 3 digits, zero padded),
/// or `None` if the word contains no ASCII letter.
///
/// # Examples
///
/// ```
/// use websyn_text::soundex;
///
/// assert_eq!(soundex("Robert").as_deref(), Some("R163"));
/// assert_eq!(soundex("Rupert").as_deref(), Some("R163"));
/// assert_eq!(soundex("Tymczak").as_deref(), Some("T522"));
/// assert_eq!(soundex("42"), None);
/// ```
pub fn soundex(word: &str) -> Option<String> {
    let letters: Vec<char> = word
        .chars()
        .filter(|c| c.is_ascii_alphabetic())
        .map(|c| c.to_ascii_uppercase())
        .collect();
    let &first = letters.first()?;

    let code_of = |c: char| -> u8 {
        match c {
            'B' | 'F' | 'P' | 'V' => 1,
            'C' | 'G' | 'J' | 'K' | 'Q' | 'S' | 'X' | 'Z' => 2,
            'D' | 'T' => 3,
            'L' => 4,
            'M' | 'N' => 5,
            'R' => 6,
            // 0 marks vowels/ignored letters (A E I O U Y H W).
            _ => 0,
        }
    };

    let mut out = String::with_capacity(4);
    out.push(first);
    let mut prev_code = code_of(first);
    let mut i = 1;
    while out.len() < 4 && i < letters.len() {
        let c = letters[i];
        let code = code_of(c);
        // H and W are transparent: they do not reset prev_code, so
        // consonants with the same code separated by H/W collapse.
        if c == 'H' || c == 'W' {
            i += 1;
            continue;
        }
        if code != 0 && code != prev_code {
            out.push(char::from(b'0' + code));
        }
        prev_code = code;
        i += 1;
    }
    while out.len() < 4 {
        out.push('0');
    }
    Some(out)
}

/// True iff two words share a Soundex code (both must be encodable).
pub fn sounds_like(a: &str, b: &str) -> bool {
    matches!((soundex(a), soundex(b)), (Some(x), Some(y)) if x == y)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_examples() {
        // Reference values from the Soundex specification (US census).
        assert_eq!(soundex("Robert").as_deref(), Some("R163"));
        assert_eq!(soundex("Rupert").as_deref(), Some("R163"));
        assert_eq!(soundex("Ashcraft").as_deref(), Some("A261"));
        assert_eq!(soundex("Ashcroft").as_deref(), Some("A261"));
        assert_eq!(soundex("Tymczak").as_deref(), Some("T522"));
        assert_eq!(soundex("Pfister").as_deref(), Some("P236"));
        assert_eq!(soundex("Honeyman").as_deref(), Some("H555"));
    }

    #[test]
    fn short_words_zero_pad() {
        assert_eq!(soundex("a").as_deref(), Some("A000"));
        assert_eq!(soundex("at").as_deref(), Some("A300"));
    }

    #[test]
    fn case_insensitive() {
        assert_eq!(soundex("JONES"), soundex("jones"));
    }

    #[test]
    fn non_letters_rejected_or_skipped() {
        assert_eq!(soundex(""), None);
        assert_eq!(soundex("123"), None);
        assert_eq!(soundex("o'brien"), soundex("obrien"));
    }

    #[test]
    fn double_letters_collapse() {
        assert_eq!(soundex("Gutierrez").as_deref(), Some("G362"));
        assert_eq!(soundex("Jackson").as_deref(), Some("J250"));
    }

    #[test]
    fn sounds_like_pairs() {
        assert!(sounds_like("jones", "johns"));
        assert!(sounds_like("smith", "smyth"));
        assert!(!sounds_like("jones", "ford"));
        assert!(!sounds_like("", "jones"));
    }

    #[test]
    fn code_shape() {
        for w in ["madagascar", "indiana", "kingdom", "crystal", "skull"] {
            let code = soundex(w).unwrap();
            assert_eq!(code.len(), 4);
            assert!(code.chars().next().unwrap().is_ascii_uppercase());
            assert!(code.chars().skip(1).all(|c| c.is_ascii_digit()));
        }
    }
}
