//! Token-level signature index for multi-token fuzzy candidate
//! generation.
//!
//! The char n-gram index ([`crate::ngram_index::NgramIndex`]) treats a
//! query window as one flat character string: every probe hashes every
//! padded gram of the window and scans posting lists shared by *any*
//! surface containing those characters. For multi-token windows that is
//! both slower and looser than it needs to be — after normalization the
//! window already has token structure, and a surface within a small
//! edit budget of a multi-token window almost always shares one of the
//! window's token *runs* verbatim (an edit damages the token it lands
//! in; the neighbours survive intact).
//!
//! [`TokenSignatureIndex`] exploits that with two key families:
//!
//! - every **token** of every surface, keyed by its text — the anchor
//!   for typo-class damage (the intact neighbours of a damaged token
//!   propose the true surface);
//! - every **de-spaced adjacent pair** (`"canon eos"` posted as
//!   `"canoneos"`) — the anchor for *space* damage: a query whose
//!   space was split out ("tv set" for surface token "tvset") or
//!   transposed with a letter ("th ebest" for "the best") concatenates
//!   to exactly a posted key, where no intact token exists to anchor.
//!   Query side, a two-token window's de-spaced concatenation is
//!   probed (its single space is the one edit being repaired; wider
//!   windows would need every space accounted for and are left to the
//!   documented residual).
//!
//! Every posting hit is pruned with three integer filters before the
//! caller pays for edit-distance verification:
//!
//! - **length band** — `|surface_chars − query_chars| ≤ k`;
//! - **token count** — a char edit inserts or deletes at most one
//!   space, so `|surface_tokens − query_tokens| ≤ k`;
//! - **aligned offset** — if an alignment within budget `k` matches the
//!   shared content on both sides, the prefixes before it differ by at
//!   most `k` edits, so the char offsets differ by at most `k`. A
//!   surface containing the anchor far from where the query has it is
//!   rejected without any distance computation.
//!
//! The index is a *filter* in the same sense as the n-gram index:
//! proposals must still be verified, and a window whose every token
//! was damaged beyond the space cases above may propose nothing (the
//! chain keeps the char-gram source as the single-token generator and
//! as a gated two-token fallback). See
//! [`crate::candidate::CandidateSource`].

use crate::candidate::{CandidateSource, PrefixHit};
use websyn_common::FxHashMap;

/// One occurrence of a posted key inside a surface.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Occurrence {
    /// Surface id (build-order position).
    surface: u32,
    /// Char offset of the key's first token inside the surface.
    offset: u32,
}

/// An inverted index from surface tokens and de-spaced adjacent token
/// pairs to the surfaces containing them, with length-band,
/// token-count and aligned-offset filters applied at query time.
///
/// Ids are the 0-based positions of the surfaces in the order they
/// were passed to [`TokenSignatureIndex::build`], matching every other
/// candidate source built over the same surface list.
///
/// # Examples
///
/// ```
/// use websyn_text::{CandidateSource, TokenSignatureIndex};
///
/// let idx = TokenSignatureIndex::build(["canon eos 350d", "nikon d80"]);
/// let mut out = Vec::new();
/// // A typo in one token: the intact runs anchor the true surface.
/// idx.propose("cannon eos 350d", 1, &mut out);
/// assert_eq!(out, vec![0]);
/// out.clear();
/// // Single-token queries are out of scope (no intact run can anchor
/// // a damaged lone token): pair the index with a char-gram source.
/// idx.propose("cannon", 1, &mut out);
/// assert!(out.is_empty());
/// ```
#[derive(Debug, Clone, Default)]
pub struct TokenSignatureIndex {
    /// token text / de-spaced pair text → occurrences, in ascending
    /// (surface, offset) order.
    postings: FxHashMap<Box<str>, Vec<Occurrence>>,
    /// Char length of each surface, by id.
    lengths: Vec<u32>,
    /// Token count of each surface, by id.
    token_counts: Vec<u32>,
}

/// One space-separated token of a query or surface: char-level
/// position (edit budgets are char-level) plus byte range (slicing is
/// byte-level).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct TokenPos {
    /// Char offset of the token's first char.
    char_start: u32,
    /// Char offset one past the token's last char.
    char_end: u32,
    /// Byte offset of the token's first byte.
    byte_start: u32,
    /// Byte offset one past the token's last byte.
    byte_end: u32,
}

/// Positions of every space-separated token of `s`, pushed into `out`
/// (cleared first). One pass; chars and bytes are tracked together so
/// neither slicing nor length math needs a second walk.
fn token_offsets(s: &str, out: &mut Vec<TokenPos>) {
    out.clear();
    let mut chars = 0u32;
    let mut start: Option<(u32, u32)> = None;
    for (byte, c) in s.char_indices() {
        if c == ' ' {
            if let Some((cs, bs)) = start.take() {
                out.push(TokenPos {
                    char_start: cs,
                    char_end: chars,
                    byte_start: bs,
                    byte_end: byte as u32,
                });
            }
        } else if start.is_none() {
            start = Some((chars, byte as u32));
        }
        chars += 1;
    }
    if let Some((cs, bs)) = start {
        out.push(TokenPos {
            char_start: cs,
            char_end: chars,
            byte_start: bs,
            byte_end: s.len() as u32,
        });
    }
}

impl TokenSignatureIndex {
    /// Indexes `surfaces`. Ids are build-order positions. Empty
    /// surfaces are kept (they occupy an id) but post no keys and are
    /// never proposed.
    pub fn build<S: AsRef<str>>(surfaces: impl IntoIterator<Item = S>) -> Self {
        let mut postings: FxHashMap<Box<str>, Vec<Occurrence>> = FxHashMap::default();
        let mut lengths = Vec::new();
        let mut token_counts = Vec::new();
        let mut tokens: Vec<TokenPos> = Vec::new();
        let mut despaced = String::new();
        for (id, surface) in surfaces.into_iter().enumerate() {
            let surface = surface.as_ref();
            let id = u32::try_from(id).expect("more than u32::MAX surfaces");
            token_offsets(surface, &mut tokens);
            lengths.push(surface.chars().count() as u32);
            token_counts.push(tokens.len() as u32);
            for (i, a) in tokens.iter().enumerate() {
                let token = &surface[a.byte_start as usize..a.byte_end as usize];
                postings
                    .entry(Box::from(token))
                    .or_default()
                    .push(Occurrence {
                        surface: id,
                        offset: a.char_start,
                    });
                // De-spaced adjacent pair: the space-damage anchor.
                if let Some(b) = tokens.get(i + 1) {
                    despaced.clear();
                    despaced.push_str(token);
                    despaced.push_str(&surface[b.byte_start as usize..b.byte_end as usize]);
                    postings
                        .entry(Box::from(despaced.as_str()))
                        .or_default()
                        .push(Occurrence {
                            surface: id,
                            offset: a.char_start,
                        });
                }
            }
        }
        // Build order visits surfaces ascending, so each posting list
        // is already (surface, offset)-sorted.
        Self {
            postings,
            lengths,
            token_counts,
        }
    }

    /// Number of indexed surfaces.
    pub fn len(&self) -> usize {
        self.lengths.len()
    }

    /// Whether the index holds no surfaces.
    pub fn is_empty(&self) -> bool {
        self.lengths.is_empty()
    }

    /// Number of distinct posted runs.
    pub fn n_runs(&self) -> usize {
        self.postings.len()
    }

    /// Char length of surface `id` as recorded at build time.
    pub fn surface_len(&self, id: u32) -> usize {
        self.lengths[id as usize] as usize
    }

    /// Token count of surface `id` as recorded at build time.
    pub fn surface_tokens(&self, id: u32) -> usize {
        self.token_counts[id as usize] as usize
    }

    /// [`CandidateSource::propose`] into a caller-owned buffer,
    /// appending without clearing (the allocation-free form). Proposes
    /// nothing for single-token or empty queries, or at `max_dist` 0.
    ///
    /// Every query token is probed against the postings regardless of
    /// any dictionary-vocabulary knowledge the caller holds: an
    /// out-of-vocabulary token can still equal a posted *de-spaced
    /// pair* key (a merged-space typo, "canoneos"), so skipping it
    /// would silently lose within-budget matches. The probe is one
    /// hash lookup per token either way.
    pub fn candidates_into(&self, query: &str, max_dist: usize, out: &mut Vec<u32>) {
        if max_dist == 0 || self.is_empty() {
            return;
        }
        thread_local! {
            static SCRATCH: std::cell::RefCell<(Vec<TokenPos>, String)> =
                const { std::cell::RefCell::new((Vec::new(), String::new()) )};
        }
        SCRATCH.with_borrow_mut(|(tokens, despaced)| {
            token_offsets(query, tokens);
            let m = tokens.len();
            if m < 2 {
                return;
            }
            // Queries are normalized (no trailing spaces), so the last
            // token's end is the query's char length.
            let q_len = tokens[m - 1].char_end;
            let k = max_dist as u32;
            let start = out.len();
            let filter_push = |occurrences: &[Occurrence], at: u32, out: &mut Vec<u32>| {
                for occ in occurrences {
                    let s = occ.surface as usize;
                    if self.lengths[s].abs_diff(q_len) <= k
                        && self.token_counts[s].abs_diff(m as u32) <= k
                        && occ.offset.abs_diff(at) <= k
                    {
                        out.push(occ.surface);
                    }
                }
            };
            // Token anchors: intact tokens, and merged-space query
            // tokens hitting a de-spaced pair key.
            for a in tokens.iter() {
                let token = &query[a.byte_start as usize..a.byte_end as usize];
                if let Some(occurrences) = self.postings.get(token) {
                    filter_push(occurrences, a.char_start, out);
                }
            }
            // Space-damage anchor, for two-token windows (one space to
            // account for): the de-spaced window matches a surface
            // token (split-out space, "tv set" → "tvset") or a posted
            // de-spaced pair (space/letter transposition, "th ebest" →
            // "the best"). Wider windows would need every space
            // accounted for and are left to the documented residual.
            if m == 2 {
                despaced.clear();
                for t in tokens.iter() {
                    despaced.push_str(&query[t.byte_start as usize..t.byte_end as usize]);
                }
                if let Some(occurrences) = self.postings.get(despaced.as_str()) {
                    filter_push(occurrences, 0, out);
                }
            }
            // Sort + dedup only the appended region, preserving the
            // buffer contract shared with the other sources.
            out[start..].sort_unstable();
            let mut w = start;
            for r in start..out.len() {
                if w == start || out[w - 1] != out[r] {
                    out[w] = out[r];
                    w += 1;
                }
            }
            out.truncate(w);
        })
    }
}

impl CandidateSource for TokenSignatureIndex {
    fn name(&self) -> &'static str {
        "token-sig"
    }

    fn propose(&self, query: &str, max_dist: usize, out: &mut Vec<u32>) {
        self.candidates_into(query, max_dist, out);
    }

    /// One probe pass for every token-aligned prefix window of
    /// `query`: each query token (and the two-token de-spaced concat)
    /// hits the postings exactly once, instead of once per window
    /// length containing it. Collected hits carry the anchor geometry,
    /// pre-screened only by window-*independent* bounds — the aligned
    /// offset (identical for every prefix, since all prefixes share
    /// the query's start) and the *upper* length/token-count bands of
    /// the longest prefix (shorter prefixes only tighten those caps
    /// downward; their lower bands must wait for
    /// [`TokenSignatureIndex::filter_prefix`]).
    fn propose_prefix(&self, query: &str, max_dist: usize, out: &mut Vec<PrefixHit>) -> bool {
        if max_dist == 0 || self.is_empty() {
            return true;
        }
        thread_local! {
            static SCRATCH: std::cell::RefCell<(Vec<TokenPos>, String)> =
                const { std::cell::RefCell::new((Vec::new(), String::new()) )};
        }
        SCRATCH.with_borrow_mut(|(tokens, despaced)| {
            token_offsets(query, tokens);
            let m = tokens.len();
            if m < 2 {
                // No multi-token prefix exists; single-token windows
                // are out of scope exactly as in `propose`.
                return;
            }
            let k = max_dist as u32;
            let token_cap = m as u32 + k;
            let len_cap = tokens[m - 1].char_end + k;
            let collect = |occurrences: &[Occurrence],
                           at: u32,
                           token_index: u32,
                           out: &mut Vec<PrefixHit>| {
                for occ in occurrences {
                    let s = occ.surface as usize;
                    if occ.offset.abs_diff(at) <= k
                        && self.token_counts[s] <= token_cap
                        && self.lengths[s] <= len_cap
                    {
                        out.push(PrefixHit {
                            surface: occ.surface,
                            token_index,
                            query_offset: at,
                            surface_offset: occ.offset,
                        });
                    }
                }
            };
            for (ti, a) in tokens.iter().enumerate() {
                let token = &query[a.byte_start as usize..a.byte_end as usize];
                if let Some(occurrences) = self.postings.get(token) {
                    collect(occurrences, a.char_start, ti as u32, out);
                }
            }
            // The two-token prefix's space-damage probe (see
            // `candidates_into`): fixed per position, probed once.
            despaced.clear();
            for t in &tokens[..2] {
                despaced.push_str(&query[t.byte_start as usize..t.byte_end as usize]);
            }
            if let Some(occurrences) = self.postings.get(despaced.as_str()) {
                collect(occurrences, 0, PrefixHit::DESPACED, out);
            }
        });
        true
    }

    /// Replays [`TokenSignatureIndex::candidates_into`]'s filters for
    /// one prefix window over the pre-collected hits: same length
    /// band, token-count band and aligned-offset screen, same
    /// sort-and-dedup output contract — byte-identical proposals,
    /// minus the per-window posting probes.
    fn filter_prefix(
        &self,
        hits: &[PrefixHit],
        n_tokens: usize,
        query_chars: usize,
        max_dist: usize,
        out: &mut Vec<u32>,
    ) {
        if max_dist == 0 || n_tokens < 2 {
            return;
        }
        let k = max_dist as u32;
        let t = n_tokens as u32;
        let q_len = query_chars as u32;
        let start = out.len();
        for hit in hits {
            let in_window = if hit.token_index == PrefixHit::DESPACED {
                n_tokens == 2
            } else {
                hit.token_index < t
            };
            if !in_window {
                continue;
            }
            let s = hit.surface as usize;
            if self.lengths[s].abs_diff(q_len) <= k
                && self.token_counts[s].abs_diff(t) <= k
                && hit.surface_offset.abs_diff(hit.query_offset) <= k
            {
                out.push(hit.surface);
            }
        }
        out[start..].sort_unstable();
        let mut w = start;
        for r in start..out.len() {
            if w == start || out[w - 1] != out[r] {
                out[w] = out[r];
                w += 1;
            }
        }
        out.truncate(w);
    }

    fn proposes_unanchored(&self, n_tokens: usize, max_dist: usize) -> bool {
        // Without an in-vocabulary token, a window can only resolve
        // through the space-damage anchors — a merged query token
        // equalling a de-spaced pair key, or the two-token de-spaced
        // concat. A two-token window needs one space edit; a
        // three-token window needs two (one pair-key merge plus one
        // adjacent merge of the remaining tokens, e.g. "abcd ef gh"
        // for surface "ab cd efgh"); four or more out-of-vocabulary
        // tokens cannot all be explained within a two-edit budget.
        (n_tokens == 2 && max_dist >= 1) || (n_tokens == 3 && max_dist >= 2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::damerau_levenshtein;

    fn index() -> TokenSignatureIndex {
        TokenSignatureIndex::build([
            "canon eos 350d",
            "canon eos 400d",
            "nikon d80",
            "indiana jones 4",
            "indy 4",
        ])
    }

    #[test]
    fn exact_multi_token_string_is_its_own_candidate() {
        let idx = index();
        let mut out = Vec::new();
        idx.propose("canon eos 350d", 1, &mut out);
        assert!(out.contains(&0), "{out:?}");
    }

    #[test]
    fn one_typo_keeps_the_true_surface_via_intact_runs() {
        let idx = index();
        // Substitution, deletion, insertion, transposition — in any
        // token of the window.
        for q in [
            "cannon eos 350d",
            "canon eo 350d",
            "canon eos 3500d",
            "cnaon eos 350d",
            "canon eos 35d0",
        ] {
            let mut out = Vec::new();
            idx.propose(q, 2, &mut out);
            assert!(out.contains(&0), "{q:?} lost surface 0: {out:?}");
        }
    }

    #[test]
    fn merged_space_recalls_through_pair_runs() {
        // "canoneos 350d" deletes the space: the query token "canoneos"
        // anchors nothing, but the intact "350d" run does — and the
        // surface pair run "canon eos" is also posted, so the reverse
        // direction (query pair "eos 350d" vs a merged surface token)
        // works symmetrically.
        let idx = TokenSignatureIndex::build(["canon eos 350d", "canoneos 350x"]);
        let mut out = Vec::new();
        idx.propose("canoneos 350d", 2, &mut out);
        assert_eq!(out, vec![0, 1]);
    }

    #[test]
    fn split_space_anchors_through_despaced_keys() {
        // The query split a space out of a surface token: no intact
        // token matches, but the de-spaced window does.
        let idx = TokenSignatureIndex::build(["tvset deluxe", "tvset"]);
        let mut out = Vec::new();
        idx.propose("tv set", 1, &mut out);
        assert_eq!(out, vec![1], "length band keeps only the true surface");
    }

    #[test]
    fn space_letter_transposition_anchors_through_despaced_pairs() {
        // "th ebest" is one OSA edit from "the best" (space ↔ 'e'):
        // both tokens are damaged, but the de-spaced window "thebest"
        // equals the posted de-spaced pair of the surface.
        let idx = TokenSignatureIndex::build(["the best", "the rest"]);
        let mut out = Vec::new();
        idx.propose("th ebest", 1, &mut out);
        assert_eq!(out, vec![0]);
    }

    #[test]
    fn offset_filter_rejects_misplaced_anchors() {
        // Both surfaces contain the token "2", but only at offsets
        // compatible with where the query has it.
        let idx = TokenSignatureIndex::build(["madagascar 2", "2 fast furious"]);
        let mut out = Vec::new();
        idx.propose("madagascat 2", 1, &mut out);
        assert_eq!(out, vec![0], "anchor '2' at offset 11 vs 0 must filter");
    }

    #[test]
    fn token_count_and_length_filters_apply() {
        let idx = index();
        let mut out = Vec::new();
        // Shares the run "eos" but is 9 chars longer than any surface.
        idx.propose("canon eos 350d super zoom kit", 2, &mut out);
        assert!(out.is_empty(), "{out:?}");
        out.clear();
        // Shares "indiana jones" but the window has 5 tokens vs 3.
        idx.propose("indiana jones 4 x y", 2, &mut out);
        // Length filter also rejects here; either way nothing passes.
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn single_token_and_zero_budget_propose_nothing() {
        let idx = index();
        let mut out = Vec::new();
        idx.propose("cannon", 2, &mut out);
        assert!(out.is_empty(), "single-token queries are out of scope");
        idx.propose("canon eos 350d", 0, &mut out);
        assert!(out.is_empty());
        idx.propose("", 2, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn proposals_are_sorted_deduped_and_appended() {
        let idx = index();
        let mut out = vec![99];
        idx.propose("canon eos 350e", 2, &mut out);
        assert_eq!(out[0], 99, "buffer prefix untouched");
        let appended = &out[1..];
        let mut sorted = appended.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(appended, sorted);
    }

    #[test]
    fn every_one_edit_neighbour_with_an_intact_token_survives() {
        // The documented recall contract: a multi-token query one edit
        // away from a surface always shares an intact token run, so
        // generation never loses it.
        let surfaces = ["canon eos 350d", "nikon d80 kit", "indiana jones 4"];
        let idx = TokenSignatureIndex::build(surfaces);
        for (id, s) in surfaces.iter().enumerate() {
            // Damage each char position by substitution.
            let chars: Vec<char> = s.chars().collect();
            for pos in 0..chars.len() {
                let mut q: Vec<char> = chars.clone();
                q[pos] = if q[pos] == 'q' { 'z' } else { 'q' };
                let q: String = q.into_iter().collect();
                let mut out = Vec::new();
                idx.propose(&q, 2, &mut out);
                assert!(
                    damerau_levenshtein(&q, s) > 2 || out.contains(&(id as u32)),
                    "{q:?} lost {s:?}"
                );
            }
        }
    }

    #[test]
    fn empty_inputs() {
        let idx = TokenSignatureIndex::build(std::iter::empty::<&str>());
        assert!(idx.is_empty());
        let mut out = Vec::new();
        idx.propose("a b", 2, &mut out);
        assert!(out.is_empty());
        let with_empty = TokenSignatureIndex::build(["", "a b"]);
        assert_eq!(with_empty.len(), 2);
        out.clear();
        with_empty.propose("a b", 1, &mut out);
        assert_eq!(out, vec![1]);
    }

    #[test]
    fn prefix_form_matches_per_window_proposals() {
        use crate::candidate::PrefixHit;
        // The per-position contract: for every token-aligned prefix
        // window and every budget ≤ the collection budget,
        // filter_prefix over one propose_prefix pass must equal a
        // fresh propose over the window text.
        let idx = TokenSignatureIndex::build([
            "canon eos 350d",
            "canon eos 400d",
            "nikon d80",
            "indiana jones 4",
            "indy 4",
            "tvset",
            "the best",
            "canoneos 350x",
        ]);
        let queries = [
            "cannon eos 350d best price",
            "canoneos 350d review",
            "tv set deluxe model",
            "th ebest of indiana jnoes 4",
            "canon eos 350d",
            "zzz yyy xxx",
            "2 fast furious",
        ];
        for query in queries {
            for k_max in 1usize..=2 {
                let mut hits: Vec<PrefixHit> = Vec::new();
                assert!(idx.propose_prefix(query, k_max, &mut hits));
                // Every token-aligned prefix of the query.
                let token_ends: Vec<usize> = query
                    .char_indices()
                    .filter(|&(_, c)| c == ' ')
                    .map(|(i, _)| i)
                    .chain([query.len()])
                    .collect();
                for (t, &end) in token_ends.iter().enumerate() {
                    let window = &query[..end];
                    let n_tokens = t + 1;
                    for k in 0..=k_max {
                        let mut direct = Vec::new();
                        idx.propose(window, k, &mut direct);
                        let mut filtered = vec![7u32]; // prefix must survive
                        idx.filter_prefix(
                            &hits,
                            n_tokens,
                            window.chars().count(),
                            k,
                            &mut filtered,
                        );
                        assert_eq!(filtered[0], 7);
                        assert_eq!(
                            &filtered[1..],
                            &direct[..],
                            "window {window:?} k={k} k_max={k_max}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn non_ascii_surfaces_slice_correctly() {
        let idx = TokenSignatureIndex::build(["café noir 2", "tokyo 東京 3"]);
        assert_eq!(idx.surface_len(0), 11);
        let mut out = Vec::new();
        idx.propose("cafe noir 2", 1, &mut out);
        assert_eq!(out, vec![0], "intact runs anchor across non-ascii");
    }
}
