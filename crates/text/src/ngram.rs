//! N-grams and set similarities.
//!
//! Character n-grams back the fuzzy string baseline (Lucene-style
//! trigram matching); word n-grams back the query segmenter. The set
//! similarities (Jaccard, Dice, cosine, overlap) are shared by baselines
//! and diagnostics.

use websyn_common::FxHashSet;

/// Character `n`-grams of `s`, with `#` padding on both ends
/// (`n-1` pad characters), the standard trick so that prefixes and
/// suffixes contribute distinguishable grams.
///
/// Returns an empty vec for `n == 0`; for non-empty `s`, always returns
/// at least one gram.
///
/// # Examples
///
/// ```
/// use websyn_text::char_ngrams;
///
/// let grams = char_ngrams("ab", 2);
/// assert_eq!(grams, vec!["#a".to_string(), "ab".into(), "b#".into()]);
/// ```
pub fn char_ngrams(s: &str, n: usize) -> Vec<String> {
    if n == 0 {
        return Vec::new();
    }
    let chars: Vec<char> = s.chars().collect();
    if chars.is_empty() {
        return Vec::new();
    }
    let pad = n - 1;
    let mut padded = Vec::with_capacity(chars.len() + 2 * pad);
    padded.extend(std::iter::repeat_n('#', pad));
    padded.extend_from_slice(&chars);
    padded.extend(std::iter::repeat_n('#', pad));
    padded
        .windows(n)
        .map(|w| w.iter().collect::<String>())
        .collect()
}

/// Word `n`-grams over a pre-tokenized sequence. No padding: returns an
/// empty vec when there are fewer than `n` words.
pub fn word_ngrams<'a>(words: &[&'a str], n: usize) -> Vec<Vec<&'a str>> {
    if n == 0 || words.len() < n {
        return Vec::new();
    }
    words.windows(n).map(|w| w.to_vec()).collect()
}

/// Jaccard similarity `|A ∩ B| / |A ∪ B|` of two gram multiset-collapsed
/// sets. Both-empty inputs score 1.
pub fn jaccard<T: std::hash::Hash + Eq>(a: &[T], b: &[T]) -> f64 {
    let sa: FxHashSet<&T> = a.iter().collect();
    let sb: FxHashSet<&T> = b.iter().collect();
    if sa.is_empty() && sb.is_empty() {
        return 1.0;
    }
    let inter = sa.intersection(&sb).count();
    let union = sa.len() + sb.len() - inter;
    inter as f64 / union as f64
}

/// Sørensen–Dice coefficient `2|A ∩ B| / (|A| + |B|)`.
/// Both-empty inputs score 1.
pub fn dice<T: std::hash::Hash + Eq>(a: &[T], b: &[T]) -> f64 {
    let sa: FxHashSet<&T> = a.iter().collect();
    let sb: FxHashSet<&T> = b.iter().collect();
    if sa.is_empty() && sb.is_empty() {
        return 1.0;
    }
    let inter = sa.intersection(&sb).count();
    2.0 * inter as f64 / (sa.len() + sb.len()) as f64
}

/// Set cosine similarity `|A ∩ B| / sqrt(|A|·|B|)`.
/// Both-empty inputs score 1; one-empty scores 0.
pub fn cosine<T: std::hash::Hash + Eq>(a: &[T], b: &[T]) -> f64 {
    let sa: FxHashSet<&T> = a.iter().collect();
    let sb: FxHashSet<&T> = b.iter().collect();
    match (sa.is_empty(), sb.is_empty()) {
        (true, true) => 1.0,
        (true, false) | (false, true) => 0.0,
        _ => {
            let inter = sa.intersection(&sb).count();
            inter as f64 / ((sa.len() as f64) * (sb.len() as f64)).sqrt()
        }
    }
}

/// Overlap coefficient `|A ∩ B| / min(|A|, |B|)`.
/// Both-empty inputs score 1; one-empty scores 0.
pub fn overlap_coefficient<T: std::hash::Hash + Eq>(a: &[T], b: &[T]) -> f64 {
    let sa: FxHashSet<&T> = a.iter().collect();
    let sb: FxHashSet<&T> = b.iter().collect();
    match (sa.is_empty(), sb.is_empty()) {
        (true, true) => 1.0,
        (true, false) | (false, true) => 0.0,
        _ => {
            let inter = sa.intersection(&sb).count();
            inter as f64 / sa.len().min(sb.len()) as f64
        }
    }
}

/// Trigram Jaccard similarity of two strings — the workhorse of the
/// fuzzy string baseline.
pub fn trigram_similarity(a: &str, b: &str) -> f64 {
    jaccard(&char_ngrams(a, 3), &char_ngrams(b, 3))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn char_ngrams_with_padding() {
        assert_eq!(char_ngrams("abc", 2), vec!["#a", "ab", "bc", "c#"]);
        assert_eq!(char_ngrams("ab", 3), vec!["##a", "#ab", "ab#", "b##"]);
    }

    #[test]
    fn char_ngrams_unigrams_have_no_padding() {
        assert_eq!(char_ngrams("abc", 1), vec!["a", "b", "c"]);
    }

    #[test]
    fn char_ngrams_edge_cases() {
        assert!(char_ngrams("", 3).is_empty());
        assert!(char_ngrams("abc", 0).is_empty());
        // Single char with n=2: padded to "#a", "a#".
        assert_eq!(char_ngrams("a", 2), vec!["#a", "a#"]);
    }

    #[test]
    fn word_ngrams_windows() {
        let words = ["indiana", "jones", "4"];
        let bi = word_ngrams(&words, 2);
        assert_eq!(bi, vec![vec!["indiana", "jones"], vec!["jones", "4"]]);
        assert!(word_ngrams(&words, 4).is_empty());
        assert!(word_ngrams(&words, 0).is_empty());
    }

    #[test]
    fn jaccard_known() {
        assert_eq!(jaccard::<u32>(&[], &[]), 1.0);
        assert_eq!(jaccard(&[1, 2, 3], &[1, 2, 3]), 1.0);
        assert_eq!(jaccard(&[1, 2], &[3, 4]), 0.0);
        assert!((jaccard(&[1, 2, 3], &[2, 3, 4]) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn jaccard_ignores_duplicates() {
        assert_eq!(jaccard(&[1, 1, 2], &[1, 2, 2]), 1.0);
    }

    #[test]
    fn dice_known() {
        assert_eq!(dice::<u32>(&[], &[]), 1.0);
        assert_eq!(dice(&[1, 2], &[1, 2]), 1.0);
        assert!((dice(&[1, 2, 3], &[2, 3, 4]) - (4.0 / 6.0)).abs() < 1e-12);
    }

    #[test]
    fn cosine_known() {
        assert_eq!(cosine::<u32>(&[], &[]), 1.0);
        assert_eq!(cosine::<u32>(&[], &[1]), 0.0);
        assert_eq!(cosine(&[1, 2], &[1, 2]), 1.0);
        let v = cosine(&[1, 2, 3, 4], &[3, 4]);
        assert!((v - 2.0 / (4.0f64 * 2.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn overlap_known() {
        assert_eq!(overlap_coefficient::<u32>(&[], &[]), 1.0);
        assert_eq!(overlap_coefficient(&[1, 2, 3], &[2, 3]), 1.0);
        assert_eq!(overlap_coefficient(&[1], &[2]), 0.0);
    }

    #[test]
    fn trigram_similarity_behaviour() {
        assert_eq!(trigram_similarity("indiana", "indiana"), 1.0);
        let near = trigram_similarity("indiana", "indianna");
        let far = trigram_similarity("indiana", "harrison");
        assert!(near > far);
        assert!(near > 0.5);
        assert!(far < 0.2);
    }

    #[test]
    fn dice_geq_jaccard() {
        // Dice ≥ Jaccard always (2j/(1+j) ≥ j for j in [0,1]).
        for (a, b) in [
            (vec![1, 2, 3], vec![2, 3, 4]),
            (vec![1], vec![1]),
            (vec![1, 2], vec![3]),
        ] {
            assert!(dice(&a, &b) >= jaccard(&a, &b) - 1e-12);
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn similarities_in_unit_interval(
            a in proptest::collection::vec(0u8..16, 0..12),
            b in proptest::collection::vec(0u8..16, 0..12),
        ) {
            for v in [jaccard(&a, &b), dice(&a, &b), cosine(&a, &b), overlap_coefficient(&a, &b)] {
                prop_assert!((0.0..=1.0 + 1e-12).contains(&v), "v={}", v);
            }
        }

        #[test]
        fn jaccard_symmetric(
            a in proptest::collection::vec(0u8..16, 0..12),
            b in proptest::collection::vec(0u8..16, 0..12),
        ) {
            prop_assert!((jaccard(&a, &b) - jaccard(&b, &a)).abs() < 1e-12);
        }

        #[test]
        fn ngram_count_formula(s in "[a-z]{1,20}", n in 1usize..5) {
            // With n-1 padding both sides: count = len + n - 1.
            let count = char_ngrams(&s, n).len();
            prop_assert_eq!(count, s.len() + n - 1);
        }

        #[test]
        fn identical_strings_score_one(s in "[a-z]{0,16}") {
            prop_assert!((trigram_similarity(&s, &s) - 1.0).abs() < 1e-12);
        }
    }
}
