//! Numeral transforms: roman ↔ arabic ↔ English words.
//!
//! Sequel naming is the single most productive source of movie-title
//! synonymy ("Indiana Jones IV" / "Indiana Jones 4" / "Indiana Jones
//! Four"), so the alias generator needs reliable conversions in every
//! direction. Ranges are bounded to what titles actually use
//! (1..=3999 for roman; 0..=99 for words) — larger values are a caller
//! bug, reported with `None`.

/// Converts an arabic number in `1..=3999` to uppercase roman numerals.
///
/// # Examples
///
/// ```
/// use websyn_text::arabic_to_roman;
///
/// assert_eq!(arabic_to_roman(4).as_deref(), Some("IV"));
/// assert_eq!(arabic_to_roman(1998).as_deref(), Some("MCMXCVIII"));
/// assert_eq!(arabic_to_roman(0), None);
/// ```
pub fn arabic_to_roman(mut n: u32) -> Option<String> {
    if n == 0 || n > 3999 {
        return None;
    }
    const TABLE: &[(u32, &str)] = &[
        (1000, "M"),
        (900, "CM"),
        (500, "D"),
        (400, "CD"),
        (100, "C"),
        (90, "XC"),
        (50, "L"),
        (40, "XL"),
        (10, "X"),
        (9, "IX"),
        (5, "V"),
        (4, "IV"),
        (1, "I"),
    ];
    let mut out = String::new();
    for &(value, glyph) in TABLE {
        while n >= value {
            out.push_str(glyph);
            n -= value;
        }
    }
    Some(out)
}

/// Parses a roman numeral (case-insensitive) in `1..=3999`. Rejects
/// malformed sequences ("IIII", "IC", "VX", empty).
pub fn roman_to_arabic(s: &str) -> Option<u32> {
    if s.is_empty() {
        return None;
    }
    let digit = |c: char| -> Option<u32> {
        match c.to_ascii_uppercase() {
            'I' => Some(1),
            'V' => Some(5),
            'X' => Some(10),
            'L' => Some(50),
            'C' => Some(100),
            'D' => Some(500),
            'M' => Some(1000),
            _ => None,
        }
    };
    let values: Option<Vec<u32>> = s.chars().map(digit).collect();
    let values = values?;
    let mut total: u32 = 0;
    let mut i = 0;
    while i < values.len() {
        let v = values[i];
        if i + 1 < values.len() && values[i + 1] > v {
            total = total.checked_add(values[i + 1] - v)?;
            i += 2;
        } else {
            total = total.checked_add(v)?;
            i += 1;
        }
    }
    // Canonical-form check: re-encoding must reproduce the input. This
    // rejects "IIII", "IC", "XM", "VX" etc. in one stroke.
    let canonical = arabic_to_roman(total)?;
    (canonical.eq_ignore_ascii_case(s)).then_some(total)
}

const ONES: [&str; 20] = [
    "zero",
    "one",
    "two",
    "three",
    "four",
    "five",
    "six",
    "seven",
    "eight",
    "nine",
    "ten",
    "eleven",
    "twelve",
    "thirteen",
    "fourteen",
    "fifteen",
    "sixteen",
    "seventeen",
    "eighteen",
    "nineteen",
];
const TENS: [&str; 10] = [
    "", "", "twenty", "thirty", "forty", "fifty", "sixty", "seventy", "eighty", "ninety",
];

/// Converts `0..=99` to English words (hyphenless, lowercase:
/// "twenty one"), matching query-style text.
pub fn arabic_to_words(n: u32) -> Option<String> {
    match n {
        0..=19 => Some(ONES[n as usize].to_string()),
        20..=99 => {
            let t = TENS[(n / 10) as usize];
            let o = n % 10;
            if o == 0 {
                Some(t.to_string())
            } else {
                Some(format!("{t} {}", ONES[o as usize]))
            }
        }
        _ => None,
    }
}

/// Parses English number words in `0..=99` ("seven", "twenty one",
/// "twenty-one"). Case-insensitive.
pub fn words_to_arabic(s: &str) -> Option<u32> {
    let cleaned = s.trim().to_ascii_lowercase().replace('-', " ");
    let parts: Vec<&str> = cleaned.split_whitespace().collect();
    match parts.as_slice() {
        [one] => {
            if let Some(i) = ONES.iter().position(|w| w == one) {
                return Some(i as u32);
            }
            TENS.iter()
                .position(|w| !w.is_empty() && w == one)
                .map(|i| (i * 10) as u32)
        }
        [ten, one] => {
            let t = TENS.iter().position(|w| !w.is_empty() && w == ten)?;
            let o = ONES.iter().position(|w| w == one)?;
            (1..=9).contains(&o).then_some((t * 10 + o) as u32)
        }
        _ => None,
    }
}

/// True iff `s` parses as a roman numeral. Convenience for token
/// classification in alias transforms.
pub fn is_roman(s: &str) -> bool {
    roman_to_arabic(s).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roman_small_values() {
        let expect = [
            (1, "I"),
            (2, "II"),
            (3, "III"),
            (4, "IV"),
            (5, "V"),
            (6, "VI"),
            (9, "IX"),
            (10, "X"),
            (14, "XIV"),
            (40, "XL"),
            (90, "XC"),
            (400, "CD"),
            (900, "CM"),
            (3999, "MMMCMXCIX"),
        ];
        for (n, r) in expect {
            assert_eq!(arabic_to_roman(n).as_deref(), Some(r), "n={n}");
            assert_eq!(roman_to_arabic(r), Some(n), "r={r}");
        }
    }

    #[test]
    fn roman_out_of_range() {
        assert_eq!(arabic_to_roman(0), None);
        assert_eq!(arabic_to_roman(4000), None);
    }

    #[test]
    fn roman_parse_case_insensitive() {
        assert_eq!(roman_to_arabic("iv"), Some(4));
        assert_eq!(roman_to_arabic("Xiv"), Some(14));
    }

    #[test]
    fn roman_rejects_malformed() {
        for bad in ["", "IIII", "IC", "VX", "XM", "IL", "MMMM", "ABC", "IVI"] {
            assert_eq!(roman_to_arabic(bad), None, "bad={bad}");
        }
    }

    #[test]
    fn roman_roundtrip_full_range() {
        for n in 1..=3999 {
            let r = arabic_to_roman(n).unwrap();
            assert_eq!(roman_to_arabic(&r), Some(n), "n={n} r={r}");
        }
    }

    #[test]
    fn words_basic() {
        assert_eq!(arabic_to_words(0).as_deref(), Some("zero"));
        assert_eq!(arabic_to_words(7).as_deref(), Some("seven"));
        assert_eq!(arabic_to_words(15).as_deref(), Some("fifteen"));
        assert_eq!(arabic_to_words(20).as_deref(), Some("twenty"));
        assert_eq!(arabic_to_words(21).as_deref(), Some("twenty one"));
        assert_eq!(arabic_to_words(99).as_deref(), Some("ninety nine"));
        assert_eq!(arabic_to_words(100), None);
    }

    #[test]
    fn words_parse() {
        assert_eq!(words_to_arabic("seven"), Some(7));
        assert_eq!(words_to_arabic("Twenty One"), Some(21));
        assert_eq!(words_to_arabic("twenty-one"), Some(21));
        assert_eq!(words_to_arabic("ninety"), Some(90));
        assert_eq!(words_to_arabic("zero"), Some(0));
        assert_eq!(words_to_arabic(""), None);
        assert_eq!(words_to_arabic("twenty zero"), None);
        assert_eq!(words_to_arabic("hello"), None);
        assert_eq!(words_to_arabic("one two three"), None);
    }

    #[test]
    fn words_roundtrip() {
        for n in 0..=99 {
            let w = arabic_to_words(n).unwrap();
            assert_eq!(words_to_arabic(&w), Some(n), "n={n} w={w}");
        }
    }

    #[test]
    fn is_roman_classifier() {
        assert!(is_roman("IV"));
        assert!(is_roman("xiv"));
        assert!(!is_roman("4"));
        assert!(!is_roman("indy"));
        // Single letters that are valid numerals:
        assert!(is_roman("i"));
        assert!(is_roman("x"));
    }
}
