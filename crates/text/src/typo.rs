//! QWERTY keyboard typo channel.
//!
//! The query-stream simulator corrupts a fraction of issued queries the
//! way real users do: adjacent-key substitutions, dropped letters,
//! doubled letters and adjacent transpositions. The channel is
//! parameterized by a per-character error rate and is fully
//! deterministic under a seeded RNG.

use rand::Rng;

/// Typo operation applied to a string.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TypoOp {
    /// Replace a character with a keyboard neighbour.
    Substitute,
    /// Delete a character.
    Delete,
    /// Insert (double) a character.
    Insert,
    /// Swap two adjacent characters.
    Transpose,
}

/// A configurable keyboard typo generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TypoModel {
    /// Probability that a given query gets at least one typo.
    pub query_error_rate: f64,
    /// Relative weight of each operation (substitute, delete, insert,
    /// transpose); need not sum to 1.
    pub op_weights: [f64; 4],
}

impl Default for TypoModel {
    fn default() -> Self {
        Self {
            // Roughly in line with published query-log spelling studies:
            // ~10-15% of queries contain a misspelling.
            query_error_rate: 0.12,
            op_weights: [0.45, 0.25, 0.15, 0.15],
        }
    }
}

/// QWERTY adjacency for lowercase letters and digits.
fn neighbours(c: char) -> &'static str {
    match c {
        'q' => "wa",
        'w' => "qes",
        'e' => "wrd",
        'r' => "etf",
        't' => "ryg",
        'y' => "tuh",
        'u' => "yij",
        'i' => "uok",
        'o' => "ipl",
        'p' => "ol",
        'a' => "qsz",
        's' => "awdxz",
        'd' => "sefcx",
        'f' => "drgvc",
        'g' => "fthbv",
        'h' => "gyjnb",
        'j' => "hukmn",
        'k' => "jilm",
        'l' => "kop",
        'z' => "asx",
        'x' => "zsdc",
        'c' => "xdfv",
        'v' => "cfgb",
        'b' => "vghn",
        'n' => "bhjm",
        'm' => "njk",
        '0' => "9",
        '1' => "2",
        '2' => "13",
        '3' => "24",
        '4' => "35",
        '5' => "46",
        '6' => "57",
        '7' => "68",
        '8' => "79",
        '9' => "80",
        _ => "",
    }
}

impl TypoModel {
    /// Creates a model with the given per-query error rate and default
    /// operation weights.
    pub fn with_rate(query_error_rate: f64) -> Self {
        Self {
            query_error_rate,
            ..Default::default()
        }
    }

    /// Possibly corrupts `input`: with probability `query_error_rate`
    /// applies exactly one typo operation at a random position. Returns
    /// `None` when the string passes through clean (the common case) or
    /// cannot be corrupted (too short / no letters).
    pub fn corrupt<R: Rng + ?Sized>(&self, input: &str, rng: &mut R) -> Option<String> {
        if input.is_empty() || !rng.gen_bool(self.query_error_rate.clamp(0.0, 1.0)) {
            return None;
        }
        self.apply_one(input, rng)
    }

    /// Unconditionally applies one typo operation. Returns `None` only
    /// if no operation is applicable (e.g. single space-free char that
    /// is not on the keyboard map).
    pub fn apply_one<R: Rng + ?Sized>(&self, input: &str, rng: &mut R) -> Option<String> {
        let chars: Vec<char> = input.chars().collect();
        // Only corrupt inside words: candidate positions are
        // alphanumeric characters.
        let positions: Vec<usize> = chars
            .iter()
            .enumerate()
            .filter_map(|(i, c)| c.is_alphanumeric().then_some(i))
            .collect();
        if positions.is_empty() {
            return None;
        }
        // Try ops in weighted random order until one applies.
        let mut order = self.weighted_op_order(rng);
        // Fall back to remaining ops deterministically so that a valid
        // op is found whenever one exists.
        for _ in 0..4 {
            let op = order.next().expect("cycle of 4 ops");
            let pos = positions[rng.gen_range(0..positions.len())];
            if let Some(s) = apply_op(&chars, op, pos, rng) {
                if s != input {
                    return Some(s);
                }
            }
        }
        None
    }

    /// An infinite weighted-shuffled cycle over the four ops.
    fn weighted_op_order<R: Rng + ?Sized>(&self, rng: &mut R) -> impl Iterator<Item = TypoOp> + '_ {
        const OPS: [TypoOp; 4] = [
            TypoOp::Substitute,
            TypoOp::Delete,
            TypoOp::Insert,
            TypoOp::Transpose,
        ];
        let total: f64 = self.op_weights.iter().sum();
        let mut u = if total > 0.0 {
            rng.gen_range(0.0..total)
        } else {
            0.0
        };
        let mut first = 0;
        for (i, &w) in self.op_weights.iter().enumerate() {
            if u < w {
                first = i;
                break;
            }
            u -= w;
        }
        (0..).map(move |k| OPS[(first + k) % 4])
    }
}

fn apply_op<R: Rng + ?Sized>(
    chars: &[char],
    op: TypoOp,
    pos: usize,
    rng: &mut R,
) -> Option<String> {
    let mut out: Vec<char> = chars.to_vec();
    match op {
        TypoOp::Substitute => {
            let c = chars[pos].to_ascii_lowercase();
            let nb = neighbours(c);
            if nb.is_empty() {
                return None;
            }
            let nb_chars: Vec<char> = nb.chars().collect();
            out[pos] = nb_chars[rng.gen_range(0..nb_chars.len())];
        }
        TypoOp::Delete => {
            // Deleting the only character of a 1-char string would make
            // it empty; disallow.
            if chars.len() <= 1 {
                return None;
            }
            out.remove(pos);
        }
        TypoOp::Insert => {
            out.insert(pos, chars[pos]); // doubled letter
        }
        TypoOp::Transpose => {
            // Need an alphanumeric successor.
            if pos + 1 >= chars.len() || !chars[pos + 1].is_alphanumeric() {
                return None;
            }
            out.swap(pos, pos + 1);
        }
    }
    Some(out.into_iter().collect())
}

/// Deterministic one-edit corruption with no RNG: doubles the middle
/// character (a [`TypoOp::Insert`] at a fixed position). Benches,
/// examples and determinism tests share this so "one reproducible
/// misspelling" means the same thing everywhere. Empty input is
/// returned unchanged.
///
/// # Examples
///
/// ```
/// use websyn_text::typo::double_middle_char;
///
/// assert_eq!(double_middle_char("canon"), "cannon");
/// assert_eq!(double_middle_char(""), "");
/// ```
pub fn double_middle_char(s: &str) -> String {
    let chars: Vec<char> = s.chars().collect();
    let mid = chars.len() / 2;
    let mut out = String::with_capacity(s.len() + 1);
    for (i, &c) in chars.iter().enumerate() {
        out.push(c);
        if i == mid {
            out.push(c);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use websyn_common::SeedSequence;

    fn rng() -> rand::rngs::SmallRng {
        SeedSequence::new(77).rng("typo-tests")
    }

    #[test]
    fn zero_rate_never_corrupts() {
        let model = TypoModel::with_rate(0.0);
        let mut r = rng();
        for _ in 0..64 {
            assert_eq!(model.corrupt("indiana jones", &mut r), None);
        }
    }

    #[test]
    fn full_rate_always_corrupts() {
        let model = TypoModel::with_rate(1.0);
        let mut r = rng();
        for _ in 0..64 {
            let out = model.corrupt("indiana jones", &mut r).unwrap();
            assert_ne!(out, "indiana jones");
        }
    }

    #[test]
    fn corruption_is_a_small_edit() {
        let model = TypoModel::with_rate(1.0);
        let mut r = rng();
        for _ in 0..128 {
            let out = model.apply_one("madagascar escape", &mut r).unwrap();
            let d = crate::distance::damerau_levenshtein("madagascar escape", &out);
            assert!((1..=2).contains(&d), "distance {d} for {out:?}");
        }
    }

    #[test]
    fn empty_and_unmappable_inputs() {
        let model = TypoModel::with_rate(1.0);
        let mut r = rng();
        assert_eq!(model.corrupt("", &mut r), None);
        assert_eq!(model.apply_one("!!!", &mut r), None);
    }

    #[test]
    fn deterministic_given_seed() {
        let model = TypoModel::with_rate(1.0);
        let run = || -> Vec<Option<String>> {
            let mut r = SeedSequence::new(5).rng("det");
            (0..16)
                .map(|_| model.corrupt("canon eos 350d", &mut r))
                .collect()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn spaces_never_touched() {
        let model = TypoModel::with_rate(1.0);
        let mut r = rng();
        for _ in 0..128 {
            let out = model.apply_one("a b c d", &mut r).unwrap();
            // Every op targets alphanumeric characters only, so the
            // space count is invariant under corruption.
            let spaces = out.chars().filter(|&c| c == ' ').count();
            assert_eq!(spaces, 3, "spaces changed in {out:?}");
        }
    }

    #[test]
    fn single_char_delete_disallowed() {
        // With a 1-char string, delete must be skipped but another op
        // (substitute/insert) still succeeds.
        let model = TypoModel {
            query_error_rate: 1.0,
            op_weights: [0.0, 1.0, 0.0, 0.0], // prefer delete
        };
        let mut r = rng();
        for _ in 0..32 {
            if let Some(out) = model.apply_one("a", &mut r) {
                assert!(!out.is_empty());
            }
        }
    }

    #[test]
    fn neighbour_table_is_symmetric_for_letters() {
        for c in "qwertyuiopasdfghjklzxcvbnm".chars() {
            for n in neighbours(c).chars() {
                assert!(neighbours(n).contains(c), "{c} -> {n} but not {n} -> {c}");
            }
        }
    }
}
