//! Tokenization over normalized text.
//!
//! Tokens are the unit the inverted index, the alias transforms and the
//! query segmenter all operate on. The tokenizer assumes
//! [`normalize`](crate::normalize::normalize)d input (single spaces,
//! lowercase, alphanumeric words) but tolerates raw input by skipping
//! non-alphanumeric runs.

use std::fmt;

/// The lexical class of a token.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TokenKind {
    /// Purely alphabetic word, e.g. `jones`.
    Word,
    /// Purely numeric run, e.g. `350`.
    Number,
    /// Mixed alphanumeric, e.g. `350d`, `x2`.
    Alphanumeric,
}

/// A token with its source span.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Token<'a> {
    /// The token text (a slice of the input).
    pub text: &'a str,
    /// Byte offset of the token start in the input.
    pub start: usize,
    /// Lexical class.
    pub kind: TokenKind,
}

impl fmt::Display for Token<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.text)
    }
}

impl<'a> Token<'a> {
    /// Byte offset one past the token end.
    pub fn end(&self) -> usize {
        self.start + self.text.len()
    }
}

/// Splits `input` into alphanumeric tokens.
///
/// # Examples
///
/// ```
/// use websyn_text::{tokenize, TokenKind};
///
/// let toks = tokenize("canon eos 350d");
/// let texts: Vec<&str> = toks.iter().map(|t| t.text).collect();
/// assert_eq!(texts, vec!["canon", "eos", "350d"]);
/// assert_eq!(toks[2].kind, TokenKind::Alphanumeric);
/// ```
pub fn tokenize(input: &str) -> Vec<Token<'_>> {
    let mut tokens = Vec::new();
    let mut start = None;
    let mut has_alpha = false;
    let mut has_digit = false;

    fn flush<'a>(
        tokens: &mut Vec<Token<'a>>,
        input: &'a str,
        start: usize,
        end: usize,
        has_alpha: bool,
        has_digit: bool,
    ) {
        let kind = match (has_alpha, has_digit) {
            (true, true) => TokenKind::Alphanumeric,
            (false, true) => TokenKind::Number,
            _ => TokenKind::Word,
        };
        tokens.push(Token {
            text: &input[start..end],
            start,
            kind,
        });
    }

    for (i, c) in input.char_indices() {
        if c.is_alphanumeric() {
            if start.is_none() {
                start = Some(i);
                has_alpha = false;
                has_digit = false;
            }
            if c.is_ascii_digit() {
                has_digit = true;
            } else {
                has_alpha = true;
            }
        } else if let Some(s) = start.take() {
            flush(&mut tokens, input, s, i, has_alpha, has_digit);
        }
    }
    if let Some(s) = start {
        flush(&mut tokens, input, s, input.len(), has_alpha, has_digit);
    }
    tokens
}

/// Convenience: token texts only.
pub fn token_texts(input: &str) -> Vec<&str> {
    tokenize(input).into_iter().map(|t| t.text).collect()
}

/// Pushes the `(start, end)` byte range of every alphanumeric token of
/// `input` into `out` (cleared first). The allocation-free spine of
/// tokenize-to-ids: the compiled-dictionary segmenter maps each range
/// to an interned token id without materializing token strings, and
/// slicing `input[start_i..end_j]` reproduces exactly the `join(" ")`
/// of tokens `i..=j` when `input` is normalized (single spaces).
pub fn token_bounds(input: &str, out: &mut Vec<(u32, u32)>) {
    out.clear();
    let mut start: Option<usize> = None;
    for (i, c) in input.char_indices() {
        if c.is_alphanumeric() {
            if start.is_none() {
                start = Some(i);
            }
        } else if let Some(s) = start.take() {
            out.push((s as u32, i as u32));
        }
    }
    if let Some(s) = start {
        out.push((s as u32, input.len() as u32));
    }
}

/// Joins tokens back into a canonical single-spaced string.
pub fn join_tokens(tokens: &[&str]) -> String {
    tokens.join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_words() {
        let t = token_texts("indiana jones 4");
        assert_eq!(t, vec!["indiana", "jones", "4"]);
    }

    #[test]
    fn token_bounds_match_tokenize() {
        let mut bounds = Vec::new();
        for input in ["canon eos 350d", "  spaced  out ", "", "???", "a"] {
            token_bounds(input, &mut bounds);
            let toks = tokenize(input);
            assert_eq!(bounds.len(), toks.len(), "{input:?}");
            for (b, t) in bounds.iter().zip(&toks) {
                assert_eq!(&input[b.0 as usize..b.1 as usize], t.text);
            }
        }
        // On normalized input, slicing across bounds reproduces join(" ").
        let input = "canon eos 350d";
        token_bounds(input, &mut bounds);
        assert_eq!(&input[bounds[0].0 as usize..bounds[2].1 as usize], input);
    }

    #[test]
    fn kinds_are_classified() {
        let toks = tokenize("eos 350 350d");
        assert_eq!(toks[0].kind, TokenKind::Word);
        assert_eq!(toks[1].kind, TokenKind::Number);
        assert_eq!(toks[2].kind, TokenKind::Alphanumeric);
    }

    #[test]
    fn spans_are_correct() {
        let input = "mad max 2";
        let toks = tokenize(input);
        assert_eq!(toks[0].start, 0);
        assert_eq!(toks[0].end(), 3);
        assert_eq!(toks[1].start, 4);
        assert_eq!(toks[2].start, 8);
        for t in &toks {
            assert_eq!(&input[t.start..t.end()], t.text);
        }
    }

    #[test]
    fn raw_input_with_punctuation() {
        let t = token_texts("Spider-Man: Homecoming!");
        assert_eq!(t, vec!["Spider", "Man", "Homecoming"]);
    }

    #[test]
    fn empty_and_noise_inputs() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("   ").is_empty());
        assert!(tokenize("!!!").is_empty());
    }

    #[test]
    fn trailing_token_is_flushed() {
        let t = token_texts("end token");
        assert_eq!(t, vec!["end", "token"]);
    }

    #[test]
    fn unicode_words() {
        let t = token_texts("pokémon go");
        assert_eq!(t, vec!["pokémon", "go"]);
    }

    #[test]
    fn join_roundtrip_on_normalized() {
        let input = "canon eos 350d";
        assert_eq!(join_tokens(&token_texts(input)), input);
    }

    #[test]
    fn display_prints_text() {
        let toks = tokenize("abc");
        assert_eq!(toks[0].to_string(), "abc");
    }
}
