//! # websyn-text
//!
//! Text substrate for the `websyn` workspace.
//!
//! Entity strings, Web queries and page text all pass through the same
//! analysis chain before any matching happens, so this crate owns every
//! string-level primitive the system needs:
//!
//! - [`normalize`](mod@normalize) — canonical
//!   lowercase/punctuation/whitespace form, the equality domain for
//!   query ↔ synonym matching;
//! - [`tokenize`](mod@tokenize) — word/number token stream over
//!   normalized text;
//! - [`distance`] — Levenshtein, Damerau (OSA), Jaro and Jaro–Winkler
//!   edit distances for the fuzzy baselines;
//! - [`ngram`] — character/word n-grams and Jaccard/Dice/cosine/overlap
//!   set similarities;
//! - [`ngram_index`] — an inverted character n-gram signature index
//!   with length/count filters, the candidate-generation half of fuzzy
//!   dictionary lookup;
//! - [`token_signature`] — a token-run signature index for multi-token
//!   windows (length-band, token-count and aligned-offset filters),
//!   the fast candidate generator on the segmenter's fuzzy hot path;
//! - [`candidate`] — the [`CandidateSource`] trait every approximate
//!   generator implements (n-gram, phonetic, abbreviation), so matchers
//!   and spell correctors share one pluggable generation stage;
//! - [`phonetic`] — Soundex codes for sound-alike candidate grouping;
//! - [`numerals`] — roman ↔ arabic ↔ word numeral transforms
//!   ("Indiana Jones IV" ↔ "Indiana Jones 4" ↔ "Indiana Jones Four");
//! - [`abbrev`] — systematic abbreviation transforms (acronyms, subtitle
//!   truncation, stopword dropping, `and` ↔ `&` ...), the generative
//!   engine behind the synthetic alias universe;
//! - [`typo`] — a QWERTY keyboard typo channel used by the query-stream
//!   simulator.

pub mod abbrev;
mod bitpar;
pub mod candidate;
pub mod distance;
pub mod ngram;
pub mod ngram_index;
pub mod normalize;
pub mod numerals;
pub mod phonetic;
pub mod token_signature;
pub mod tokenize;
pub mod typo;

pub use abbrev::AbbrevKind;
pub use candidate::{AbbrevIndex, CandidateSource, PhoneticIndex, PrefixHit};
pub use distance::{
    damerau_levenshtein, damerau_levenshtein_within, damerau_levenshtein_within_ref, jaro,
    jaro_winkler, kernel_dispatch_stats, levenshtein, levenshtein_within, levenshtein_within_ref,
    normalized_levenshtein, KernelDispatchStats,
};
pub use ngram::{char_ngrams, cosine, dice, jaccard, overlap_coefficient, word_ngrams};
pub use ngram_index::NgramIndex;
pub use normalize::{normalize, normalized, NormalizeOptions};
pub use numerals::{arabic_to_roman, arabic_to_words, roman_to_arabic, words_to_arabic};
pub use phonetic::soundex;
pub use token_signature::TokenSignatureIndex;
pub use tokenize::{token_bounds, tokenize, Token, TokenKind};
pub use typo::{double_middle_char, TypoModel};
