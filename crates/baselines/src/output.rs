//! Common output shape and Table I measures for all baselines.

use websyn_common::EntityId;
use websyn_synth::World;

/// Per-entity synonym lists produced by a baseline (or by the miner,
/// converted), with the Table I measures.
#[derive(Debug, Clone)]
pub struct BaselineOutput {
    /// Method label for reports.
    pub name: String,
    /// Synonym texts per entity, index == `EntityId`.
    pub per_entity: Vec<Vec<String>>,
}

impl BaselineOutput {
    /// Creates an output table.
    pub fn new(name: impl Into<String>, per_entity: Vec<Vec<String>>) -> Self {
        Self {
            name: name.into(),
            per_entity,
        }
    }

    /// Number of entities ("Orig").
    pub fn n_entities(&self) -> usize {
        self.per_entity.len()
    }

    /// Entities with at least one synonym ("Hits").
    pub fn hits(&self) -> usize {
        self.per_entity.iter().filter(|s| !s.is_empty()).count()
    }

    /// `hits / orig` ("Ratio").
    pub fn hit_ratio(&self) -> f64 {
        if self.per_entity.is_empty() {
            0.0
        } else {
            self.hits() as f64 / self.per_entity.len() as f64
        }
    }

    /// Total synonyms ("Synonyms").
    pub fn total_synonyms(&self) -> usize {
        self.per_entity.iter().map(|s| s.len()).sum()
    }

    /// `(synonyms + orig) / orig` ("Expansion").
    pub fn expansion_ratio(&self) -> f64 {
        if self.per_entity.is_empty() {
            0.0
        } else {
            (self.total_synonyms() + self.per_entity.len()) as f64 / self.per_entity.len() as f64
        }
    }

    /// Exact precision against the world oracle (beyond the paper,
    /// which only reports Hits/Expansion for the baselines).
    pub fn precision(&self, world: &World) -> f64 {
        let mut total = 0usize;
        let mut correct = 0usize;
        for (i, synonyms) in self.per_entity.iter().enumerate() {
            let e = EntityId::from_usize(i);
            for s in synonyms {
                total += 1;
                if world.truth.is_true_synonym(s, e) {
                    correct += 1;
                }
            }
        }
        if total == 0 {
            0.0
        } else {
            correct as f64 / total as f64
        }
    }

    /// One formatted Table I row:
    /// `name, orig, hits, hit%, synonyms, expansion%`.
    pub fn table_row(&self) -> String {
        format!(
            "{:<18} {:>5} {:>5} {:>6.1}% {:>9} {:>6.0}%",
            self.name,
            self.n_entities(),
            self.hits(),
            self.hit_ratio() * 100.0,
            self.total_synonyms(),
            self.expansion_ratio() * 100.0,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn output() -> BaselineOutput {
        BaselineOutput::new(
            "test",
            vec![
                vec!["a".to_string(), "b".to_string()],
                vec![],
                vec!["c".to_string()],
            ],
        )
    }

    #[test]
    fn table_i_measures() {
        let o = output();
        assert_eq!(o.n_entities(), 3);
        assert_eq!(o.hits(), 2);
        assert!((o.hit_ratio() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(o.total_synonyms(), 3);
        assert!((o.expansion_ratio() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_output() {
        let o = BaselineOutput::new("empty", Vec::new());
        assert_eq!(o.hits(), 0);
        assert_eq!(o.hit_ratio(), 0.0);
        assert_eq!(o.expansion_ratio(), 0.0);
    }

    #[test]
    fn table_row_shape() {
        let row = output().table_row();
        assert!(row.contains("test"));
        assert!(row.contains('%'));
    }
}
