//! Simulated Wikipedia redirect/disambiguation pages.
//!
//! The paper's Table I uses "redirection and disambiguation pages in
//! Wikipedia" as a manually curated comparator and observes that it
//! "performs poorly for less popular entries (e.g., cameras)": 96% hit
//! ratio on the top-100 movies but only 11.5% on 882 cameras.
//!
//! The simulation reproduces the *mechanism* behind those numbers, not
//! the numbers themselves: volunteer editors write articles (and
//! therefore redirects) for things people care about, so the chance an
//! entity has an article decays with its popularity rank. For an entity
//! that does have an article, editors curate a handful of high-quality
//! redirects: the well-known nicknames and marketing names plus the
//! obvious mechanical forms.

use crate::output::BaselineOutput;
use rand::Rng;
use websyn_common::SeedSequence;
use websyn_synth::{AliasSource, Domain, World};
use websyn_text::AbbrevKind;

/// Popularity-gated redirect database simulator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WikiBaseline {
    /// Probability that the most popular entity has an article.
    pub head_coverage: f64,
    /// Rank (as a count of entities) at which article probability has
    /// fallen to half of `head_coverage`.
    pub half_rank: f64,
    /// Decay sharpness.
    pub sharpness: f64,
    /// Probability that an editor records any given curated synonym as
    /// a redirect.
    pub redirect_prob: f64,
}

impl WikiBaseline {
    /// Parameters calibrated per domain: movies (top-100 box office)
    /// are all popular enough for articles; cameras are a long tail of
    /// catalog items almost nobody writes articles about.
    pub fn for_domain(domain: Domain) -> Self {
        match domain {
            Domain::Movies => Self {
                head_coverage: 0.99,
                half_rank: 900.0,
                sharpness: 1.2,
                redirect_prob: 0.75,
            },
            Domain::Cameras => Self {
                head_coverage: 0.95,
                half_rank: 55.0,
                sharpness: 1.3,
                redirect_prob: 0.75,
            },
        }
    }

    /// Probability that the entity at `rank` has an article.
    pub fn article_probability(&self, rank: usize) -> f64 {
        let r = rank as f64 / self.half_rank;
        (self.head_coverage / (1.0 + r.powf(self.sharpness))).clamp(0.0, 1.0)
    }

    /// Generates the redirect database for a world.
    pub fn run(&self, world: &World, seq: &SeedSequence) -> BaselineOutput {
        let mut rng = seq.rng("baseline.wiki");
        let mut per_entity = Vec::with_capacity(world.entities.len());
        for entity in &world.entities {
            let mut redirects = Vec::new();
            if rng.gen_bool(self.article_probability(entity.rank)) {
                for alias in world.aliases.synonyms_of(entity.id) {
                    if !editor_curates(alias.source) {
                        continue;
                    }
                    if rng.gen_bool(self.redirect_prob) {
                        redirects.push(alias.text.clone());
                    }
                }
            }
            per_entity.push(redirects);
        }
        BaselineOutput::new("Wiki", per_entity)
    }
}

/// Which alias kinds editors actually curate as redirects: semantic
/// names and the well-known mechanical forms (shortened titles,
/// acronyms, numeral respellings, model-number tails) — not typos.
fn editor_curates(source: AliasSource) -> bool {
    matches!(
        source,
        AliasSource::Nickname
            | AliasSource::Marketing
            | AliasSource::Mechanical(
                AbbrevKind::Acronym
                    | AbbrevKind::DropLeadingArticle
                    | AbbrevKind::DropStopwords
                    | AbbrevKind::NumeralRespell
                    | AbbrevKind::HeadNumber
                    | AbbrevKind::Truncate
                    | AbbrevKind::TailToken
            )
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use websyn_synth::WorldConfig;

    #[test]
    fn article_probability_decays_with_rank() {
        let wiki = WikiBaseline::for_domain(Domain::Cameras);
        assert!(wiki.article_probability(0) > 0.9);
        assert!(wiki.article_probability(100) < wiki.article_probability(10));
        assert!(wiki.article_probability(800) < 0.05);
    }

    #[test]
    fn movies_covered_cameras_not() {
        let movies = WikiBaseline::for_domain(Domain::Movies);
        // Every top-100 movie is head material.
        for rank in 0..100 {
            assert!(movies.article_probability(rank) > 0.85, "rank {rank}");
        }
        let cameras = WikiBaseline::for_domain(Domain::Cameras);
        let mean: f64 = (0..882)
            .map(|r| cameras.article_probability(r))
            .sum::<f64>()
            / 882.0;
        assert!(
            (0.05..=0.25).contains(&mean),
            "camera article coverage {mean}"
        );
    }

    #[test]
    fn run_produces_redirects_for_movies() {
        let world = World::build(&WorldConfig::small_movies(40, 7));
        let out = WikiBaseline::for_domain(Domain::Movies).run(&world, &SeedSequence::new(7));
        assert_eq!(out.n_entities(), 40);
        assert!(out.hit_ratio() > 0.4, "hit ratio {}", out.hit_ratio());
        // All redirects are true synonyms: Wikipedia precision is high.
        assert!(
            out.precision(&world) > 0.95,
            "wiki precision {}",
            out.precision(&world)
        );
    }

    #[test]
    fn camera_coverage_collapses() {
        let world = World::build(&WorldConfig::small_cameras(300, 7));
        let out = WikiBaseline::for_domain(Domain::Cameras).run(&world, &SeedSequence::new(7));
        assert!(
            out.hit_ratio() < 0.45,
            "camera hit ratio should collapse, got {}",
            out.hit_ratio()
        );
    }

    #[test]
    fn deterministic() {
        let world = World::build(&WorldConfig::small_movies(20, 3));
        let a = WikiBaseline::for_domain(Domain::Movies).run(&world, &SeedSequence::new(3));
        let b = WikiBaseline::for_domain(Domain::Movies).run(&world, &SeedSequence::new(3));
        assert_eq!(a.per_entity, b.per_entity);
    }

    #[test]
    fn editors_do_not_curate_typos() {
        assert!(!editor_curates(AliasSource::Misspelling));
        assert!(editor_curates(AliasSource::Nickname));
        assert!(editor_curates(AliasSource::Marketing));
        assert!(editor_curates(AliasSource::Mechanical(AbbrevKind::Acronym)));
        assert!(editor_curates(AliasSource::Mechanical(
            AbbrevKind::Truncate
        )));
        assert!(editor_curates(AliasSource::Mechanical(
            AbbrevKind::TailToken
        )));
    }
}
