//! Query clustering by co-click similarity — the related-work family
//! the paper's Section V argues against (Wen, Nie & Zhang, "Clustering
//! user queries of a search engine", WWW 2001).
//!
//! Two queries belong together when their clicked-page sets are
//! similar (Jaccard over `G_L`). The paper's critique, measurable here:
//! such similarity "may discover many pairs of related queries that are
//! not synonyms", and — like the random walk — it can only fire when
//! the canonical string was itself issued as a query.

use crate::output::BaselineOutput;
use websyn_click::{ClickGraph, ClickLog};
use websyn_common::{FxHashSet, PageId, QueryId};

/// Co-click query-clustering baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterBaseline {
    /// Minimum Jaccard similarity of clicked-page sets.
    pub min_similarity: f64,
    /// Hard cap on synonyms per entity.
    pub max_per_entity: usize,
}

impl Default for ClusterBaseline {
    fn default() -> Self {
        Self {
            min_similarity: 0.3,
            max_per_entity: 20,
        }
    }
}

impl ClusterBaseline {
    /// Runs the baseline for every canonical string.
    pub fn run(&self, u_set: &[String], log: &ClickLog, graph: &ClickGraph) -> BaselineOutput {
        let mut per_entity = Vec::with_capacity(u_set.len());
        for u in u_set {
            per_entity.push(self.cluster_of(u, log, graph));
        }
        BaselineOutput::new(format!("Cluster({:.2})", self.min_similarity), per_entity)
    }

    /// The queries co-clustered with one canonical string, ranked by
    /// descending similarity.
    pub fn cluster_of(&self, u: &str, log: &ClickLog, graph: &ClickGraph) -> Vec<String> {
        let Some(start) = log.query_id(u) else {
            return Vec::new(); // same structural gate as the walk
        };
        let my_pages: FxHashSet<PageId> = graph.pages_of(start).iter().map(|&(p, _)| p).collect();
        if my_pages.is_empty() {
            return Vec::new();
        }
        // Candidate queries: those sharing at least one clicked page
        // (full pairwise comparison over the log would be quadratic).
        let mut candidates: FxHashSet<QueryId> = FxHashSet::default();
        for &p in &my_pages {
            for &(q, _) in graph.queries_of(p) {
                if q != start {
                    candidates.insert(q);
                }
            }
        }
        let mut scored: Vec<(QueryId, f64)> = candidates
            .into_iter()
            .filter_map(|q| {
                let other: FxHashSet<PageId> = graph.pages_of(q).iter().map(|&(p, _)| p).collect();
                let inter = my_pages.intersection(&other).count();
                let union = my_pages.len() + other.len() - inter;
                let sim = inter as f64 / union as f64;
                (sim >= self.min_similarity).then_some((q, sim))
            })
            .collect();
        scored.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .expect("similarity is finite")
                .then_with(|| a.0.cmp(&b.0))
        });
        scored
            .into_iter()
            .take(self.max_per_entity)
            .map(|(q, _)| log.query_text(q).to_string())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use websyn_click::ClickLogBuilder;

    /// "canonical" and "twin" click the same two pages; "partial"
    /// shares one page of three; "elsewhere" shares nothing.
    fn setup() -> (ClickLog, ClickGraph) {
        let mut b = ClickLogBuilder::new();
        let canonical = b.add_impression("canonical");
        let twin = b.add_impression("twin");
        let partial = b.add_impression("partial");
        let elsewhere = b.add_impression("elsewhere");
        for p in [0u32, 1] {
            b.add_click(canonical, PageId::new(p));
            b.add_click(twin, PageId::new(p));
        }
        b.add_click(partial, PageId::new(0));
        b.add_click(partial, PageId::new(2));
        b.add_click(partial, PageId::new(3));
        b.add_click(elsewhere, PageId::new(4));
        let log = b.build();
        let graph = ClickGraph::build(&log, 5);
        (log, graph)
    }

    #[test]
    fn finds_identically_clicking_twin() {
        let (log, graph) = setup();
        let out = ClusterBaseline::default().run(&["canonical".to_string()], &log, &graph);
        assert!(out.per_entity[0].contains(&"twin".to_string()));
        assert!(!out.per_entity[0].contains(&"elsewhere".to_string()));
    }

    #[test]
    fn threshold_excludes_weak_overlap() {
        let (log, graph) = setup();
        // partial: |∩|=1, |∪|=4 → 0.25 < 0.3 default.
        let strict = ClusterBaseline::default().run(&["canonical".to_string()], &log, &graph);
        assert!(!strict.per_entity[0].contains(&"partial".to_string()));
        let loose = ClusterBaseline {
            min_similarity: 0.2,
            ..Default::default()
        }
        .run(&["canonical".to_string()], &log, &graph);
        assert!(loose.per_entity[0].contains(&"partial".to_string()));
    }

    #[test]
    fn unqueried_canonical_gets_nothing() {
        let (log, graph) = setup();
        let out = ClusterBaseline::default().run(&["never queried".to_string()], &log, &graph);
        assert!(out.per_entity[0].is_empty());
    }

    #[test]
    fn ranked_by_similarity_then_capped() {
        let (log, graph) = setup();
        let out = ClusterBaseline {
            min_similarity: 0.1,
            max_per_entity: 1,
        }
        .run(&["canonical".to_string()], &log, &graph);
        assert_eq!(out.per_entity[0], vec!["twin".to_string()]);
    }

    #[test]
    fn name_reflects_threshold() {
        let (log, graph) = setup();
        let out = ClusterBaseline::default().run(&["canonical".to_string()], &log, &graph);
        assert_eq!(out.name, "Cluster(0.30)");
    }
}
