//! Token-level substring matching — the straw man from the paper's
//! introduction: it "works well for some cases ('Madagascar 2' from
//! 'Madagascar: Escape 2 Africa'), falls short in others ('Escape
//! Africa' would also be considered incorrectly …) and is hopeless for
//! the rest ('Canon EOS 350D' with 'Digital Rebel XT')".
//!
//! A logged query counts as a synonym of `u` iff its tokens form an
//! ordered subsequence of `u`'s tokens. This deliberately reproduces
//! both failure modes the paper names: over-acceptance of
//! subset-but-not-synonym strings and total blindness to semantic
//! aliases.

use crate::output::BaselineOutput;
use websyn_click::ClickLog;
use websyn_text::normalize;

/// Substring/subsequence matching baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubstringBaseline {
    /// Minimum token count for a candidate (1 admits bare single
    /// words, which is what naive matching does).
    pub min_tokens: usize,
}

impl Default for SubstringBaseline {
    fn default() -> Self {
        Self { min_tokens: 1 }
    }
}

impl SubstringBaseline {
    /// Runs the baseline: every logged query that is an ordered token
    /// subsequence of `u` (and not `u` itself) becomes a synonym.
    pub fn run(&self, u_set: &[String], log: &ClickLog) -> BaselineOutput {
        // Pre-tokenize the query universe once.
        let queries: Vec<(String, Vec<String>)> = log
            .queries()
            .map(|(_, text)| {
                let norm = normalize(text);
                let toks = norm.split(' ').map(String::from).collect();
                (norm, toks)
            })
            .collect();

        let mut per_entity = Vec::with_capacity(u_set.len());
        for u in u_set {
            let u_norm = normalize(u);
            let u_tokens: Vec<&str> = u_norm.split(' ').collect();
            let mut synonyms = Vec::new();
            for (text, tokens) in &queries {
                if *text == u_norm || tokens.len() < self.min_tokens {
                    continue;
                }
                if is_subsequence(tokens, &u_tokens) {
                    synonyms.push(text.clone());
                }
            }
            synonyms.sort();
            per_entity.push(synonyms);
        }
        BaselineOutput::new("Substring", per_entity)
    }
}

/// True iff `needle` is an ordered (not necessarily contiguous)
/// subsequence of `haystack`.
fn is_subsequence(needle: &[String], haystack: &[&str]) -> bool {
    if needle.is_empty() {
        return false;
    }
    let mut h = haystack.iter();
    needle
        .iter()
        .all(|n| h.by_ref().any(|&hay| hay == n.as_str()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use websyn_click::ClickLogBuilder;

    fn log_with(queries: &[&str]) -> ClickLog {
        let mut b = ClickLogBuilder::new();
        for q in queries {
            b.add_impression(q);
        }
        b.build()
    }

    #[test]
    fn accepts_ordered_subsequences() {
        let log = log_with(&[
            "madagascar 2",
            "escape africa",
            "madagascar escape",
            "africa escape", // wrong order
            "digital rebel xt",
        ]);
        let u_set = vec!["madagascar escape 2 africa".to_string()];
        let out = SubstringBaseline::default().run(&u_set, &log);
        let syns = &out.per_entity[0];
        // The good case from the paper:
        assert!(syns.contains(&"madagascar 2".to_string()));
        // The documented false positive:
        assert!(syns.contains(&"escape africa".to_string()));
        assert!(syns.contains(&"madagascar escape".to_string()));
        // Order matters for subsequences:
        assert!(!syns.contains(&"africa escape".to_string()));
        // The hopeless case: no token overlap.
        assert!(!syns.contains(&"digital rebel xt".to_string()));
    }

    #[test]
    fn canonical_itself_excluded() {
        let log = log_with(&["alpha beta", "alpha"]);
        let u_set = vec!["alpha beta".to_string()];
        let out = SubstringBaseline::default().run(&u_set, &log);
        assert_eq!(out.per_entity[0], vec!["alpha".to_string()]);
    }

    #[test]
    fn min_tokens_filters_single_words() {
        let log = log_with(&["alpha", "alpha beta"]);
        let u_set = vec!["alpha beta gamma".to_string()];
        let strict = SubstringBaseline { min_tokens: 2 };
        let out = strict.run(&u_set, &log);
        assert_eq!(out.per_entity[0], vec!["alpha beta".to_string()]);
    }

    #[test]
    fn empty_log_or_uset() {
        let log = log_with(&[]);
        let out = SubstringBaseline::default().run(&["x y".to_string()], &log);
        assert_eq!(out.hits(), 0);
        let out2 = SubstringBaseline::default().run(&[], &log);
        assert_eq!(out2.n_entities(), 0);
    }

    #[test]
    fn subsequence_helper() {
        let hay = ["a", "b", "c", "d"];
        let needle = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        assert!(is_subsequence(&needle(&["a", "c"]), &hay));
        assert!(is_subsequence(&needle(&["b", "c", "d"]), &hay));
        assert!(!is_subsequence(&needle(&["c", "a"]), &hay));
        assert!(!is_subsequence(&needle(&["e"]), &hay));
        assert!(!is_subsequence(&needle(&[]), &hay));
    }
}
