//! Fuzzy string-similarity matching — the Lucene-fuzzy-search-shaped
//! comparator: a logged query is a synonym of `u` if its surface is
//! *similar enough* as a string (trigram Jaccard or normalized edit
//! distance).
//!
//! Good at recovering misspellings and light reorderings; structurally
//! unable to find nicknames and marketing names, and prone to accepting
//! a *sibling* entity's name (one digit apart: "eos 350d" vs
//! "eos 450d") — the reason string similarity alone cannot solve the
//! paper's problem.

use crate::output::BaselineOutput;
use websyn_click::ClickLog;
use websyn_text::ngram::trigram_similarity;
use websyn_text::{normalize, normalized_levenshtein};

/// Which similarity backs the baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimilarityKind {
    /// Character-trigram Jaccard (Lucene/Postgres `pg_trgm` style).
    Trigram,
    /// Normalized Levenshtein similarity.
    Levenshtein,
}

/// String-similarity baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EditDistanceBaseline {
    /// Similarity function.
    pub kind: SimilarityKind,
    /// Minimum similarity in `[0, 1]` to accept.
    pub threshold: f64,
}

impl Default for EditDistanceBaseline {
    fn default() -> Self {
        Self {
            kind: SimilarityKind::Trigram,
            threshold: 0.55,
        }
    }
}

impl EditDistanceBaseline {
    /// Runs the baseline over the logged query universe.
    pub fn run(&self, u_set: &[String], log: &ClickLog) -> BaselineOutput {
        let queries: Vec<String> = log.queries().map(|(_, t)| normalize(t)).collect();
        let mut per_entity = Vec::with_capacity(u_set.len());
        for u in u_set {
            let u_norm = normalize(u);
            let mut synonyms: Vec<String> = queries
                .iter()
                .filter(|q| **q != u_norm && self.similarity(q, &u_norm) >= self.threshold)
                .cloned()
                .collect();
            synonyms.sort();
            synonyms.dedup();
            per_entity.push(synonyms);
        }
        let name = match self.kind {
            SimilarityKind::Trigram => format!("Trigram({:.2})", self.threshold),
            SimilarityKind::Levenshtein => format!("EditDist({:.2})", self.threshold),
        };
        BaselineOutput::new(name, per_entity)
    }

    /// The configured similarity of two normalized strings.
    pub fn similarity(&self, a: &str, b: &str) -> f64 {
        match self.kind {
            SimilarityKind::Trigram => trigram_similarity(a, b),
            SimilarityKind::Levenshtein => normalized_levenshtein(a, b),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use websyn_click::ClickLogBuilder;

    fn log_with(queries: &[&str]) -> ClickLog {
        let mut b = ClickLogBuilder::new();
        for q in queries {
            b.add_impression(q);
        }
        b.build()
    }

    #[test]
    fn recovers_misspellings() {
        let log = log_with(&["canon eos 350d", "canon eos 350", "cannon eos 350d"]);
        let u_set = vec!["canon eos 350d".to_string()];
        let out = EditDistanceBaseline::default().run(&u_set, &log);
        let syns = &out.per_entity[0];
        assert!(syns.contains(&"cannon eos 350d".to_string()), "{syns:?}");
        assert!(syns.contains(&"canon eos 350".to_string()));
    }

    #[test]
    fn blind_to_semantic_aliases() {
        let log = log_with(&["digital rebel xt", "350d"]);
        let u_set = vec!["canon eos 350d".to_string()];
        let out = EditDistanceBaseline::default().run(&u_set, &log);
        assert!(
            !out.per_entity[0].contains(&"digital rebel xt".to_string()),
            "string similarity cannot see marketing names"
        );
    }

    #[test]
    fn sibling_confusion_failure_mode() {
        // One digit apart: very similar strings, different entities.
        let base = EditDistanceBaseline {
            kind: SimilarityKind::Levenshtein,
            threshold: 0.85,
        };
        let log = log_with(&["canon eos 450d"]);
        let u_set = vec!["canon eos 350d".to_string()];
        let out = base.run(&u_set, &log);
        assert!(
            out.per_entity[0].contains(&"canon eos 450d".to_string()),
            "the documented false positive should occur"
        );
    }

    #[test]
    fn threshold_monotonicity() {
        let log = log_with(&["alpha beta", "alpha bet", "alpha", "zzz"]);
        let u_set = vec!["alpha beta".to_string()];
        let count = |t: f64| {
            EditDistanceBaseline {
                kind: SimilarityKind::Trigram,
                threshold: t,
            }
            .run(&u_set, &log)
            .total_synonyms()
        };
        assert!(count(0.2) >= count(0.5));
        assert!(count(0.5) >= count(0.9));
    }

    #[test]
    fn both_kinds_score_identity_as_one() {
        for kind in [SimilarityKind::Trigram, SimilarityKind::Levenshtein] {
            let b = EditDistanceBaseline {
                kind,
                threshold: 0.5,
            };
            assert!((b.similarity("same text", "same text") - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn names_reflect_config() {
        let log = log_with(&[]);
        let out = EditDistanceBaseline::default().run(&["u".to_string()], &log);
        assert!(out.name.starts_with("Trigram"));
    }
}
