//! The random-walk baseline of Table I ("Walk(0.8)").
//!
//! "We used the random walk solution in [Fuxman et al.] to evaluate the
//! potential of generating synonyms with default parameters. … the
//! random walk has low hit ratio on cameras, since the random walk
//! operates completely on the click graph. So if a query has not been
//! asked then no synonym will be produced."
//!
//! The walk starts at the node of the entity's *canonical string*; if
//! that exact string never occurs as a query (typical for tail cameras
//! — "the entities' data values usually come in the canonical form …
//! and therefore may not be used as queries by people"), the entity
//! gets nothing. That structural weakness — not walk quality — is what
//! Table I exposes.

use crate::output::BaselineOutput;
use websyn_click::{ClickGraph, ClickLog, RandomWalk};

/// Random-walk synonym generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WalkBaseline {
    /// The lazy walk parameters (`Walk(0.8)` = self-transition 0.8).
    pub walk: RandomWalk,
    /// Keep a query iff its mass is at least this fraction of the
    /// start node's residual mass.
    pub relative_mass: f64,
    /// Hard cap on synonyms per entity (the published method returns a
    /// shortlist, not the whole distribution).
    pub max_per_entity: usize,
}

impl Default for WalkBaseline {
    fn default() -> Self {
        Self {
            walk: RandomWalk::default(),
            relative_mass: 0.05,
            max_per_entity: 20,
        }
    }
}

impl WalkBaseline {
    /// Runs the baseline for every entity string in `u_set`.
    pub fn run(&self, u_set: &[String], log: &ClickLog, graph: &ClickGraph) -> BaselineOutput {
        let mut per_entity = Vec::with_capacity(u_set.len());
        for u in u_set {
            per_entity.push(self.synonyms_for(u, log, graph));
        }
        BaselineOutput::new(
            format!("Walk({:.1})", self.walk.self_transition),
            per_entity,
        )
    }

    /// Synonyms for one canonical string.
    pub fn synonyms_for(&self, u: &str, log: &ClickLog, graph: &ClickGraph) -> Vec<String> {
        // The structural gate: no query node, no walk.
        let Some(start) = log.query_id(u) else {
            return Vec::new();
        };
        let dist = self.walk.from_query(graph, start);
        let start_mass = dist
            .iter()
            .find(|&&(q, _)| q == start)
            .map(|&(_, m)| m)
            .unwrap_or(0.0);
        if start_mass <= 0.0 {
            return Vec::new();
        }
        let cutoff = start_mass * self.relative_mass;
        dist.into_iter()
            .filter(|&(q, m)| q != start && m >= cutoff)
            .take(self.max_per_entity)
            .map(|(q, _)| log.query_text(q).to_string())
            .collect()
    }

    /// The number of entities whose canonical string exists as a query
    /// (the baseline's reachable set; diagnostics for Table I analysis).
    pub fn reachable(&self, u_set: &[String], log: &ClickLog) -> usize {
        u_set.iter().filter(|u| log.query_id(u).is_some()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use websyn_click::ClickLogBuilder;
    use websyn_common::PageId;

    /// "canon eos 350d" co-clicks page 0 with "350d" and "rebel xt";
    /// "nikon d40" was never issued as a query.
    fn setup() -> (Vec<String>, ClickLog, ClickGraph) {
        let mut b = ClickLogBuilder::new();
        let canonical = b.add_impression("canon eos 350d");
        let tail = b.add_impression("350d");
        let rebel = b.add_impression("rebel xt");
        let other = b.add_impression("something else");
        for _ in 0..10 {
            b.add_click(canonical, PageId::new(0));
            b.add_click(tail, PageId::new(0));
            b.add_click(rebel, PageId::new(0));
        }
        b.add_click(rebel, PageId::new(1));
        for _ in 0..10 {
            b.add_click(other, PageId::new(2));
        }
        let log = b.build();
        let graph = ClickGraph::build(&log, 3);
        let u_set = vec!["canon eos 350d".to_string(), "nikon d40".to_string()];
        (u_set, log, graph)
    }

    #[test]
    fn finds_co_clicking_queries() {
        let (u_set, log, graph) = setup();
        let out = WalkBaseline::default().run(&u_set, &log, &graph);
        let syns = &out.per_entity[0];
        assert!(syns.contains(&"350d".to_string()), "{syns:?}");
        assert!(syns.contains(&"rebel xt".to_string()), "{syns:?}");
        assert!(!syns.contains(&"something else".to_string()));
        assert!(
            !syns.contains(&"canon eos 350d".to_string()),
            "start excluded"
        );
    }

    #[test]
    fn unqueried_canonical_gets_nothing() {
        let (u_set, log, graph) = setup();
        let out = WalkBaseline::default().run(&u_set, &log, &graph);
        assert!(out.per_entity[1].is_empty());
        assert_eq!(out.hits(), 1);
        assert_eq!(WalkBaseline::default().reachable(&u_set, &log), 1);
    }

    #[test]
    fn relative_mass_threshold_prunes() {
        let (u_set, log, graph) = setup();
        let strict = WalkBaseline {
            relative_mass: 2.0, // nothing can reach 200% of start mass
            ..Default::default()
        };
        let out = strict.run(&u_set, &log, &graph);
        assert!(out.per_entity[0].is_empty());
    }

    #[test]
    fn max_per_entity_caps() {
        let (u_set, log, graph) = setup();
        let capped = WalkBaseline {
            max_per_entity: 1,
            relative_mass: 0.0001,
            ..Default::default()
        };
        let out = capped.run(&u_set, &log, &graph);
        assert!(out.per_entity[0].len() <= 1);
    }

    #[test]
    fn name_reports_self_transition() {
        let (u_set, log, graph) = setup();
        let out = WalkBaseline::default().run(&u_set, &log, &graph);
        assert_eq!(out.name, "Walk(0.8)");
    }

    #[test]
    fn deterministic() {
        let (u_set, log, graph) = setup();
        let a = WalkBaseline::default().run(&u_set, &log, &graph);
        let b = WalkBaseline::default().run(&u_set, &log, &graph);
        assert_eq!(a.per_entity, b.per_entity);
    }
}
