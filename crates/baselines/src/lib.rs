//! # websyn-baselines
//!
//! The comparators of the paper's Table I plus the two string-matching
//! straw men its introduction dismisses:
//!
//! - [`wiki`] — Wikipedia redirect/disambiguation pages, simulated with
//!   popularity-gated coverage (head entities have curated redirects,
//!   tail entities mostly do not — the mechanism behind the paper's
//!   96% vs 11.5% hit-ratio split);
//! - [`walk`] — "Random Walk on a Click Graph" (Craswell & Szummer /
//!   Fuxman et al.), operating on the same click graph as the miner;
//! - [`substring`] — token-level substring matching ("works for
//!   'Madagascar 2', falls short on 'Escape Africa', hopeless on
//!   'Digital Rebel XT'");
//! - [`editdist`] — Lucene-fuzzy-style string similarity matching;
//! - [`cluster`] — co-click query clustering (Wen et al., the paper's
//!   ref \[6\]), the "similarity-based approaches" its Section V argues
//!   against.
//!
//! All baselines emit the common [`BaselineOutput`], which computes the
//! paper's Hit Ratio and Expansion Ratio plus (beyond the paper) exact
//! precision against the synthetic oracle.

pub mod cluster;
pub mod editdist;
pub mod output;
pub mod substring;
pub mod walk;
pub mod wiki;

pub use cluster::ClusterBaseline;
pub use editdist::EditDistanceBaseline;
pub use output::BaselineOutput;
pub use substring::SubstringBaseline;
pub use walk::WalkBaseline;
pub use wiki::WikiBaseline;
