//! Criterion micro-benchmarks for every hot component: text analysis,
//! indexing, retrieval, session simulation, graph construction, the
//! miner's two phases, the random walk and the query matcher.
//!
//! Run: `cargo bench -p websyn-bench`

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use websyn_bench::{small_pipeline, Pipeline};
use websyn_click::session::{engine_for_world, simulate_sessions};
use websyn_click::{ClickGraph, RandomWalk, SessionConfig};
use websyn_core::miner::select_with;
use websyn_core::{EntityMatcher, MinerConfig, SynonymMiner};
use websyn_engine::SearchEngine;
use websyn_synth::{queries, QueryStreamConfig, World, WorldConfig};
use websyn_text::{damerau_levenshtein, levenshtein, normalize};

fn bench_text(c: &mut Criterion) {
    let mut g = c.benchmark_group("text");
    let title = "Indiana Jones and the Kingdom of the Crystal Skull!";
    g.bench_function("normalize_title", |b| {
        b.iter(|| normalize(black_box(title)))
    });
    g.bench_function("levenshtein_12x14", |b| {
        b.iter(|| levenshtein(black_box("indiana jones"), black_box("indianna jones")))
    });
    g.bench_function("damerau_12x14", |b| {
        b.iter(|| damerau_levenshtein(black_box("indiana jones"), black_box("indianna jnoes")))
    });
    g.bench_function("trigram_similarity", |b| {
        b.iter(|| {
            websyn_text::ngram::trigram_similarity(
                black_box("canon eos 350d"),
                black_box("cannon eos 350"),
            )
        })
    });
    g.finish();
}

fn world_and_engine() -> (World, SearchEngine) {
    let world = World::build(&WorldConfig::small_movies(40, 11));
    let engine = engine_for_world(&world);
    (world, engine)
}

fn bench_engine(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine");
    let (world, engine) = world_and_engine();

    g.bench_function("index_build_400_pages", |b| {
        b.iter(|| {
            SearchEngine::from_docs(
                world
                    .pages
                    .iter()
                    .map(|p| (p.id, p.title.as_str(), p.body.as_str())),
            )
        })
    });
    let canonical = &world.entities[0].canonical_norm;
    g.bench_function("search_top10_canonical", |b| {
        b.iter(|| engine.search(black_box(canonical), 10))
    });
    g.bench_function("search_top10_misspelled", |b| {
        // Forces the spell-correction path.
        let misspelled = format!("{}x", canonical.replace(' ', "q "));
        b.iter(|| engine.search(black_box(&misspelled), 10))
    });
    g.finish();
}

fn bench_sessions(c: &mut Criterion) {
    let mut g = c.benchmark_group("sessions");
    g.sample_size(20);
    let mut world = World::build(&WorldConfig::small_movies(40, 12));
    let events = queries::generate(&mut world, &QueryStreamConfig::small(5_000));
    let engine = engine_for_world(&world);
    g.bench_function("simulate_5k_events", |b| {
        b.iter(|| simulate_sessions(&world, &engine, &events, &SessionConfig::default()))
    });
    let (log, _) = simulate_sessions(&world, &engine, &events, &SessionConfig::default());
    let n_pages = world.pages.len();
    g.bench_function("click_graph_build", |b| {
        b.iter(|| ClickGraph::build(black_box(&log), n_pages))
    });
    g.finish();
}

fn pipeline() -> Pipeline {
    small_pipeline(40, 30_000, 13)
}

fn bench_miner(c: &mut Criterion) {
    let mut g = c.benchmark_group("miner");
    g.sample_size(20);
    let p = pipeline();
    let miner = SynonymMiner::new(MinerConfig::default());

    g.bench_function("score_40_entities", |b| b.iter(|| miner.score(&p.ctx)));

    let scored = miner.score(&p.ctx);
    g.bench_function("select_single_point", |b| {
        b.iter(|| select_with(&p.ctx, black_box(&scored), 4, 0.1, miner.config))
    });
    g.bench_function("select_33_point_sweep", |b| {
        b.iter(|| {
            for beta in [2u32, 4, 6] {
                for gamma in [0.01, 0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9] {
                    black_box(select_with(&p.ctx, &scored, beta, gamma, miner.config));
                }
            }
        })
    });
    g.finish();
}

fn bench_walk(c: &mut Criterion) {
    let mut g = c.benchmark_group("walk");
    g.sample_size(30);
    let p = pipeline();
    let start = p
        .ctx
        .log
        .query_id(&p.ctx.u_set[0])
        .or_else(|| p.ctx.log.queries().next().map(|(q, _)| q))
        .expect("log has queries");
    for steps in [2usize, 6, 10] {
        g.bench_with_input(BenchmarkId::new("from_query", steps), &steps, |b, &s| {
            let walk = RandomWalk {
                steps: s,
                ..Default::default()
            };
            b.iter(|| walk.from_query(&p.ctx.graph, start))
        });
    }
    g.finish();
}

fn bench_matcher(c: &mut Criterion) {
    let mut g = c.benchmark_group("matcher");
    let p = pipeline();
    let result = SynonymMiner::new(MinerConfig::with_thresholds(3, 0.1)).mine(&p.ctx);
    let matcher = EntityMatcher::from_mining(&result, &p.ctx);
    let query = format!(
        "showtimes for {} near san francisco tonight",
        p.ctx.u_set[0]
    );
    g.bench_function("build_dictionary", |b| {
        b.iter(|| EntityMatcher::from_mining(&result, &p.ctx))
    });
    g.bench_function("segment_long_query", |b| {
        b.iter(|| matcher.segment(black_box(&query)))
    });
    g.bench_function("exact_lookup", |b| {
        b.iter(|| matcher.lookup(black_box(&p.ctx.u_set[0])))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_text,
    bench_engine,
    bench_sessions,
    bench_miner,
    bench_walk,
    bench_matcher
);
criterion_main!(benches);
