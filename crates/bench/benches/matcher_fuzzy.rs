//! Criterion micro-benchmark for the matcher's serving paths: exact
//! segmentation vs fuzzy (n-gram candidate generation + edit-distance
//! verification) vs batched multi-threaded matching.
//!
//! Unlike the general `microbench` suite this binary has a custom
//! `main` so it can emit a machine-readable perf report,
//! `BENCH_matcher.json` at the workspace root (override the path with
//! the `BENCH_MATCHER_JSON` env var) — the start of the matcher's perf
//! trajectory across PRs.
//!
//! Run: `cargo bench -p websyn-bench --bench matcher_fuzzy`
//! Smoke (CI): `cargo bench -p websyn-bench --bench matcher_fuzzy -- --test`

use criterion::{black_box, Criterion};
use websyn_bench::{
    fuzzy_oracle_eval, misspelled_camera_recovery, movies_pipeline, small_pipeline,
    synth_product_dictionary,
};
use websyn_core::{EntityMatcher, FuzzyConfig, MinerConfig, SynonymMiner};
use websyn_text::double_middle_char;

/// Queries per batch; every benchmark below walks one full batch per
/// iteration, so throughput is `BATCH_SIZE / seconds_per_iter`.
const BATCH_SIZE: usize = 256;

/// Builds `BATCH_SIZE` queries by cycling over the dictionary-bearing
/// `templates`, embedding each in serving-style intent text.
fn batch(templates: &[String]) -> Vec<String> {
    (0..BATCH_SIZE)
        .map(|i| {
            let t = &templates[i % templates.len()];
            match i % 3 {
                0 => format!("{t} near san francisco"),
                1 => format!("watch {t} online tonight"),
                _ => format!("best price for {t}"),
            }
        })
        .collect()
}

/// Capacity of the benchmarked window cache — matches the serving
/// default (`websyn_serve::cluster::load_matcher`).
const WINDOW_CACHE_CAPACITY: usize = 65_536;

fn bench_matcher_modes(c: &mut Criterion) -> (u64, u64) {
    let p = small_pipeline(40, 30_000, 13);
    let result = SynonymMiner::new(MinerConfig::with_thresholds(3, 0.1)).mine(&p.ctx);
    let exact = EntityMatcher::from_mining(&result, &p.ctx);
    // The serving configuration: fuzzy chain plus the cross-batch
    // window cache (criterion's warmup fills it, so the steady-state
    // rows below measure the warm serving path). The `_nocache` row
    // keeps the first-sight cost visible.
    let fuzzy_nocache = exact.clone().with_fuzzy(FuzzyConfig::default());
    let fuzzy = fuzzy_nocache
        .clone()
        .with_window_cache(WINDOW_CACHE_CAPACITY);

    // Clean mentions: every canonical surface; misspelled mentions:
    // the same surfaces, one deterministic edit each.
    let clean = batch(&p.ctx.u_set);
    let misspelled = batch(
        &p.ctx
            .u_set
            .iter()
            .map(|s| double_middle_char(s))
            .collect::<Vec<String>>(),
    );

    let mut g = c.benchmark_group("matcher");
    g.bench_function("exact_segment_clean", |b| {
        b.iter(|| {
            for q in &clean {
                black_box(exact.segment(black_box(q)));
            }
        })
    });
    g.bench_function("fuzzy_segment_clean", |b| {
        b.iter(|| {
            for q in &clean {
                black_box(fuzzy.segment(black_box(q)));
            }
        })
    });
    g.bench_function("exact_segment_misspelled", |b| {
        b.iter(|| {
            for q in &misspelled {
                black_box(exact.segment(black_box(q)));
            }
        })
    });
    g.bench_function("fuzzy_segment_misspelled", |b| {
        b.iter(|| {
            for q in &misspelled {
                black_box(fuzzy.segment(black_box(q)));
            }
        })
    });
    g.bench_function("fuzzy_segment_misspelled_nocache", |b| {
        b.iter(|| {
            for q in &misspelled {
                black_box(fuzzy_nocache.segment(black_box(q)));
            }
        })
    });
    for shards in [1usize, 2, 8] {
        g.bench_function(format!("batch_misspelled_{shards}_shards").as_str(), |b| {
            b.iter(|| black_box(fuzzy.match_batch(black_box(&misspelled), shards)))
        });
    }
    g.finish();
    let stats = fuzzy.window_cache().expect("cache attached").stats();
    (stats.hits, stats.misses)
}

/// Dictionary sizes of the exact-segmentation sweep. Keep in sync with
/// the `bench_check` schema gate.
const SWEEP_SIZES: [usize; 3] = [1_000, 10_000, 50_000];

/// Exact segmentation throughput as a function of dictionary size.
fn bench_dictionary_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("matcher");
    for n in SWEEP_SIZES {
        let dictionary = synth_product_dictionary(n);
        let surfaces: Vec<String> = dictionary
            .iter()
            .step_by((n / 64).max(1))
            .map(|(s, _)| s.clone())
            .collect();
        let matcher = EntityMatcher::from_pairs(dictionary);
        assert_eq!(matcher.len(), n, "sweep dictionary must be collision-free");
        let queries = batch(&surfaces);
        g.bench_function(format!("exact_segment_dict{n}").as_str(), |b| {
            b.iter(|| {
                for q in &queries {
                    black_box(matcher.segment(black_box(q)));
                }
            })
        });
    }
    g.finish();
}

/// The recall half of the perf artifact: fuzzy throughput may only
/// count if recall holds, so the same report carries both and the
/// `bench_check` gate refuses either regressing.
struct RecallReport {
    /// Misspelled-camera mentions the exact matcher missed (the e2e
    /// eval of `tests/end_to_end.rs`, regenerated here so CI gates on
    /// the number, not just on "some recovered").
    camera_total: usize,
    /// How many of those the fuzzy path recovered.
    camera_recovered: usize,
    /// Ablation-6 recall of the default source chain on the D1 oracle
    /// eval set (unmined oracle synonyms + misspelled canonicals).
    ablation6_default_recall: f64,
    /// Ablation-6 recall with the abbreviation source enabled.
    ablation6_abbrev_recall: f64,
}

/// Reproduces the misspelled-camera e2e eval and the ablation-6 fuzzy
/// recall eval through the shared fixtures in `websyn_bench`
/// (`misspelled_camera_recovery`, `fuzzy_oracle_eval` — the same code
/// the `ablation` binary prints the README table from), so the
/// committed artifact records recall next to throughput without a
/// second hand-maintained copy of either eval.
fn measure_recall() -> RecallReport {
    let (camera_recovered, camera_total) = misspelled_camera_recovery();
    let oracle = fuzzy_oracle_eval(&movies_pipeline());
    RecallReport {
        camera_total,
        camera_recovered,
        ablation6_default_recall: oracle.recall(FuzzyConfig::default()),
        ablation6_abbrev_recall: oracle.recall(FuzzyConfig {
            abbrev: true,
            ..FuzzyConfig::default()
        }),
    }
}

/// Serializes the recorded results as the committed perf artifact.
fn json_report(c: &Criterion, recall: &RecallReport, window: (u64, u64)) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"bench\": \"matcher\",\n  \"mode\": \"{}\",\n  \"batch_size\": {BATCH_SIZE},\n",
        if c.is_smoke() { "smoke" } else { "full" }
    ));
    out.push_str(&format!(
        "  \"window_cache\": {{\"hits\": {}, \"misses\": {}}},\n",
        window.0, window.1,
    ));
    out.push_str(&format!(
        "  \"recall\": {{\"misspelled_camera_recovered\": {}, \"misspelled_camera_total\": {}, \"ablation6_default_recall\": {:.3}, \"ablation6_abbrev_recall\": {:.3}}},\n",
        recall.camera_recovered,
        recall.camera_total,
        recall.ablation6_default_recall,
        recall.ablation6_abbrev_recall,
    ));
    out.push_str("  \"results\": [\n");
    let results = c.results();
    for (i, r) in results.iter().enumerate() {
        let qps = BATCH_SIZE as f64 * 1e9 / r.ns_per_iter;
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"ns_per_iter\": {:.1}, \"iters\": {}, \"queries_per_sec\": {:.0}}}{}\n",
            r.name,
            r.ns_per_iter,
            r.iters,
            qps,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let mut c = Criterion::default().configure_from_args();
    let window = bench_matcher_modes(&mut c);
    bench_dictionary_sweep(&mut c);
    println!("\nmeasuring fuzzy recall (misspelled-camera + ablation-6)…");
    let recall = measure_recall();
    println!(
        "misspelled-camera {}/{}, ablation-6 recall default {:.3} / abbrev {:.3}",
        recall.camera_recovered,
        recall.camera_total,
        recall.ablation6_default_recall,
        recall.ablation6_abbrev_recall,
    );
    let path = std::env::var("BENCH_MATCHER_JSON").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_matcher.json").to_string()
    });
    let report = json_report(&c, &recall, window);
    std::fs::write(&path, &report).expect("write BENCH_matcher.json");
    println!("\nwrote {path}");
}
