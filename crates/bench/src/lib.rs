//! # websyn-bench
//!
//! The experiment harness: shared pipeline assembly for the binaries
//! that regenerate every table and figure of the paper
//! (`fig2`, `fig3`, `table1`, `ablation`) and for the Criterion
//! micro-benchmarks.

use websyn_click::session::{engine_for_world, simulate_sessions};
use websyn_click::{SessionConfig, SessionStats};
use websyn_core::miner::select_with;
use websyn_core::{
    evaluate, EvalReport, MinerConfig, MiningContext, MiningResult, ScoredCandidates, SynonymMiner,
};
use websyn_engine::{SearchData, SearchEngine};
use websyn_synth::{queries, QueryEvent, QueryStreamConfig, World, WorldConfig};

/// The Search Data collection depth used by all experiments: deep
/// enough for the surrogate-depth ablation (k ≤ 20).
pub const SEARCH_DEPTH: usize = 20;

/// Default query-stream sizes per dataset, chosen so that tail entities
/// receive realistic (sparse) traffic.
pub const MOVIES_EVENTS: usize = 120_000;

/// Default camera stream size (882 entities need a longer log).
pub const CAMERAS_EVENTS: usize = 350_000;

/// A fully assembled experiment pipeline.
pub struct Pipeline {
    /// The synthetic world (catalog + aliases + pages + oracle).
    pub world: World,
    /// The search engine over the world's pages.
    pub engine: SearchEngine,
    /// The generated query stream.
    pub events: Vec<QueryEvent>,
    /// Session simulation statistics.
    pub stats: SessionStats,
    /// The assembled mining inputs.
    pub ctx: MiningContext,
}

/// Builds the full pipeline for a world configuration.
pub fn build_pipeline(
    world_config: &WorldConfig,
    n_events: usize,
    session: SessionConfig,
) -> Pipeline {
    let mut world = World::build(world_config);
    let events = queries::generate(&mut world, &QueryStreamConfig::small(n_events));
    let engine = engine_for_world(&world);
    let (log, stats) = simulate_sessions(&world, &engine, &events, &session);
    let u_set: Vec<String> = world
        .entities
        .iter()
        .map(|e| e.canonical_norm.clone())
        .collect();
    let search = SearchData::collect(&engine, &u_set, SEARCH_DEPTH);
    let n_pages = world.pages.len();
    let ctx = MiningContext::new(u_set, search, log, n_pages);
    Pipeline {
        world,
        engine,
        events,
        stats,
        ctx,
    }
}

/// The D1 (movies) pipeline at its default size.
pub fn movies_pipeline() -> Pipeline {
    build_pipeline(
        &WorldConfig::movies_2008(),
        MOVIES_EVENTS,
        SessionConfig::default(),
    )
}

/// The D2 (cameras) pipeline at its default size.
pub fn cameras_pipeline() -> Pipeline {
    build_pipeline(
        &WorldConfig::cameras_msn(),
        CAMERAS_EVENTS,
        SessionConfig::default(),
    )
}

/// A scaled-down movies pipeline for tests and micro-benchmarks.
pub fn small_pipeline(n_entities: usize, n_events: usize, seed: u64) -> Pipeline {
    build_pipeline(
        &WorldConfig::small_movies(n_entities, seed),
        n_events,
        SessionConfig::default(),
    )
}

/// One sweep point: thresholds plus the resulting evaluation.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// IPC threshold β.
    pub beta: u32,
    /// ICR threshold γ.
    pub gamma: f64,
    /// The evaluation at this operating point.
    pub report: EvalReport,
}

/// Scores once, then evaluates a grid of (β, γ) points.
pub fn sweep(
    pipeline: &Pipeline,
    top_k: usize,
    points: &[(u32, f64)],
) -> (ScoredCandidates, Vec<SweepPoint>) {
    let miner = SynonymMiner::new(MinerConfig {
        top_k,
        ..Default::default()
    });
    let scored = miner.score(&pipeline.ctx);
    let out = points
        .iter()
        .map(|&(beta, gamma)| {
            let result = select_with(&pipeline.ctx, &scored, beta, gamma, miner.config);
            SweepPoint {
                beta,
                gamma,
                report: evaluate(&result, &pipeline.ctx, &pipeline.world),
            }
        })
        .collect();
    (scored, out)
}

/// Converts a mining result into the baselines' output shape so Table I
/// can print one uniform table.
pub fn to_baseline_output(name: &str, result: &MiningResult) -> websyn_baselines::BaselineOutput {
    let per_entity = result
        .per_entity
        .iter()
        .map(|es| es.synonyms.iter().map(|s| s.text.clone()).collect())
        .collect();
    websyn_baselines::BaselineOutput::new(name, per_entity)
}

/// Prints a markdown table header used by the figure binaries.
pub fn print_table_header(columns: &[&str]) {
    println!("| {} |", columns.join(" | "));
    println!(
        "|{}|",
        columns.iter().map(|_| "---").collect::<Vec<_>>().join("|")
    );
}

/// The ablation-6 fuzzy eval fixture over a pipeline: the mined exact
/// matcher plus the oracle eval set — every oracle synonym the mined
/// dictionary does *not* contain verbatim, plus one deterministic
/// misspelling per canonical string. One definition shared by the
/// `ablation` binary (which prints the README table) and the matcher
/// benchmark's recall report (which feeds the CI recall gate), so the
/// two can never drift apart.
pub struct FuzzyOracleEval {
    /// The mined exact matcher the fuzzy configs are layered on.
    pub exact: websyn_core::EntityMatcher,
    /// `(query, true entity)` pairs the exact path cannot answer.
    pub eval: Vec<(String, websyn_common::EntityId)>,
    /// How many eval queries are unmined oracle synonyms (the rest are
    /// misspelled canonicals).
    pub unmined_synonyms: usize,
}

impl FuzzyOracleEval {
    /// Recall of `lookup_fuzzy` under `config` against the eval set.
    pub fn recall(&self, config: websyn_core::FuzzyConfig) -> f64 {
        let matcher = self.exact.clone().with_fuzzy(config);
        let correct = self
            .eval
            .iter()
            .filter(|(query, truth)| {
                matcher
                    .lookup_fuzzy(query)
                    .is_some_and(|hit| hit.entity == *truth)
            })
            .count();
        correct as f64 / self.eval.len().max(1) as f64
    }
}

/// Builds the ablation-6 eval fixture from a pipeline (use
/// [`movies_pipeline`] for the committed D1 numbers), mining with the
/// ablation's β=4, γ=0.1 thresholds.
pub fn fuzzy_oracle_eval(pipeline: &Pipeline) -> FuzzyOracleEval {
    use websyn_common::EntityId;
    let mining = SynonymMiner::new(MinerConfig::with_thresholds(4, 0.1)).mine(&pipeline.ctx);
    let exact = websyn_core::EntityMatcher::from_mining(&mining, &pipeline.ctx);
    let mut eval: Vec<(String, EntityId)> = Vec::new();
    let mut unmined_synonyms = 0usize;
    for (i, canonical) in pipeline.ctx.u_set.iter().enumerate() {
        let e = EntityId::from_usize(i);
        for alias in pipeline.world.aliases.synonyms_of(e) {
            if exact.lookup(&alias.text).is_none() {
                eval.push((alias.text.clone(), e));
                unmined_synonyms += 1;
            }
        }
        let typo = websyn_text::double_middle_char(canonical);
        if exact.lookup(&typo).is_none() {
            eval.push((typo, e));
        }
    }
    FuzzyOracleEval {
        exact,
        eval,
        unmined_synonyms,
    }
}

/// The misspelled-camera recovery eval of `tests/end_to_end.rs`,
/// regenerated for the committed perf artifact: every "canon …"
/// canonical is misspelled with two one-edit typos and must resolve
/// through the fuzzy path. Returns `(recovered, total)` over the
/// mentions the exact matcher missed.
pub fn misspelled_camera_recovery() -> (usize, usize) {
    let p = build_pipeline(
        &WorldConfig::small_cameras(40, 48),
        40_000,
        SessionConfig::default(),
    );
    let result = SynonymMiner::new(MinerConfig::with_thresholds(4, 0.1)).mine(&p.ctx);
    let exact = websyn_core::EntityMatcher::from_mining(&result, &p.ctx);
    let fuzzy = exact
        .clone()
        .with_fuzzy(websyn_core::FuzzyConfig::default());
    let (mut total, mut recovered) = (0usize, 0usize);
    for e in p
        .world
        .entities
        .iter()
        .filter(|e| e.canonical_norm.starts_with("canon "))
    {
        let misspelled = format!("cannon{}d", &e.canonical_norm["canon".len()..]);
        let query = format!("{misspelled} best price");
        if exact.segment(&query).iter().any(|s| s.entity == e.id) {
            continue;
        }
        total += 1;
        if fuzzy
            .segment(&query)
            .iter()
            .any(|s| s.entity == e.id && s.distance > 0)
        {
            recovered += 1;
        }
    }
    (recovered, total)
}

/// A deterministic synthetic product dictionary of exactly `n` unique
/// surfaces (`brand line <number><suffix>`), stressing the compiled
/// dictionary's probe table as the surface count grows. Shared by the
/// matcher microbenchmark's dictionary-size sweep and the serving load
/// generator.
pub fn synth_product_dictionary(n: usize) -> Vec<(String, websyn_common::EntityId)> {
    const BRANDS: [&str; 12] = [
        "canon",
        "nikon",
        "kodak",
        "sony",
        "fuji",
        "pentax",
        "olympus",
        "leica",
        "sigma",
        "casio",
        "panasonic",
        "minolta",
    ];
    const LINES: [&str; 8] = [
        "eos",
        "coolpix",
        "easyshare",
        "cyber shot",
        "finepix",
        "optio",
        "stylus",
        "lumix",
    ];
    const SUFFIXES: [char; 5] = ['d', 'x', 's', 'z', 't'];
    (0..n)
        .map(|i| {
            let brand = BRANDS[i % BRANDS.len()];
            let line = LINES[(i / BRANDS.len()) % LINES.len()];
            let suffix = SUFFIXES[(i / 7) % SUFFIXES.len()];
            // The running number makes every surface unique, so none
            // are dropped as ambiguous.
            (
                format!("{brand} {line} {}{suffix}", 100 + i),
                websyn_common::EntityId::from_usize(i),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synth_product_dictionary_is_collision_free() {
        let dict = synth_product_dictionary(5_000);
        let matcher = websyn_core::EntityMatcher::from_pairs(dict);
        assert_eq!(matcher.len(), 5_000);
    }

    #[test]
    fn small_pipeline_assembles() {
        let p = small_pipeline(10, 5_000, 3);
        assert_eq!(p.ctx.n_entities(), 10);
        assert!(p.stats.clicks > 0);
        assert!(p.ctx.log.n_queries() > 0);
    }

    #[test]
    fn sweep_is_monotone_in_beta() {
        let p = small_pipeline(15, 15_000, 5);
        let points: Vec<(u32, f64)> = (2..=6).map(|b| (b, 0.0)).collect();
        let (_, results) = sweep(&p, 10, &points);
        for w in results.windows(2) {
            assert!(
                w[1].report.n_synonyms <= w[0].report.n_synonyms,
                "β={} produced more synonyms than β={}",
                w[1].beta,
                w[0].beta
            );
        }
    }

    #[test]
    fn baseline_output_conversion() {
        let p = small_pipeline(8, 6_000, 7);
        let result = SynonymMiner::default().mine(&p.ctx);
        let out = to_baseline_output("Us", &result);
        assert_eq!(out.n_entities(), 8);
        assert_eq!(out.total_synonyms(), result.total_synonyms());
        assert_eq!(out.hits(), result.hits());
    }
}
