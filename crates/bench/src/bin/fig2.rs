//! Figure 2 reproduction: "IPC Precision and Coverage Increase".
//!
//! D1 (movies), IPC threshold β sweeping 10 → 2 with no ICR filter.
//! For each β: coverage increase (x axis), synonym precision ("Syns")
//! and weighted precision ("Syns W") (y axis).
//!
//! Paper shape to match: precision rises with β (weaker in the
//! weighted curve); coverage increase falls with β but stays ≥ 120%
//! even at β = 10.
//!
//! Run: `cargo run -p websyn-bench --bin fig2 --release`

use websyn_bench::{movies_pipeline, print_table_header, sweep};

fn main() {
    eprintln!("building D1 (movies) pipeline ...");
    let pipeline = movies_pipeline();
    eprintln!(
        "world: {} entities, {} pages; log: {} events, {} distinct queries, {} clicks",
        pipeline.world.entities.len(),
        pipeline.world.pages.len(),
        pipeline.stats.events,
        pipeline.stats.distinct_queries,
        pipeline.stats.clicks,
    );

    // β from 10 down to 2, as the paper's curve runs left to right.
    let points: Vec<(u32, f64)> = (2..=10).rev().map(|b| (b, 0.0)).collect();
    let (_, results) = sweep(&pipeline, 10, &points);

    println!("\n## Figure 2 — IPC Precision and Coverage Increase (D1 movies)\n");
    print_table_header(&[
        "beta (IPC)",
        "coverage increase",
        "precision (Syns)",
        "weighted precision (Syns W)",
        "synonyms",
        "hits",
    ]);
    for p in &results {
        println!(
            "| {} | {:.0}% | {:.3} | {:.3} | {} | {} |",
            p.beta,
            p.report.coverage_increase() * 100.0,
            p.report.precision,
            p.report.weighted_precision,
            p.report.n_synonyms,
            p.report.hits,
        );
    }

    // Shape assertions (soft): report deviations rather than panic.
    let first = &results[0].report; // β = 10
    let last = &results[results.len() - 1].report; // β = 2
    if first.precision + 1e-9 < last.precision {
        eprintln!(
            "WARN: precision at β=10 ({:.3}) below β=2 ({:.3}) — shape deviates from paper",
            first.precision, last.precision
        );
    }
    if first.coverage_increase() > last.coverage_increase() {
        eprintln!("WARN: coverage increase should grow as β loosens");
    }
    eprintln!("done.");
}
