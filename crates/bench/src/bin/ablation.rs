//! Ablations beyond the paper (DESIGN.md §5):
//!
//! 1. **Selector ablation** — IPC-only vs ICR-only vs both, with the
//!    ground-truth class breakdown showing *which* error class each
//!    signal removes (the paper argues ICR kills hypernyms — here that
//!    is measured directly).
//! 2. **Surrogate depth k** — precision/coverage as k ∈ {1,3,5,10,20}.
//! 3. **Click model robustness** — position-biased vs cascade.
//! 4. **String-matching comparators** — the substring and trigram
//!    baselines the paper's introduction dismisses, quantified.
//!
//! Run: `cargo run -p websyn-bench --bin ablation --release`

use websyn_baselines::{ClusterBaseline, EditDistanceBaseline, SubstringBaseline};
use websyn_bench::{
    build_pipeline, fuzzy_oracle_eval, print_table_header, sweep, to_baseline_output, MOVIES_EVENTS,
};
use websyn_click::{ClickModel, SessionConfig};
use websyn_core::{evaluate, FuzzyConfig, MinerConfig, SynonymMiner};
use websyn_synth::WorldConfig;

fn main() {
    eprintln!("building D1 (movies) pipeline ...");
    let pipeline = websyn_bench::movies_pipeline();

    // ----- 1. selector ablation -------------------------------------
    println!("\n## Ablation 1 — what each selection signal removes (D1)\n");
    let points = [
        (1u32, 0.0f64), // no selection (candidates as-is)
        (4, 0.0),       // IPC only
        (1, 0.1),       // ICR only
        (4, 0.1),       // both (the paper's Us)
    ];
    let labels = [
        "none (β=1, γ=0)",
        "IPC only (β=4)",
        "ICR only (γ=0.1)",
        "Us (β=4, γ=0.1)",
    ];
    let (_, results) = sweep(&pipeline, 10, &points);
    print_table_header(&[
        "selector",
        "precision",
        "synonyms",
        "true syn",
        "hypernym leaks",
        "hyponym leaks",
        "related leaks",
        "unrelated",
    ]);
    for (label, p) in labels.iter().zip(&results) {
        let b = p.report.breakdown;
        println!(
            "| {} | {:.3} | {} | {} | {} | {} | {} | {} |",
            label,
            p.report.precision,
            p.report.n_synonyms,
            b.synonym,
            b.hypernym,
            b.hyponym,
            b.related,
            b.unrelated,
        );
    }

    // ----- 2. surrogate depth ----------------------------------------
    println!("\n## Ablation 2 — surrogate depth k (D1, β=4, γ=0.1)\n");
    print_table_header(&[
        "k",
        "precision",
        "weighted precision",
        "coverage increase",
        "synonyms",
        "hits",
    ]);
    for k in [1usize, 3, 5, 10, 20] {
        let (_, res) = sweep(&pipeline, k, &[(4, 0.1)]);
        let r = &res[0].report;
        println!(
            "| {} | {:.3} | {:.3} | {:.0}% | {} | {} |",
            k,
            r.precision,
            r.weighted_precision,
            r.coverage_increase() * 100.0,
            r.n_synonyms,
            r.hits,
        );
    }

    // ----- 3. click model robustness ----------------------------------
    println!("\n## Ablation 3 — click model robustness (D1, β=4, γ=0.1)\n");
    print_table_header(&[
        "click model",
        "precision",
        "synonyms",
        "hits",
        "clicks in log",
    ]);
    for (label, model) in [
        ("position-biased", ClickModel::default()),
        ("cascade", ClickModel::cascade()),
    ] {
        let p = build_pipeline(
            &WorldConfig::movies_2008(),
            MOVIES_EVENTS,
            SessionConfig {
                model,
                ..Default::default()
            },
        );
        let result = SynonymMiner::new(MinerConfig::with_thresholds(4, 0.1)).mine(&p.ctx);
        let report = evaluate(&result, &p.ctx, &p.world);
        println!(
            "| {} | {:.3} | {} | {} | {} |",
            label, report.precision, report.n_synonyms, report.hits, p.stats.clicks,
        );
    }

    // ----- 5. surrogate source: Search Data vs Click Data --------------
    // The paper's Section III-A argues click-based surrogates fail
    // because canonical data values are rarely issued as queries. The
    // effect is mild on movies and severe on cameras.
    println!("\n## Ablation 5 — surrogate source (β=4, γ=0.1)\n");
    print_table_header(&[
        "dataset",
        "source",
        "hits",
        "hit ratio",
        "synonyms",
        "precision",
    ]);
    let cameras = build_pipeline(
        &WorldConfig::small_cameras(300, 882),
        150_000,
        SessionConfig::default(),
    );
    for (dataset, p) in [("movies", &pipeline), ("cameras(300)", &cameras)] {
        for source in [
            websyn_core::SurrogateSource::Search,
            websyn_core::SurrogateSource::Clicks,
        ] {
            let miner = SynonymMiner::new(MinerConfig {
                surrogate_source: source,
                ..MinerConfig::with_thresholds(4, 0.1)
            });
            let result = miner.mine(&p.ctx);
            let report = evaluate(&result, &p.ctx, &p.world);
            println!(
                "| {} | {:?} | {} | {:.1}% | {} | {:.3} |",
                dataset,
                source,
                report.hits,
                report.hit_ratio * 100.0,
                report.n_synonyms,
                report.precision,
            );
        }
    }

    // ----- 4. string-matching comparators -----------------------------
    println!("\n## Ablation 4 — string-matching comparators (D1)\n");
    print_table_header(&[
        "method",
        "hits",
        "hit ratio",
        "synonyms",
        "expansion",
        "precision",
    ]);
    let us = to_baseline_output(
        "Us",
        &SynonymMiner::new(MinerConfig::with_thresholds(4, 0.1)).mine(&pipeline.ctx),
    );
    let substring = SubstringBaseline::default().run(&pipeline.ctx.u_set, &pipeline.ctx.log);
    let trigram = EditDistanceBaseline::default().run(&pipeline.ctx.u_set, &pipeline.ctx.log);
    let cluster =
        ClusterBaseline::default().run(&pipeline.ctx.u_set, &pipeline.ctx.log, &pipeline.ctx.graph);
    for out in [&us, &substring, &trigram, &cluster] {
        println!(
            "| {} | {} | {:.1}% | {} | {:.0}% | {:.3} |",
            out.name,
            out.hits(),
            out.hit_ratio() * 100.0,
            out.total_synonyms(),
            out.expansion_ratio() * 100.0,
            out.precision(&pipeline.world),
        );
    }

    // ----- 6. fuzzy candidate sources vs the synth oracle -------------
    // The matcher's optional candidate sources
    // (`FuzzyConfig::{phonetic, abbrev}`) widen approximate lookup
    // beyond the n-gram index. Here they are scored against the alias
    // ground truth: the eval set is every oracle synonym the mined
    // dictionary does NOT contain verbatim (so the exact path cannot
    // answer), plus one deterministic misspelling of every canonical
    // string — exactly the traffic the fuzzy path exists for. A query
    // counts as correct when `lookup_fuzzy` resolves it to its oracle
    // entity; recall is correct/total, precision correct/resolved.
    println!("\n## Ablation 6 — fuzzy candidate sources vs the synth oracle (D1)\n");
    // The eval fixture is shared with the matcher benchmark's recall
    // report (`websyn_bench::fuzzy_oracle_eval`), so this table and
    // the CI-gated recall numbers can never drift apart.
    let fixture = fuzzy_oracle_eval(&pipeline);
    let (exact, eval, unmined_synonyms) = (&fixture.exact, &fixture.eval, fixture.unmined_synonyms);
    println!(
        "{} eval queries ({} unmined oracle synonyms + {} misspelled canonicals); \
         dictionary holds {} surfaces\n",
        eval.len(),
        unmined_synonyms,
        eval.len() - unmined_synonyms,
        exact.len(),
    );
    print_table_header(&[
        "sources",
        "recall",
        "precision",
        "resolved",
        "correct",
        "wrong",
    ]);
    let configs = [
        ("token-sig + ngram (default)", false, false),
        ("+ phonetic", true, false),
        ("+ abbrev", false, true),
        ("+ phonetic + abbrev", true, true),
    ];
    for (label, phonetic, abbrev) in configs {
        let matcher = exact.clone().with_fuzzy(FuzzyConfig {
            phonetic,
            abbrev,
            ..FuzzyConfig::default()
        });
        let mut resolved = 0usize;
        let mut correct = 0usize;
        for (query, truth) in eval {
            if let Some(hit) = matcher.lookup_fuzzy(query) {
                resolved += 1;
                if hit.entity == *truth {
                    correct += 1;
                }
            }
        }
        println!(
            "| {} | {:.3} | {} | {} | {} | {} |",
            label,
            correct as f64 / eval.len().max(1) as f64,
            // Precision is undefined when nothing resolved; a 1.000
            // would mask a dead fuzzy path.
            if resolved == 0 {
                "n/a".to_string()
            } else {
                format!("{:.3}", correct as f64 / resolved as f64)
            },
            resolved,
            correct,
            resolved - correct,
        );
    }

    eprintln!("done.");
}
