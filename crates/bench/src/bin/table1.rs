//! Table I reproduction: "Hits and Expansion".
//!
//! Both datasets (D1 movies, D2 cameras), three methods:
//! - **Us** — the miner at the paper's operating point (IPC 4, ICR 0.1);
//! - **Wiki** — simulated Wikipedia redirect/disambiguation pages;
//! - **Walk(0.8)** — random walk on the click graph.
//!
//! Paper shape to match: Us beats both baselines on Hits and Expansion
//! on both datasets; Wiki collapses on cameras (11.5% hit ratio in the
//! paper); Walk sits between (54%), limited to canonical strings that
//! were actually queried.
//!
//! Run: `cargo run -p websyn-bench --bin table1 --release`

use websyn_baselines::{BaselineOutput, WalkBaseline, WikiBaseline};
use websyn_bench::{cameras_pipeline, movies_pipeline, to_baseline_output, Pipeline};
use websyn_core::{MinerConfig, SynonymMiner};

fn run_dataset(label: &str, pipeline: &Pipeline) -> Vec<BaselineOutput> {
    eprintln!(
        "[{label}] log: {} events, {} distinct queries, {} clicks",
        pipeline.stats.events, pipeline.stats.distinct_queries, pipeline.stats.clicks
    );

    // Us: IPC 4, ICR 0.1 (the paper's chosen thresholds).
    let miner = SynonymMiner::new(MinerConfig::with_thresholds(4, 0.1));
    let result = miner.mine(&pipeline.ctx);
    let report = websyn_core::evaluate(&result, &pipeline.ctx, &pipeline.world);
    eprintln!("[{label}] Us breakdown: {}", report.breakdown);
    // Diagnostic: the most frequently leaked non-synonym texts.
    let mut leaks: std::collections::HashMap<&str, usize> = std::collections::HashMap::new();
    for es in &result.per_entity {
        for syn in &es.synonyms {
            let class = websyn_core::classify(&pipeline.world, &syn.text, es.entity);
            if class != websyn_core::TruthClass::Synonym {
                *leaks.entry(syn.text.as_str()).or_default() += 1;
            }
        }
    }
    let mut top: Vec<_> = leaks.into_iter().collect();
    // Tie-break by text: HashMap iteration order is randomized per
    // process, and count ties are common at the tail of the top-8.
    top.sort_by_key(|&(text, count)| (std::cmp::Reverse(count), text));
    for (text, count) in top.iter().take(8) {
        eprintln!("[{label}]   leak ×{count}: {text:?}");
    }
    let us = to_baseline_output("Us", &result);

    // Wiki.
    let wiki = WikiBaseline::for_domain(pipeline.world.domain())
        .run(&pipeline.world, pipeline.world.seq());

    // Walk(0.8).
    let walk =
        WalkBaseline::default().run(&pipeline.ctx.u_set, &pipeline.ctx.log, &pipeline.ctx.graph);

    // Beyond the paper: exact precision per method (the paper reports
    // precision only for Us, via human judges).
    for out in [&us, &wiki, &walk] {
        eprintln!(
            "[{label}] {:<10} precision={:.3}",
            out.name,
            out.precision(&pipeline.world)
        );
    }

    vec![us, wiki, walk]
}

fn main() {
    println!("## Table I — Hits and Expansion\n");
    println!(
        "| {:<8} | {:<10} | {:>5} | {:>5} | {:>6} | {:>8} | {:>9} |",
        "dataset", "method", "orig", "hits", "ratio", "synonyms", "expansion"
    );
    println!("|---|---|---|---|---|---|---|");

    eprintln!("building D1 (movies) pipeline ...");
    let movies = movies_pipeline();
    for out in run_dataset("movies", &movies) {
        println!(
            "| {:<8} | {:<10} | {:>5} | {:>5} | {:>5.1}% | {:>8} | {:>8.0}% |",
            "Movies",
            out.name,
            out.n_entities(),
            out.hits(),
            out.hit_ratio() * 100.0,
            out.total_synonyms(),
            out.expansion_ratio() * 100.0,
        );
    }

    eprintln!("building D2 (cameras) pipeline ...");
    let cameras = cameras_pipeline();
    for out in run_dataset("cameras", &cameras) {
        println!(
            "| {:<8} | {:<10} | {:>5} | {:>5} | {:>5.1}% | {:>8} | {:>8.0}% |",
            "Cameras",
            out.name,
            out.n_entities(),
            out.hits(),
            out.hit_ratio() * 100.0,
            out.total_synonyms(),
            out.expansion_ratio() * 100.0,
        );
    }

    eprintln!("done.");
}
