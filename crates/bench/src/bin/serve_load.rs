//! Zipfian load generator for the serving front end.
//!
//! Replays a synthetic web-query log against a live `websyn-serve`
//! instance (started in-process on an ephemeral port, but exercised
//! through real TCP sockets) and reports what a serving benchmark must
//! report: **tail latency**, not just throughput.
//!
//! The workload models what ROADMAP calls the serving reality: query
//! logs are Zipfian, so a small head of distinct queries carries most
//! of the traffic. A quarter of the distinct queries carry a
//! deterministic misspelling, so the expensive fuzzy path is exercised
//! on every cache miss; the result cache in front of it is what keeps
//! the tail survivable.
//!
//! Every response is checked byte-for-byte against a golden
//! `format_spans(matcher.segment(q))` computed up front — a cached
//! response that differs from the uncached one, anywhere in the run,
//! fails the binary.
//!
//! Emits `BENCH_serve.json` at the workspace root (override with the
//! `BENCH_SERVE_JSON` env var); `bench_check` gates its schema and the
//! cache-hit floor in CI.
//!
//! Run: `cargo run --release -p websyn-bench --bin serve_load`
//! Smoke (CI): `cargo run --release -p websyn-bench --bin serve_load -- --test`

use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};
use websyn_bench::synth_product_dictionary;
use websyn_common::stats::percentile_sorted;
use websyn_common::{SeedSequence, Zipf};
use websyn_core::{EntityMatcher, FuzzyConfig};
use websyn_serve::{format_spans, Engine, EngineConfig, ServeConfig, Server};
use websyn_text::double_middle_char;

/// Workload shape; `smoke` shrinks everything for CI.
struct LoadConfig {
    mode: &'static str,
    dict_size: usize,
    distinct_queries: usize,
    total_queries: usize,
    connections: usize,
    pipeline_depth: usize,
    workers: usize,
    batch_max: usize,
    batch_window: Duration,
    cache_capacity: usize,
    zipf_s: f64,
}

impl LoadConfig {
    fn full() -> Self {
        Self {
            mode: "full",
            dict_size: 5_000,
            distinct_queries: 2_000,
            total_queries: 40_000,
            connections: 8,
            pipeline_depth: 8,
            workers: 4,
            batch_max: 32,
            batch_window: Duration::from_micros(100),
            cache_capacity: 1_024,
            zipf_s: 1.0,
        }
    }

    fn smoke() -> Self {
        Self {
            mode: "smoke",
            dict_size: 500,
            distinct_queries: 200,
            total_queries: 2_000,
            connections: 4,
            pipeline_depth: 4,
            workers: 2,
            cache_capacity: 256,
            ..Self::full()
        }
    }
}

/// The distinct query pool, rank 0 = most popular: each rank picks a
/// dictionary surface (stride-spread so popularity is uncorrelated
/// with dictionary order), wraps it in intent text, and every fourth
/// rank carries one deterministic edit — those queries can only
/// resolve through the fuzzy path.
fn query_pool(dictionary: &[(String, websyn_common::EntityId)], distinct: usize) -> Vec<String> {
    (0..distinct)
        .map(|rank| {
            let surface = &dictionary[(rank * 7919) % dictionary.len()].0;
            let mention = if rank % 4 == 3 {
                double_middle_char(surface)
            } else {
                surface.clone()
            };
            match rank % 3 {
                0 => format!("{mention} near san francisco"),
                1 => format!("best price for {mention}"),
                _ => format!("{mention} reviews and deals"),
            }
        })
        .collect()
}

/// One client connection: replays `queries` closed-loop with a bounded
/// pipeline, returning per-request latencies (µs) and the number of
/// responses that did not match their golden line.
fn run_client(
    addr: std::net::SocketAddr,
    queries: &[u32],
    pool: &[String],
    golden: &[String],
    depth: usize,
) -> std::io::Result<(Vec<f64>, usize)> {
    let conn = TcpStream::connect(addr)?;
    conn.set_nodelay(true)?;
    let mut reader = BufReader::new(conn.try_clone()?);
    let mut conn = conn;
    let mut latencies = Vec::with_capacity(queries.len());
    let mut mismatches = 0usize;
    // Responses come back in request order, so the in-flight queue of
    // (rank, send-instant) pairs lines up FIFO with the reads.
    let mut in_flight: VecDeque<(u32, Instant)> = VecDeque::with_capacity(depth);
    let mut line = String::new();
    let drain_one = |reader: &mut BufReader<TcpStream>,
                     in_flight: &mut VecDeque<(u32, Instant)>,
                     line: &mut String,
                     latencies: &mut Vec<f64>,
                     mismatches: &mut usize|
     -> std::io::Result<()> {
        let (rank, sent_at) = in_flight.pop_front().expect("drain with nothing in flight");
        line.clear();
        reader.read_line(line)?;
        latencies.push(sent_at.elapsed().as_secs_f64() * 1e6);
        if line.trim_end() != golden[rank as usize] {
            *mismatches += 1;
        }
        Ok(())
    };
    for &rank in queries {
        if in_flight.len() >= depth.max(1) {
            drain_one(
                &mut reader,
                &mut in_flight,
                &mut line,
                &mut latencies,
                &mut mismatches,
            )?;
        }
        conn.write_all(pool[rank as usize].as_bytes())?;
        conn.write_all(b"\n")?;
        in_flight.push_back((rank, Instant::now()));
    }
    while !in_flight.is_empty() {
        drain_one(
            &mut reader,
            &mut in_flight,
            &mut line,
            &mut latencies,
            &mut mismatches,
        )?;
    }
    Ok((latencies, mismatches))
}

fn main() -> ExitCode {
    let smoke = std::env::args().any(|a| a == "--test" || a == "--smoke");
    let config = if smoke {
        LoadConfig::smoke()
    } else {
        LoadConfig::full()
    };

    eprintln!(
        "serve_load: dict={} distinct={} total={} conns={}x{} workers={} cache={}",
        config.dict_size,
        config.distinct_queries,
        config.total_queries,
        config.connections,
        config.pipeline_depth,
        config.workers,
        config.cache_capacity,
    );

    // --- workload --------------------------------------------------
    let dictionary = synth_product_dictionary(config.dict_size);
    let matcher =
        Arc::new(EntityMatcher::from_pairs(dictionary.clone()).with_fuzzy(FuzzyConfig::default()));
    let pool = query_pool(&dictionary, config.distinct_queries);
    let golden: Vec<String> = pool
        .iter()
        .map(|q| format_spans(&matcher.segment(q)))
        .collect();
    let fuzzy_resolving = golden
        .iter()
        .enumerate()
        .filter(|(rank, g)| rank % 4 == 3 && g.len() > 2)
        .count();
    eprintln!(
        "serve_load: {} distinct queries, {} misspelled-and-resolving",
        pool.len(),
        fuzzy_resolving
    );

    let zipf = Zipf::new(config.distinct_queries, config.zipf_s).expect("zipf params");
    let mut rng = SeedSequence::new(42).rng("serve_load");
    let stream: Vec<u32> = (0..config.total_queries)
        .map(|_| zipf.sample(&mut rng) as u32)
        .collect();

    // --- server ----------------------------------------------------
    let engine = Arc::new(Engine::new(
        Arc::clone(&matcher),
        EngineConfig {
            cache_shards: 8,
            cache_capacity: config.cache_capacity,
        },
    ));
    let server = Server::start(
        Arc::clone(&engine),
        "127.0.0.1:0",
        ServeConfig {
            workers: config.workers,
            queue_depth: 4096,
            batch_max: config.batch_max,
            batch_window: config.batch_window,
            ..ServeConfig::default()
        },
    )
    .expect("bind ephemeral port");
    let addr = server.addr();

    // --- replay ----------------------------------------------------
    let chunk = config.total_queries.div_ceil(config.connections);
    let started = Instant::now();
    let results: Vec<(Vec<f64>, usize)> = std::thread::scope(|scope| {
        let handles: Vec<_> = stream
            .chunks(chunk)
            .map(|slice| {
                let pool = &pool;
                let golden = &golden;
                scope.spawn(move || {
                    run_client(addr, slice, pool, golden, config.pipeline_depth).expect("client io")
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client"))
            .collect()
    });
    let wall = started.elapsed();
    let stats = engine.cache_stats();
    server.shutdown();

    // --- report ----------------------------------------------------
    let mut latencies: Vec<f64> = results
        .iter()
        .flat_map(|(l, _)| l.iter().copied())
        .collect();
    let mismatches: usize = results.iter().map(|(_, m)| m).sum();
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("no NaN latency"));
    assert_eq!(latencies.len(), config.total_queries);
    let p50 = percentile_sorted(&latencies, 0.50);
    let p95 = percentile_sorted(&latencies, 0.95);
    let p99 = percentile_sorted(&latencies, 0.99);
    let max = latencies[latencies.len() - 1];
    let throughput = config.total_queries as f64 / wall.as_secs_f64();
    let hit_rate = stats.hit_rate();

    println!(
        "serve_load: {:.0} qps over {} queries in {:.2}s",
        throughput,
        config.total_queries,
        wall.as_secs_f64()
    );
    println!("serve_load: latency µs p50={p50:.1} p95={p95:.1} p99={p99:.1} max={max:.1}");
    println!(
        "serve_load: cache hit rate {:.1}% ({} hits / {} misses, {} evictions)",
        hit_rate * 100.0,
        stats.hits,
        stats.misses,
        stats.evictions
    );

    let path = std::env::var("BENCH_SERVE_JSON").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json").to_string()
    });
    let json = format!(
        "{{\n  \"bench\": \"serve\",\n  \"mode\": \"{}\",\n  \"queries\": {},\n  \"distinct_queries\": {},\n  \"connections\": {},\n  \"pipeline_depth\": {},\n  \"workers\": {},\n  \"batch_max\": {},\n  \"batch_window_us\": {},\n  \"cache_capacity\": {},\n  \"zipf_s\": {:.2},\n  \"throughput_qps\": {:.0},\n  \"latency_us\": {{\"p50\": {:.1}, \"p95\": {:.1}, \"p99\": {:.1}, \"max\": {:.1}}},\n  \"cache_hit_rate\": {:.4},\n  \"cache_evictions\": {},\n  \"response_mismatches\": {}\n}}\n",
        config.mode,
        config.total_queries,
        config.distinct_queries,
        config.connections,
        config.pipeline_depth,
        config.workers,
        config.batch_max,
        config.batch_window.as_micros(),
        config.cache_capacity,
        config.zipf_s,
        throughput,
        p50,
        p95,
        p99,
        max,
        hit_rate,
        stats.evictions,
        mismatches,
    );
    std::fs::write(&path, &json).expect("write BENCH_serve.json");
    println!("wrote {path}");

    // --- gates -----------------------------------------------------
    if mismatches > 0 {
        eprintln!("serve_load: FAILED: {mismatches} responses differed from golden segmentation");
        return ExitCode::FAILURE;
    }
    if hit_rate <= 0.5 {
        eprintln!(
            "serve_load: FAILED: cache hit rate {hit_rate:.3} not above 0.5 on a Zipfian log"
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
