//! Zipfian load generator for the serving front end — both transports.
//!
//! Replays a synthetic web-query log against live `websyn-serve`
//! instances (started in-process on ephemeral ports, but exercised
//! through real TCP sockets) and reports what a serving benchmark must
//! report: **tail latency**, not just throughput. One run replays the
//! same log twice — once over the line protocol, once over HTTP/1.1 —
//! against fresh engines, so the two sections of the artifact are
//! directly comparable.
//!
//! The workload models what ROADMAP calls the serving reality: query
//! logs are Zipfian, so a small head of distinct queries carries most
//! of the traffic. A quarter of the distinct queries (half in the
//! cluster workload) carry a deterministic misspelling, so the
//! expensive fuzzy path is exercised on every cache miss; the result
//! cache in front of it is what keeps the tail survivable.
//!
//! Every response is checked byte-for-byte against a golden computed
//! up front — `format_spans(matcher.segment(q))` for the line
//! protocol, `spans_json(matcher.segment(q))` for HTTP — a cached
//! response that differs from the uncached one, anywhere in the run,
//! fails the binary.
//!
//! The third replay is the **cluster scale-out curve**: the same HTTP
//! log against `websyn_serve::Cluster` fleets of 1/2/4/8 worker
//! processes (each spawned by re-execing this binary through the
//! cluster worker sentinel), closed-loop clients through the router,
//! every response checked against the same single-process golden
//! bodies — the router must be invisible to correctness. The section
//! records the host's core count: on a single-core machine the fleet
//! time-slices one CPU, so the curve shows up in the climbing cache
//! hit rates rather than in raw throughput, and `bench_check` gates
//! it accordingly.
//!
//! Emits `BENCH_serve.json` at the workspace root (override with the
//! `BENCH_SERVE_JSON` env var): line-protocol numbers at the top
//! level (schema-compatible with earlier PRs), HTTP numbers under
//! `"http"`, the scale-out curve under `"cluster"`. `bench_check`
//! gates all three sections in CI. The HTTP section additionally
//! commits the server-side per-stage breakdown (`"stages"`): each
//! pipeline stage's sample count, exact mean and bucket-resolution
//! p50/p99 from the engine's own histograms, held by `bench_check` to
//! the accounting invariant that summed stage time cannot exceed the
//! client-observed end-to-end time.
//!
//! Run: `cargo run --release -p websyn-bench --bin serve_load`
//! Smoke (CI): `... --bin serve_load -- --test`
//! One section only (no artifact): `... -- --line` / `--http` /
//! `--cluster [N]` (curve capped at N workers)

use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};
use websyn_bench::synth_product_dictionary;
use websyn_common::stats::percentile_sorted;
use websyn_common::{SeedSequence, Zipf};
use websyn_core::{EntityMatcher, FuzzyConfig};
use websyn_serve::cluster::{run_worker_if_flagged, Cluster, ClusterConfig};
use websyn_serve::http::{percent_encode, read_response, spans_json};
use websyn_serve::{
    format_spans, Engine, HttpProtocol, LineProtocol, Protocol, Server, ServerConfig,
};
use websyn_text::double_middle_char;

/// Workload shape; `smoke` shrinks everything for CI.
struct LoadConfig {
    mode: &'static str,
    dict_size: usize,
    distinct_queries: usize,
    total_queries: usize,
    connections: usize,
    pipeline_depth: usize,
    workers: usize,
    batch_max: usize,
    batch_window: Duration,
    cache_capacity: usize,
    zipf_s: f64,
    /// Closed-loop client connections against the cluster router (one
    /// request in flight each — the router proxies synchronously, so
    /// per-connection concurrency is 1 by construction).
    cluster_connections: usize,
    /// Fleet sizes of the scale-out curve.
    cluster_curve: Vec<usize>,
    /// Dictionary size of the cluster workload — larger than the
    /// single-process sections' so a cache miss pays a real
    /// segmentation price (fuzzy candidate generation scales with the
    /// dictionary) and the curve has something to amortise.
    cluster_dict_size: usize,
    /// Distinct queries of the cluster workload — deliberately larger
    /// than one worker's cache but within a 4-worker fleet's aggregate
    /// capacity, so the curve measures what fleet scale-out buys:
    /// aggregate cache capacity under hash partitioning.
    cluster_distinct: usize,
    /// Per-worker result-cache capacity in the cluster replay.
    cluster_cache_capacity: usize,
    /// Zipf exponent of the cluster stream — flatter than the
    /// single-process sections' so the working set is the whole pool,
    /// not a cacheable head.
    cluster_zipf_s: f64,
    /// Hot-shard replication factor of the curve's rings: 1, so every
    /// distinct query has exactly one home cache.
    cluster_replication: usize,
}

impl LoadConfig {
    fn full() -> Self {
        Self {
            mode: "full",
            dict_size: 5_000,
            distinct_queries: 2_000,
            total_queries: 40_000,
            connections: 8,
            pipeline_depth: 8,
            workers: 4,
            batch_max: 32,
            batch_window: Duration::from_micros(100),
            cache_capacity: 1_024,
            zipf_s: 1.0,
            cluster_connections: 16,
            cluster_curve: vec![1, 2, 4, 8],
            cluster_dict_size: 120_000,
            cluster_distinct: 1_500,
            cluster_cache_capacity: 512,
            cluster_zipf_s: 0.4,
            cluster_replication: 1,
        }
    }

    fn smoke() -> Self {
        Self {
            mode: "smoke",
            dict_size: 500,
            distinct_queries: 200,
            total_queries: 2_000,
            connections: 4,
            pipeline_depth: 4,
            workers: 2,
            cache_capacity: 256,
            cluster_connections: 8,
            cluster_curve: vec![1, 2],
            cluster_dict_size: 2_000,
            cluster_distinct: 300,
            cluster_cache_capacity: 128,
            cluster_replication: 1,
            ..Self::full()
        }
    }
}

/// The distinct query pool, rank 0 = most popular: each rank picks a
/// dictionary surface (stride-spread so popularity is uncorrelated
/// with dictionary order), wraps it in intent text, and one rank in
/// `misspell_every` carries one deterministic edit — those queries can
/// only resolve through the fuzzy path. The single-process sections
/// use 4 (a quarter misspelled); the cluster workload uses 2 so a
/// cache miss is dominated by fuzzy segmentation and the scale-out
/// curve measures what fleet cache aggregation saves.
fn query_pool(
    dictionary: &[(String, websyn_common::EntityId)],
    distinct: usize,
    misspell_every: usize,
) -> Vec<String> {
    (0..distinct)
        .map(|rank| {
            let surface = &dictionary[(rank * 7919) % dictionary.len()].0;
            let mention = if rank % misspell_every == misspell_every - 1 {
                double_middle_char(surface)
            } else {
                surface.clone()
            };
            match rank % 3 {
                0 => format!("{mention} near san francisco"),
                1 => format!("best price for {mention}"),
                _ => format!("{mention} reviews and deals"),
            }
        })
        .collect()
}

/// One measured replay: aggregate throughput plus the latency tail,
/// cache counters and the golden-response gate.
struct Report {
    throughput: f64,
    p50: f64,
    p95: f64,
    p99: f64,
    max: f64,
    /// Mean end-to-end latency (µs), client-observed — the budget the
    /// server-side stage breakdown must fit inside.
    mean: f64,
    hit_rate: f64,
    evictions: u64,
    mismatches: usize,
    /// Per-stage pipeline breakdown from the server's own histograms
    /// (empty for cluster replays — those engines live in worker
    /// processes).
    stages: Vec<StageRow>,
}

/// One pipeline stage of the server-side breakdown, summarized from
/// the engine's [`websyn_serve::ServeMetrics`] histogram.
struct StageRow {
    name: &'static str,
    count: u64,
    /// Exact mean of recorded durations (µs) — `sum / count`, not a
    /// bucket approximation, so stage sums can be gated against the
    /// client-observed end-to-end time.
    mean_us: f64,
    /// Bucket-resolution percentiles (power-of-two upper bounds, µs).
    p50_us: u64,
    p99_us: u64,
}

/// One line-protocol client connection: replays `queries` closed-loop
/// with a bounded pipeline, returning per-request latencies (µs) and
/// the number of responses that did not match their golden line.
fn run_client_line(
    addr: SocketAddr,
    queries: &[u32],
    pool: &[String],
    golden: &[String],
    depth: usize,
) -> std::io::Result<(Vec<f64>, usize)> {
    let conn = TcpStream::connect(addr)?;
    conn.set_nodelay(true)?;
    let mut reader = BufReader::new(conn.try_clone()?);
    let mut conn = conn;
    let mut latencies = Vec::with_capacity(queries.len());
    let mut mismatches = 0usize;
    // Responses come back in request order, so the in-flight queue of
    // (rank, send-instant) pairs lines up FIFO with the reads.
    let mut in_flight: VecDeque<(u32, Instant)> = VecDeque::with_capacity(depth);
    let mut line = String::new();
    let drain_one = |reader: &mut BufReader<TcpStream>,
                     in_flight: &mut VecDeque<(u32, Instant)>,
                     line: &mut String,
                     latencies: &mut Vec<f64>,
                     mismatches: &mut usize|
     -> std::io::Result<()> {
        let (rank, sent_at) = in_flight.pop_front().expect("drain with nothing in flight");
        line.clear();
        reader.read_line(line)?;
        latencies.push(sent_at.elapsed().as_secs_f64() * 1e6);
        if line.trim_end() != golden[rank as usize] {
            *mismatches += 1;
        }
        Ok(())
    };
    for &rank in queries {
        if in_flight.len() >= depth.max(1) {
            drain_one(
                &mut reader,
                &mut in_flight,
                &mut line,
                &mut latencies,
                &mut mismatches,
            )?;
        }
        conn.write_all(pool[rank as usize].as_bytes())?;
        conn.write_all(b"\n")?;
        in_flight.push_back((rank, Instant::now()));
    }
    while !in_flight.is_empty() {
        drain_one(
            &mut reader,
            &mut in_flight,
            &mut line,
            &mut latencies,
            &mut mismatches,
        )?;
    }
    Ok((latencies, mismatches))
}

/// The HTTP twin of [`run_client_line`]: pipelined keep-alive GETs with
/// pre-encoded request heads, responses checked against the golden
/// JSON body.
fn run_client_http(
    addr: SocketAddr,
    queries: &[u32],
    requests: &[String],
    golden: &[String],
    depth: usize,
) -> std::io::Result<(Vec<f64>, usize)> {
    let conn = TcpStream::connect(addr)?;
    conn.set_nodelay(true)?;
    let mut reader = BufReader::new(conn.try_clone()?);
    let mut conn = conn;
    let mut latencies = Vec::with_capacity(queries.len());
    let mut mismatches = 0usize;
    let mut in_flight: VecDeque<(u32, Instant)> = VecDeque::with_capacity(depth);
    let mut drain_one = |reader: &mut BufReader<TcpStream>,
                         in_flight: &mut VecDeque<(u32, Instant)>|
     -> std::io::Result<()> {
        let (rank, sent_at) = in_flight.pop_front().expect("drain with nothing in flight");
        let (status, body) = read_response(reader)?;
        latencies.push(sent_at.elapsed().as_secs_f64() * 1e6);
        if status != 200 || body != golden[rank as usize] {
            mismatches += 1;
        }
        Ok(())
    };
    for &rank in queries {
        if in_flight.len() >= depth.max(1) {
            drain_one(&mut reader, &mut in_flight)?;
        }
        conn.write_all(requests[rank as usize].as_bytes())?;
        in_flight.push_back((rank, Instant::now()));
    }
    while !in_flight.is_empty() {
        drain_one(&mut reader, &mut in_flight)?;
    }
    Ok((latencies, mismatches))
}

/// Replays the stream against a fresh engine + server speaking
/// `protocol`, fanning the log out over `config.connections` pipelined
/// client threads.
fn run_replay(
    protocol: Arc<dyn Protocol>,
    matcher: &Arc<EntityMatcher>,
    pool: &[String],
    golden: &[String],
    stream: &[u32],
    config: &LoadConfig,
) -> Report {
    let http = protocol.name() == "http";
    let engine = Arc::new(
        Engine::builder(Arc::clone(matcher))
            .cache_shards(8)
            .cache_capacity(config.cache_capacity)
            .build(),
    );
    let server = Server::start_with(
        Arc::clone(&engine),
        "127.0.0.1:0",
        ServerConfig::builder()
            .workers(config.workers)
            .queue_depth(4096)
            .batch_max(config.batch_max)
            .batch_window(config.batch_window)
            .build(),
        protocol,
    )
    .expect("bind ephemeral port");
    let addr = server.addr();

    // Pre-encoded HTTP request heads, one per rank: the hot loop only
    // writes bytes, exactly like the line client.
    let requests: Vec<String> = if http {
        pool.iter()
            .map(|q| format!("GET /match?q={} HTTP/1.1\r\n\r\n", percent_encode(q)))
            .collect()
    } else {
        Vec::new()
    };

    let chunk = config.total_queries.div_ceil(config.connections);
    let started = Instant::now();
    let results: Vec<(Vec<f64>, usize)> = std::thread::scope(|scope| {
        let handles: Vec<_> = stream
            .chunks(chunk)
            .map(|slice| {
                let requests = &requests;
                let golden = &golden;
                scope.spawn(move || {
                    if http {
                        run_client_http(addr, slice, requests, golden, config.pipeline_depth)
                            .expect("client io")
                    } else {
                        run_client_line(addr, slice, pool, golden, config.pipeline_depth)
                            .expect("client io")
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client"))
            .collect()
    });
    let wall = started.elapsed();
    let stats = engine.cache_stats();
    server.shutdown();
    // The engine outlives the server, so the pipeline histograms are
    // complete (writer threads flushed) and attributable to exactly
    // this replay's requests — the engine was fresh.
    let stages: Vec<StageRow> = engine
        .metrics()
        .stages()
        .iter()
        .map(|(name, histogram)| {
            let snap = histogram.snapshot();
            StageRow {
                name,
                count: snap.count(),
                mean_us: snap.mean(),
                p50_us: snap.percentile(0.50),
                p99_us: snap.percentile(0.99),
            }
        })
        .collect();

    let mut latencies: Vec<f64> = results
        .iter()
        .flat_map(|(l, _)| l.iter().copied())
        .collect();
    let mismatches: usize = results.iter().map(|(_, m)| m).sum();
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("no NaN latency"));
    assert_eq!(latencies.len(), config.total_queries);
    Report {
        throughput: config.total_queries as f64 / wall.as_secs_f64(),
        p50: percentile_sorted(&latencies, 0.50),
        p95: percentile_sorted(&latencies, 0.95),
        p99: percentile_sorted(&latencies, 0.99),
        max: latencies[latencies.len() - 1],
        mean: latencies.iter().sum::<f64>() / latencies.len() as f64,
        hit_rate: stats.hit_rate(),
        evictions: stats.evictions,
        mismatches,
        stages,
    }
}

/// Extracts a numeric field from the router's fixed-format `/stats`
/// JSON body.
fn stats_number(body: &str, key: &str) -> f64 {
    let pattern = format!("\"{key}\":");
    body.find(&pattern)
        .map(|at| {
            body[at + pattern.len()..]
                .chars()
                .take_while(|c| c.is_ascii_digit() || *c == '.')
                .collect::<String>()
        })
        .and_then(|digits| digits.parse().ok())
        .unwrap_or(0.0)
}

/// One point of the scale-out curve: the HTTP log replayed through a
/// router over `workers` freshly spawned worker processes. Clients are
/// closed-loop (depth 1) — the router proxies synchronously, so
/// cluster concurrency comes from connections, and fleet scaling from
/// worker processes overlapping their batch windows.
fn run_cluster_replay(
    dict_path: &str,
    requests: &[String],
    golden: &[String],
    stream: &[u32],
    config: &LoadConfig,
    workers: usize,
) -> Report {
    let cluster = Cluster::start(
        "127.0.0.1:0",
        ClusterConfig {
            workers,
            replication: config.cluster_replication.min(workers),
            dict: Some(dict_path.to_string()),
            worker_args: vec![
                "--workers".into(),
                "2".into(),
                "--queue-depth".into(),
                "4096".into(),
                "--batch-max".into(),
                config.batch_max.to_string(),
                // Each worker sees only its shard of the traffic: a
                // batching window would add latency without filling
                // batches, so cluster workers drain eagerly.
                "--batch-window-us".into(),
                "0".into(),
                "--cache-capacity".into(),
                config.cluster_cache_capacity.to_string(),
            ],
            ready_timeout: Duration::from_secs(30),
            ..ClusterConfig::default()
        },
    )
    .expect("start cluster");
    let addr = cluster.addr();

    let chunk = stream.len().div_ceil(config.cluster_connections);
    let started = Instant::now();
    let results: Vec<(Vec<f64>, usize)> = std::thread::scope(|scope| {
        let handles: Vec<_> = stream
            .chunks(chunk)
            .map(|slice| {
                scope.spawn(move || {
                    run_client_http(addr, slice, requests, golden, 1).expect("client io")
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client"))
            .collect()
    });
    let wall = started.elapsed();

    // Fleet-aggregated cache statistics, through the router.
    let (hit_rate, evictions) = {
        let conn = TcpStream::connect(addr).expect("stats connect");
        let mut reader = BufReader::new(conn.try_clone().expect("clone"));
        let mut conn = conn;
        conn.write_all(b"GET /stats HTTP/1.1\r\nConnection: close\r\n\r\n")
            .expect("stats send");
        let (status, body) = read_response(&mut reader).expect("stats read");
        assert_eq!(status, 200, "router stats: {body}");
        (
            stats_number(&body, "hit_rate"),
            stats_number(&body, "evictions") as u64,
        )
    };
    cluster.shutdown();

    let mut latencies: Vec<f64> = results
        .iter()
        .flat_map(|(l, _)| l.iter().copied())
        .collect();
    let mismatches: usize = results.iter().map(|(_, m)| m).sum();
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("no NaN latency"));
    assert_eq!(latencies.len(), stream.len());
    Report {
        throughput: stream.len() as f64 / wall.as_secs_f64(),
        p50: percentile_sorted(&latencies, 0.50),
        p95: percentile_sorted(&latencies, 0.95),
        p99: percentile_sorted(&latencies, 0.99),
        max: latencies[latencies.len() - 1],
        mean: latencies.iter().sum::<f64>() / latencies.len() as f64,
        hit_rate,
        evictions,
        mismatches,
        stages: Vec::new(),
    }
}

fn print_report(name: &str, r: &Report, cache_capacity: usize, wall_queries: usize) {
    println!(
        "serve_load[{name}]: {:.0} qps over {} queries",
        r.throughput, wall_queries
    );
    println!(
        "serve_load[{name}]: latency µs p50={:.1} p95={:.1} p99={:.1} max={:.1}",
        r.p50, r.p95, r.p99, r.max
    );
    println!(
        "serve_load[{name}]: cache hit rate {:.1}% ({} evictions, capacity {})",
        r.hit_rate * 100.0,
        r.evictions,
        cache_capacity
    );
    for s in &r.stages {
        println!(
            "serve_load[{name}]: stage {:<14} count={:<6} mean={:.1}µs p50≤{}µs p99≤{}µs",
            s.name, s.count, s.mean_us, s.p50_us, s.p99_us
        );
    }
}

/// Applies the in-binary gates to one protocol's report.
fn gate(name: &str, r: &Report) -> Result<(), String> {
    if r.mismatches > 0 {
        return Err(format!(
            "[{name}] {} responses differed from golden segmentation",
            r.mismatches
        ));
    }
    if r.hit_rate <= 0.5 {
        return Err(format!(
            "[{name}] cache hit rate {:.3} not above 0.5 on a Zipfian log",
            r.hit_rate
        ));
    }
    Ok(())
}

fn main() -> ExitCode {
    // Re-entered as a cluster worker (the scale-out replay spawns its
    // fleet from this very binary)? Serve and exit.
    if let Some(code) = run_worker_if_flagged() {
        return code;
    }
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--test" || a == "--smoke");
    let only_line = args.iter().any(|a| a == "--line");
    let only_http = args.iter().any(|a| a == "--http");
    let only_cluster = args.iter().any(|a| a == "--cluster");
    // `--cluster N` caps the curve at N workers.
    let cluster_cap: Option<usize> = args
        .iter()
        .position(|a| a == "--cluster")
        .and_then(|at| args.get(at + 1))
        .and_then(|v| v.parse().ok());
    let any_only = only_line || only_http || only_cluster;
    // No section flag: replay everything (the artifact needs all
    // three); with flags, replay exactly what was asked.
    let (run_line, run_http, run_cluster) = if any_only {
        (only_line, only_http, only_cluster)
    } else {
        (true, true, true)
    };
    let mut config = if smoke {
        LoadConfig::smoke()
    } else {
        LoadConfig::full()
    };
    if let Some(cap) = cluster_cap {
        config.cluster_curve.retain(|&n| n <= cap.max(1));
    }

    eprintln!(
        "serve_load: dict={} distinct={} total={} conns={}x{} workers={} cache={}",
        config.dict_size,
        config.distinct_queries,
        config.total_queries,
        config.connections,
        config.pipeline_depth,
        config.workers,
        config.cache_capacity,
    );

    // --- workload --------------------------------------------------
    let dictionary = synth_product_dictionary(config.dict_size);
    let matcher =
        Arc::new(EntityMatcher::from_pairs(dictionary.clone()).with_fuzzy(FuzzyConfig::default()));
    let pool = query_pool(&dictionary, config.distinct_queries, 4);
    let spans: Vec<_> = pool.iter().map(|q| matcher.segment(q)).collect();
    let golden_line: Vec<String> = spans.iter().map(|s| format_spans(s)).collect();
    let golden_http: Vec<String> = spans.iter().map(|s| spans_json(s)).collect();
    let fuzzy_resolving = golden_line
        .iter()
        .enumerate()
        .filter(|(rank, g)| rank % 4 == 3 && g.len() > 2)
        .count();
    eprintln!(
        "serve_load: {} distinct queries, {} misspelled-and-resolving",
        pool.len(),
        fuzzy_resolving
    );

    let zipf = Zipf::new(config.distinct_queries, config.zipf_s).expect("zipf params");
    let mut rng = SeedSequence::new(42).rng("serve_load");
    let stream: Vec<u32> = (0..config.total_queries)
        .map(|_| zipf.sample(&mut rng) as u32)
        .collect();

    // --- replays ---------------------------------------------------
    let line = run_line.then(|| {
        let r = run_replay(
            Arc::new(LineProtocol),
            &matcher,
            &pool,
            &golden_line,
            &stream,
            &config,
        );
        print_report("line", &r, config.cache_capacity, config.total_queries);
        r
    });
    let http = run_http.then(|| {
        let r = run_replay(
            Arc::new(HttpProtocol),
            &matcher,
            &pool,
            &golden_http,
            &stream,
            &config,
        );
        print_report("http", &r, config.cache_capacity, config.total_queries);
        r
    });

    // The scale-out curve, on its own workload: a larger dictionary
    // (so each cache miss pays a real segmentation price), a flat-ish
    // distinct-query pool sized between one worker's cache and a
    // 4-worker fleet's aggregate capacity, and fleets of worker
    // processes sharing the dictionary as a TSV artifact. Every
    // response is still held to single-process golden bodies.
    let cluster: Option<Vec<(usize, Report)>> = run_cluster.then(|| {
        let cluster_dictionary = synth_product_dictionary(config.cluster_dict_size);
        let cluster_matcher = Arc::new(
            EntityMatcher::from_pairs(cluster_dictionary.clone())
                .with_fuzzy(FuzzyConfig::default()),
        );
        let cluster_pool = query_pool(&cluster_dictionary, config.cluster_distinct, 2);
        let cluster_golden: Vec<String> = cluster_pool
            .iter()
            .map(|q| spans_json(&cluster_matcher.segment(q)))
            .collect();
        let cluster_zipf =
            Zipf::new(config.cluster_distinct, config.cluster_zipf_s).expect("zipf params");
        let mut rng = SeedSequence::new(42).rng("serve_load_cluster");
        let cluster_stream: Vec<u32> = (0..config.total_queries)
            .map(|_| cluster_zipf.sample(&mut rng) as u32)
            .collect();
        let dict_path =
            std::env::temp_dir().join(format!("websyn-serve-load-dict-{}.tsv", std::process::id()));
        std::fs::write(&dict_path, cluster_matcher.to_tsv()).expect("write dict tsv");
        let requests: Vec<String> = cluster_pool
            .iter()
            .map(|q| format!("GET /match?q={} HTTP/1.1\r\n\r\n", percent_encode(q)))
            .collect();
        let curve: Vec<(usize, Report)> = config
            .cluster_curve
            .iter()
            .map(|&workers| {
                let r = run_cluster_replay(
                    &dict_path.to_string_lossy(),
                    &requests,
                    &cluster_golden,
                    &cluster_stream,
                    &config,
                    workers,
                );
                print_report(
                    &format!("cluster x{workers}"),
                    &r,
                    config.cluster_cache_capacity,
                    config.total_queries,
                );
                (workers, r)
            })
            .collect();
        let _ = std::fs::remove_file(&dict_path);
        curve
    });

    // --- artifact --------------------------------------------------
    // Written only when every section ran: bench_check requires all of
    // them, so a partial run must not clobber the artifact.
    if let (Some(line), Some(http), Some(cluster)) = (&line, &http, &cluster) {
        let path = std::env::var("BENCH_SERVE_JSON").unwrap_or_else(|_| {
            concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json").to_string()
        });
        // Line-protocol numbers stay at the top level (the schema of
        // earlier PRs); the HTTP and cluster sections come after, so
        // line-oriented first-occurrence readers of the shared key
        // names still see the line values.
        let scale_rows: Vec<String> = cluster
            .iter()
            .map(|(workers, r)| {
                format!(
                    "      {{\"workers\": {workers}, \"replication\": {}, \"throughput_qps\": {:.0}, \"latency_us\": {{\"p50\": {:.1}, \"p95\": {:.1}, \"p99\": {:.1}, \"max\": {:.1}}}, \"cache_hit_rate\": {:.4}, \"response_mismatches\": {}}}",
                    config.cluster_replication.min(*workers),
                    r.throughput,
                    r.p50,
                    r.p95,
                    r.p99,
                    r.max,
                    r.hit_rate,
                    r.mismatches,
                )
            })
            .collect();
        // Per-stage server-side breakdown of the HTTP replay, one
        // stage per line. Key names carry a `_us` suffix so the
        // line-oriented first-occurrence readers of `"p50": ` etc.
        // in bench_check never collide with them.
        let stage_rows: Vec<String> = http
            .stages
            .iter()
            .map(|s| {
                format!(
                    "      \"{}\": {{\"count\": {}, \"mean_us\": {:.1}, \"p50_us\": {}, \"p99_us\": {}}}",
                    s.name, s.count, s.mean_us, s.p50_us, s.p99_us
                )
            })
            .collect();
        let stages_json = format!(
            "    \"stages\": {{\n      \"end_to_end_mean_us\": {:.1},\n      \"total\": {},\n{}\n    }}",
            http.mean,
            config.total_queries,
            stage_rows.join(",\n"),
        );
        // The host's core count goes into the artifact because the
        // scale-out ratio only means "the router scales" where worker
        // processes can actually run in parallel — `bench_check`
        // applies its throughput-ratio floor conditionally on it.
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let cluster_json = format!(
            "  \"cluster\": {{\n    \"connections\": {},\n    \"cores\": {cores},\n    \"dict_size\": {},\n    \"distinct_queries\": {},\n    \"cache_capacity\": {},\n    \"zipf_s\": {:.2},\n    \"scale\": [\n{}\n    ]\n  }}",
            config.cluster_connections,
            config.cluster_dict_size,
            config.cluster_distinct,
            config.cluster_cache_capacity,
            config.cluster_zipf_s,
            scale_rows.join(",\n"),
        );
        let json = format!(
            "{{\n  \"bench\": \"serve\",\n  \"mode\": \"{}\",\n  \"queries\": {},\n  \"distinct_queries\": {},\n  \"connections\": {},\n  \"pipeline_depth\": {},\n  \"workers\": {},\n  \"batch_max\": {},\n  \"batch_window_us\": {},\n  \"cache_capacity\": {},\n  \"zipf_s\": {:.2},\n  \"throughput_qps\": {:.0},\n  \"latency_us\": {{\"p50\": {:.1}, \"p95\": {:.1}, \"p99\": {:.1}, \"max\": {:.1}}},\n  \"cache_hit_rate\": {:.4},\n  \"cache_evictions\": {},\n  \"response_mismatches\": {},\n  \"http\": {{\n    \"throughput_qps\": {:.0},\n    \"latency_us\": {{\"p50\": {:.1}, \"p95\": {:.1}, \"p99\": {:.1}, \"max\": {:.1}}},\n    \"cache_hit_rate\": {:.4},\n    \"cache_evictions\": {},\n    \"response_mismatches\": {},\n{stages_json}\n  }},\n{cluster_json}\n}}\n",
            config.mode,
            config.total_queries,
            config.distinct_queries,
            config.connections,
            config.pipeline_depth,
            config.workers,
            config.batch_max,
            config.batch_window.as_micros(),
            config.cache_capacity,
            config.zipf_s,
            line.throughput,
            line.p50,
            line.p95,
            line.p99,
            line.max,
            line.hit_rate,
            line.evictions,
            line.mismatches,
            http.throughput,
            http.p50,
            http.p95,
            http.p99,
            http.max,
            http.hit_rate,
            http.evictions,
            http.mismatches,
        );
        std::fs::write(&path, &json).expect("write BENCH_serve.json");
        println!("wrote {path}");
    }

    // --- gates -----------------------------------------------------
    for (name, report) in [("line", &line), ("http", &http)] {
        if let Some(r) = report {
            if let Err(msg) = gate(name, r) {
                eprintln!("serve_load: FAILED: {msg}");
                return ExitCode::FAILURE;
            }
        }
    }
    // Cluster rows gate only on correctness in-binary (every response
    // byte-identical to the single-process oracle); the scaling floor
    // is bench_check's, where the committed curve is what's judged.
    if let Some(curve) = &cluster {
        for (workers, r) in curve {
            if r.mismatches > 0 {
                eprintln!(
                    "serve_load: FAILED: [cluster x{workers}] {} responses differed \
                     from the single-process oracle",
                    r.mismatches
                );
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
