//! Zipfian load generator for the serving front end — both transports.
//!
//! Replays a synthetic web-query log against live `websyn-serve`
//! instances (started in-process on ephemeral ports, but exercised
//! through real TCP sockets) and reports what a serving benchmark must
//! report: **tail latency**, not just throughput. One run replays the
//! same log twice — once over the line protocol, once over HTTP/1.1 —
//! against fresh engines, so the two sections of the artifact are
//! directly comparable.
//!
//! The workload models what ROADMAP calls the serving reality: query
//! logs are Zipfian, so a small head of distinct queries carries most
//! of the traffic. A quarter of the distinct queries carry a
//! deterministic misspelling, so the expensive fuzzy path is exercised
//! on every cache miss; the result cache in front of it is what keeps
//! the tail survivable.
//!
//! Every response is checked byte-for-byte against a golden computed
//! up front — `format_spans(matcher.segment(q))` for the line
//! protocol, `spans_json(matcher.segment(q))` for HTTP — a cached
//! response that differs from the uncached one, anywhere in the run,
//! fails the binary.
//!
//! Emits `BENCH_serve.json` at the workspace root (override with the
//! `BENCH_SERVE_JSON` env var): line-protocol numbers at the top
//! level (schema-compatible with earlier PRs), HTTP numbers under
//! `"http"`. `bench_check` gates both sections in CI.
//!
//! Run: `cargo run --release -p websyn-bench --bin serve_load`
//! Smoke (CI): `... --bin serve_load -- --test`
//! One protocol only (no artifact): `... -- --line` / `... -- --http`

use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};
use websyn_bench::synth_product_dictionary;
use websyn_common::stats::percentile_sorted;
use websyn_common::{SeedSequence, Zipf};
use websyn_core::{EntityMatcher, FuzzyConfig};
use websyn_serve::http::{percent_encode, read_response, spans_json};
use websyn_serve::{
    format_spans, Engine, HttpProtocol, LineProtocol, Protocol, Server, ServerConfig,
};
use websyn_text::double_middle_char;

/// Workload shape; `smoke` shrinks everything for CI.
struct LoadConfig {
    mode: &'static str,
    dict_size: usize,
    distinct_queries: usize,
    total_queries: usize,
    connections: usize,
    pipeline_depth: usize,
    workers: usize,
    batch_max: usize,
    batch_window: Duration,
    cache_capacity: usize,
    zipf_s: f64,
}

impl LoadConfig {
    fn full() -> Self {
        Self {
            mode: "full",
            dict_size: 5_000,
            distinct_queries: 2_000,
            total_queries: 40_000,
            connections: 8,
            pipeline_depth: 8,
            workers: 4,
            batch_max: 32,
            batch_window: Duration::from_micros(100),
            cache_capacity: 1_024,
            zipf_s: 1.0,
        }
    }

    fn smoke() -> Self {
        Self {
            mode: "smoke",
            dict_size: 500,
            distinct_queries: 200,
            total_queries: 2_000,
            connections: 4,
            pipeline_depth: 4,
            workers: 2,
            cache_capacity: 256,
            ..Self::full()
        }
    }
}

/// The distinct query pool, rank 0 = most popular: each rank picks a
/// dictionary surface (stride-spread so popularity is uncorrelated
/// with dictionary order), wraps it in intent text, and every fourth
/// rank carries one deterministic edit — those queries can only
/// resolve through the fuzzy path.
fn query_pool(dictionary: &[(String, websyn_common::EntityId)], distinct: usize) -> Vec<String> {
    (0..distinct)
        .map(|rank| {
            let surface = &dictionary[(rank * 7919) % dictionary.len()].0;
            let mention = if rank % 4 == 3 {
                double_middle_char(surface)
            } else {
                surface.clone()
            };
            match rank % 3 {
                0 => format!("{mention} near san francisco"),
                1 => format!("best price for {mention}"),
                _ => format!("{mention} reviews and deals"),
            }
        })
        .collect()
}

/// One measured replay: aggregate throughput plus the latency tail,
/// cache counters and the golden-response gate.
struct Report {
    throughput: f64,
    p50: f64,
    p95: f64,
    p99: f64,
    max: f64,
    hit_rate: f64,
    evictions: u64,
    mismatches: usize,
}

/// One line-protocol client connection: replays `queries` closed-loop
/// with a bounded pipeline, returning per-request latencies (µs) and
/// the number of responses that did not match their golden line.
fn run_client_line(
    addr: SocketAddr,
    queries: &[u32],
    pool: &[String],
    golden: &[String],
    depth: usize,
) -> std::io::Result<(Vec<f64>, usize)> {
    let conn = TcpStream::connect(addr)?;
    conn.set_nodelay(true)?;
    let mut reader = BufReader::new(conn.try_clone()?);
    let mut conn = conn;
    let mut latencies = Vec::with_capacity(queries.len());
    let mut mismatches = 0usize;
    // Responses come back in request order, so the in-flight queue of
    // (rank, send-instant) pairs lines up FIFO with the reads.
    let mut in_flight: VecDeque<(u32, Instant)> = VecDeque::with_capacity(depth);
    let mut line = String::new();
    let drain_one = |reader: &mut BufReader<TcpStream>,
                     in_flight: &mut VecDeque<(u32, Instant)>,
                     line: &mut String,
                     latencies: &mut Vec<f64>,
                     mismatches: &mut usize|
     -> std::io::Result<()> {
        let (rank, sent_at) = in_flight.pop_front().expect("drain with nothing in flight");
        line.clear();
        reader.read_line(line)?;
        latencies.push(sent_at.elapsed().as_secs_f64() * 1e6);
        if line.trim_end() != golden[rank as usize] {
            *mismatches += 1;
        }
        Ok(())
    };
    for &rank in queries {
        if in_flight.len() >= depth.max(1) {
            drain_one(
                &mut reader,
                &mut in_flight,
                &mut line,
                &mut latencies,
                &mut mismatches,
            )?;
        }
        conn.write_all(pool[rank as usize].as_bytes())?;
        conn.write_all(b"\n")?;
        in_flight.push_back((rank, Instant::now()));
    }
    while !in_flight.is_empty() {
        drain_one(
            &mut reader,
            &mut in_flight,
            &mut line,
            &mut latencies,
            &mut mismatches,
        )?;
    }
    Ok((latencies, mismatches))
}

/// The HTTP twin of [`run_client_line`]: pipelined keep-alive GETs with
/// pre-encoded request heads, responses checked against the golden
/// JSON body.
fn run_client_http(
    addr: SocketAddr,
    queries: &[u32],
    requests: &[String],
    golden: &[String],
    depth: usize,
) -> std::io::Result<(Vec<f64>, usize)> {
    let conn = TcpStream::connect(addr)?;
    conn.set_nodelay(true)?;
    let mut reader = BufReader::new(conn.try_clone()?);
    let mut conn = conn;
    let mut latencies = Vec::with_capacity(queries.len());
    let mut mismatches = 0usize;
    let mut in_flight: VecDeque<(u32, Instant)> = VecDeque::with_capacity(depth);
    let mut drain_one = |reader: &mut BufReader<TcpStream>,
                         in_flight: &mut VecDeque<(u32, Instant)>|
     -> std::io::Result<()> {
        let (rank, sent_at) = in_flight.pop_front().expect("drain with nothing in flight");
        let (status, body) = read_response(reader)?;
        latencies.push(sent_at.elapsed().as_secs_f64() * 1e6);
        if status != 200 || body != golden[rank as usize] {
            mismatches += 1;
        }
        Ok(())
    };
    for &rank in queries {
        if in_flight.len() >= depth.max(1) {
            drain_one(&mut reader, &mut in_flight)?;
        }
        conn.write_all(requests[rank as usize].as_bytes())?;
        in_flight.push_back((rank, Instant::now()));
    }
    while !in_flight.is_empty() {
        drain_one(&mut reader, &mut in_flight)?;
    }
    Ok((latencies, mismatches))
}

/// Replays the stream against a fresh engine + server speaking
/// `protocol`, fanning the log out over `config.connections` pipelined
/// client threads.
fn run_replay(
    protocol: Arc<dyn Protocol>,
    matcher: &Arc<EntityMatcher>,
    pool: &[String],
    golden: &[String],
    stream: &[u32],
    config: &LoadConfig,
) -> Report {
    let http = protocol.name() == "http";
    let engine = Arc::new(
        Engine::builder(Arc::clone(matcher))
            .cache_shards(8)
            .cache_capacity(config.cache_capacity)
            .build(),
    );
    let server = Server::start_with(
        Arc::clone(&engine),
        "127.0.0.1:0",
        ServerConfig::builder()
            .workers(config.workers)
            .queue_depth(4096)
            .batch_max(config.batch_max)
            .batch_window(config.batch_window)
            .build(),
        protocol,
    )
    .expect("bind ephemeral port");
    let addr = server.addr();

    // Pre-encoded HTTP request heads, one per rank: the hot loop only
    // writes bytes, exactly like the line client.
    let requests: Vec<String> = if http {
        pool.iter()
            .map(|q| format!("GET /match?q={} HTTP/1.1\r\n\r\n", percent_encode(q)))
            .collect()
    } else {
        Vec::new()
    };

    let chunk = config.total_queries.div_ceil(config.connections);
    let started = Instant::now();
    let results: Vec<(Vec<f64>, usize)> = std::thread::scope(|scope| {
        let handles: Vec<_> = stream
            .chunks(chunk)
            .map(|slice| {
                let requests = &requests;
                let golden = &golden;
                scope.spawn(move || {
                    if http {
                        run_client_http(addr, slice, requests, golden, config.pipeline_depth)
                            .expect("client io")
                    } else {
                        run_client_line(addr, slice, pool, golden, config.pipeline_depth)
                            .expect("client io")
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client"))
            .collect()
    });
    let wall = started.elapsed();
    let stats = engine.cache_stats();
    server.shutdown();

    let mut latencies: Vec<f64> = results
        .iter()
        .flat_map(|(l, _)| l.iter().copied())
        .collect();
    let mismatches: usize = results.iter().map(|(_, m)| m).sum();
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("no NaN latency"));
    assert_eq!(latencies.len(), config.total_queries);
    Report {
        throughput: config.total_queries as f64 / wall.as_secs_f64(),
        p50: percentile_sorted(&latencies, 0.50),
        p95: percentile_sorted(&latencies, 0.95),
        p99: percentile_sorted(&latencies, 0.99),
        max: latencies[latencies.len() - 1],
        hit_rate: stats.hit_rate(),
        evictions: stats.evictions,
        mismatches,
    }
}

fn print_report(name: &str, r: &Report, config: &LoadConfig, wall_queries: usize) {
    println!(
        "serve_load[{name}]: {:.0} qps over {} queries",
        r.throughput, wall_queries
    );
    println!(
        "serve_load[{name}]: latency µs p50={:.1} p95={:.1} p99={:.1} max={:.1}",
        r.p50, r.p95, r.p99, r.max
    );
    println!(
        "serve_load[{name}]: cache hit rate {:.1}% ({} evictions, capacity {})",
        r.hit_rate * 100.0,
        r.evictions,
        config.cache_capacity
    );
}

/// Applies the in-binary gates to one protocol's report.
fn gate(name: &str, r: &Report) -> Result<(), String> {
    if r.mismatches > 0 {
        return Err(format!(
            "[{name}] {} responses differed from golden segmentation",
            r.mismatches
        ));
    }
    if r.hit_rate <= 0.5 {
        return Err(format!(
            "[{name}] cache hit rate {:.3} not above 0.5 on a Zipfian log",
            r.hit_rate
        ));
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--test" || a == "--smoke");
    let only_line = args.iter().any(|a| a == "--line");
    let only_http = args.iter().any(|a| a == "--http");
    let (run_line, run_http) = if only_line == only_http {
        (true, true) // neither or both flags: replay both protocols
    } else {
        (only_line, only_http)
    };
    let config = if smoke {
        LoadConfig::smoke()
    } else {
        LoadConfig::full()
    };

    eprintln!(
        "serve_load: dict={} distinct={} total={} conns={}x{} workers={} cache={}",
        config.dict_size,
        config.distinct_queries,
        config.total_queries,
        config.connections,
        config.pipeline_depth,
        config.workers,
        config.cache_capacity,
    );

    // --- workload --------------------------------------------------
    let dictionary = synth_product_dictionary(config.dict_size);
    let matcher =
        Arc::new(EntityMatcher::from_pairs(dictionary.clone()).with_fuzzy(FuzzyConfig::default()));
    let pool = query_pool(&dictionary, config.distinct_queries);
    let spans: Vec<_> = pool.iter().map(|q| matcher.segment(q)).collect();
    let golden_line: Vec<String> = spans.iter().map(|s| format_spans(s)).collect();
    let golden_http: Vec<String> = spans.iter().map(|s| spans_json(s)).collect();
    let fuzzy_resolving = golden_line
        .iter()
        .enumerate()
        .filter(|(rank, g)| rank % 4 == 3 && g.len() > 2)
        .count();
    eprintln!(
        "serve_load: {} distinct queries, {} misspelled-and-resolving",
        pool.len(),
        fuzzy_resolving
    );

    let zipf = Zipf::new(config.distinct_queries, config.zipf_s).expect("zipf params");
    let mut rng = SeedSequence::new(42).rng("serve_load");
    let stream: Vec<u32> = (0..config.total_queries)
        .map(|_| zipf.sample(&mut rng) as u32)
        .collect();

    // --- replays ---------------------------------------------------
    let line = run_line.then(|| {
        let r = run_replay(
            Arc::new(LineProtocol),
            &matcher,
            &pool,
            &golden_line,
            &stream,
            &config,
        );
        print_report("line", &r, &config, config.total_queries);
        r
    });
    let http = run_http.then(|| {
        let r = run_replay(
            Arc::new(HttpProtocol),
            &matcher,
            &pool,
            &golden_http,
            &stream,
            &config,
        );
        print_report("http", &r, &config, config.total_queries);
        r
    });

    // --- artifact --------------------------------------------------
    // Written only when both protocols ran: bench_check requires both
    // sections, so a single-protocol run must not clobber the artifact.
    if let (Some(line), Some(http)) = (&line, &http) {
        let path = std::env::var("BENCH_SERVE_JSON").unwrap_or_else(|_| {
            concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json").to_string()
        });
        // Line-protocol numbers stay at the top level (the schema of
        // earlier PRs); the HTTP section comes last so line-oriented
        // first-occurrence readers of the shared key names still see
        // the line values.
        let json = format!(
            "{{\n  \"bench\": \"serve\",\n  \"mode\": \"{}\",\n  \"queries\": {},\n  \"distinct_queries\": {},\n  \"connections\": {},\n  \"pipeline_depth\": {},\n  \"workers\": {},\n  \"batch_max\": {},\n  \"batch_window_us\": {},\n  \"cache_capacity\": {},\n  \"zipf_s\": {:.2},\n  \"throughput_qps\": {:.0},\n  \"latency_us\": {{\"p50\": {:.1}, \"p95\": {:.1}, \"p99\": {:.1}, \"max\": {:.1}}},\n  \"cache_hit_rate\": {:.4},\n  \"cache_evictions\": {},\n  \"response_mismatches\": {},\n  \"http\": {{\n    \"throughput_qps\": {:.0},\n    \"latency_us\": {{\"p50\": {:.1}, \"p95\": {:.1}, \"p99\": {:.1}, \"max\": {:.1}}},\n    \"cache_hit_rate\": {:.4},\n    \"cache_evictions\": {},\n    \"response_mismatches\": {}\n  }}\n}}\n",
            config.mode,
            config.total_queries,
            config.distinct_queries,
            config.connections,
            config.pipeline_depth,
            config.workers,
            config.batch_max,
            config.batch_window.as_micros(),
            config.cache_capacity,
            config.zipf_s,
            line.throughput,
            line.p50,
            line.p95,
            line.p99,
            line.max,
            line.hit_rate,
            line.evictions,
            line.mismatches,
            http.throughput,
            http.p50,
            http.p95,
            http.p99,
            http.max,
            http.hit_rate,
            http.evictions,
            http.mismatches,
        );
        std::fs::write(&path, &json).expect("write BENCH_serve.json");
        println!("wrote {path}");
    }

    // --- gates -----------------------------------------------------
    for (name, report) in [("line", &line), ("http", &http)] {
        if let Some(r) = report {
            if let Err(msg) = gate(name, r) {
                eprintln!("serve_load: FAILED: {msg}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
