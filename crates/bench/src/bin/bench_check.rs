//! Schema, recall and perf-regression gate for the committed perf
//! artifacts.
//!
//! `BENCH_matcher.json` (matcher microbenchmark) and
//! `BENCH_serve.json` (serving-path load generator) are the perf
//! trajectory across PRs; CI regenerates both in smoke mode and this
//! binary fails the job if a schema or key set regresses — a rename, a
//! dropped benchmark, or a malformed emitter would otherwise silently
//! break the cross-PR comparison.
//!
//! Beyond the schema, the matcher artifact is gated four ways:
//!
//! - **recall** — the misspelled-camera e2e eval must stay perfect
//!   (every exact-miss recovered, eval set non-trivial) and the
//!   ablation-6 abbrev-chain recall must hold the committed ≥ 0.60
//!   floor: a faster candidate generator that drops recall fails CI.
//! - **relative throughput floors** — the fuzzy/exact qps *ratio* is
//!   hardware-independent, so loose floors gate in every mode (the
//!   pre-signature-index path was ~42× slower than exact and would
//!   fail). Full-mode artifacts additionally gate the *warm* serving
//!   shape: fuzzy within 7× of exact (the committed run is ~4.9× with
//!   the bit-parallel kernel + window cache), and the 8-shard batch
//!   row at ≥ 0.5× single-shard qps (the pre-clamp artifact had
//!   inverted shard scaling at ~0.3× and would fail).
//! - **window-cache counters** — the serving-path benches run with the
//!   cross-batch window cache attached, so the artifact must record
//!   cache traffic, and committed full runs must show a warm cache
//!   (hits > misses after criterion's warmup fills it).
//! - **absolute floors (full mode only)** — committed full runs come
//!   from a dev machine, so generous absolute floors (≥ 3× headroom)
//!   catch catastrophic regressions without tripping on CI hardware.
//!
//! For the serve artifact the gate enforces the serving-path
//! invariants on *both* protocol sections — the line protocol at the
//! top level and HTTP/1.1 under `"http"`: latency percentiles must be
//! ordered (p50 ≤ p95 ≤ p99), the Zipfian cache hit rate must stay
//! above 50%, and no response may have diverged from the golden
//! segmentation. The HTTP section is mandatory (dropping it fails CI)
//! and full-mode artifacts must clear an absolute 30k qps HTTP replay
//! floor. The HTTP section's `"stages"` breakdown (the server's own
//! per-stage pipeline histograms) is gated too: every stage present,
//! percentiles ordered, and summed stage time within the
//! client-observed end-to-end budget — mis-instrumented timers that
//! double-count a stage fail CI rather than silently corrupting the
//! latency trajectory.
//!
//! The `"cluster"` section (the scale-out curve over worker-process
//! fleets behind the router) is mandatory too: every row must carry
//! positive throughput, ordered percentiles and **zero** response
//! mismatches against the single-process oracle, and full-mode
//! artifacts must commit the whole 1/2/4/8-worker curve. The curve's
//! *mechanism* — fleet cache aggregation under hash partitioning — is
//! gated host-independently through the per-worker hit rates (the
//! single-worker baseline must be capacity-bound, the 4-worker
//! fleet's aggregate must hold the working set) plus a 0.5× collapse
//! floor; the 1.5× 4-worker throughput floor applies only when the
//! artifact's recorded `"cores"` show the generating host could run
//! the fleet in parallel at all — on a single-core host worker
//! processes time-slice one CPU and the ratio measures the scheduler,
//! not the router.
//!
//! Run: `cargo run --release -p websyn-bench --bin bench_check`
//! (reads the workspace-root `BENCH_matcher.json` / `BENCH_serve.json`,
//! or the paths in the `BENCH_MATCHER_JSON` / `BENCH_SERVE_JSON` env
//! vars).
//!
//! The checker is deliberately hand-rolled and line-oriented — the
//! emitters write one result (or one scalar) per line — because the
//! workspace has no JSON parser dependency (see vendor/README.md).

use std::process::ExitCode;

/// Benchmark names that must be present, in any order. Keep in sync
/// with `benches/matcher_fuzzy.rs` (modes + dictionary sweep).
const REQUIRED_BENCHES: [&str; 11] = [
    "matcher/exact_segment_clean",
    "matcher/fuzzy_segment_clean",
    "matcher/exact_segment_misspelled",
    "matcher/fuzzy_segment_misspelled",
    "matcher/fuzzy_segment_misspelled_nocache",
    "matcher/batch_misspelled_1_shards",
    "matcher/batch_misspelled_2_shards",
    "matcher/batch_misspelled_8_shards",
    "matcher/exact_segment_dict1000",
    "matcher/exact_segment_dict10000",
    "matcher/exact_segment_dict50000",
];

/// Fields every result row must carry.
const RESULT_FIELDS: [&str; 4] = [
    "\"name\"",
    "\"ns_per_iter\"",
    "\"iters\"",
    "\"queries_per_sec\"",
];

/// Extracts the string value of `"key": "value"` on `line`, if any.
fn string_value<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\": \"");
    let start = line.find(&pat)? + pat.len();
    let end = line[start..].find('"')? + start;
    Some(&line[start..end])
}

/// Extracts the numeric value of `"key": <number>` on `line`, if any.
fn number_value(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\": ");
    let start = line.find(&pat)? + pat.len();
    let end = line[start..]
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .map_or(line.len(), |p| p + start);
    line[start..end].parse().ok()
}

/// Absolute HTTP replay floor, enforced only on `"mode": "full"`
/// artifacts: the committed run clears it with ≥ 2× headroom, so a
/// front end that burns the throughput budget on framing fails CI.
const HTTP_QPS_FLOOR: f64 = 30_000.0;

/// Validates one protocol section of the serve artifact: positive
/// throughput, ordered latency percentiles, the >50% Zipfian
/// cache-hit floor, and zero response mismatches. Sections are
/// line-oriented like the rest of the artifact, so first-occurrence
/// key lookup inside the section slice is unambiguous.
fn check_serve_section(section: &str, label: &str) -> Result<f64, String> {
    let number = |key: &str| -> Result<f64, String> {
        number_value(section, key).ok_or_else(|| format!("[{label}] unreadable \"{key}\""))
    };
    let throughput = number("throughput_qps")?;
    if throughput <= 0.0 {
        return Err(format!(
            "[{label}] throughput_qps must be positive, got {throughput}"
        ));
    }
    let (p50, p95, p99) = (number("p50")?, number("p95")?, number("p99")?);
    if p50 <= 0.0 {
        return Err(format!("[{label}] p50 must be positive, got {p50}"));
    }
    if !(p50 <= p95 && p95 <= p99) {
        return Err(format!(
            "[{label}] latency percentiles must be ordered, got p50={p50} p95={p95} p99={p99}"
        ));
    }
    let hit_rate = number("cache_hit_rate")?;
    if !(hit_rate > 0.5 && hit_rate <= 1.0) {
        return Err(format!(
            "[{label}] cache_hit_rate must be in (0.5, 1.0] on the Zipfian log, got {hit_rate}"
        ));
    }
    let mismatches = number("response_mismatches")?;
    if mismatches != 0.0 {
        return Err(format!(
            "[{label}] response_mismatches must be 0 (cached == uncached), got {mismatches}"
        ));
    }
    // Informative but mandatory: every section reports its evictions.
    number("cache_evictions")?;
    Ok(throughput)
}

/// Stage names of the HTTP section's server-side breakdown, in
/// pipeline order. Keep in sync with `ServeMetrics::stages` in
/// `websyn-serve`.
const SERVE_STAGES: [&str; 7] = [
    "parse",
    "queue_wait",
    "batch_assembly",
    "cache_lookup",
    "segment",
    "render",
    "write",
];

/// Validates the `"stages"` object of the HTTP section: every pipeline
/// stage present with sane counts and ordered percentiles, and the
/// accounting invariant that total server-side stage time
/// (Σ `mean_us` × `count`) cannot exceed total client-observed
/// end-to-end time (`end_to_end_mean_us` × `total`) — each request's
/// stage spans are disjoint slices of its own latency window, so an
/// emitter double-counting a stage (or timing work outside the request
/// window) breaks the inequality and fails here.
fn check_serve_stages(section: &str) -> Result<(), String> {
    let at = section
        .find("\"stages\":")
        .ok_or("[http] missing key \"stages\" (per-stage breakdown dropped)")?;
    let stages = &section[at..];
    let number = |key: &str| -> Result<f64, String> {
        number_value(stages, key).ok_or_else(|| format!("[http stages] unreadable \"{key}\""))
    };
    let end_to_end = number("end_to_end_mean_us")?;
    let total = number("total")?;
    if !(end_to_end > 0.0 && total >= 1.0) {
        return Err(format!(
            "[http stages] end-to-end budget must be positive, \
             got end_to_end_mean_us={end_to_end} total={total}"
        ));
    }
    let mut stage_time = 0.0;
    for name in SERVE_STAGES {
        let key = format!("\"{name}\":");
        let line = stages
            .lines()
            .find(|l| l.contains(&key))
            .ok_or_else(|| format!("[http stages] missing stage \"{name}\""))?;
        let field = |key: &str| -> Result<f64, String> {
            number_value(line, key)
                .ok_or_else(|| format!("[http stages] {name}: unreadable \"{key}\""))
        };
        let count = field("count")?;
        let mean = field("mean_us")?;
        if count < 0.0 || mean < 0.0 {
            return Err(format!(
                "[http stages] {name}: negative count or mean (count={count} mean_us={mean})"
            ));
        }
        let (p50, p99) = (field("p50_us")?, field("p99_us")?);
        if p50 > p99 {
            return Err(format!(
                "[http stages] {name}: percentiles must be ordered, got p50_us={p50} > p99_us={p99}"
            ));
        }
        stage_time += mean * count;
    }
    // The breakdown must prove traffic actually flowed through the
    // instrumented pipeline: the result-cache lookup runs for every
    // query, so its histogram cannot be empty.
    if number_value(
        stages
            .lines()
            .find(|l| l.contains("\"cache_lookup\":"))
            .unwrap_or(""),
        "count",
    )
    .is_none_or(|c| c < 1.0)
    {
        return Err("[http stages] cache_lookup count is zero: breakdown detached".into());
    }
    let budget = end_to_end * total;
    if stage_time > budget {
        return Err(format!(
            "[http stages] stage accounting broken: Σ mean_us×count = {stage_time:.0}µs \
             exceeds the end-to-end budget {budget:.0}µs"
        ));
    }
    Ok(())
}

/// Minimum full-mode throughput ratio of the 4-worker fleet over the
/// single-worker baseline — enforced only when the committed run came
/// from a host with at least [`CLUSTER_SCALE_MIN_CORES`] cores. Worker
/// processes scale throughput by running in parallel; on a single-core
/// host the fleet time-slices one CPU and each extra process *adds*
/// scheduler and IPC cost per request, so a throughput ratio there
/// measures the kernel scheduler, not the router.
const CLUSTER_SCALE_FLOOR: f64 = 1.5;

/// Core count below which the throughput-ratio floor is meaningless
/// (see [`CLUSTER_SCALE_FLOOR`]). The artifact records the generating
/// host's core count under `"cores"`.
const CLUSTER_SCALE_MIN_CORES: f64 = 4.0;

/// Hardware-independent floor that gates full-mode curves on *every*
/// host: the 4-worker fleet must stay within 2× of single-worker
/// throughput even where parallelism can't help. A router that
/// serializes, deadlocks or thrashes collapses far below this.
const CLUSTER_COLLAPSE_FLOOR: f64 = 0.5;

/// Full-mode per-worker cache hit-rate bounds proving the curve's
/// mechanism — fleet cache aggregation under hash partitioning. The
/// single-worker baseline must be capacity-bound (hit rate at or
/// below the ceiling) and the 4-worker fleet must hold the working
/// set (hit rate at or above the floor). These are properties of the
/// partitioner and the workload, not the host, so they gate
/// everywhere; the committed run shows 0.41 → 0.96.
const CLUSTER_BASELINE_HIT_CEILING: f64 = 0.6;
const CLUSTER_FLEET_HIT_FLOOR: f64 = 0.9;

/// Validates the `"cluster"` scale-out section: workload keys, then
/// every curve row (positive throughput, ordered percentiles, sane
/// replication, zero mismatches vs the single-process oracle), then
/// the full-mode curve shape: all of 1/2/4/8 workers present, cache
/// aggregation proven by the per-worker hit rates, throughput no
/// worse than [`CLUSTER_COLLAPSE_FLOOR`]× anywhere — and on hosts
/// with the cores to show it, the 4-worker fleet at ≥
/// [`CLUSTER_SCALE_FLOOR`]× single-worker qps.
fn check_serve_cluster(section: &str, mode: &str) -> Result<(), String> {
    for key in [
        "\"connections\":",
        "\"cores\":",
        "\"dict_size\":",
        "\"distinct_queries\":",
        "\"cache_capacity\":",
        "\"zipf_s\":",
        "\"scale\": [",
    ] {
        if !section.contains(key) {
            return Err(format!("[cluster] missing key {key}"));
        }
    }
    let cores = number_value(section, "cores")
        .ok_or("[cluster] missing key \"cores\": (generating host's core count)")?;
    if cores < 1.0 {
        return Err(format!("[cluster] cores must be ≥ 1, got {cores}"));
    }
    // One curve row per line; each carries its own worker count.
    let mut rows: Vec<(f64, f64, f64)> = Vec::new();
    for line in section
        .lines()
        .filter(|l| l.contains("\"workers\":") && l.contains("\"throughput_qps\":"))
    {
        let number = |key: &str| -> Result<f64, String> {
            number_value(line, key)
                .ok_or_else(|| format!("[cluster] row missing \"{key}\": {line}"))
        };
        let workers = number("workers")?;
        let label = format!("cluster x{workers}");
        if workers < 1.0 {
            return Err(format!("[{label}] workers must be ≥ 1"));
        }
        let replication = number("replication")?;
        if !(replication >= 1.0 && replication <= workers) {
            return Err(format!(
                "[{label}] replication must be in [1, workers], got {replication}"
            ));
        }
        let throughput = number("throughput_qps")?;
        if throughput <= 0.0 {
            return Err(format!(
                "[{label}] throughput_qps must be positive, got {throughput}"
            ));
        }
        let (p50, p95, p99) = (number("p50")?, number("p95")?, number("p99")?);
        if !(p50 > 0.0 && p50 <= p95 && p95 <= p99) {
            return Err(format!(
                "[{label}] latency percentiles must be positive and ordered, \
                 got p50={p50} p95={p95} p99={p99}"
            ));
        }
        let hit_rate = number("cache_hit_rate")?;
        if !(hit_rate > 0.0 && hit_rate <= 1.0) {
            return Err(format!(
                "[{label}] cache_hit_rate must be in (0, 1], got {hit_rate}"
            ));
        }
        let mismatches = number("response_mismatches")?;
        if mismatches != 0.0 {
            return Err(format!(
                "[{label}] response_mismatches must be 0 (router invisible to \
                 correctness), got {mismatches}"
            ));
        }
        if rows.iter().any(|&(w, _, _)| w == workers) {
            return Err(format!(
                "[cluster] duplicate curve row for {workers} workers"
            ));
        }
        rows.push((workers, throughput, hit_rate));
    }
    if rows.len() < 2 {
        return Err(format!(
            "[cluster] scale curve needs at least 2 fleet sizes, got {}",
            rows.len()
        ));
    }
    if mode == "full" {
        let row = |w: f64| -> Result<(f64, f64), String> {
            rows.iter()
                .find(|&&(rw, _, _)| rw == w)
                .map(|&(_, q, h)| (q, h))
                .ok_or_else(|| format!("[cluster] full-mode curve missing the {w}-worker row"))
        };
        for w in [1.0, 2.0, 4.0, 8.0] {
            row(w)?;
        }
        let (base_qps, base_hits) = row(1.0)?;
        let (fleet_qps, fleet_hits) = row(4.0)?;
        // The mechanism gate is host-independent: a single worker's
        // cache must not hold the working set, a 4-worker fleet's
        // aggregate must — otherwise the workload stopped measuring
        // partitioned cache aggregation and the curve is vacuous.
        if base_hits > CLUSTER_BASELINE_HIT_CEILING {
            return Err(format!(
                "[cluster] single-worker hit rate {base_hits:.2} above the \
                 {CLUSTER_BASELINE_HIT_CEILING} ceiling: the workload no longer \
                 exceeds one worker's cache, so the curve measures nothing"
            ));
        }
        if fleet_hits < CLUSTER_FLEET_HIT_FLOOR {
            return Err(format!(
                "PERF REGRESSION: [cluster] 4-worker fleet hit rate {fleet_hits:.2} \
                 below the {CLUSTER_FLEET_HIT_FLOOR} floor: hash partitioning is no \
                 longer aggregating the fleet's cache capacity"
            ));
        }
        let ratio = fleet_qps / base_qps;
        if ratio < CLUSTER_COLLAPSE_FLOOR {
            return Err(format!(
                "PERF REGRESSION: [cluster] 4-worker fleet at {ratio:.2}× single-worker \
                 throughput, below the host-independent {CLUSTER_COLLAPSE_FLOOR}× \
                 collapse floor"
            ));
        }
        if cores >= CLUSTER_SCALE_MIN_CORES && ratio < CLUSTER_SCALE_FLOOR {
            return Err(format!(
                "PERF REGRESSION: [cluster] 4-worker fleet at {ratio:.2}× single-worker \
                 throughput on a {cores}-core host, committed floor {CLUSTER_SCALE_FLOOR}×"
            ));
        }
    }
    Ok(())
}

/// Validates the serve artifact: workload keys, then the line-protocol
/// section (top level), the HTTP section (under `"http"`) and the
/// scale-out curve (under `"cluster"`, last in the artifact). A
/// missing section fails — the front end must keep publishing both
/// transports and the fleet curve.
fn check_serve(content: &str) -> Result<(), String> {
    for key in [
        "\"bench\": \"serve\"",
        "\"mode\":",
        "\"queries\":",
        "\"distinct_queries\":",
        "\"connections\":",
        "\"pipeline_depth\":",
        "\"workers\":",
        "\"batch_max\":",
        "\"batch_window_us\":",
        "\"cache_capacity\":",
        "\"zipf_s\":",
        "\"latency_us\":",
        "\"cache_evictions\":",
    ] {
        if !content.contains(key) {
            return Err(format!("missing key {key}"));
        }
    }
    let mode = string_value(content, "mode").ok_or("unreadable \"mode\"")?;
    if !matches!(mode, "full" | "smoke") {
        return Err(format!("mode must be full|smoke, got {mode:?}"));
    }
    // The emitter writes line-protocol values at the top level, then
    // the HTTP object, then the cluster object — so splitting at the
    // two section keys yields three slices each containing one
    // section's values.
    let http_at = content
        .find("\"http\":")
        .ok_or("missing key \"http\": (HTTP section dropped from the serve artifact)")?;
    let cluster_at = content
        .find("\"cluster\":")
        .ok_or("missing key \"cluster\": (scale-out curve dropped from the serve artifact)")?;
    if cluster_at < http_at {
        return Err("serve artifact sections out of order: \"cluster\" before \"http\"".into());
    }
    check_serve_section(&content[..http_at], "line")?;
    let http_qps = check_serve_section(&content[http_at..cluster_at], "http")?;
    check_serve_stages(&content[http_at..cluster_at])?;
    if mode == "full" && http_qps < HTTP_QPS_FLOOR {
        return Err(format!(
            "PERF REGRESSION: [http] replay at {http_qps:.0} qps, committed floor {HTTP_QPS_FLOOR:.0}"
        ));
    }
    check_serve_cluster(&content[cluster_at..], mode)
}

/// Relative throughput floors: `qps(numerator) / qps(denominator)`
/// must stay at or above the floor. Ratios cancel machine speed, so
/// they gate in smoke mode on CI hardware too. Floors are generous
/// (≥ 2× headroom against the committed run) to tolerate noise.
const RATIO_FLOORS: [(&str, &str, f64); 2] = [
    (
        "matcher/batch_misspelled_1_shards",
        "matcher/exact_segment_misspelled",
        0.035,
    ),
    (
        "matcher/fuzzy_segment_misspelled",
        "matcher/exact_segment_misspelled",
        0.015,
    ),
];

/// Full-mode-only ratio floors, tighter than [`RATIO_FLOORS`]: the
/// committed full run measures the warm serving configuration
/// (bit-parallel verification + cross-batch window cache), so these
/// gate the steady-state shape of the curve rather than just "fuzzy is
/// not catastrophically slow".
const FULL_RATIO_FLOORS: [(&str, &str, f64, &str); 2] = [
    // The headline gap: warm fuzzy segmentation within 7× of exact
    // (the committed run is ~4.9×; the pre-kernel/pre-cache path was
    // ~14× and would fail).
    (
        "matcher/fuzzy_segment_misspelled",
        "matcher/exact_segment_misspelled",
        1.0 / 7.0,
        "the warm fuzzy/exact throughput gap regressed past 7×",
    ),
    // Shard-scaling sanity: asking for 8 shards on a 256-query batch
    // must not tank throughput. With the min-chunk clamp the 8-shard
    // row holds ~0.8× of single-shard qps (spawn+join overhead is real
    // but bounded); the pre-clamp artifact sat at ~0.3× and would
    // fail.
    (
        "matcher/batch_misspelled_8_shards",
        "matcher/batch_misspelled_1_shards",
        0.5,
        "shard scaling inverted: oversharded batches fell below half of single-shard throughput",
    ),
];

/// Absolute qps floors, enforced only on `"mode": "full"` artifacts
/// (committed from a dev machine); generous ≥ 3× headroom. The fuzzy
/// floor is the warm serving path — window cache attached, filled by
/// criterion's warmup — which the committed run clears at ~600k qps.
const ABSOLUTE_FLOORS: [(&str, f64); 4] = [
    ("matcher/exact_segment_misspelled", 1_000_000.0),
    ("matcher/batch_misspelled_1_shards", 70_000.0),
    ("matcher/fuzzy_segment_misspelled", 200_000.0),
    ("matcher/fuzzy_segment_misspelled_nocache", 30_000.0),
];

/// Validates the `"window_cache"` counter line: the serving-path
/// benchmarks run with the cross-batch window cache attached, so the
/// artifact must show cache traffic — and in full mode a *warm* cache
/// (criterion's warmup fills it, so measured iterations should hit far
/// more often than they miss). A refactor that silently detaches the
/// cache from the bench flatlines these counters and fails here.
fn check_window_cache(content: &str, mode: &str) -> Result<(), String> {
    let at = content
        .find("\"window_cache\":")
        .ok_or("missing top-level key \"window_cache\"")?;
    let line = content[at..].lines().next().unwrap_or("");
    let hits = number_value(line, "hits").ok_or("unreadable window_cache \"hits\"")?;
    let misses = number_value(line, "misses").ok_or("unreadable window_cache \"misses\"")?;
    if hits < 0.0 || misses < 0.0 {
        return Err(format!(
            "window_cache counters must be non-negative, got hits={hits} misses={misses}"
        ));
    }
    if hits + misses < 1.0 {
        return Err(
            "window_cache counters flat: the bench no longer exercises the window cache".into(),
        );
    }
    if mode == "full" && hits <= misses {
        return Err(format!(
            "window_cache ran cold in a full-mode artifact (hits={hits} ≤ misses={misses}): \
             warmup should leave the measured iterations mostly hitting"
        ));
    }
    Ok(())
}

/// Validates the recall section: the misspelled-camera eval must be
/// non-trivial and fully recovered, and the ablation-6 abbrev recall
/// must hold its committed floor.
fn check_recall(content: &str) -> Result<(), String> {
    let number = |key: &str| -> Result<f64, String> {
        number_value(content, key).ok_or_else(|| format!("missing recall key \"{key}\""))
    };
    let recovered = number("misspelled_camera_recovered")?;
    let total = number("misspelled_camera_total")?;
    if total < 10.0 {
        return Err(format!(
            "misspelled-camera eval shrank to {total} queries (< 10): eval no longer meaningful"
        ));
    }
    if recovered != total {
        return Err(format!(
            "misspelled-camera recall regressed: {recovered}/{total} recovered"
        ));
    }
    let default_recall = number("ablation6_default_recall")?;
    if !(default_recall > 0.0 && default_recall <= 1.0) {
        return Err(format!(
            "ablation6_default_recall out of range: {default_recall}"
        ));
    }
    let abbrev_recall = number("ablation6_abbrev_recall")?;
    if abbrev_recall < 0.60 {
        return Err(format!(
            "ablation-6 abbrev recall regressed below 0.60: {abbrev_recall}"
        ));
    }
    if abbrev_recall > 1.0 {
        return Err(format!(
            "ablation6_abbrev_recall out of range: {abbrev_recall}"
        ));
    }
    Ok(())
}

/// Validates the throughput floors over the parsed `(name, qps)` rows.
fn check_floors(mode: &str, rows: &[(String, f64)]) -> Result<(), String> {
    let qps = |name: &str| -> Result<f64, String> {
        rows.iter()
            .find(|(n, _)| n == name)
            .map(|&(_, q)| q)
            .ok_or_else(|| format!("missing benchmark {name}"))
    };
    for (num, den, floor) in RATIO_FLOORS {
        let ratio = qps(num)? / qps(den)?;
        if ratio < floor {
            return Err(format!(
                "PERF REGRESSION: {num} / {den} = {ratio:.4}, floor {floor} — \
                 the fuzzy/exact throughput gap regressed"
            ));
        }
    }
    if mode == "full" {
        for (num, den, floor, what) in FULL_RATIO_FLOORS {
            let ratio = qps(num)? / qps(den)?;
            if ratio < floor {
                return Err(format!(
                    "PERF REGRESSION: {num} / {den} = {ratio:.4}, floor {floor:.4} — {what}"
                ));
            }
        }
        for (name, floor) in ABSOLUTE_FLOORS {
            let q = qps(name)?;
            if q < floor {
                return Err(format!(
                    "PERF REGRESSION: {name} at {q:.0} qps, committed floor {floor:.0}"
                ));
            }
        }
    }
    Ok(())
}

fn check(content: &str) -> Result<usize, String> {
    // Top-level keys.
    for key in [
        "\"bench\": \"matcher\"",
        "\"mode\":",
        "\"batch_size\":",
        "\"recall\":",
        "\"results\": [",
    ] {
        if !content.contains(key) {
            return Err(format!("missing top-level key {key}"));
        }
    }
    let mode = string_value(content, "mode").ok_or("unreadable \"mode\"")?;
    if !matches!(mode, "full" | "smoke") {
        return Err(format!("mode must be full|smoke, got {mode:?}"));
    }
    check_window_cache(content, mode)?;
    check_recall(content)?;

    // Result rows: one per line, every field present and sane.
    let mut seen: Vec<(String, f64)> = Vec::new();
    for line in content.lines().filter(|l| l.contains("\"name\"")) {
        for field in RESULT_FIELDS {
            if !line.contains(field) {
                return Err(format!("result row missing {field}: {line}"));
            }
        }
        let name = string_value(line, "name").ok_or("unreadable result name")?;
        let qps = number_value(line, "queries_per_sec")
            .ok_or_else(|| format!("unreadable queries_per_sec for {name}"))?;
        if qps <= 0.0 {
            return Err(format!(
                "{name}: queries_per_sec must be positive, got {qps}"
            ));
        }
        if number_value(line, "ns_per_iter").is_none_or(|ns| ns <= 0.0) {
            return Err(format!("{name}: ns_per_iter must be positive"));
        }
        if seen.iter().any(|(s, _)| s == name) {
            return Err(format!("duplicate result name {name}"));
        }
        seen.push((name.to_string(), qps));
    }
    for required in REQUIRED_BENCHES {
        if !seen.iter().any(|(s, _)| s == required) {
            return Err(format!("missing benchmark {required}"));
        }
    }
    check_floors(mode, &seen)?;
    Ok(seen.len())
}

fn main() -> ExitCode {
    let matcher_path = std::env::var("BENCH_MATCHER_JSON").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_matcher.json").to_string()
    });
    let serve_path = std::env::var("BENCH_SERVE_JSON").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json").to_string()
    });
    let mut failed = false;
    for (path, verdict) in [
        (
            &matcher_path,
            std::fs::read_to_string(&matcher_path)
                .map_err(|e| format!("cannot read: {e}"))
                .and_then(|c| check(&c).map(|n| format!("{n} results"))),
        ),
        (
            &serve_path,
            std::fs::read_to_string(&serve_path)
                .map_err(|e| format!("cannot read: {e}"))
                .and_then(|c| check_serve(&c).map(|()| "serve schema + gates".to_string())),
        ),
    ] {
        match verdict {
            Ok(what) => println!("bench_check: {path} ok ({what}, all required keys present)"),
            Err(e) => {
                eprintln!("bench_check: {path}: SCHEMA REGRESSION: {e}");
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn valid() -> String {
        let rows: Vec<String> = REQUIRED_BENCHES
            .iter()
            .map(|name| {
                format!(
                    "    {{\"name\": \"{name}\", \"ns_per_iter\": 100.0, \"iters\": 3, \"queries_per_sec\": 1000}},"
                )
            })
            .collect();
        format!(
            "{{\n  \"bench\": \"matcher\",\n  \"mode\": \"smoke\",\n  \"batch_size\": 256,\n  \"window_cache\": {{\"hits\": 900, \"misses\": 120}},\n  \"recall\": {{\"misspelled_camera_recovered\": 18, \"misspelled_camera_total\": 18, \"ablation6_default_recall\": 0.338, \"ablation6_abbrev_recall\": 0.648}},\n  \"results\": [\n{}\n  ]\n}}\n",
            rows.join("\n")
        )
    }

    #[test]
    fn accepts_the_emitted_schema() {
        assert_eq!(check(&valid()), Ok(REQUIRED_BENCHES.len()));
    }

    #[test]
    fn recall_gate_rejects_regressions() {
        let lost = valid().replace(
            "\"misspelled_camera_recovered\": 18",
            "\"misspelled_camera_recovered\": 17",
        );
        assert!(check(&lost).unwrap_err().contains("recall regressed"));
        let shrunk = valid()
            .replace(
                "\"misspelled_camera_recovered\": 18",
                "\"misspelled_camera_recovered\": 4",
            )
            .replace(
                "\"misspelled_camera_total\": 18",
                "\"misspelled_camera_total\": 4",
            );
        assert!(check(&shrunk).unwrap_err().contains("shrank"));
        let abbrev = valid().replace(
            "\"ablation6_abbrev_recall\": 0.648",
            "\"ablation6_abbrev_recall\": 0.55",
        );
        assert!(check(&abbrev).unwrap_err().contains("abbrev recall"));
        let missing = valid().replace("  \"recall\": {\"misspelled_camera_recovered\": 18, \"misspelled_camera_total\": 18, \"ablation6_default_recall\": 0.338, \"ablation6_abbrev_recall\": 0.648},\n", "");
        assert!(check(&missing).unwrap_err().contains("recall"));
    }

    #[test]
    fn ratio_floor_rejects_fuzzy_exact_gap_regression() {
        // Fuzzy batch at 1/1000 of exact: the pre-signature-index gap
        // was ~1/42 and must never come back.
        let slow = valid().replace(
            "{\"name\": \"matcher/batch_misspelled_1_shards\", \"ns_per_iter\": 100.0, \"iters\": 3, \"queries_per_sec\": 1000}",
            "{\"name\": \"matcher/batch_misspelled_1_shards\", \"ns_per_iter\": 100.0, \"iters\": 3, \"queries_per_sec\": 1}",
        );
        assert!(check(&slow).unwrap_err().contains("PERF REGRESSION"));
    }

    #[test]
    fn absolute_floors_gate_full_mode_only() {
        // 1000 qps everywhere fails absolute floors in full mode…
        let full = valid().replace("\"mode\": \"smoke\"", "\"mode\": \"full\"");
        assert!(check(&full).unwrap_err().contains("PERF REGRESSION"));
        // …but passes in smoke mode (ratios alone apply there).
        assert!(check(&valid()).is_ok());
    }

    fn valid_serve() -> String {
        "{\n  \"bench\": \"serve\",\n  \"mode\": \"smoke\",\n  \"queries\": 2000,\n  \"distinct_queries\": 200,\n  \"connections\": 4,\n  \"pipeline_depth\": 4,\n  \"workers\": 2,\n  \"batch_max\": 32,\n  \"batch_window_us\": 100,\n  \"cache_capacity\": 256,\n  \"zipf_s\": 1.00,\n  \"throughput_qps\": 50000,\n  \"latency_us\": {\"p50\": 120.0, \"p95\": 350.5, \"p99\": 700.1, \"max\": 1200.0},\n  \"cache_hit_rate\": 0.9050,\n  \"cache_evictions\": 2,\n  \"response_mismatches\": 0,\n  \"http\": {\n    \"throughput_qps\": 48000,\n    \"latency_us\": {\"p50\": 130.0, \"p95\": 360.5, \"p99\": 710.1, \"max\": 1300.0},\n    \"cache_hit_rate\": 0.9100,\n    \"cache_evictions\": 1,\n    \"response_mismatches\": 0,\n    \"stages\": {\n      \"end_to_end_mean_us\": 180.0,\n      \"total\": 2000,\n      \"parse\": {\"count\": 2000, \"mean_us\": 2.1, \"p50_us\": 2, \"p99_us\": 8},\n      \"queue_wait\": {\"count\": 2000, \"mean_us\": 24.0, \"p50_us\": 16, \"p99_us\": 128},\n      \"batch_assembly\": {\"count\": 2000, \"mean_us\": 35.5, \"p50_us\": 32, \"p99_us\": 128},\n      \"cache_lookup\": {\"count\": 2000, \"mean_us\": 1.2, \"p50_us\": 1, \"p99_us\": 4},\n      \"segment\": {\"count\": 190, \"mean_us\": 85.0, \"p50_us\": 64, \"p99_us\": 512},\n      \"render\": {\"count\": 190, \"mean_us\": 3.0, \"p50_us\": 2, \"p99_us\": 16},\n      \"write\": {\"count\": 1500, \"mean_us\": 9.5, \"p50_us\": 8, \"p99_us\": 64}\n    }\n  },\n  \"cluster\": {\n    \"connections\": 8,\n    \"cores\": 8,\n    \"dict_size\": 2000,\n    \"distinct_queries\": 300,\n    \"cache_capacity\": 128,\n    \"zipf_s\": 0.40,\n    \"scale\": [\n      {\"workers\": 1, \"replication\": 1, \"throughput_qps\": 8000, \"latency_us\": {\"p50\": 1700.0, \"p95\": 4600.0, \"p99\": 6000.0, \"max\": 17000.0}, \"cache_hit_rate\": 0.4120, \"response_mismatches\": 0},\n      {\"workers\": 2, \"replication\": 1, \"throughput_qps\": 12000, \"latency_us\": {\"p50\": 735.0, \"p95\": 4300.0, \"p99\": 6300.0, \"max\": 12000.0}, \"cache_hit_rate\": 0.7290, \"response_mismatches\": 0},\n      {\"workers\": 4, \"replication\": 1, \"throughput_qps\": 18000, \"latency_us\": {\"p50\": 683.0, \"p95\": 1600.0, \"p99\": 5000.0, \"max\": 16000.0}, \"cache_hit_rate\": 0.9620, \"response_mismatches\": 0},\n      {\"workers\": 8, \"replication\": 1, \"throughput_qps\": 16000, \"latency_us\": {\"p50\": 763.0, \"p95\": 2000.0, \"p99\": 5900.0, \"max\": 49000.0}, \"cache_hit_rate\": 0.9620, \"response_mismatches\": 0}\n    ]\n  }\n}\n"
            .to_string()
    }

    #[test]
    fn accepts_the_serve_schema() {
        assert_eq!(check_serve(&valid_serve()), Ok(()));
    }

    #[test]
    fn serve_gate_rejects_bad_values() {
        let low_hit =
            valid_serve().replace("\"cache_hit_rate\": 0.9050", "\"cache_hit_rate\": 0.4");
        assert!(check_serve(&low_hit)
            .unwrap_err()
            .contains("cache_hit_rate"));
        let unordered = valid_serve().replace("\"p95\": 350.5", "\"p95\": 3500.5");
        assert!(check_serve(&unordered).unwrap_err().contains("ordered"));
        let mismatch = valid_serve().replacen(
            "\"response_mismatches\": 0,",
            "\"response_mismatches\": 3,",
            1,
        );
        assert!(check_serve(&mismatch)
            .unwrap_err()
            .contains("response_mismatches"));
        let missing = valid_serve().replace("  \"batch_window_us\": 100,\n", "");
        assert!(check_serve(&missing).unwrap_err().contains("missing key"));
        let missing_depth = valid_serve().replace("  \"pipeline_depth\": 4,\n", "");
        assert!(check_serve(&missing_depth)
            .unwrap_err()
            .contains("missing key"));
        let missing_evictions = valid_serve().replace("  \"cache_evictions\": 2,\n", "");
        assert!(check_serve(&missing_evictions)
            .unwrap_err()
            .contains("cache_evictions"));
        let badmode = valid_serve().replace("\"mode\": \"smoke\"", "\"mode\": \"partial\"");
        assert!(check_serve(&badmode).unwrap_err().contains("mode"));
        let zero_tp = valid_serve().replace("\"throughput_qps\": 50000", "\"throughput_qps\": 0");
        assert!(check_serve(&zero_tp).unwrap_err().contains("positive"));
    }

    #[test]
    fn serve_gate_covers_the_http_section() {
        // Dropping the whole HTTP object fails — the front end must
        // keep publishing both transports.
        let gone = match valid_serve().find(",\n  \"http\": {") {
            Some(at) => format!("{}\n}}\n", &valid_serve()[..at]),
            None => panic!("fixture lost its http section"),
        };
        assert!(check_serve(&gone).unwrap_err().contains("\"http\""));
        // Bad values inside the HTTP section are caught with the
        // section label even when the line section is healthy.
        let http_mismatch = valid_serve().replace(
            "    \"response_mismatches\": 0",
            "    \"response_mismatches\": 7",
        );
        let err = check_serve(&http_mismatch).unwrap_err();
        assert!(err.contains("[http]") && err.contains("response_mismatches"));
        let http_low_hit =
            valid_serve().replace("\"cache_hit_rate\": 0.9100", "\"cache_hit_rate\": 0.2");
        assert!(check_serve(&http_low_hit).unwrap_err().contains("[http]"));
    }

    #[test]
    fn serve_gate_covers_the_stage_breakdown() {
        // Dropping the whole stages object fails — the per-stage
        // breakdown is part of the committed artifact now.
        let gone = {
            let fixture = valid_serve();
            let at = fixture.find(",\n    \"stages\": {").expect("stages open");
            let end = fixture.find("\n    }\n  },").expect("stages close");
            format!("{}{}", &fixture[..at], &fixture[end + "\n    }".len()..])
        };
        assert!(check_serve(&gone).unwrap_err().contains("\"stages\""));
        // Every pipeline stage must be present by name.
        let missing_stage = valid_serve().replace("\"queue_wait\":", "\"queue_delay\":");
        assert!(check_serve(&missing_stage)
            .unwrap_err()
            .contains("missing stage \"queue_wait\""));
        // Per-stage percentiles must be ordered.
        let unordered = valid_serve().replace(
            "\"segment\": {\"count\": 190, \"mean_us\": 85.0, \"p50_us\": 64, \"p99_us\": 512}",
            "\"segment\": {\"count\": 190, \"mean_us\": 85.0, \"p50_us\": 640, \"p99_us\": 512}",
        );
        let err = check_serve(&unordered).unwrap_err();
        assert!(
            err.contains("[http stages] segment") && err.contains("ordered"),
            "{err}"
        );
        // The accounting invariant: summed stage time cannot exceed
        // the client-observed end-to-end budget. A double-counting
        // emitter (here: batch assembly charged at ~5× the whole
        // request latency) fails.
        let overcharged = valid_serve().replace(
            "\"batch_assembly\": {\"count\": 2000, \"mean_us\": 35.5,",
            "\"batch_assembly\": {\"count\": 2000, \"mean_us\": 900.0,",
        );
        let err = check_serve(&overcharged).unwrap_err();
        assert!(err.contains("stage accounting broken"), "{err}");
        // An empty cache_lookup histogram means the breakdown was
        // detached from the serving path.
        let detached = valid_serve().replace(
            "\"cache_lookup\": {\"count\": 2000,",
            "\"cache_lookup\": {\"count\": 0,",
        );
        assert!(check_serve(&detached).unwrap_err().contains("detached"));
    }

    #[test]
    fn serve_gate_covers_the_cluster_section() {
        // Dropping the whole cluster object fails — the scale-out
        // curve must stay published.
        let gone = match valid_serve().find(",\n  \"cluster\": {") {
            Some(at) => format!("{}\n}}\n", &valid_serve()[..at]),
            None => panic!("fixture lost its cluster section"),
        };
        assert!(check_serve(&gone).unwrap_err().contains("\"cluster\""));
        // Any curve row answering differently from the single-process
        // oracle fails, labelled with its fleet size.
        let mismatch = valid_serve().replacen(
            "\"cache_hit_rate\": 0.7290, \"response_mismatches\": 0",
            "\"cache_hit_rate\": 0.7290, \"response_mismatches\": 2",
            1,
        );
        let err = check_serve(&mismatch).unwrap_err();
        assert!(err.contains("[cluster x2]") && err.contains("response_mismatches"));
        // Replication can never exceed the fleet size.
        let overrep = valid_serve().replacen(
            "{\"workers\": 1, \"replication\": 1,",
            "{\"workers\": 1, \"replication\": 3,",
            1,
        );
        assert!(check_serve(&overrep).unwrap_err().contains("replication"));
        // A one-row "curve" is not a curve: truncate after the
        // 1-worker row and close the arrays.
        let only_first = {
            let fixture = valid_serve();
            let row1 = fixture.find("\"workers\": 1").expect("row 1");
            let end = row1 + fixture[row1..].find('}').expect("latency close") + 1;
            let end = end + fixture[end..].find('}').expect("row close") + 1;
            format!("{}\n    ]\n  }}\n}}\n", &fixture[..end])
        };
        assert!(check_serve(&only_first)
            .unwrap_err()
            .contains("at least 2 fleet sizes"));
    }

    #[test]
    fn cluster_scale_floor_gates_full_mode_only() {
        // A flat curve (4-worker fleet no faster than one worker):
        // fine in smoke mode, a perf regression in full mode.
        let flat = valid_serve().replacen(
            "{\"workers\": 4, \"replication\": 1, \"throughput_qps\": 18000",
            "{\"workers\": 4, \"replication\": 1, \"throughput_qps\": 9000",
            1,
        );
        assert_eq!(check_serve(&flat), Ok(()));
        let flat_full = flat.replace("\"mode\": \"smoke\"", "\"mode\": \"full\"");
        let err = check_serve(&flat_full).unwrap_err();
        assert!(
            err.contains("PERF REGRESSION") && err.contains("[cluster]"),
            "{err}"
        );
        // The committed shape passes in full mode (18000/8000 = 2.25×)…
        let full = valid_serve().replace("\"mode\": \"smoke\"", "\"mode\": \"full\"");
        assert_eq!(check_serve(&full), Ok(()));
        // …but full mode insists on the whole 1/2/4/8 curve.
        let no_8 = {
            let fixture = full.clone();
            let at = fixture.find(",\n      {\"workers\": 8").expect("row 8");
            let end = fixture.find("\n    ]").expect("scale close");
            format!("{}{}", &fixture[..at], &fixture[end..])
        };
        assert!(check_serve(&no_8).unwrap_err().contains("8-worker row"));
    }

    #[test]
    fn cluster_scale_floor_is_core_count_aware() {
        // The same flat curve on a single-core host passes the ratio
        // floor (worker processes time-slice one CPU there; the ratio
        // would measure the scheduler), but the mechanism and
        // collapse gates still apply.
        let flat_single_core = valid_serve()
            .replace("\"mode\": \"smoke\"", "\"mode\": \"full\"")
            .replace("\"cores\": 8,", "\"cores\": 1,")
            .replacen(
                "{\"workers\": 4, \"replication\": 1, \"throughput_qps\": 18000",
                "{\"workers\": 4, \"replication\": 1, \"throughput_qps\": 9000",
                1,
            );
        assert_eq!(check_serve(&flat_single_core), Ok(()));
        // Collapse below 0.5× fails on any host.
        let collapsed = flat_single_core.replacen(
            "{\"workers\": 4, \"replication\": 1, \"throughput_qps\": 9000",
            "{\"workers\": 4, \"replication\": 1, \"throughput_qps\": 3000",
            1,
        );
        let err = check_serve(&collapsed).unwrap_err();
        assert!(err.contains("collapse floor"), "{err}");
        // Dropping the cores key fails — the floor can't be applied
        // without knowing the generating host.
        let no_cores = valid_serve().replace("    \"cores\": 8,\n", "");
        assert!(check_serve(&no_cores).unwrap_err().contains("cores"));
    }

    #[test]
    fn cluster_hit_rates_must_prove_cache_aggregation() {
        let full = valid_serve().replace("\"mode\": \"smoke\"", "\"mode\": \"full\"");
        // A 4-worker fleet that no longer holds the working set fails
        // regardless of host: partitioned aggregation is the
        // mechanism the curve exists to prove.
        let cold_fleet = full.replacen(
            "\"cache_hit_rate\": 0.9620",
            "\"cache_hit_rate\": 0.8000",
            1,
        );
        let err = check_serve(&cold_fleet).unwrap_err();
        assert!(err.contains("no longer aggregating"), "{err}");
        // A single-worker baseline that already holds the working set
        // means the workload shrank and the curve is vacuous.
        let warm_baseline = full.replacen(
            "\"cache_hit_rate\": 0.4120",
            "\"cache_hit_rate\": 0.7000",
            1,
        );
        let err = check_serve(&warm_baseline).unwrap_err();
        assert!(err.contains("measures nothing"), "{err}");
        // Neither gate applies in smoke mode.
        let smoke_cold = valid_serve().replacen(
            "\"cache_hit_rate\": 0.9620",
            "\"cache_hit_rate\": 0.8000",
            1,
        );
        assert_eq!(check_serve(&smoke_cold), Ok(()));
    }

    #[test]
    fn http_absolute_floor_gates_full_mode_only() {
        let slow = valid_serve().replace("\"throughput_qps\": 48000", "\"throughput_qps\": 4800");
        // Below the 30k floor: fine in smoke mode, rejected in full.
        assert!(check_serve(&slow).is_ok());
        let slow_full = slow.replace("\"mode\": \"smoke\"", "\"mode\": \"full\"");
        assert!(check_serve(&slow_full)
            .unwrap_err()
            .contains("PERF REGRESSION"));
        // At the floor, full mode passes.
        let fast_full = valid_serve()
            .replace("\"mode\": \"smoke\"", "\"mode\": \"full\"")
            .replace("\"throughput_qps\": 48000", "\"throughput_qps\": 30000");
        assert_eq!(check_serve(&fast_full), Ok(()));
    }

    #[test]
    fn window_cache_gate_requires_traffic_and_full_mode_warmth() {
        // Missing counters fail in any mode.
        let missing = valid().replace(
            "  \"window_cache\": {\"hits\": 900, \"misses\": 120},\n",
            "",
        );
        assert!(check(&missing).unwrap_err().contains("window_cache"));
        // Flat counters mean the bench detached the cache.
        let flat = valid().replace(
            "\"window_cache\": {\"hits\": 900, \"misses\": 120}",
            "\"window_cache\": {\"hits\": 0, \"misses\": 0}",
        );
        assert!(check(&flat).unwrap_err().contains("flat"));
        // A cold cache (more misses than hits) is fine in smoke mode
        // but a regression in a committed full run.
        let cold = valid().replace(
            "\"window_cache\": {\"hits\": 900, \"misses\": 120}",
            "\"window_cache\": {\"hits\": 3, \"misses\": 500}",
        );
        assert!(check(&cold).is_ok());
        let cold_full = cold.replace("\"mode\": \"smoke\"", "\"mode\": \"full\"");
        assert!(check(&cold_full).unwrap_err().contains("cold"));
    }

    #[test]
    fn full_ratio_floors_gate_the_warm_gap_and_shard_scaling() {
        // Make every full-mode absolute floor pass so the ratio gates
        // are what's under test.
        let fast = valid().replace("\"queries_per_sec\": 1000", "\"queries_per_sec\": 5000000");
        let full = fast.replace("\"mode\": \"smoke\"", "\"mode\": \"full\"");
        assert!(check(&full).is_ok());
        // Warm fuzzy at 10× slower than exact: passes the loose
        // all-mode ratio (1/66) but fails the full-mode 7× gate.
        let gap = full.replace(
            "{\"name\": \"matcher/fuzzy_segment_misspelled\", \"ns_per_iter\": 100.0, \"iters\": 3, \"queries_per_sec\": 5000000}",
            "{\"name\": \"matcher/fuzzy_segment_misspelled\", \"ns_per_iter\": 100.0, \"iters\": 3, \"queries_per_sec\": 500000}",
        );
        let err = check(&gap).unwrap_err();
        assert!(
            err.contains("PERF REGRESSION") && err.contains("7×"),
            "{err}"
        );
        // …but the same shape is tolerated in smoke mode (CI hardware).
        assert!(check(&gap.replace("\"mode\": \"full\"", "\"mode\": \"smoke\"")).is_ok());
        // Inverted shard scaling: the 8-shard row at a third of
        // single-shard throughput (the pre-clamp committed artifact)
        // fails full mode.
        let inverted = full.replace(
            "{\"name\": \"matcher/batch_misspelled_8_shards\", \"ns_per_iter\": 100.0, \"iters\": 3, \"queries_per_sec\": 5000000}",
            "{\"name\": \"matcher/batch_misspelled_8_shards\", \"ns_per_iter\": 100.0, \"iters\": 3, \"queries_per_sec\": 1600000}",
        );
        let err = check(&inverted).unwrap_err();
        assert!(
            err.contains("PERF REGRESSION") && err.contains("shard scaling inverted"),
            "{err}"
        );
    }

    #[test]
    fn rejects_missing_bench_and_bad_values() {
        let missing = valid().replace("exact_segment_dict50000", "exact_segment_dict999");
        assert!(check(&missing).unwrap_err().contains("missing benchmark"));
        let zero = valid().replace("\"queries_per_sec\": 1000", "\"queries_per_sec\": 0");
        assert!(check(&zero).unwrap_err().contains("positive"));
        let dropped = valid().replace("\"iters\": 3, ", "");
        assert!(check(&dropped).unwrap_err().contains("\"iters\""));
        assert!(check("{}").unwrap_err().contains("missing top-level"));
        let badmode = valid().replace("\"mode\": \"smoke\"", "\"mode\": \"partial\"");
        assert!(check(&badmode).unwrap_err().contains("mode"));
    }
}
