//! Schema gate for the committed matcher perf artifact.
//!
//! `BENCH_matcher.json` is the matcher's perf trajectory across PRs;
//! CI regenerates it in smoke mode and this binary fails the job if
//! the schema or the benchmark key set regresses — a rename, a dropped
//! benchmark, or a malformed emitter would otherwise silently break
//! the cross-PR comparison.
//!
//! Run: `cargo run --release -p websyn-bench --bin bench_check`
//! (reads the workspace-root `BENCH_matcher.json`, or the path in the
//! `BENCH_MATCHER_JSON` env var).
//!
//! The checker is deliberately hand-rolled and line-oriented — the
//! emitter in `benches/matcher_fuzzy.rs` writes one result per line —
//! because the workspace has no JSON parser dependency (see
//! vendor/README.md).

use std::process::ExitCode;

/// Benchmark names that must be present, in any order. Keep in sync
/// with `benches/matcher_fuzzy.rs` (modes + dictionary sweep).
const REQUIRED_BENCHES: [&str; 10] = [
    "matcher/exact_segment_clean",
    "matcher/fuzzy_segment_clean",
    "matcher/exact_segment_misspelled",
    "matcher/fuzzy_segment_misspelled",
    "matcher/batch_misspelled_1_shards",
    "matcher/batch_misspelled_2_shards",
    "matcher/batch_misspelled_8_shards",
    "matcher/exact_segment_dict1000",
    "matcher/exact_segment_dict10000",
    "matcher/exact_segment_dict50000",
];

/// Fields every result row must carry.
const RESULT_FIELDS: [&str; 4] = [
    "\"name\"",
    "\"ns_per_iter\"",
    "\"iters\"",
    "\"queries_per_sec\"",
];

/// Extracts the string value of `"key": "value"` on `line`, if any.
fn string_value<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\": \"");
    let start = line.find(&pat)? + pat.len();
    let end = line[start..].find('"')? + start;
    Some(&line[start..end])
}

/// Extracts the numeric value of `"key": <number>` on `line`, if any.
fn number_value(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\": ");
    let start = line.find(&pat)? + pat.len();
    let end = line[start..]
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .map_or(line.len(), |p| p + start);
    line[start..end].parse().ok()
}

fn check(content: &str) -> Result<usize, String> {
    // Top-level keys.
    for key in [
        "\"bench\": \"matcher\"",
        "\"mode\":",
        "\"batch_size\":",
        "\"results\": [",
    ] {
        if !content.contains(key) {
            return Err(format!("missing top-level key {key}"));
        }
    }
    let mode = string_value(content, "mode").ok_or("unreadable \"mode\"")?;
    if !matches!(mode, "full" | "smoke") {
        return Err(format!("mode must be full|smoke, got {mode:?}"));
    }

    // Result rows: one per line, every field present and sane.
    let mut seen: Vec<String> = Vec::new();
    for line in content.lines().filter(|l| l.contains("\"name\"")) {
        for field in RESULT_FIELDS {
            if !line.contains(field) {
                return Err(format!("result row missing {field}: {line}"));
            }
        }
        let name = string_value(line, "name").ok_or("unreadable result name")?;
        let qps = number_value(line, "queries_per_sec")
            .ok_or_else(|| format!("unreadable queries_per_sec for {name}"))?;
        if qps <= 0.0 {
            return Err(format!(
                "{name}: queries_per_sec must be positive, got {qps}"
            ));
        }
        if number_value(line, "ns_per_iter").is_none_or(|ns| ns <= 0.0) {
            return Err(format!("{name}: ns_per_iter must be positive"));
        }
        if seen.iter().any(|s| s == name) {
            return Err(format!("duplicate result name {name}"));
        }
        seen.push(name.to_string());
    }
    for required in REQUIRED_BENCHES {
        if !seen.iter().any(|s| s == required) {
            return Err(format!("missing benchmark {required}"));
        }
    }
    Ok(seen.len())
}

fn main() -> ExitCode {
    let path = std::env::var("BENCH_MATCHER_JSON").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_matcher.json").to_string()
    });
    let content = match std::fs::read_to_string(&path) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("bench_check: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match check(&content) {
        Ok(n) => {
            println!("bench_check: {path} ok ({n} results, all required keys present)");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("bench_check: {path}: SCHEMA REGRESSION: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn valid() -> String {
        let rows: Vec<String> = REQUIRED_BENCHES
            .iter()
            .map(|name| {
                format!(
                    "    {{\"name\": \"{name}\", \"ns_per_iter\": 100.0, \"iters\": 3, \"queries_per_sec\": 1000}},"
                )
            })
            .collect();
        format!(
            "{{\n  \"bench\": \"matcher\",\n  \"mode\": \"smoke\",\n  \"batch_size\": 256,\n  \"results\": [\n{}\n  ]\n}}\n",
            rows.join("\n")
        )
    }

    #[test]
    fn accepts_the_emitted_schema() {
        assert_eq!(check(&valid()), Ok(REQUIRED_BENCHES.len()));
    }

    #[test]
    fn rejects_missing_bench_and_bad_values() {
        let missing = valid().replace("exact_segment_dict50000", "exact_segment_dict999");
        assert!(check(&missing).unwrap_err().contains("missing benchmark"));
        let zero = valid().replace("\"queries_per_sec\": 1000", "\"queries_per_sec\": 0");
        assert!(check(&zero).unwrap_err().contains("positive"));
        let dropped = valid().replace("\"iters\": 3, ", "");
        assert!(check(&dropped).unwrap_err().contains("\"iters\""));
        assert!(check("{}").unwrap_err().contains("missing top-level"));
        let badmode = valid().replace("\"mode\": \"smoke\"", "\"mode\": \"partial\"");
        assert!(check(&badmode).unwrap_err().contains("mode"));
    }
}
