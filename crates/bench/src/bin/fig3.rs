//! Figure 3 reproduction: "ICR Precision and Coverage Increase for
//! IPC 2,4,6".
//!
//! D1 (movies), ICR threshold γ sweeping 0.9 → 0.01 for each IPC
//! threshold β ∈ {2, 4, 6}; the paper plots weighted precision
//! ("Syns W 2/4/6") against coverage increase.
//!
//! Paper shape to match: for each β, raising γ raises precision and
//! lowers coverage; β = 4 offers the interesting balance.
//!
//! Run: `cargo run -p websyn-bench --bin fig3 --release`

use websyn_bench::{movies_pipeline, print_table_header, sweep};

/// The γ grid of the paper's figure, left (0.9) to right (0.01).
const GAMMAS: [f64; 11] = [0.9, 0.8, 0.7, 0.6, 0.5, 0.4, 0.3, 0.2, 0.1, 0.05, 0.01];

fn main() {
    eprintln!("building D1 (movies) pipeline ...");
    let pipeline = movies_pipeline();

    let mut points = Vec::new();
    for beta in [2u32, 4, 6] {
        for gamma in GAMMAS {
            points.push((beta, gamma));
        }
    }
    let (_, results) = sweep(&pipeline, 10, &points);

    println!("\n## Figure 3 — ICR Precision and Coverage Increase for IPC 2,4,6 (D1 movies)\n");
    print_table_header(&[
        "beta (IPC)",
        "gamma (ICR)",
        "coverage increase",
        "weighted precision (Syns W)",
        "precision",
        "synonyms",
    ]);
    for p in &results {
        println!(
            "| {} | {:.2} | {:.0}% | {:.3} | {:.3} | {} |",
            p.beta,
            p.gamma,
            p.report.coverage_increase() * 100.0,
            p.report.weighted_precision,
            p.report.precision,
            p.report.n_synonyms,
        );
    }

    // Shape check per β series: weighted precision should not fall as γ
    // rises (allowing small-sample noise of 2 points).
    for beta in [2u32, 4, 6] {
        let series: Vec<_> = results.iter().filter(|p| p.beta == beta).collect();
        let strictest = series.first().expect("series populated"); // γ = 0.9
        let loosest = series.last().expect("series populated"); // γ = 0.01
        if strictest.report.weighted_precision + 1e-9 < loosest.report.weighted_precision {
            eprintln!(
                "WARN: β={beta}: weighted precision at γ=0.9 ({:.3}) below γ=0.01 ({:.3})",
                strictest.report.weighted_precision, loosest.report.weighted_precision
            );
        }
        if strictest.report.n_synonyms > loosest.report.n_synonyms {
            eprintln!("WARN: β={beta}: tightening γ should not add synonyms");
        }
    }
    eprintln!("done.");
}
