//! Lock-free observability primitives shared by the matcher core and
//! the serving layer.
//!
//! The design constraint is the serving hot path: recording a counter
//! increment or a latency sample must be **one relaxed atomic RMW** —
//! no locks, no allocation, no branching beyond a bit-width
//! computation. Reading is the rare path and may be as expensive as it
//! likes (snapshots iterate every bucket under `Relaxed` loads).
//!
//! The pieces:
//!
//! - [`Counter`] / [`Gauge`] — plain atomic scalars with `const`
//!   constructors, so process-wide metrics can live in `static`s.
//! - [`Histogram`] — a log-bucketed (power-of-two) latency histogram:
//!   value `v` lands in the bucket indexed by its bit width, so the 65
//!   buckets cover the full `u64` range with relative error bounded by
//!   2×. An exact running sum rides along, so means are exact even
//!   though individual samples are bucketed.
//! - [`HistogramSnapshot`] — a point-in-time copy of a histogram.
//!   Snapshots **merge by integer addition**, which makes worker →
//!   router fleet aggregation *exact*: merging snapshots is
//!   indistinguishable from one histogram having observed both
//!   streams (pinned by the merge property tests below).
//! - [`RingLog`] — a bounded mutex-guarded ring buffer for structured
//!   trace entries (slow queries). Recording takes a lock, which is
//!   fine *because recording is rare by construction*: callers gate on
//!   a latency threshold plus a 1-in-N sample before pushing.
//! - [`prometheus`] — helpers for the Prometheus text exposition
//!   format (`# TYPE` headers, labelled series, cumulative
//!   `_bucket`/`_sum`/`_count` histogram rendering).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Number of histogram buckets: one per possible `u64` bit width
/// (0..=64). Bucket 0 holds exactly the value 0; bucket `b ≥ 1` holds
/// the values in `[2^(b-1), 2^b)`.
pub const BUCKETS: usize = 65;

/// A monotonically increasing atomic counter, `const`-constructible so
/// it can live in a `static`. All operations are `Relaxed`: counters
/// are statistics, not synchronization.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A zeroed counter (usable in `static` initializers).
    pub const fn new() -> Self {
        Self(AtomicU64::new(0))
    }

    /// Adds one; returns the value *before* the increment, which makes
    /// 1-in-N sampling a one-liner: `c.incr() % n == 0`.
    #[inline]
    pub fn incr(&self) -> u64 {
        self.0.fetch_add(1, Ordering::Relaxed)
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins atomic gauge (an instantaneous quantity like
/// "entries in cache", as opposed to a [`Counter`]'s running total).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// A zeroed gauge (usable in `static` initializers).
    pub const fn new() -> Self {
        Self(AtomicU64::new(0))
    }

    /// Sets the gauge.
    #[inline]
    pub fn set(&self, value: u64) {
        self.0.store(value, Ordering::Relaxed);
    }

    /// The current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// The bucket index of `value`: its bit width. 0 → 0, 1 → 1,
/// `[2^i, 2^(i+1))` → `i+1`.
#[inline]
pub fn bucket_of(value: u64) -> usize {
    (u64::BITS - value.leading_zeros()) as usize
}

/// The largest value bucket `b` can hold: 0 for bucket 0, `2^b − 1`
/// otherwise (saturating at `u64::MAX` for the last bucket).
#[inline]
pub fn bucket_bound(bucket: usize) -> u64 {
    if bucket == 0 {
        0
    } else if bucket >= 64 {
        u64::MAX
    } else {
        (1u64 << bucket) - 1
    }
}

/// A lock-free log-bucketed histogram. [`Histogram::record`] is one
/// bit-width computation plus two relaxed `fetch_add`s; there is no
/// allocation and no lock anywhere on the write path.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    /// Exact sum of every recorded value — bucketing loses resolution
    /// per sample, but means stay exact.
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram (usable in `static` initializers).
    pub const fn new() -> Self {
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        Self {
            buckets: [ZERO; BUCKETS],
            sum: AtomicU64::new(0),
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// A point-in-time copy. Concurrent recorders may land between the
    /// bucket loads — each sample is still counted exactly once across
    /// successive snapshots, which is the guarantee aggregation needs.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; BUCKETS];
        for (out, bucket) in buckets.iter_mut().zip(&self.buckets) {
            *out = bucket.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            buckets,
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of a [`Histogram`], mergeable by integer
/// addition and queryable by exact rank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts, indexed by [`bucket_of`].
    pub buckets: [u64; BUCKETS],
    /// Exact sum of the recorded values.
    pub sum: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self::empty()
    }
}

impl HistogramSnapshot {
    /// A snapshot with no samples.
    pub const fn empty() -> Self {
        Self {
            buckets: [0; BUCKETS],
            sum: 0,
        }
    }

    /// Total number of recorded samples.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Exact mean of the recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        let count = self.count();
        if count == 0 {
            0.0
        } else {
            self.sum as f64 / count as f64
        }
    }

    /// Adds `other` into `self`. Addition of per-bucket counts and
    /// sums is commutative and associative, so fleet-wide merges are
    /// exact regardless of merge order.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
        self.sum += other.sum;
    }

    /// The value at quantile `p` (clamped to `[0, 1]`) by **exact
    /// rank**: the returned value is the upper bound of the bucket
    /// holding the sample of rank `⌈p·(n−1)⌉` — the same bucket the
    /// rank-selected element of the sorted sample vector falls in, so
    /// the rank error is zero and the value error is bounded by the
    /// bucket width (pinned against a sorted-vector oracle in the
    /// property tests). Returns 0 on an empty snapshot.
    pub fn percentile(&self, p: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let rank = (p.clamp(0.0, 1.0) * (count - 1) as f64).ceil() as u64;
        let mut cumulative = 0u64;
        for (bucket, &n) in self.buckets.iter().enumerate() {
            cumulative += n;
            if cumulative > rank {
                return bucket_bound(bucket);
            }
        }
        bucket_bound(BUCKETS - 1)
    }
}

/// A bounded ring buffer of structured trace entries. Pushing past
/// capacity drops the oldest entry. The interior mutex is fine because
/// writers are rare by construction — callers gate recording on a
/// latency threshold and a 1-in-N sample — and readers are rarer still
/// (a `/debug/slow` request).
#[derive(Debug)]
pub struct RingLog<T> {
    entries: Mutex<std::collections::VecDeque<T>>,
    capacity: usize,
    /// Total entries ever pushed (survives ring eviction).
    recorded: Counter,
}

impl<T: Clone> RingLog<T> {
    /// A ring holding at most `capacity` entries (clamped ≥ 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            entries: Mutex::new(std::collections::VecDeque::with_capacity(capacity)),
            capacity,
            recorded: Counter::new(),
        }
    }

    /// Appends an entry, evicting the oldest past capacity.
    pub fn push(&self, entry: T) {
        let mut entries = self.entries.lock().expect("ring log poisoned");
        if entries.len() >= self.capacity {
            entries.pop_front();
        }
        entries.push_back(entry);
        self.recorded.incr();
    }

    /// The retained entries, oldest first.
    pub fn entries(&self) -> Vec<T> {
        self.entries
            .lock()
            .expect("ring log poisoned")
            .iter()
            .cloned()
            .collect()
    }

    /// Total entries ever pushed, including those evicted since.
    pub fn recorded(&self) -> u64 {
        self.recorded.get()
    }

    /// The ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

/// Prometheus text exposition format helpers
/// (<https://prometheus.io/docs/instrumenting/exposition_formats/>).
/// All values websyn exposes are integers, which is what keeps
/// fleet-wide merges exact (integer sums commute with exposition).
pub mod prometheus {
    use super::{bucket_bound, HistogramSnapshot};
    use std::fmt::Write;

    /// Writes a `# TYPE` header. Emit once per metric name, before its
    /// series.
    pub fn write_type(out: &mut String, name: &str, kind: &str) {
        let _ = writeln!(out, "# TYPE {name} {kind}");
    }

    /// Writes one series line: `name{labels} value` (or `name value`
    /// with empty labels). `labels` is the comma-joined interior of
    /// the braces, e.g. `stage="parse",worker="0"`.
    pub fn write_series(out: &mut String, name: &str, labels: &str, value: u64) {
        if labels.is_empty() {
            let _ = writeln!(out, "{name} {value}");
        } else {
            let _ = writeln!(out, "{name}{{{labels}}} {value}");
        }
    }

    /// Renders a snapshot as a Prometheus histogram: cumulative
    /// `_bucket{le="..."}` series up to the highest non-empty bucket,
    /// the `+Inf` bucket, `_sum` and `_count`. `labels` (possibly
    /// empty) is spliced into every series alongside the `le` label.
    pub fn write_histogram(out: &mut String, name: &str, labels: &str, snap: &HistogramSnapshot) {
        let highest = snap
            .buckets
            .iter()
            .rposition(|&n| n > 0)
            .unwrap_or(0)
            .min(snap.buckets.len() - 2);
        let sep = if labels.is_empty() { "" } else { "," };
        let mut cumulative = 0u64;
        for (bucket, &n) in snap.buckets.iter().enumerate().take(highest + 1) {
            cumulative += n;
            let _ = writeln!(
                out,
                "{name}_bucket{{{labels}{sep}le=\"{}\"}} {cumulative}",
                bucket_bound(bucket)
            );
        }
        let _ = writeln!(
            out,
            "{name}_bucket{{{labels}{sep}le=\"+Inf\"}} {}",
            snap.count()
        );
        write_series(out, &format!("{name}_sum"), labels, snap.sum);
        write_series(out, &format!("{name}_count"), labels, snap.count());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::sync::Arc;

    #[test]
    fn bucket_of_is_the_bit_width() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), 64);
    }

    #[test]
    fn bucket_bounds_bracket_their_values() {
        for v in [0u64, 1, 2, 3, 7, 8, 1000, 123_456_789, u64::MAX] {
            let b = bucket_of(v);
            assert!(v <= bucket_bound(b), "{v} above its bucket bound");
            if b > 0 {
                assert!(v > bucket_bound(b - 1), "{v} below its bucket floor");
            }
        }
    }

    #[test]
    fn counter_incr_returns_previous_for_sampling() {
        let c = Counter::new();
        assert_eq!(c.incr(), 0);
        assert_eq!(c.incr(), 1);
        c.add(10);
        assert_eq!(c.get(), 12);
    }

    #[test]
    fn histogram_mean_is_exact_despite_bucketing() {
        let h = Histogram::new();
        for v in [3u64, 5, 900, 17] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 4);
        assert_eq!(s.sum, 925);
        assert!((s.mean() - 925.0 / 4.0).abs() < 1e-9);
    }

    #[test]
    fn empty_snapshot_is_all_zeros() {
        let s = HistogramSnapshot::empty();
        assert_eq!(s.count(), 0);
        assert_eq!(s.percentile(0.5), 0);
        assert_eq!(s.mean(), 0.0);
    }

    /// The multi-thread hammer: concurrent recorders must lose no
    /// samples and no sum.
    #[test]
    fn histogram_and_counter_survive_concurrent_hammering() {
        const THREADS: u64 = 8;
        const PER_THREAD: u64 = 10_000;
        let h = Arc::new(Histogram::new());
        let c = Arc::new(Counter::new());
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let h = Arc::clone(&h);
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for i in 0..PER_THREAD {
                        h.record(t * PER_THREAD + i);
                        c.incr();
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().expect("recorder thread");
        }
        let s = h.snapshot();
        assert_eq!(s.count(), THREADS * PER_THREAD);
        assert_eq!(c.get(), THREADS * PER_THREAD);
        // Sum of 0..THREADS*PER_THREAD.
        let n = THREADS * PER_THREAD;
        assert_eq!(s.sum, n * (n - 1) / 2);
    }

    #[test]
    fn ring_log_bounds_and_orders_entries() {
        let log = RingLog::new(3);
        for i in 0..5 {
            log.push(i);
        }
        assert_eq!(log.entries(), vec![2, 3, 4]);
        assert_eq!(log.recorded(), 5);
        assert_eq!(log.capacity(), 3);
    }

    #[test]
    fn prometheus_rendering_is_wellformed() {
        let mut out = String::new();
        prometheus::write_type(&mut out, "websyn_requests_total", "counter");
        prometheus::write_series(&mut out, "websyn_requests_total", "", 7);
        prometheus::write_series(&mut out, "websyn_rejects_total", "class=\"busy\"", 2);
        let h = Histogram::new();
        h.record(3);
        h.record(100);
        prometheus::write_histogram(
            &mut out,
            "websyn_stage_us",
            "stage=\"parse\"",
            &h.snapshot(),
        );
        assert!(out.contains("# TYPE websyn_requests_total counter"));
        assert!(out.contains("websyn_requests_total 7"));
        assert!(out.contains("websyn_rejects_total{class=\"busy\"} 2"));
        // Cumulative buckets: the le="3" bucket holds 1, the le="127"
        // bucket holds both samples, +Inf agrees with _count.
        assert!(out.contains("websyn_stage_us_bucket{stage=\"parse\",le=\"3\"} 1"));
        assert!(out.contains("websyn_stage_us_bucket{stage=\"parse\",le=\"127\"} 2"));
        assert!(out.contains("websyn_stage_us_bucket{stage=\"parse\",le=\"+Inf\"} 2"));
        assert!(out.contains("websyn_stage_us_sum{stage=\"parse\"} 103"));
        assert!(out.contains("websyn_stage_us_count{stage=\"parse\"} 2"));
        assert!(out.ends_with('\n'));
    }

    #[test]
    fn histogram_rendering_without_labels_stays_parseable() {
        let h = Histogram::new();
        h.record(0);
        let mut out = String::new();
        prometheus::write_histogram(&mut out, "m", "", &h.snapshot());
        assert!(out.contains("m_bucket{le=\"0\"} 1"));
        assert!(out.contains("m_sum 0"));
        assert!(out.contains("m_count 1"));
    }

    /// The sorted-vector oracle for percentiles: the histogram's
    /// exact-rank answer must be the bucket bound of the very element
    /// nearest-rank selection picks from the sorted samples.
    fn oracle_check(mut values: Vec<u64>, p: f64) {
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        values.sort_unstable();
        let rank = (p.clamp(0.0, 1.0) * (values.len() - 1) as f64).ceil() as usize;
        let oracle = values[rank];
        let got = h.snapshot().percentile(p);
        assert_eq!(
            got,
            bucket_bound(bucket_of(oracle)),
            "p={p} rank={rank} oracle={oracle} values={values:?}"
        );
        // Rank error is zero; value error is bounded by the bucket
        // width (the reported bound brackets the oracle value).
        assert!(got >= oracle);
        if bucket_of(oracle) > 0 {
            assert!(got / 2 <= oracle);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn percentiles_match_the_sorted_vector_oracle(
            values in collection::vec(0u64..1_000_000, 1..200),
            p_raw in 0u32..=100,
        ) {
            oracle_check(values, f64::from(p_raw) / 100.0);
        }

        /// merge(a, b) ≡ merge(b, a), and merging two snapshots is
        /// indistinguishable from one histogram having observed both
        /// streams (merge-then-snapshot ≡ snapshot-then-merge).
        #[test]
        fn merge_is_commutative_and_stream_equivalent(
            xs in collection::vec(0u64..1_000_000, 0..100),
            ys in collection::vec(0u64..1_000_000, 0..100),
        ) {
            let (hx, hy, hboth) = (Histogram::new(), Histogram::new(), Histogram::new());
            for &v in &xs {
                hx.record(v);
                hboth.record(v);
            }
            for &v in &ys {
                hy.record(v);
                hboth.record(v);
            }
            let (sx, sy) = (hx.snapshot(), hy.snapshot());
            let mut ab = sx;
            ab.merge(&sy);
            let mut ba = sy;
            ba.merge(&sx);
            prop_assert_eq!(ab, ba);
            prop_assert_eq!(ab, hboth.snapshot());
            // Associativity across a three-way split falls out of the
            // same integer sums: ((x+y)+x) == (x+(y+x)).
            let mut left = ab;
            left.merge(&sx);
            let mut right = sx;
            let mut yx = sy;
            yx.merge(&sx);
            right.merge(&yx);
            prop_assert_eq!(left, right);
        }
    }
}
