//! Ranking functions: BM25 (default) and TF-IDF (ablation comparator).

/// BM25 parameters. Defaults are the standard Robertson values with a
/// title boost applied at index time (title terms count `title_boost`
/// times toward term frequency and document length).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bm25Params {
    /// Term-frequency saturation.
    pub k1: f64,
    /// Length normalization strength.
    pub b: f64,
    /// Multiplier applied to title term frequencies at index time.
    pub title_boost: u32,
}

impl Default for Bm25Params {
    fn default() -> Self {
        Self {
            k1: 1.2,
            b: 0.75,
            title_boost: 3,
        }
    }
}

/// TF-IDF parameters (log-scaled tf, standard idf).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct TfIdfParams;

/// A pluggable document scorer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Scorer {
    /// Okapi BM25.
    Bm25(Bm25Params),
    /// Classic TF-IDF with cosine-free sum scoring.
    TfIdf(TfIdfParams),
}

impl Default for Scorer {
    fn default() -> Self {
        Scorer::Bm25(Bm25Params::default())
    }
}

impl Scorer {
    /// Scores one term occurrence in one document.
    ///
    /// `tf` — (boosted) term frequency in the document;
    /// `df` — number of documents containing the term;
    /// `n_docs` — corpus size;
    /// `dl` — (boosted) document length;
    /// `avg_dl` — mean document length.
    #[inline]
    pub fn term_score(&self, tf: u32, df: u32, n_docs: usize, dl: f64, avg_dl: f64) -> f64 {
        match self {
            Scorer::Bm25(p) => bm25_term(tf, df, n_docs, dl, avg_dl, *p),
            Scorer::TfIdf(_) => tfidf_term(tf, df, n_docs),
        }
    }

    /// The index-time title boost this scorer expects.
    pub fn title_boost(&self) -> u32 {
        match self {
            Scorer::Bm25(p) => p.title_boost,
            Scorer::TfIdf(_) => 3,
        }
    }
}

/// BM25 contribution of one term.
#[inline]
pub fn bm25_term(tf: u32, df: u32, n_docs: usize, dl: f64, avg_dl: f64, p: Bm25Params) -> f64 {
    if tf == 0 || df == 0 || n_docs == 0 {
        return 0.0;
    }
    let idf = idf_bm25(df, n_docs);
    let tf = tf as f64;
    let norm = if avg_dl > 0.0 {
        1.0 - p.b + p.b * dl / avg_dl
    } else {
        1.0
    };
    idf * tf * (p.k1 + 1.0) / (tf + p.k1 * norm)
}

/// TF-IDF contribution of one term: `(1 + ln tf) · ln(N / df)`.
#[inline]
pub fn tfidf_term(tf: u32, df: u32, n_docs: usize) -> f64 {
    if tf == 0 || df == 0 || n_docs == 0 {
        return 0.0;
    }
    let tf_part = 1.0 + (tf as f64).ln();
    let idf_part = ((n_docs as f64) / (df as f64)).ln().max(0.0);
    tf_part * idf_part
}

/// The BM25+-style non-negative idf: `ln(1 + (N - df + 0.5)/(df + 0.5))`.
#[inline]
pub fn idf_bm25(df: u32, n_docs: usize) -> f64 {
    let n = n_docs as f64;
    let df = df as f64;
    (1.0 + (n - df + 0.5) / (df + 0.5)).ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    const P: Bm25Params = Bm25Params {
        k1: 1.2,
        b: 0.75,
        title_boost: 3,
    };

    #[test]
    fn zero_cases_score_zero() {
        assert_eq!(bm25_term(0, 5, 100, 10.0, 10.0, P), 0.0);
        assert_eq!(bm25_term(3, 0, 100, 10.0, 10.0, P), 0.0);
        assert_eq!(bm25_term(3, 5, 0, 10.0, 10.0, P), 0.0);
        assert_eq!(tfidf_term(0, 5, 100), 0.0);
    }

    #[test]
    fn bm25_monotone_in_tf() {
        let mut prev = 0.0;
        for tf in 1..20 {
            let s = bm25_term(tf, 5, 1000, 20.0, 20.0, P);
            assert!(s > prev, "tf={tf}: {s} <= {prev}");
            prev = s;
        }
    }

    #[test]
    fn bm25_saturates() {
        // The marginal gain of additional occurrences shrinks.
        let s1 = bm25_term(1, 5, 1000, 20.0, 20.0, P);
        let s2 = bm25_term(2, 5, 1000, 20.0, 20.0, P);
        let s10 = bm25_term(10, 5, 1000, 20.0, 20.0, P);
        let s11 = bm25_term(11, 5, 1000, 20.0, 20.0, P);
        assert!(s2 - s1 > s11 - s10);
    }

    #[test]
    fn rare_terms_score_higher() {
        let rare = bm25_term(2, 2, 1000, 20.0, 20.0, P);
        let common = bm25_term(2, 500, 1000, 20.0, 20.0, P);
        assert!(rare > common);
        assert!(tfidf_term(2, 2, 1000) > tfidf_term(2, 500, 1000));
    }

    #[test]
    fn longer_docs_penalized() {
        let short = bm25_term(2, 5, 1000, 10.0, 20.0, P);
        let long = bm25_term(2, 5, 1000, 80.0, 20.0, P);
        assert!(short > long);
    }

    #[test]
    fn idf_nonnegative_even_for_ubiquitous_terms() {
        assert!(idf_bm25(1000, 1000) >= 0.0);
        assert!(idf_bm25(999, 1000) >= 0.0);
        assert!(tfidf_term(3, 1000, 1000) >= 0.0);
    }

    #[test]
    fn scorer_dispatch() {
        let b = Scorer::default();
        assert!(matches!(b, Scorer::Bm25(_)));
        assert!(b.term_score(2, 5, 100, 20.0, 20.0) > 0.0);
        let t = Scorer::TfIdf(TfIdfParams);
        assert!(t.term_score(2, 5, 100, 20.0, 20.0) > 0.0);
        assert_eq!(b.title_boost(), 3);
    }

    #[test]
    fn avg_dl_zero_is_safe() {
        let s = bm25_term(1, 1, 10, 0.0, 0.0, P);
        assert!(s.is_finite() && s > 0.0);
    }
}
