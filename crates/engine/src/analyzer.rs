//! The analysis chain shared by indexing and querying.
//!
//! Both sides must agree exactly on how text becomes terms, or queries
//! will not match documents; owning the chain in one type makes the
//! agreement structural.

use websyn_text::{normalize, tokenize};

/// Normalize → tokenize analysis chain.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Analyzer;

impl Analyzer {
    /// Creates the standard analyzer.
    pub fn new() -> Self {
        Self
    }

    /// Analyzes raw text into index terms.
    pub fn analyze(&self, text: &str) -> Vec<String> {
        let normalized = normalize(text);
        tokenize(&normalized)
            .into_iter()
            .map(|t| t.text.to_string())
            .collect()
    }

    /// Analyzes text that is already normalized (fast path used by the
    /// synthetic page generator, whose output is canonical by
    /// construction).
    pub fn analyze_normalized<'a>(&self, text: &'a str) -> Vec<&'a str> {
        debug_assert_eq!(
            normalize(text),
            text,
            "analyze_normalized called with non-normalized text"
        );
        text.split(' ').filter(|t| !t.is_empty()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_text_is_normalized_and_tokenized() {
        let a = Analyzer::new();
        assert_eq!(
            a.analyze("Madagascar: Escape 2 Africa!"),
            vec!["madagascar", "escape", "2", "africa"]
        );
    }

    #[test]
    fn query_and_doc_agree() {
        let a = Analyzer::new();
        assert_eq!(a.analyze("Indy 4"), a.analyze("  INDY-4 "));
    }

    #[test]
    fn normalized_fast_path_matches_slow_path() {
        let a = Analyzer::new();
        let text = "canon eos 350d review";
        let fast: Vec<String> = a
            .analyze_normalized(text)
            .into_iter()
            .map(String::from)
            .collect();
        assert_eq!(fast, a.analyze(text));
    }

    #[test]
    fn empty_input() {
        let a = Analyzer::new();
        assert!(a.analyze("").is_empty());
        assert!(a.analyze_normalized("").is_empty());
    }
}
