//! Top-k retrieval.
//!
//! Term-at-a-time scoring over the inverted index with deterministic
//! tie-breaking (lower page id first), optional spelling correction of
//! out-of-vocabulary query terms, and 1-based ranks as in the paper's
//! Search Data definition ("rank 1 being the most relevant").

use crate::index::InvertedIndex;
use crate::score::Scorer;
use crate::spell::SpellCorrector;
use websyn_common::{FxHashMap, PageId, TopK};

/// One search result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SearchHit {
    /// The retrieved page.
    pub page: PageId,
    /// Retrieval score (scorer-dependent scale).
    pub score: f64,
    /// 1-based rank.
    pub rank: u32,
}

/// A search engine: index + scorer + optional spelling correction.
#[derive(Debug, Clone)]
pub struct SearchEngine {
    index: InvertedIndex,
    scorer: Scorer,
    speller: Option<SpellCorrector>,
}

impl SearchEngine {
    /// Builds an engine over `(id, title, body)` documents with the
    /// default scorer (BM25) and spelling correction enabled.
    pub fn from_docs<'a, I>(docs: I) -> Self
    where
        I: IntoIterator<Item = (PageId, &'a str, &'a str)>,
    {
        Self::with_scorer(docs, Scorer::default())
    }

    /// Builds an engine with an explicit scorer.
    pub fn with_scorer<'a, I>(docs: I, scorer: Scorer) -> Self
    where
        I: IntoIterator<Item = (PageId, &'a str, &'a str)>,
    {
        let index = InvertedIndex::build(docs, scorer.title_boost());
        let speller = Some(SpellCorrector::build(
            index.vocab_iter().map(|(_, term, df)| (term, df)),
        ));
        Self {
            index,
            scorer,
            speller,
        }
    }

    /// Disables spelling correction (ablation switch).
    pub fn without_spelling(mut self) -> Self {
        self.speller = None;
        self
    }

    /// The underlying index.
    pub fn index(&self) -> &InvertedIndex {
        &self.index
    }

    /// The query terms after analysis and spelling correction. Exposed
    /// so the click substrate can reuse the exact retrieval-side view
    /// of a query.
    pub fn effective_terms(&self, query: &str) -> Vec<String> {
        let mut terms = self.index.analyzer().analyze(query);
        if let Some(speller) = &self.speller {
            for term in &mut terms {
                if self.index.term_id(term).is_none() {
                    if let Some(fixed) = speller.correct(term) {
                        *term = fixed;
                    }
                }
            }
        }
        terms
    }

    /// Retrieves the top-`k` pages for `query`.
    pub fn search(&self, query: &str, k: usize) -> Vec<SearchHit> {
        let terms = self.effective_terms(query);
        if terms.is_empty() || k == 0 {
            return Vec::new();
        }

        // Term-at-a-time accumulation.
        let n_docs = self.index.doc_count();
        let avg_dl = self.index.avg_doc_len();
        let mut acc: FxHashMap<PageId, f64> = FxHashMap::default();
        for term in &terms {
            let Some(tid) = self.index.term_id(term) else {
                continue;
            };
            let df = self.index.doc_freq(tid);
            for posting in self.index.postings(tid) {
                let dl = self.index.doc_len(posting.page);
                let s = self.scorer.term_score(posting.tf, df, n_docs, dl, avg_dl);
                *acc.entry(posting.page).or_insert(0.0) += s;
            }
        }

        let mut topk = TopK::new(k);
        for (page, score) in acc {
            if score > 0.0 {
                // TopK breaks score ties on the smaller key; PageId orders
                // ascending, giving "older" pages stable precedence.
                topk.push(score, page);
            }
        }
        topk.into_sorted_vec()
            .into_iter()
            .enumerate()
            .map(|(i, s)| SearchHit {
                page: s.item,
                score: s.score,
                rank: (i + 1) as u32,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> SearchEngine {
        let docs = vec![
            (
                PageId::new(0),
                "indiana jones kingdom crystal skull",
                "indiana jones kingdom crystal skull official studio site",
            ),
            (
                PageId::new(1),
                "indiana jones kingdom crystal skull",
                "indiana jones kingdom crystal skull indy buy dvd shop",
            ),
            (
                PageId::new(2),
                "madagascar escape africa",
                "madagascar escape africa dvd shop buy",
            ),
            (
                PageId::new(3),
                "harrison ford",
                "harrison ford biography indiana jones madagascar",
            ),
            (PageId::new(4), "knitting recipes", "yarn patterns wool"),
        ];
        SearchEngine::from_docs(docs)
    }

    #[test]
    fn canonical_query_ranks_entity_pages_first() {
        let e = engine();
        let hits = e.search("indiana jones kingdom crystal skull", 10);
        assert!(hits.len() >= 3);
        let top2: Vec<u32> = hits[..2].iter().map(|h| h.page.raw()).collect();
        assert!(top2.contains(&0) && top2.contains(&1), "top2 {top2:?}");
        // The actor page matches fewer terms → ranks lower.
        let actor_rank = hits.iter().find(|h| h.page.raw() == 3).map(|h| h.rank);
        assert!(actor_rank.is_none_or(|r| r > 2));
    }

    #[test]
    fn ranks_are_one_based_and_dense() {
        let e = engine();
        let hits = e.search("indiana jones", 10);
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(h.rank, (i + 1) as u32);
        }
        assert_eq!(hits[0].rank, 1);
    }

    #[test]
    fn k_limits_results() {
        let e = engine();
        let hits = e.search("indiana jones", 1);
        assert_eq!(hits.len(), 1);
        assert!(e.search("indiana jones", 0).is_empty());
    }

    #[test]
    fn scores_non_increasing() {
        let e = engine();
        let hits = e.search("indiana jones skull", 10);
        for w in hits.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }

    #[test]
    fn no_match_returns_empty() {
        let e = engine();
        assert!(e.search("zzzz qqqq", 10).is_empty());
        assert!(e.search("", 10).is_empty());
        assert!(e.search("!!!", 10).is_empty());
    }

    #[test]
    fn misspelled_query_is_corrected() {
        let e = engine();
        let clean = e.search("indiana jones", 10);
        let typo = e.search("indianna jones", 10);
        assert_eq!(
            clean.iter().map(|h| h.page).collect::<Vec<_>>(),
            typo.iter().map(|h| h.page).collect::<Vec<_>>(),
            "correction should recover the clean ranking"
        );
        // Without spelling correction the typo term contributes nothing.
        let e2 = engine().without_spelling();
        let typo2 = e2.search("indianna jones", 10);
        assert!(typo2.len() <= typo.len());
        assert_eq!(e2.effective_terms("indianna"), vec!["indianna".to_string()]);
    }

    #[test]
    fn effective_terms_reports_corrections() {
        let e = engine();
        assert_eq!(
            e.effective_terms("indianna jnoes"),
            vec!["indiana".to_string(), "jones".to_string()]
        );
    }

    #[test]
    fn deterministic_ranking_under_ties() {
        // Two identical documents must rank by page id.
        let docs = vec![
            (PageId::new(0), "same text", "same text body"),
            (PageId::new(1), "same text", "same text body"),
        ];
        let e = SearchEngine::from_docs(docs);
        let hits = e.search("same text", 10);
        assert_eq!(hits[0].page.raw(), 0);
        assert_eq!(hits[1].page.raw(), 1);
    }

    #[test]
    fn raw_queries_are_normalized() {
        let e = engine();
        let a = e.search("Indiana Jones!", 5);
        let b = e.search("indiana jones", 5);
        assert_eq!(a, b);
    }
}
