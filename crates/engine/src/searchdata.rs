//! Search Data `A` (paper Section II-B).
//!
//! `A` is a set of tuples `a = ⟨q, p, r⟩`: the relevance rank `r` of
//! page `p` for query `q`, "derived by issuing each u ∈ U as a query to
//! the Bing Search API and keeping the top-k results". Here the engine
//! plays Bing.

use crate::search::SearchEngine;
use websyn_common::PageId;

/// One `⟨q, p, r⟩` tuple. The query is stored as an index into the
/// issuing string set `U` to keep the table compact.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SearchTuple {
    /// Index of the issuing string in `U`.
    pub query: u32,
    /// Retrieved page.
    pub page: PageId,
    /// 1-based relevance rank (rank 1 = most relevant).
    pub rank: u32,
}

/// The materialized Search Data for a string set `U`.
#[derive(Debug, Clone, Default)]
pub struct SearchData {
    /// The issuing strings, in index order.
    pub queries: Vec<String>,
    /// All tuples, grouped by query in ascending rank order.
    pub tuples: Vec<SearchTuple>,
    /// The `k` used for retrieval.
    pub top_k: usize,
}

impl SearchData {
    /// Issues every string in `u_set` against the engine, keeping the
    /// top `k` results each (Eq. 1's `G_A` becomes a rank filter over
    /// this table).
    pub fn collect<S: AsRef<str>>(engine: &SearchEngine, u_set: &[S], k: usize) -> Self {
        let mut tuples = Vec::with_capacity(u_set.len() * k);
        let mut queries = Vec::with_capacity(u_set.len());
        for (qi, u) in u_set.iter().enumerate() {
            let u = u.as_ref();
            queries.push(u.to_string());
            for hit in engine.search(u, k) {
                tuples.push(SearchTuple {
                    query: qi as u32,
                    page: hit.page,
                    rank: hit.rank,
                });
            }
        }
        Self {
            queries,
            tuples,
            top_k: k,
        }
    }

    /// The pages retrieved for query index `qi` with rank ≤ `k`
    /// (Eq. 1: `G_A(u, P) = {a.p | a ∈ A, a.q = u ∧ a.r ≤ k}`).
    pub fn pages_for(&self, qi: u32, k: usize) -> impl Iterator<Item = PageId> + '_ {
        self.tuples
            .iter()
            .filter(move |t| t.query == qi && (t.rank as usize) <= k)
            .map(|t| t.page)
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> SearchEngine {
        let docs = vec![
            (PageId::new(0), "alpha beta", "alpha beta gamma"),
            (PageId::new(1), "alpha", "alpha delta"),
            (PageId::new(2), "epsilon", "epsilon zeta"),
        ];
        SearchEngine::from_docs(docs)
    }

    #[test]
    fn collect_materializes_topk() {
        let e = engine();
        let data = SearchData::collect(&e, &["alpha beta", "epsilon"], 2);
        assert_eq!(data.queries.len(), 2);
        assert_eq!(data.top_k, 2);
        // Query 0 matches docs 0 and 1; query 1 matches doc 2 only.
        let q0: Vec<u32> = data.pages_for(0, 2).map(|p| p.raw()).collect();
        assert_eq!(q0.len(), 2);
        assert_eq!(q0[0], 0, "doc 0 matches both terms, ranks first");
        let q1: Vec<u32> = data.pages_for(1, 2).map(|p| p.raw()).collect();
        assert_eq!(q1, vec![2]);
    }

    #[test]
    fn rank_filter_tightens() {
        let e = engine();
        let data = SearchData::collect(&e, &["alpha"], 10);
        let all: Vec<_> = data.pages_for(0, 10).collect();
        let top1: Vec<_> = data.pages_for(0, 1).collect();
        assert!(top1.len() <= all.len());
        assert_eq!(top1.len(), 1);
    }

    #[test]
    fn empty_u_set() {
        let e = engine();
        let data = SearchData::collect::<&str>(&e, &[], 5);
        assert!(data.is_empty());
        assert_eq!(data.len(), 0);
    }

    #[test]
    fn unmatched_query_contributes_no_tuples() {
        let e = engine();
        let data = SearchData::collect(&e, &["zzzz"], 5);
        assert!(data.is_empty());
        assert_eq!(data.queries.len(), 1, "the string is still recorded in U");
    }
}
