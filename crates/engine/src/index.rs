//! The inverted index.
//!
//! Documents are the synthetic Web pages; the index stores one postings
//! list per term with title-boosted term frequencies, document lengths
//! for BM25 normalization, and document frequencies for idf.

use crate::analyzer::Analyzer;
use websyn_common::{FxHashMap, PageId, StringInterner, TermId};

/// One posting: a document and the (boosted) term frequency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Posting {
    /// The document.
    pub page: PageId,
    /// Title-boosted term frequency.
    pub tf: u32,
}

/// An immutable inverted index over a dense page id space.
#[derive(Debug, Clone)]
pub struct InvertedIndex {
    vocab: StringInterner<TermId>,
    /// Postings per term, sorted by page id (insertion order is dense).
    postings: Vec<Vec<Posting>>,
    /// Boosted document length per page.
    doc_len: Vec<f64>,
    avg_dl: f64,
    analyzer: Analyzer,
}

impl InvertedIndex {
    /// Builds the index from `(id, title, body)` documents.
    ///
    /// Title terms count `title_boost` times (frequency and length),
    /// the standard cheap field boost.
    ///
    /// # Panics
    /// Panics if page ids are not dense (id `i` at position `i`) —
    /// the synthetic page universe guarantees density, and density is
    /// what lets every per-document table be a flat `Vec`.
    pub fn build<'a, I>(docs: I, title_boost: u32) -> Self
    where
        I: IntoIterator<Item = (PageId, &'a str, &'a str)>,
    {
        let analyzer = Analyzer::new();
        let mut vocab: StringInterner<TermId> = StringInterner::new();
        let mut postings: Vec<Vec<Posting>> = Vec::new();
        let mut doc_len: Vec<f64> = Vec::new();
        let mut tf_scratch: FxHashMap<TermId, u32> = FxHashMap::default();

        for (page, title, body) in docs {
            assert_eq!(
                page.as_usize(),
                doc_len.len(),
                "page ids must be dense and in order"
            );
            tf_scratch.clear();
            let mut len = 0u64;
            for term in analyzer.analyze(title) {
                let t = vocab.intern(&term);
                *tf_scratch.entry(t).or_insert(0) += title_boost;
                len += u64::from(title_boost);
            }
            for term in analyzer.analyze(body) {
                let t = vocab.intern(&term);
                *tf_scratch.entry(t).or_insert(0) += 1;
                len += 1;
            }
            doc_len.push(len as f64);
            if postings.len() < vocab.len() {
                postings.resize_with(vocab.len(), Vec::new);
            }
            // Deterministic postings: sort the scratch map by term id.
            let mut entries: Vec<(TermId, u32)> =
                tf_scratch.iter().map(|(&t, &tf)| (t, tf)).collect();
            entries.sort_unstable_by_key(|&(t, _)| t);
            for (t, tf) in entries {
                postings[t.as_usize()].push(Posting { page, tf });
            }
        }

        let avg_dl = if doc_len.is_empty() {
            0.0
        } else {
            doc_len.iter().sum::<f64>() / doc_len.len() as f64
        };

        Self {
            vocab,
            postings,
            doc_len,
            avg_dl,
            analyzer,
        }
    }

    /// The analyzer the index was built with.
    pub fn analyzer(&self) -> &Analyzer {
        &self.analyzer
    }

    /// Number of indexed documents.
    pub fn doc_count(&self) -> usize {
        self.doc_len.len()
    }

    /// Vocabulary size.
    pub fn vocab_size(&self) -> usize {
        self.vocab.len()
    }

    /// Mean boosted document length.
    pub fn avg_doc_len(&self) -> f64 {
        self.avg_dl
    }

    /// Boosted length of one document.
    pub fn doc_len(&self, page: PageId) -> f64 {
        self.doc_len[page.as_usize()]
    }

    /// The term id of an exact vocabulary entry.
    pub fn term_id(&self, term: &str) -> Option<TermId> {
        self.vocab.get(term)
    }

    /// The string of a term id.
    pub fn term_str(&self, id: TermId) -> &str {
        self.vocab.resolve(id)
    }

    /// Postings list of a term (empty slice if unknown).
    pub fn postings(&self, term: TermId) -> &[Posting] {
        self.postings
            .get(term.as_usize())
            .map_or(&[], |v| v.as_slice())
    }

    /// Document frequency of a term.
    pub fn doc_freq(&self, term: TermId) -> u32 {
        self.postings(term).len() as u32
    }

    /// Iterates the vocabulary as `(TermId, &str, df)`.
    pub fn vocab_iter(&self) -> impl Iterator<Item = (TermId, &str, u32)> + '_ {
        self.vocab
            .iter()
            .map(move |(id, s)| (id, s, self.doc_freq(id)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_index() -> InvertedIndex {
        let docs = vec![
            (
                PageId::new(0),
                "indiana jones",
                "indiana jones kingdom crystal skull official",
            ),
            (
                PageId::new(1),
                "madagascar",
                "madagascar escape africa dvd buy",
            ),
            (PageId::new(2), "indiana jones fan", "indy fan page indiana"),
        ];
        InvertedIndex::build(docs, 2)
    }

    #[test]
    fn doc_count_and_vocab() {
        let idx = tiny_index();
        assert_eq!(idx.doc_count(), 3);
        assert!(idx.vocab_size() > 5);
        assert!(idx.term_id("indiana").is_some());
        assert!(idx.term_id("INDIANA").is_none(), "vocab stores normalized");
        assert!(idx.term_id("zzz").is_none());
    }

    #[test]
    fn postings_track_documents() {
        let idx = tiny_index();
        let t = idx.term_id("indiana").unwrap();
        let pages: Vec<u32> = idx.postings(t).iter().map(|p| p.page.raw()).collect();
        assert_eq!(pages, vec![0, 2]);
        assert_eq!(idx.doc_freq(t), 2);
    }

    #[test]
    fn title_terms_are_boosted() {
        let idx = tiny_index();
        let t = idx.term_id("indiana").unwrap();
        // Doc 0: "indiana" once in title (boost 2) + once in body = 3.
        let p0 = idx.postings(t).iter().find(|p| p.page.raw() == 0).unwrap();
        assert_eq!(p0.tf, 3);
        // Doc 2: once in title (2) + once in body (1) = 3.
        let p2 = idx.postings(t).iter().find(|p| p.page.raw() == 2).unwrap();
        assert_eq!(p2.tf, 3);
    }

    #[test]
    fn doc_lengths_boosted_and_averaged() {
        let idx = tiny_index();
        // Doc 1: title 1 term × boost 2 + body 5 terms = 7.
        assert_eq!(idx.doc_len(PageId::new(1)), 7.0);
        assert!(idx.avg_doc_len() > 0.0);
    }

    #[test]
    fn empty_corpus() {
        let idx = InvertedIndex::build(std::iter::empty(), 2);
        assert_eq!(idx.doc_count(), 0);
        assert_eq!(idx.avg_doc_len(), 0.0);
        assert_eq!(idx.vocab_size(), 0);
    }

    #[test]
    #[should_panic(expected = "dense")]
    fn non_dense_ids_panic() {
        let docs = vec![(PageId::new(5), "a", "b")];
        let _ = InvertedIndex::build(docs, 1);
    }

    #[test]
    fn postings_sorted_by_page() {
        let idx = tiny_index();
        for (t, _, _) in idx.vocab_iter() {
            let pages: Vec<u32> = idx.postings(t).iter().map(|p| p.page.raw()).collect();
            let mut sorted = pages.clone();
            sorted.sort_unstable();
            assert_eq!(pages, sorted);
        }
    }

    #[test]
    fn raw_text_is_analyzed() {
        let docs = vec![(
            PageId::new(0),
            "Spider-Man: Homecoming!",
            "WATCH Spider-Man",
        )];
        let idx = InvertedIndex::build(docs, 2);
        assert!(idx.term_id("spider").is_some());
        assert!(idx.term_id("homecoming").is_some());
    }
}
