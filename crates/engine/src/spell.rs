//! Vocabulary-driven spelling correction.
//!
//! Production engines alter misspelled queries before retrieval; without
//! this, the synthetic typo channel would make misspelled queries
//! unmatchable and the click graph would lose exactly the edges the
//! paper's method mines. The corrector maps an out-of-vocabulary query
//! term to the most frequent vocabulary term within Damerau–Levenshtein
//! distance 1 (distance 2 for long terms).
//!
//! The corrector resolves through the same two-stage pipeline as the
//! entity matcher's fuzzy dictionary: a
//! [`websyn_text::CandidateSource`] (the character n-gram signature
//! index) proposes candidate terms, and each proposal is verified with
//! the banded `damerau_levenshtein_within` kernel — no unbounded
//! distance computations, and no candidate scan beyond what the
//! length/count filters admit. The PR-2 blocking scheme's scope is
//! preserved exactly: a candidate with a different first character is
//! only reachable at distance 1 and equal length (a first-character
//! typo), while same-first-character candidates get the full
//! length-scaled budget.

use websyn_text::{damerau_levenshtein_within, CandidateSource, NgramIndex};

/// Gram size of the candidate index. Bigrams keep short terms
/// recallable — the vocabulary is single analyzer terms, mostly 3–12
/// chars.
const GRAM_SIZE: usize = 2;

/// A spelling corrector built from an index vocabulary.
#[derive(Debug, Clone)]
pub struct SpellCorrector {
    /// `(term, document_frequency)` sorted by term, so candidate ids
    /// are lexicographic and tie-breaking is deterministic.
    terms: Vec<(Box<str>, u32)>,
    /// N-gram signature index over `terms`, in id order.
    index: NgramIndex,
    /// Ids of terms of ≤ 3 chars, scanned directly for 1–2 char
    /// queries: strings that short can share zero padded bigrams with
    /// a one-edit neighbour ("ab" / "ba"), so signature generation
    /// alone would lose corrections the PR-2 bucket scan found.
    short_ids: Vec<u32>,
}

impl SpellCorrector {
    /// Builds the corrector from `(term, document_frequency)` pairs.
    pub fn build<'a, I>(vocab: I) -> Self
    where
        I: IntoIterator<Item = (&'a str, u32)>,
    {
        let mut terms: Vec<(Box<str>, u32)> = vocab
            .into_iter()
            .filter(|(term, _)| !term.is_empty())
            .map(|(term, df)| (Box::from(term), df))
            .collect();
        terms.sort_unstable();
        // Verification is Damerau/OSA, so generation must survive
        // transposition-only typos ("jnoes") — widen the count filter.
        let index = NgramIndex::build(terms.iter().map(|(t, _)| t.as_ref()), GRAM_SIZE)
            .with_transpositions();
        let short_ids = (0..terms.len() as u32)
            .filter(|&id| index.surface_len(id) <= 3)
            .collect();
        Self {
            terms,
            index,
            short_ids,
        }
    }

    /// Attempts to correct a single out-of-vocabulary term. Returns the
    /// chosen in-vocabulary term, or `None` if nothing is close enough.
    /// Ties at equal distance go to the higher document frequency, then
    /// to the lexicographically smaller term.
    ///
    /// The caller is expected to try correction only for terms that are
    /// *not* already in the vocabulary.
    pub fn correct(&self, term: &str) -> Option<String> {
        if term.is_empty() {
            return None;
        }
        let n = term.chars().count();
        let max_dist = if n >= 6 { 2 } else { 1 };
        let first = term.as_bytes()[0];

        thread_local! {
            static PROPOSALS: std::cell::RefCell<Vec<u32>> = const { std::cell::RefCell::new(Vec::new()) };
        }
        PROPOSALS.with_borrow_mut(|proposals| {
            proposals.clear();
            self.index.propose(term, max_dist, proposals);
            if n <= 2 {
                // Too short for the signature filters; scan the (few)
                // short vocabulary terms directly. Duplicate proposals
                // are harmless — selection is idempotent.
                proposals.extend_from_slice(&self.short_ids);
            }
            let mut best: Option<(&str, u32, usize)> = None; // (term, df, dist)
            for &id in proposals.iter() {
                let (cand, df) = &self.terms[id as usize];
                // First-character typos are only believed at one edit
                // and equal length; everything else gets the full
                // budget.
                let allowed = if cand.as_bytes()[0] == first {
                    max_dist
                } else if self.index.surface_len(id) == n {
                    1
                } else {
                    continue;
                };
                let Some(d) = damerau_levenshtein_within(term, cand, allowed) else {
                    continue;
                };
                if d == 0 {
                    // Exact match means the caller misused the API;
                    // refuse to echo.
                    continue;
                }
                let better = match &best {
                    None => true,
                    Some((bt, bdf, bd)) => {
                        d < *bd
                            || (d == *bd && (*df > *bdf || (*df == *bdf && cand.as_ref() < *bt)))
                    }
                };
                if better {
                    best = Some((cand, *df, d));
                }
            }
            best.map(|(t, _, _)| t.to_string())
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corrector() -> SpellCorrector {
        SpellCorrector::build(vec![
            ("indiana", 50),
            ("jones", 40),
            ("madagascar", 30),
            ("kingdom", 20),
            ("skull", 10),
            ("india", 5),
            ("escape", 8),
        ])
    }

    #[test]
    fn corrects_single_edit() {
        let c = corrector();
        assert_eq!(c.correct("indianna").as_deref(), Some("indiana"));
        assert_eq!(c.correct("jnoes").as_deref(), Some("jones")); // transposition
        assert_eq!(c.correct("skulll").as_deref(), Some("skull"));
    }

    #[test]
    fn corrects_first_character_typo() {
        let c = corrector();
        assert_eq!(c.correct("mones").as_deref(), Some("jones"));
    }

    #[test]
    fn two_char_terms_with_no_shared_grams_still_correct() {
        // "ab" and "ba" share zero padded bigrams, so signature
        // generation alone can't propose the swap; the short-term scan
        // keeps the PR-2 bucket behaviour (equal length, distance 1).
        let c = SpellCorrector::build(vec![("ba", 9), ("zz", 1)]);
        assert_eq!(c.correct("ab").as_deref(), Some("ba"));
        // Single-char substitution likewise.
        let c2 = SpellCorrector::build(vec![("a", 3)]);
        assert_eq!(c2.correct("b").as_deref(), Some("a"));
        // Still bounded: nothing within the blocking scope stays None.
        assert_eq!(c.correct("q"), None);
    }

    #[test]
    fn first_character_typo_requires_equal_length() {
        // "ones" is one deletion from "jones", but a different first
        // character at unequal length is outside the blocking scope —
        // mirroring the PR-2 bucket scheme exactly.
        let c = corrector();
        assert_eq!(c.correct("ones"), None);
    }

    #[test]
    fn long_terms_allow_distance_two() {
        let c = corrector();
        assert_eq!(c.correct("madagascat").as_deref(), Some("madagascar"));
        assert_eq!(c.correct("madagascta").as_deref(), Some("madagascar"));
    }

    #[test]
    fn hopeless_terms_stay_uncorrected() {
        let c = corrector();
        assert_eq!(c.correct("zzzzzz"), None);
        assert_eq!(c.correct("x"), None);
        assert_eq!(c.correct(""), None);
    }

    #[test]
    fn prefers_closer_then_more_frequent() {
        // "indi" is d1 from "india" and d3 from "indiana": picks india.
        let c = corrector();
        assert_eq!(c.correct("indi").as_deref(), Some("india"));
        // Tie at equal distance resolved by higher df.
        let c2 = SpellCorrector::build(vec![("cat", 100), ("car", 1)]);
        assert_eq!(c2.correct("caz").as_deref(), Some("cat"));
        // Full tie (distance and df) resolved lexicographically.
        let c3 = SpellCorrector::build(vec![("car", 7), ("cat", 7)]);
        assert_eq!(c3.correct("caz").as_deref(), Some("car"));
    }

    #[test]
    fn deterministic() {
        let c = corrector();
        for _ in 0..8 {
            assert_eq!(c.correct("indianna").as_deref(), Some("indiana"));
        }
    }

    #[test]
    fn exact_match_is_not_a_correction() {
        // d == 0 is skipped: correct() is for OOV terms; an exact match
        // would mean the caller misused the API, so we refuse to echo.
        let c = corrector();
        assert_ne!(c.correct("indiana").as_deref(), Some("indiana"));
    }
}
