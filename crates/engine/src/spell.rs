//! Vocabulary-driven spelling correction.
//!
//! Production engines alter misspelled queries before retrieval; without
//! this, the synthetic typo channel would make misspelled queries
//! unmatchable and the click graph would lose exactly the edges the
//! paper's method mines. The corrector maps an out-of-vocabulary query
//! term to the most frequent vocabulary term within Damerau–Levenshtein
//! distance 1 (distance 2 for long terms), using a first-character +
//! length blocking scheme so correction stays fast.

use websyn_common::FxHashMap;
use websyn_text::damerau_levenshtein;

/// A spelling corrector built from an index vocabulary.
#[derive(Debug, Clone)]
pub struct SpellCorrector {
    /// Blocking buckets: (first byte, length) → candidate terms with
    /// their document frequencies.
    buckets: FxHashMap<(u8, usize), Vec<(String, u32)>>,
}

impl SpellCorrector {
    /// Builds the corrector from `(term, document_frequency)` pairs.
    pub fn build<'a, I>(vocab: I) -> Self
    where
        I: IntoIterator<Item = (&'a str, u32)>,
    {
        let mut buckets: FxHashMap<(u8, usize), Vec<(String, u32)>> = FxHashMap::default();
        for (term, df) in vocab {
            if term.is_empty() {
                continue;
            }
            let key = (term.as_bytes()[0], term.chars().count());
            buckets.entry(key).or_default().push((term.to_string(), df));
        }
        // Deterministic candidate order inside each bucket: by df desc,
        // then lexicographic.
        for v in buckets.values_mut() {
            v.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        }
        Self { buckets }
    }

    /// Attempts to correct a single out-of-vocabulary term. Returns the
    /// chosen in-vocabulary term, or `None` if nothing is close enough.
    ///
    /// The caller is expected to try correction only for terms that are
    /// *not* already in the vocabulary.
    pub fn correct(&self, term: &str) -> Option<String> {
        if term.is_empty() {
            return None;
        }
        let n = term.chars().count();
        let max_dist = if n >= 6 { 2 } else { 1 };

        let mut best: Option<(String, u32, usize)> = None; // (term, df, dist)

        // Candidate blocks: same first char with length within
        // max_dist, plus different-first-char blocks of the same
        // length band (covers a typo in the first character) at
        // distance 1 only.
        let first = term.as_bytes()[0];
        let mut consider = |bucket: &[(String, u32)], allowed: usize| {
            for (cand, df) in bucket {
                let d = damerau_levenshtein(term, cand);
                if d == 0 || d > allowed {
                    continue;
                }
                let better = match &best {
                    None => true,
                    Some((_, bdf, bd)) => d < *bd || (d == *bd && *df > *bdf),
                };
                if better {
                    best = Some((cand.clone(), *df, d));
                }
            }
        };

        for len in n.saturating_sub(max_dist)..=n + max_dist {
            if let Some(bucket) = self.buckets.get(&(first, len)) {
                consider(bucket, max_dist);
            }
        }
        // First-character typo: scan all buckets of exactly the same
        // length with a different first byte, allowing distance 1.
        for (&(b, len), bucket) in &self.buckets {
            if b != first && len == n {
                consider(bucket, 1);
            }
        }

        best.map(|(t, _, _)| t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corrector() -> SpellCorrector {
        SpellCorrector::build(vec![
            ("indiana", 50),
            ("jones", 40),
            ("madagascar", 30),
            ("kingdom", 20),
            ("skull", 10),
            ("india", 5),
            ("escape", 8),
        ])
    }

    #[test]
    fn corrects_single_edit() {
        let c = corrector();
        assert_eq!(c.correct("indianna").as_deref(), Some("indiana"));
        assert_eq!(c.correct("jnoes").as_deref(), Some("jones")); // transposition
        assert_eq!(c.correct("skulll").as_deref(), Some("skull"));
    }

    #[test]
    fn corrects_first_character_typo() {
        let c = corrector();
        assert_eq!(c.correct("mones").as_deref(), Some("jones"));
    }

    #[test]
    fn long_terms_allow_distance_two() {
        let c = corrector();
        assert_eq!(c.correct("madagascat").as_deref(), Some("madagascar"));
        assert_eq!(c.correct("madagascta").as_deref(), Some("madagascar"));
    }

    #[test]
    fn hopeless_terms_stay_uncorrected() {
        let c = corrector();
        assert_eq!(c.correct("zzzzzz"), None);
        assert_eq!(c.correct("x"), None);
        assert_eq!(c.correct(""), None);
    }

    #[test]
    fn prefers_closer_then_more_frequent() {
        // "indbiana"(d1 to indiana)... craft a tie: "indias" is d1 from
        // "indiana"? No: indias -> indiana is d=2. Use "indi" -> both
        // "india" (d1) and "indiana" (d3): picks india.
        let c = corrector();
        assert_eq!(c.correct("indi").as_deref(), Some("india"));
        // Tie at equal distance resolved by higher df: build a custom
        // corrector with two equal-distance candidates.
        let c2 = SpellCorrector::build(vec![("cat", 100), ("car", 1)]);
        assert_eq!(c2.correct("caz").as_deref(), Some("cat"));
    }

    #[test]
    fn deterministic() {
        let c = corrector();
        for _ in 0..8 {
            assert_eq!(c.correct("indianna").as_deref(), Some("indiana"));
        }
    }

    #[test]
    fn exact_match_is_not_a_correction() {
        // d == 0 is skipped: correct() is for OOV terms; an exact match
        // would mean the caller misused the API, so we refuse to echo.
        let c = corrector();
        assert_ne!(c.correct("indiana").as_deref(), Some("indiana"));
    }
}
