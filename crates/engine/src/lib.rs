//! # websyn-engine
//!
//! The search-engine substrate: the synthetic equivalent of "issuing
//! each u ∈ U as a query to the Bing Search API and keeping the top-k
//! results" (paper Section III-A).
//!
//! A complete, if compact, retrieval stack:
//! - [`analyzer`] — the analysis chain (normalize → tokenize) shared by
//!   indexing and querying;
//! - [`index`] — an inverted index with title-boosted term frequencies;
//! - [`score`] — BM25 (and a TF-IDF alternative used by ablations);
//! - [`spell`] — a vocabulary-driven spelling corrector, standing in
//!   for the query alteration every production engine performs;
//! - [`search`] — top-k retrieval tying it all together;
//! - [`searchdata`] — materializes the paper's Search Data `A` (the
//!   `⟨q, p, r⟩` relevance tuples).

pub mod analyzer;
pub mod index;
pub mod score;
pub mod search;
pub mod searchdata;
pub mod spell;

pub use analyzer::Analyzer;
pub use index::{InvertedIndex, Posting};
pub use score::{Bm25Params, Scorer, TfIdfParams};
pub use search::{SearchEngine, SearchHit};
pub use searchdata::{SearchData, SearchTuple};
pub use spell::SpellCorrector;
