//! # websyn-core
//!
//! The paper's primary contribution: **off-line, data-driven, bottom-up
//! mining of entity synonyms from query and click logs**, for fuzzy
//! matching of Web queries to structured data (Cheng, Lauw & Paparizos,
//! ICDE 2010).
//!
//! The two-phase algorithm of Section III:
//!
//! 1. **Candidate generation**
//!    - [`surrogate`] — `G_A(u, P)`: the top-k search results for the
//!      canonical string `u` are its surrogate pages (Eq. 1, Def. 5);
//!    - [`candidates`] — `W'_u = {w' | G_A(u,P) ∩ G_L(w',P) ≠ ∅}`:
//!      every query whose clicks touch a surrogate (Eq. 2, Def. 6).
//! 2. **Candidate selection** ([`measures`], [`select`](mod@select))
//!    - **IPC** `(w', u) = |G_L(w',P) ∩ G_A(u,P)|` — strength (Eq. 3);
//!    - **ICR** `(w', u)` — the fraction of `w'`'s clicks landing inside
//!      the intersection — exclusiveness (Eq. 4);
//!    - thresholds `β` (IPC) and `γ` (ICR) produce the final synonyms.
//!
//! [`miner`] orchestrates the phases (with a score-once / select-many
//! split so threshold sweeps are cheap), [`metrics`] implements every
//! measure of Section IV (precision, weighted precision, coverage
//! increase, hit ratio, expansion ratio), [`taxonomy`] classifies mined
//! strings against the oracle, and [`matcher`] is the downstream
//! payoff: a fuzzy query → entity matcher built from mined synonyms.
//! The matcher compiles its surfaces into a token-ID dictionary
//! ([`dict`]) so exact segmentation is allocation-free, and [`fuzzy`]
//! supplies the approximate (typo-tolerant) lookup path — a pluggable
//! [`websyn_text::CandidateSource`] chain — plus batched segmentation
//! for serving.
//!
//! [`segment`] is the dictionary *lifecycle*: a [`SegmentedDict`]
//! (immutable base + ordered delta segments with tombstones, merged
//! into one serving snapshot per commit, compacted in the background)
//! behind the thread-safe [`DictHandle`]. Deltas ([`DictDelta`]) apply
//! in milliseconds without recompiling the base, and each commit
//! publishes a [`DeltaFootprint`] so serving caches can invalidate
//! only what the delta could have changed.

pub mod candidates;
pub mod config;
pub mod data;
pub mod dict;
pub mod fuzzy;
pub mod matcher;
pub mod measures;
pub mod metrics;
pub mod miner;
pub mod segment;
pub mod select;
pub mod surrogate;
pub mod taxonomy;
pub mod telemetry;
pub mod window_cache;

pub use candidates::generate_candidates;
pub use config::MinerConfig;
pub use data::MiningContext;
pub use dict::CompiledDict;
pub use fuzzy::{FuzzyConfig, FuzzyDictionary, FuzzyMatch};
pub use matcher::{EntityMatcher, MatchScratch, MatchSpan, SegmentRequest};
pub use measures::{score_candidate, CandidateScore};
pub use metrics::{evaluate, EvalReport};
pub use miner::{
    EntityCandidates, EntitySynonyms, MinedSynonym, MiningResult, ScoredCandidates, SynonymMiner,
};
pub use segment::{
    DeltaFootprint, DeltaSegment, DictDelta, DictHandle, DictStats, DictSync, SegmentedDict,
};
pub use select::select;
pub use surrogate::{SurrogateSource, SurrogateTable};
pub use taxonomy::{classify, RelationCounts, TruthClass};
pub use telemetry::{matcher_telemetry, MatcherTelemetry};
pub use window_cache::{WindowCache, WindowCacheStats};
