//! Surrogate finding (paper Section III-A, "Finding Surrogates").
//!
//! `G_A(u, P) = {a.p | a ∈ A, a.q = u ∧ a.r ≤ k}` (Eq. 1): the top-k
//! pages retrieved for the canonical string `u` are its surrogates
//! (Definition 5). The table materializes every entity's surrogate set
//! once, sorted for O(log k) membership tests during scoring.
//!
//! The paper also notes the alternative: "It may also be possible to
//! use Click Data in place of Search Data, whereby a Web page is a
//! surrogate if it has attracted many clicks when the entity's data
//! value is used as a query. However, clicks are not always available
//! for this purpose, as the entities' data values usually come in the
//! canonical form … and therefore may not be used as queries by
//! people." [`SurrogateSource::Clicks`] implements that alternative so
//! the claim can be measured (ablation 5 in the harness).

use crate::data::MiningContext;
use websyn_common::{EntityId, PageId, TopK};

/// Where surrogate sets come from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub enum SurrogateSource {
    /// Eq. 1: top-k search results for the canonical string (the
    /// paper's choice).
    #[default]
    Search,
    /// The alternative the paper dismisses: top-k pages by click count
    /// when the canonical string itself was issued as a query. Entities
    /// whose canonical form was never queried get an empty set.
    Clicks,
}

/// Per-entity surrogate sets.
#[derive(Debug, Clone)]
pub struct SurrogateTable {
    /// Sorted page ids per entity.
    sets: Vec<Box<[PageId]>>,
    /// The `k` the table was built with.
    top_k: usize,
}

impl SurrogateTable {
    /// Builds the table from Search Data with surrogate depth `k`.
    ///
    /// `k` may be smaller than the depth the Search Data was collected
    /// with (the rank filter of Eq. 1 tightens); it cannot exceed it —
    /// ranks that were never retrieved cannot be conjured.
    ///
    /// # Panics
    /// Panics if `k` exceeds the Search Data collection depth.
    pub fn build(ctx: &MiningContext, k: usize) -> Self {
        assert!(
            k <= ctx.search.top_k,
            "surrogate depth {k} exceeds Search Data depth {}",
            ctx.search.top_k
        );
        let mut sets = Vec::with_capacity(ctx.n_entities());
        for qi in 0..ctx.n_entities() {
            let mut pages: Vec<PageId> = ctx.search.pages_for(qi as u32, k).collect();
            pages.sort_unstable();
            pages.dedup();
            sets.push(pages.into_boxed_slice());
        }
        Self { sets, top_k: k }
    }

    /// Builds the table from Click Data instead of Search Data
    /// ([`SurrogateSource::Clicks`]): an entity's surrogates are the
    /// `k` most-clicked pages under its canonical string as a query.
    pub fn build_from_clicks(ctx: &MiningContext, k: usize) -> Self {
        let mut sets = Vec::with_capacity(ctx.n_entities());
        for i in 0..ctx.n_entities() {
            let e = EntityId::from_usize(i);
            let mut pages: Vec<PageId> = match ctx.canonical_query(e) {
                None => Vec::new(),
                Some(q) => {
                    let mut topk = TopK::new(k);
                    for tuple in ctx.log.clicks_of(q) {
                        topk.push(f64::from(tuple.n), tuple.page);
                    }
                    topk.into_sorted_vec().into_iter().map(|s| s.item).collect()
                }
            };
            pages.sort_unstable();
            sets.push(pages.into_boxed_slice());
        }
        Self { sets, top_k: k }
    }

    /// Dispatches on [`SurrogateSource`].
    pub fn build_from(ctx: &MiningContext, k: usize, source: SurrogateSource) -> Self {
        match source {
            SurrogateSource::Search => Self::build(ctx, k),
            SurrogateSource::Clicks => Self::build_from_clicks(ctx, k),
        }
    }

    /// The surrogate set of an entity (sorted).
    pub fn of(&self, e: EntityId) -> &[PageId] {
        &self.sets[e.as_usize()]
    }

    /// Membership test (binary search over the sorted set).
    #[inline]
    pub fn contains(&self, e: EntityId, page: PageId) -> bool {
        self.sets[e.as_usize()].binary_search(&page).is_ok()
    }

    /// The surrogate depth.
    pub fn top_k(&self) -> usize {
        self.top_k
    }

    /// Number of entities covered.
    pub fn n_entities(&self) -> usize {
        self.sets.len()
    }

    /// Entities whose surrogate set is empty (their canonical string
    /// retrieved nothing — they can gain no synonyms).
    pub fn empty_entities(&self) -> impl Iterator<Item = EntityId> + '_ {
        self.sets
            .iter()
            .enumerate()
            .filter(|(_, s)| s.is_empty())
            .map(|(i, _)| EntityId::from_usize(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use websyn_click::ClickLogBuilder;
    use websyn_engine::{SearchData, SearchEngine};

    fn ctx() -> MiningContext {
        let docs = vec![
            (PageId::new(0), "alpha beta", "alpha beta official"),
            (PageId::new(1), "alpha beta shop", "alpha beta buy"),
            (PageId::new(2), "gamma", "gamma page"),
            (PageId::new(3), "delta", "unrelated"),
        ];
        let engine = SearchEngine::from_docs(docs);
        let u_set = vec![
            "alpha beta".to_string(),
            "gamma".to_string(),
            "zzz nothing".to_string(),
        ];
        let search = SearchData::collect(&engine, &u_set, 10);
        MiningContext::new(u_set, search, ClickLogBuilder::new().build(), 4)
    }

    #[test]
    fn surrogates_are_topk_pages() {
        let table = SurrogateTable::build(&ctx(), 10);
        let s0 = table.of(EntityId::new(0));
        assert_eq!(s0.len(), 2);
        assert!(table.contains(EntityId::new(0), PageId::new(0)));
        assert!(table.contains(EntityId::new(0), PageId::new(1)));
        assert!(!table.contains(EntityId::new(0), PageId::new(2)));
    }

    #[test]
    fn rank_filter_tightens_at_lower_k() {
        let table = SurrogateTable::build(&ctx(), 1);
        assert_eq!(table.of(EntityId::new(0)).len(), 1);
        assert_eq!(table.top_k(), 1);
    }

    #[test]
    fn entity_with_no_results_has_empty_set() {
        let table = SurrogateTable::build(&ctx(), 10);
        assert!(table.of(EntityId::new(2)).is_empty());
        let empty: Vec<EntityId> = table.empty_entities().collect();
        assert_eq!(empty, vec![EntityId::new(2)]);
    }

    #[test]
    fn sets_are_sorted() {
        let table = SurrogateTable::build(&ctx(), 10);
        for e in 0..table.n_entities() {
            let s = table.of(EntityId::from_usize(e));
            for w in s.windows(2) {
                assert!(w[0] < w[1]);
            }
        }
    }

    #[test]
    #[should_panic(expected = "exceeds Search Data depth")]
    fn overdeep_k_panics() {
        let _ = SurrogateTable::build(&ctx(), 11);
    }

    /// A context where "alpha beta" was clicked as a query but "gamma"
    /// was not — the click-surrogate gate.
    fn clicked_ctx() -> MiningContext {
        use websyn_click::ClickLogBuilder;
        let docs = vec![
            (PageId::new(0), "alpha beta", "alpha beta official"),
            (PageId::new(1), "alpha beta shop", "alpha beta buy"),
            (PageId::new(2), "gamma", "gamma page"),
        ];
        let engine = websyn_engine::SearchEngine::from_docs(docs);
        let u_set = vec!["alpha beta".to_string(), "gamma".to_string()];
        let search = websyn_engine::SearchData::collect(&engine, &u_set, 10);
        let mut b = ClickLogBuilder::new();
        let q = b.add_impression("alpha beta");
        for _ in 0..5 {
            b.add_click(q, PageId::new(0));
        }
        b.add_click(q, PageId::new(1));
        b.add_click(q, PageId::new(2));
        MiningContext::new(u_set, search, b.build(), 3)
    }

    #[test]
    fn click_surrogates_rank_by_click_count() {
        let ctx = clicked_ctx();
        let table = SurrogateTable::build_from_clicks(&ctx, 2);
        // Pages 0 (5 clicks) and 1-or-2 (1 click each, tie broken by
        // smaller page id) — top-2 = {0, 1}.
        assert_eq!(
            table.of(EntityId::new(0)),
            &[PageId::new(0), PageId::new(1)]
        );
    }

    #[test]
    fn click_surrogates_gate_on_canonical_queries() {
        // "gamma" was never issued as a query → empty surrogate set,
        // exactly the failure mode the paper predicts for canonical
        // data values.
        let ctx = clicked_ctx();
        let table = SurrogateTable::build_from_clicks(&ctx, 5);
        assert!(table.of(EntityId::new(1)).is_empty());
        // Search surrogates have no such gate.
        let search_table = SurrogateTable::build(&ctx, 5);
        assert!(!search_table.of(EntityId::new(1)).is_empty());
    }

    #[test]
    fn build_from_dispatches() {
        let ctx = clicked_ctx();
        let a = SurrogateTable::build_from(&ctx, 2, SurrogateSource::Search);
        let b = SurrogateTable::build(&ctx, 2);
        assert_eq!(a.of(EntityId::new(0)), b.of(EntityId::new(0)));
        let c = SurrogateTable::build_from(&ctx, 2, SurrogateSource::Clicks);
        let d = SurrogateTable::build_from_clicks(&ctx, 2);
        assert_eq!(c.of(EntityId::new(0)), d.of(EntityId::new(0)));
    }
}
