//! The evaluation measures of the paper's Section IV.
//!
//! | Measure | Paper definition |
//! | --- | --- |
//! | Precision | "# of true synonyms over all synonyms generated" |
//! | Weighted Precision | "Weighted by synonym frequency in query log" |
//! | Coverage Increase | "Percentage increase in coverage of queries" |
//! | Hit Ratio | "Percentage of entries producing at least 1 synonym" |
//! | Expansion Ratio | "Sum of synonyms and orig entries over orig entries" |
//!
//! Precision uses the synthetic world's exact oracle where the paper
//! used human judges.

use crate::data::MiningContext;
use crate::miner::MiningResult;
use crate::taxonomy::{classify, RelationCounts, TruthClass};
use serde::{Deserialize, Serialize};
use std::fmt;
use websyn_common::FxHashSet;
use websyn_synth::World;

/// The full evaluation of one mining result.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EvalReport {
    /// Entities in the input set ("Orig").
    pub n_entities: usize,
    /// Total mined synonyms ("Synonyms").
    pub n_synonyms: usize,
    /// Entities with ≥ 1 synonym ("Hits").
    pub hits: usize,
    /// `hits / n_entities`.
    pub hit_ratio: f64,
    /// `(n_synonyms + n_entities) / n_entities`.
    pub expansion_ratio: f64,
    /// Fraction of mined synonyms that are true synonyms.
    pub precision: f64,
    /// Precision with each synonym weighted by its query-log
    /// impressions.
    pub weighted_precision: f64,
    /// Query-log impressions matched by the canonical strings alone.
    pub original_coverage: u64,
    /// Additional impressions matched by mined synonyms (distinct
    /// queries counted once across entities).
    pub added_coverage: u64,
    /// Ground-truth class breakdown of all mined synonyms.
    pub breakdown: RelationCounts,
}

impl EvalReport {
    /// Coverage increase as a fraction: `added / original`
    /// (the paper reports this as a percentage, e.g. 1.2 → "120%").
    /// Zero when nothing was originally covered.
    pub fn coverage_increase(&self) -> f64 {
        if self.original_coverage == 0 {
            0.0
        } else {
            self.added_coverage as f64 / self.original_coverage as f64
        }
    }
}

impl fmt::Display for EvalReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "orig={} hits={} ({:.0}%) synonyms={} expansion={:.0}% precision={:.3} \
             weighted={:.3} coverage+={:.0}% [{}]",
            self.n_entities,
            self.hits,
            self.hit_ratio * 100.0,
            self.n_synonyms,
            self.expansion_ratio * 100.0,
            self.precision,
            self.weighted_precision,
            self.coverage_increase() * 100.0,
            self.breakdown,
        )
    }
}

/// Evaluates a mining result against the world oracle and the click
/// log.
pub fn evaluate(result: &MiningResult, ctx: &MiningContext, world: &World) -> EvalReport {
    let n_entities = ctx.n_entities();
    let mut n_synonyms = 0usize;
    let mut hits = 0usize;
    let mut true_count = 0usize;
    let mut weight_total = 0u64;
    let mut weight_true = 0u64;
    let mut breakdown = RelationCounts::default();
    let mut covered_queries: FxHashSet<websyn_common::QueryId> = FxHashSet::default();

    for es in &result.per_entity {
        if !es.synonyms.is_empty() {
            hits += 1;
        }
        for syn in &es.synonyms {
            n_synonyms += 1;
            let class = classify(world, &syn.text, es.entity);
            breakdown.add(class);
            let weight = u64::from(ctx.log.impressions(syn.query));
            weight_total += weight;
            if class == TruthClass::Synonym {
                true_count += 1;
                weight_true += weight;
            }
            covered_queries.insert(syn.query);
        }
    }

    // Coverage: canonical strings vs. canonical + mined synonyms.
    let mut original_coverage = 0u64;
    let mut canonical_queries: FxHashSet<websyn_common::QueryId> = FxHashSet::default();
    for e in 0..n_entities {
        if let Some(q) = ctx.canonical_query(websyn_common::EntityId::from_usize(e)) {
            if canonical_queries.insert(q) {
                original_coverage += u64::from(ctx.log.impressions(q));
            }
        }
    }
    let added_coverage = covered_queries
        .iter()
        .filter(|q| !canonical_queries.contains(q))
        .map(|&q| u64::from(ctx.log.impressions(q)))
        .sum();

    EvalReport {
        n_entities,
        n_synonyms,
        hits,
        hit_ratio: ratio(hits, n_entities),
        expansion_ratio: if n_entities == 0 {
            0.0
        } else {
            (n_synonyms + n_entities) as f64 / n_entities as f64
        },
        precision: ratio(true_count, n_synonyms),
        weighted_precision: if weight_total == 0 {
            0.0
        } else {
            weight_true as f64 / weight_total as f64
        },
        original_coverage,
        added_coverage,
        breakdown,
    }
}

fn ratio(num: usize, den: usize) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MinerConfig;
    use crate::miner::SynonymMiner;
    use websyn_click::session::{engine_for_world, simulate_sessions};
    use websyn_click::SessionConfig;
    use websyn_engine::SearchData;
    use websyn_synth::{queries, QueryStreamConfig, WorldConfig};

    /// End-to-end small pipeline shared by the metric tests.
    fn pipeline() -> (World, MiningContext) {
        let mut world = World::build(&WorldConfig::small_movies(20, 99));
        let events = queries::generate(&mut world, &QueryStreamConfig::small(30_000));
        let engine = engine_for_world(&world);
        let (log, _) = simulate_sessions(&world, &engine, &events, &SessionConfig::default());
        let u_set: Vec<String> = world
            .entities
            .iter()
            .map(|e| e.canonical_norm.clone())
            .collect();
        let search = SearchData::collect(&engine, &u_set, 10);
        let n_pages = world.pages.len();
        let ctx = MiningContext::new(u_set, search, log, n_pages);
        (world, ctx)
    }

    #[test]
    fn end_to_end_metrics_are_sane() {
        let (world, ctx) = pipeline();
        let result = SynonymMiner::new(MinerConfig::default()).mine(&ctx);
        let report = evaluate(&result, &ctx, &world);
        assert_eq!(report.n_entities, 20);
        assert!(report.n_synonyms > 0, "nothing mined");
        assert!(report.hits > 10, "hits {}", report.hits);
        assert!((0.0..=1.0).contains(&report.precision));
        assert!((0.0..=1.0).contains(&report.weighted_precision));
        assert!(report.precision > 0.5, "precision collapsed: {report}");
        assert!(report.expansion_ratio >= 1.0);
        assert!(report.coverage_increase() > 0.0, "{report}");
        assert_eq!(report.breakdown.total(), report.n_synonyms);
    }

    #[test]
    fn tighter_icr_improves_precision() {
        let (world, ctx) = pipeline();
        let miner = SynonymMiner::new(MinerConfig {
            top_k: 10,
            ipc_threshold: 2,
            icr_threshold: 0.0,
            ..Default::default()
        });
        let scored = miner.score(&ctx);
        let loose = evaluate(
            &crate::miner::select_with(&ctx, &scored, 2, 0.0, miner.config),
            &ctx,
            &world,
        );
        let tight = evaluate(
            &crate::miner::select_with(&ctx, &scored, 2, 0.5, miner.config),
            &ctx,
            &world,
        );
        assert!(
            tight.precision >= loose.precision,
            "tight {} < loose {}",
            tight.precision,
            loose.precision
        );
        assert!(tight.n_synonyms <= loose.n_synonyms);
        // Hypernym leaks specifically should shrink.
        assert!(tight.breakdown.hypernym <= loose.breakdown.hypernym);
    }

    #[test]
    fn report_display_is_readable() {
        let (world, ctx) = pipeline();
        let result = SynonymMiner::default().mine(&ctx);
        let report = evaluate(&result, &ctx, &world);
        let text = report.to_string();
        assert!(text.contains("precision="));
        assert!(text.contains("hits="));
    }

    #[test]
    fn empty_result_reports_zeroes() {
        let (world, ctx) = pipeline();
        let result = MiningResult {
            per_entity: Vec::new(),
            config: MinerConfig::default(),
        };
        let report = evaluate(&result, &ctx, &world);
        assert_eq!(report.n_synonyms, 0);
        assert_eq!(report.hits, 0);
        assert_eq!(report.precision, 0.0);
        assert_eq!(report.added_coverage, 0);
    }
}
