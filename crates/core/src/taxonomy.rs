//! Oracle-based classification of mined strings.
//!
//! The paper's Figure 1 taxonomy made measurable: every mined synonym
//! is classified against the synthetic world's ground truth as a true
//! synonym, a hypernym leak, a hyponym leak, a related-string leak, or
//! a wrong/unknown string. The ablation harness uses the breakdown to
//! show *what kind* of errors each threshold removes.

use serde::{Deserialize, Serialize};
use std::fmt;
use websyn_common::EntityId;
use websyn_synth::{Relation, World};

/// The ground-truth class of one mined (entity, string) pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TruthClass {
    /// A true synonym (includes registered misspellings).
    Synonym,
    /// A franchise/line name covering the entity (Fig. 1b).
    Hypernym,
    /// An aspect string of the entity (Fig. 1c).
    Hyponym,
    /// A related concept string (Fig. 1d).
    Related,
    /// A string that means some *other* entity or nothing at all.
    Unrelated,
}

impl fmt::Display for TruthClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TruthClass::Synonym => "synonym",
            TruthClass::Hypernym => "hypernym",
            TruthClass::Hyponym => "hyponym",
            TruthClass::Related => "related",
            TruthClass::Unrelated => "unrelated",
        };
        f.write_str(s)
    }
}

/// Classifies a mined string against an entity.
pub fn classify(world: &World, text: &str, entity: EntityId) -> TruthClass {
    match world.relation_of(text, entity) {
        Some(Relation::Synonym) => TruthClass::Synonym,
        Some(Relation::Hypernym) => TruthClass::Hypernym,
        Some(Relation::Hyponym) => TruthClass::Hyponym,
        Some(Relation::Related) => TruthClass::Related,
        None => TruthClass::Unrelated,
    }
}

/// Counts per truth class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RelationCounts {
    /// True synonyms.
    pub synonym: usize,
    /// Hypernym leaks.
    pub hypernym: usize,
    /// Hyponym leaks.
    pub hyponym: usize,
    /// Related-string leaks.
    pub related: usize,
    /// Wrong-entity / unknown strings.
    pub unrelated: usize,
}

impl RelationCounts {
    /// Adds one observation.
    pub fn add(&mut self, class: TruthClass) {
        match class {
            TruthClass::Synonym => self.synonym += 1,
            TruthClass::Hypernym => self.hypernym += 1,
            TruthClass::Hyponym => self.hyponym += 1,
            TruthClass::Related => self.related += 1,
            TruthClass::Unrelated => self.unrelated += 1,
        }
    }

    /// Total observations.
    pub fn total(&self) -> usize {
        self.synonym + self.hypernym + self.hyponym + self.related + self.unrelated
    }

    /// Fraction of a class (0 when empty).
    pub fn fraction(&self, class: TruthClass) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let count = match class {
            TruthClass::Synonym => self.synonym,
            TruthClass::Hypernym => self.hypernym,
            TruthClass::Hyponym => self.hyponym,
            TruthClass::Related => self.related,
            TruthClass::Unrelated => self.unrelated,
        };
        count as f64 / total as f64
    }
}

impl fmt::Display for RelationCounts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "syn={} hyper={} hypo={} related={} unrelated={}",
            self.synonym, self.hypernym, self.hyponym, self.related, self.unrelated
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use websyn_synth::WorldConfig;

    #[test]
    fn classify_against_world() {
        let world = World::build(&WorldConfig::small_movies(30, 17));
        let e0 = &world.entities[0];
        assert_eq!(
            classify(&world, &e0.canonical_norm, e0.id),
            TruthClass::Synonym
        );
        assert_eq!(
            classify(&world, "total nonsense query", e0.id),
            TruthClass::Unrelated
        );
        if let Some(f) = world.franchises.first() {
            let member = f.members[0];
            assert_eq!(classify(&world, &f.name, member), TruthClass::Hypernym);
            // A franchise name against a non-member is unrelated.
            let outsider = world
                .entities
                .iter()
                .find(|e| e.franchise != Some(f.id))
                .unwrap();
            assert_eq!(
                classify(&world, &f.name, outsider.id),
                TruthClass::Unrelated
            );
        }
    }

    #[test]
    fn counts_accumulate() {
        let mut c = RelationCounts::default();
        c.add(TruthClass::Synonym);
        c.add(TruthClass::Synonym);
        c.add(TruthClass::Hypernym);
        c.add(TruthClass::Unrelated);
        assert_eq!(c.total(), 4);
        assert_eq!(c.synonym, 2);
        assert!((c.fraction(TruthClass::Synonym) - 0.5).abs() < 1e-12);
        assert!((c.fraction(TruthClass::Hypernym) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn empty_counts() {
        let c = RelationCounts::default();
        assert_eq!(c.total(), 0);
        assert_eq!(c.fraction(TruthClass::Synonym), 0.0);
    }

    #[test]
    fn display_forms() {
        assert_eq!(TruthClass::Synonym.to_string(), "synonym");
        let mut c = RelationCounts::default();
        c.add(TruthClass::Related);
        assert!(c.to_string().contains("related=1"));
    }
}
