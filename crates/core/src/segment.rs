//! Segmented dictionaries with live delta updates — the dictionary
//! lifecycle behind continuous synonym mining.
//!
//! A compiled dictionary ([`crate::dict::CompiledDict`]) is immutable
//! by design: every derived structure (probe table, candidate indexes,
//! reachability tables) is laid out once over the full surface set.
//! That makes updates a compile-the-world affair — fine for a nightly
//! artifact, wrong for a mining pipeline that emits a handful of new
//! synonyms a minute. This module adds the Lucene-style middle ground:
//!
//! - an immutable **base** matcher, compiled the usual way;
//! - an ordered chain of small **delta segments** ([`DeltaSegment`]),
//!   each sealed from one committed [`DictDelta`] (upserts and
//!   tombstones). Later segments override earlier ones; the chain is
//!   consulted in probe order by collapsing it into one small overlay
//!   compile per commit — deltas are tiny, so recompiling the overlay
//!   costs milliseconds while the base (the expensive part) is reused
//!   untouched;
//! - a background **merge** that compacts base + deltas into a fresh
//!   base once the chain grows past a threshold, abandoning itself if
//!   a newer commit lands first;
//! - a per-commit **footprint** ([`DeltaFootprint`]) — a conservative
//!   "could this window/query resolve differently now?" test — so the
//!   shared window cache and a serving result cache invalidate only
//!   entries a delta could actually touch, promoting everything else
//!   across the commit instead of re-verifying the world.
//!
//! [`DictHandle`] is the single way in: epoch-pinned snapshot reads
//! ([`DictHandle::matcher`]), staged deltas ([`DictHandle::apply_delta`]
//! followed by [`DictHandle::commit`], or [`DictHandle::apply`] for
//! both at once), and explicit or automatic compaction. The old
//! `EntityMatcher::from_tsv` + swap flow survives as deprecated shims
//! over this API.
//!
//! Resolution over base + deltas is **byte-identical** to a monolithic
//! recompile of the merged surface set (pinned by the
//! `segmented_equivalence` proptests): the merged matcher runs both
//! candidate chains in lock-step, drops shadowed base surfaces before
//! they can influence gating, and merges the fallback vocabulary test
//! across segments — see `crate::fuzzy::resolve_merged_window`.

use crate::dict::UNKNOWN_TOKEN;
use crate::fuzzy::FuzzyConfig;
use crate::matcher::EntityMatcher;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, RwLock};
use websyn_common::{EntityId, FxHashMap};
use websyn_text::normalize;

/// Footprints older than this many commits are dropped from the
/// promotion log: a cache entry that has survived 64 commits unprobed
/// is cold enough that re-verifying it on the next probe costs less
/// than carrying an unbounded log.
const FOOTPRINT_LOG_CAP: usize = 64;

/// How many committed segments accumulate before [`DictHandle`]
/// spawns a background compaction (when auto-compaction is enabled).
pub const DEFAULT_AUTO_COMPACT: usize = 8;

/// A batch of dictionary edits: surface upserts and tombstones, in
/// application order (a later op on the same surface wins).
///
/// The TSV wire format mirrors the dictionary artifact, one op per
/// line: `surface \t entity-id` upserts (inserting a new surface or
/// re-pointing an existing one), `surface \t -` tombstones. Lines
/// starting with `#` and blank lines are ignored.
///
/// # Examples
///
/// ```
/// use websyn_common::EntityId;
/// use websyn_core::DictDelta;
///
/// let delta = DictDelta::parse_tsv("Indy 5\t7\nmadagascar 2\t-\n").unwrap();
/// assert_eq!(delta.len(), 2);
/// assert_eq!(delta.upserts(), 1);
/// assert_eq!(delta.tombstones(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct DictDelta {
    /// Normalized surface → new binding (`None` = tombstone), in
    /// application order.
    ops: Vec<(String, Option<EntityId>)>,
}

impl DictDelta {
    /// An empty delta.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds (or re-points) a surface. The surface is normalized; an
    /// op whose surface normalizes to nothing is dropped.
    pub fn upsert(&mut self, surface: &str, entity: EntityId) {
        let surface = normalize(surface);
        if !surface.is_empty() {
            self.ops.push((surface, Some(entity)));
        }
    }

    /// Removes a surface from the served dictionary (whether it lives
    /// in the base or an earlier delta). Tombstoning an unknown
    /// surface is a no-op at resolution time but still recorded.
    pub fn tombstone(&mut self, surface: &str) {
        let surface = normalize(surface);
        if !surface.is_empty() {
            self.ops.push((surface, None));
        }
    }

    /// Parses the delta TSV format (see the type docs).
    ///
    /// # Errors
    /// Returns a codec error on a missing tab, a non-numeric entity
    /// id, or a surface that normalizes to the empty string.
    pub fn parse_tsv(tsv: &str) -> websyn_common::Result<Self> {
        let mut delta = Self::new();
        for (lineno, line) in tsv.lines().enumerate() {
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (surface, value) = line.rsplit_once('\t').ok_or_else(|| {
                websyn_common::Error::codec(format!("delta line {}: missing tab", lineno + 1))
            })?;
            let surface = normalize(surface);
            if surface.is_empty() {
                return Err(websyn_common::Error::codec(format!(
                    "delta line {}: empty surface",
                    lineno + 1
                )));
            }
            if value == "-" {
                delta.ops.push((surface, None));
            } else {
                let id: u32 = value.parse().map_err(|e| {
                    websyn_common::Error::codec(format!(
                        "delta line {}: bad entity id: {e}",
                        lineno + 1
                    ))
                })?;
                delta.ops.push((surface, Some(EntityId::new(id))));
            }
        }
        Ok(delta)
    }

    /// Number of ops (after normalization dropped empty surfaces).
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the delta carries no ops.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Number of upsert ops.
    pub fn upserts(&self) -> usize {
        self.ops.iter().filter(|(_, e)| e.is_some()).count()
    }

    /// Number of tombstone ops.
    pub fn tombstones(&self) -> usize {
        self.ops.iter().filter(|(_, e)| e.is_none()).count()
    }

    /// The ops in application order (`None` entity = tombstone).
    pub fn ops(&self) -> impl Iterator<Item = (&str, Option<EntityId>)> + '_ {
        self.ops.iter().map(|(s, e)| (s.as_str(), *e))
    }
}

/// The conservative invalidation test sealed with one commit: could a
/// given window (or any window of a given query) resolve differently
/// across that commit?
///
/// The footprint is a *mini dictionary* compiled over exactly the
/// surfaces the commit touched (upserted and tombstoned alike), with
/// the same fuzzy configuration as the serving dictionary. A window
/// is affected when it shares a vocabulary token with a changed
/// surface, or any candidate source built over the changed surfaces
/// proposes at least one of them for the window at the window's edit
/// budget. Because candidate proposal is a pairwise (window, surface)
/// predicate — an index proposes exactly what a monolithic index
/// would, restricted to its own surfaces — a window the footprint
/// clears provably sees the same candidate set, the same fallback
/// gating, and therefore the same resolution before and after the
/// commit. Caches use this to *promote* unaffected entries across
/// commits instead of re-verifying them.
#[derive(Debug)]
pub struct DeltaFootprint {
    /// The changed surfaces compiled as a dictionary (entity ids are
    /// irrelevant here — only surfaces, tokens, and candidate indexes
    /// matter).
    mini: EntityMatcher,
    /// Longest query window worth testing: windows with more tokens
    /// than any changed surface plus the edit budget can neither
    /// exact-match nor verify against a changed surface, and the
    /// fallback gate only exists at 2-token windows (hence the floor).
    max_window: usize,
    /// Transform sources (abbreviation/phonetic keys) can map a long
    /// window onto a short surface with no token-count relation, so
    /// every window length must be tested.
    unbounded: bool,
}

impl DeltaFootprint {
    /// Builds the footprint of a commit that touched `changed`
    /// surfaces (already normalized), under the serving dictionary's
    /// fuzzy config (`None` for an exact-only dictionary).
    fn build(changed: impl IntoIterator<Item = String>, config: Option<FuzzyConfig>) -> Self {
        let mini = EntityMatcher::from_pairs(changed.into_iter().map(|s| (s, EntityId::new(0))));
        let max_distance = config.as_ref().map_or(0, |c| c.max_distance);
        let unbounded = config.as_ref().is_some_and(|c| c.abbrev || c.phonetic);
        let mini = match config {
            Some(config) => mini.with_fuzzy(config),
            None => mini,
        };
        Self {
            max_window: (mini.dict().max_tokens() + max_distance).max(2),
            unbounded,
            mini,
        }
    }

    /// Whether resolving the window `window` (normalized text) could
    /// differ across this commit. `false` is a proof of stability;
    /// `true` is conservative.
    pub fn affects_window(&self, window: &str) -> bool {
        thread_local! {
            static SCRATCH: crate::dict::QueryScratch =
                const { std::cell::RefCell::new((Vec::new(), Vec::new())) };
        }
        SCRATCH.with_borrow_mut(|(bounds, ids)| {
            self.mini.dict().map_query(window, bounds, ids);
            self.affects_ids(window, ids)
        })
    }

    /// [`DeltaFootprint::affects_window`] over pre-mapped token ids
    /// (in the mini dictionary's vocabulary).
    fn affects_ids(&self, window: &str, ids: &[u32]) -> bool {
        // Any shared vocabulary token: the window anchors into a
        // changed surface (this also covers exact hits, dead-token
        // fallback-gate knock-ons, and tokens a delta introduced).
        if ids.iter().any(|&t| t != UNKNOWN_TOKEN) {
            return true;
        }
        let Some(fuzzy) = self.mini.fuzzy_dict() else {
            return false;
        };
        let budget = fuzzy.config().max_distance_for(window.chars().count());
        budget > 0 && fuzzy.proposes_any(window, ids.len(), budget)
    }

    /// Whether resolving any window of the normalized query `query`
    /// could differ across this commit — the result-cache promotion
    /// test (entries are keyed by whole queries).
    pub fn affects_query(&self, query: &str) -> bool {
        thread_local! {
            static SCRATCH: crate::dict::QueryScratch =
                const { std::cell::RefCell::new((Vec::new(), Vec::new())) };
        }
        SCRATCH.with_borrow_mut(|(bounds, ids)| {
            self.mini.dict().map_query(query, bounds, ids);
            let n = ids.len();
            let cap = if self.unbounded { n } else { self.max_window };
            for i in 0..n {
                for len in 1..=cap.min(n - i) {
                    let text = &query[bounds[i].0 as usize..bounds[i + len - 1].1 as usize];
                    if self.affects_ids(text, &ids[i..i + len]) {
                        return true;
                    }
                }
            }
            false
        })
    }
}

/// One sealed, committed delta in a [`SegmentedDict`]'s chain.
#[derive(Debug)]
pub struct DeltaSegment {
    /// Upsert ops in the originating delta.
    upserts: usize,
    /// Tombstone ops in the originating delta.
    tombstones: usize,
    /// The commit's invalidation footprint.
    footprint: Arc<DeltaFootprint>,
}

impl DeltaSegment {
    /// Upsert ops carried by this segment.
    pub fn upserts(&self) -> usize {
        self.upserts
    }

    /// Tombstone ops carried by this segment.
    pub fn tombstones(&self) -> usize {
        self.tombstones
    }
}

/// The merged read-side view of the delta chain, attached to a base
/// matcher clone to form the serving snapshot: one small compiled
/// overlay dictionary (live upserts), the shadow set it casts over the
/// base, and the bookkeeping the merged resolution path needs.
#[derive(Debug)]
pub(crate) struct OverlayState {
    /// The collapsed live upserts, compiled with the base's fuzzy
    /// config (so the candidate chains are structurally identical and
    /// can run in lock-step).
    pub(crate) matcher: EntityMatcher,
    /// Bitset over base surface ids: overridden or tombstoned.
    shadowed: Vec<u64>,
    /// Bitset over base token ids: tokens carried by no live base
    /// surface (their vocabulary anchor died with their surfaces).
    dead_tokens: Vec<u64>,
    /// Number of shadowed base surfaces.
    shadowed_count: usize,
    /// Max token count over *live* surfaces (non-shadowed base ∪
    /// overlay) — the merged window bound. Using the base's own bound
    /// would probe window lengths a monolithic recompile never would.
    pub(crate) live_max_tokens: usize,
    /// Commits since the current base (the window-cache generation
    /// ladder rung).
    pub(crate) epoch: u64,
    /// Footprints of the chain's segments, oldest first
    /// (`footprints.len() == epoch`): a window-cache entry written at
    /// epoch `e` is promotable iff `footprints[e..]` all clear it.
    pub(crate) footprints: Arc<Vec<Arc<DeltaFootprint>>>,
}

impl OverlayState {
    /// Whether base surface `sid` is overridden or tombstoned.
    #[inline]
    pub(crate) fn shadowed(&self, sid: u32) -> bool {
        self.shadowed[sid as usize >> 6] & (1 << (sid & 63)) != 0
    }

    /// Whether base token `tok` is carried by no live base surface.
    #[inline]
    pub(crate) fn dead_token(&self, tok: u32) -> bool {
        self.dead_tokens
            .get(tok as usize >> 6)
            .is_some_and(|w| w & (1 << (tok & 63)) != 0)
    }

    /// Live surface count of the merged view.
    pub(crate) fn live_len(&self, base_len: usize) -> usize {
        base_len - self.shadowed_count + self.matcher.dict().len()
    }

    /// Builds the overlay for `base` from the collapsed map of all
    /// committed deltas (`None` = tombstone).
    fn build(
        base: &EntityMatcher,
        overlay_map: &FxHashMap<String, Option<EntityId>>,
        epoch: u64,
        footprints: Arc<Vec<Arc<DeltaFootprint>>>,
    ) -> Self {
        let upserts = overlay_map
            .iter()
            .filter_map(|(s, e)| e.map(|e| (s.clone(), e)));
        let matcher = EntityMatcher::from_pairs(upserts);
        let matcher = match base.fuzzy_config() {
            Some(config) => matcher.with_fuzzy(config.clone()),
            None => matcher,
        };
        let dict = base.dict();
        let mut shadowed = vec![0u64; dict.len().div_ceil(64)];
        let mut shadowed_count = 0;
        for surface in overlay_map.keys() {
            if let Some(sid) = dict.get_str(surface) {
                let (w, b) = (sid.as_usize() >> 6, sid.raw() & 63);
                if shadowed[w] & (1 << b) == 0 {
                    shadowed[w] |= 1 << b;
                    shadowed_count += 1;
                }
            }
        }
        let mut dead_tokens = Vec::new();
        let mut live_max_tokens = dict.max_tokens();
        if shadowed_count > 0 {
            // Recompute the vocabulary and window bound over live base
            // surfaces only: one linear pass over the arena.
            let mut live = vec![0u64; dict.n_tokens().div_ceil(64)];
            live_max_tokens = 0;
            for (sid, _, _) in dict.iter() {
                let raw = sid.raw();
                if shadowed[raw as usize >> 6] & (1 << (raw & 63)) != 0 {
                    continue;
                }
                let toks = dict.token_ids(sid);
                live_max_tokens = live_max_tokens.max(toks.len());
                for &t in toks {
                    live[t as usize >> 6] |= 1 << (t & 63);
                }
            }
            dead_tokens = live.iter().map(|w| !w).collect();
        }
        live_max_tokens = live_max_tokens.max(matcher.dict().max_tokens());
        Self {
            matcher,
            shadowed,
            dead_tokens,
            shadowed_count,
            live_max_tokens,
            epoch,
            footprints,
        }
    }
}

/// Point-in-time dictionary lifecycle counters, reported by `/stats`
/// and `/metrics` on the serving side.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DictStats {
    /// Live surfaces in the merged view.
    pub surfaces: usize,
    /// Committed delta segments since the current base.
    pub segments: usize,
    /// Live overlay upserts (after collapsing the chain).
    pub delta_upserts: usize,
    /// Live tombstones (after collapsing the chain).
    pub delta_tombstones: usize,
    /// Staged ops not yet committed.
    pub pending: usize,
    /// Commits since the current base.
    pub epoch: u64,
    /// Commits since the current lineage (monotone across
    /// compaction, reset by a base replacement).
    pub revision: u64,
    /// Completed compactions (foreground and background).
    pub compactions: u64,
}

/// An immutable base matcher plus an ordered chain of committed delta
/// segments, collapsed into one serving snapshot per commit.
///
/// This is the lifecycle state machine; most callers want the
/// thread-safe [`DictHandle`] wrapper. Direct use is for single-owner
/// scenarios (tests, offline tools).
#[derive(Debug)]
pub struct SegmentedDict {
    /// The expensive compiled artifact, reused untouched across
    /// commits.
    base: EntityMatcher,
    /// Committed segments, oldest first.
    segments: Vec<DeltaSegment>,
    /// The chain collapsed to one binding per surface (`None` =
    /// tombstone) — later segments won.
    overlay_map: FxHashMap<String, Option<EntityId>>,
    /// Staged deltas awaiting [`SegmentedDict::commit`].
    pending: Vec<DictDelta>,
    /// The serving snapshot: `base` (with overlay attached while the
    /// chain is non-empty). Readers clone the `Arc` and are pinned to
    /// this epoch for the whole read.
    merged: Arc<EntityMatcher>,
    /// Commits since the current base.
    epoch: u64,
    /// Commits since the current lineage (NOT reset by compaction —
    /// compaction preserves resolution semantics, so result caches
    /// keyed to a revision survive it).
    revision: u64,
    /// Identity of the lineage: changes only when
    /// [`SegmentedDict::replace_base`] installs unrelated content.
    lineage: u64,
    /// Completed compactions.
    compactions: u64,
    /// Footprints of the last commits of this lineage, oldest first;
    /// `log_start_rev` is the revision the first entry committed.
    /// Survives compaction (unlike the per-overlay chain) so
    /// result-cache entries can be promoted across it.
    footprint_log: VecDeque<Arc<DeltaFootprint>>,
    log_start_rev: u64,
}

impl SegmentedDict {
    /// Wraps a freshly compiled matcher as the base of a new lineage.
    pub fn new(base: EntityMatcher) -> Self {
        Self {
            merged: Arc::new(base.clone()),
            base,
            segments: Vec::new(),
            overlay_map: FxHashMap::default(),
            pending: Vec::new(),
            epoch: 0,
            revision: 0,
            lineage: crate::window_cache::next_uid(),
            compactions: 0,
            footprint_log: VecDeque::new(),
            log_start_rev: 0,
        }
    }

    /// The current serving snapshot. The clone is epoch-pinned: a
    /// commit or compaction replaces the shared slot but never mutates
    /// a snapshot a reader already holds.
    pub fn matcher(&self) -> Arc<EntityMatcher> {
        Arc::clone(&self.merged)
    }

    /// Stages a delta; it takes effect at the next
    /// [`SegmentedDict::commit`].
    pub fn stage(&mut self, delta: DictDelta) {
        if !delta.is_empty() {
            self.pending.push(delta);
        }
    }

    /// Seals every staged delta into one new segment, rebuilds the
    /// (small) overlay compile, and publishes a new serving snapshot.
    /// Returns the new epoch; a commit with nothing staged is a no-op.
    pub fn commit(&mut self) -> u64 {
        if self.pending.is_empty() {
            return self.epoch;
        }
        let mut upserts = 0;
        let mut tombstones = 0;
        let mut changed: FxHashMap<String, ()> = FxHashMap::default();
        for delta in self.pending.drain(..) {
            upserts += delta.upserts();
            tombstones += delta.tombstones();
            for (surface, entity) in delta.ops {
                changed.insert(surface.clone(), ());
                self.overlay_map.insert(surface, entity);
            }
        }
        let footprint = Arc::new(DeltaFootprint::build(
            changed.into_keys(),
            self.base.fuzzy_config().cloned(),
        ));
        self.segments.push(DeltaSegment {
            upserts,
            tombstones,
            footprint: Arc::clone(&footprint),
        });
        self.footprint_log.push_back(footprint);
        while self.footprint_log.len() > FOOTPRINT_LOG_CAP {
            self.footprint_log.pop_front();
            self.log_start_rev += 1;
        }
        self.epoch += 1;
        self.revision += 1;
        self.republish();
        self.epoch
    }

    /// Rebuilds the serving snapshot from `base` + the collapsed
    /// chain.
    fn republish(&mut self) {
        let footprints = Arc::new(
            self.segments
                .iter()
                .map(|s| Arc::clone(&s.footprint))
                .collect::<Vec<_>>(),
        );
        let overlay = OverlayState::build(&self.base, &self.overlay_map, self.epoch, footprints);
        self.merged = Arc::new(self.base.clone().with_overlay(Arc::new(overlay)));
    }

    /// Compacts base + chain into a fresh base (the full recompile,
    /// done eagerly here; [`DictHandle`] runs it on a background
    /// thread). Staged deltas are committed first. No-op when the
    /// chain is empty and nothing is staged.
    pub fn compact(&mut self) {
        self.commit();
        if self.segments.is_empty() {
            return;
        }
        let base = self.compile_merged();
        self.install_compacted(base);
    }

    /// Compiles the merged surface set as a standalone matcher,
    /// carrying over the fuzzy config and shared window cache.
    fn compile_merged(&self) -> EntityMatcher {
        let pairs = self.merged_pairs();
        let m = EntityMatcher::from_pairs(pairs);
        let m = match self.base.fuzzy_config() {
            Some(config) => m.with_fuzzy(config.clone()),
            None => m,
        };
        match self.base.window_cache() {
            Some(cache) => m.with_shared_window_cache(Arc::clone(cache)),
            None => m,
        }
    }

    /// The live merged surface set: non-shadowed base plus overlay
    /// upserts.
    pub fn merged_pairs(&self) -> Vec<(String, EntityId)> {
        let mut pairs: Vec<(String, EntityId)> = self
            .base
            .dict()
            .iter()
            .filter(|(_, s, _)| !self.overlay_map.contains_key(*s))
            .map(|(_, s, e)| (s.to_string(), e))
            .collect();
        pairs.extend(
            self.overlay_map
                .iter()
                .filter_map(|(s, e)| e.map(|e| (s.clone(), e))),
        );
        pairs
    }

    /// Installs an already-compiled merged base, clearing the chain.
    /// The lineage and revision are preserved: compaction changes the
    /// representation, not the resolution.
    fn install_compacted(&mut self, base: EntityMatcher) {
        self.base = base;
        self.segments.clear();
        self.overlay_map.clear();
        self.epoch = 0;
        self.compactions += 1;
        self.merged = Arc::new(self.base.clone());
    }

    /// Replaces the base with unrelated content (a newly mined
    /// artifact): a new lineage begins, the chain and staged deltas
    /// are dropped, and every cache keyed to the old lineage must be
    /// invalidated wholesale.
    pub fn replace_base(&mut self, base: EntityMatcher) {
        *self = Self::new(base);
    }

    /// Commits since the current base (the window-cache ladder rung).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Commits since the current lineage (monotone across compaction).
    pub fn revision(&self) -> u64 {
        self.revision
    }

    /// Lineage identity (changes only on [`SegmentedDict::replace_base`]).
    pub fn lineage(&self) -> u64 {
        self.lineage
    }

    /// The committed chain, oldest first.
    pub fn segments(&self) -> &[DeltaSegment] {
        &self.segments
    }

    /// Footprints of commits `>= revision` of this lineage, oldest
    /// first — `None` when `revision` predates the retained log (the
    /// caller must treat the entry as unpromotable). An up-to-date
    /// revision yields `Some(empty)`.
    pub fn footprints_since(&self, revision: u64) -> Option<Vec<Arc<DeltaFootprint>>> {
        if revision < self.log_start_rev || revision > self.revision {
            return None;
        }
        let skip = (revision - self.log_start_rev) as usize;
        Some(self.footprint_log.iter().skip(skip).cloned().collect())
    }

    /// Lifecycle counters for stats/metrics surfaces.
    pub fn stats(&self) -> DictStats {
        let live = self.merged.overlay().map_or(self.base.dict().len(), |ov| {
            ov.live_len(self.base.dict().len())
        });
        DictStats {
            surfaces: live,
            segments: self.segments.len(),
            delta_upserts: self.overlay_map.values().filter(|e| e.is_some()).count(),
            delta_tombstones: self.overlay_map.values().filter(|e| e.is_none()).count(),
            pending: self.pending.iter().map(DictDelta::len).sum(),
            epoch: self.epoch,
            revision: self.revision,
            compactions: self.compactions,
        }
    }
}

#[derive(Debug)]
struct HandleInner {
    dict: RwLock<SegmentedDict>,
    /// Segment-count threshold that triggers a background compaction
    /// (0 disables).
    auto_compact: AtomicUsize,
    /// At most one background compaction in flight.
    merging: AtomicBool,
}

/// The thread-safe dictionary lifecycle handle — the single entry
/// point for loading, reading, live-updating, and compacting a
/// serving dictionary.
///
/// Reads are epoch-pinned: [`DictHandle::matcher`] clones the current
/// snapshot `Arc`, and no later commit or compaction ever mutates it.
/// Writers stage deltas with [`DictHandle::apply_delta`] and publish
/// them with [`DictHandle::commit`] (or both at once with
/// [`DictHandle::apply`]); a commit recompiles only the small overlay,
/// never the base. When the chain grows past the auto-compaction
/// threshold, a background thread folds it into a fresh base —
/// abandoning itself if a newer commit lands first.
///
/// # Examples
///
/// ```
/// use websyn_common::EntityId;
/// use websyn_core::{DictDelta, DictHandle, EntityMatcher};
///
/// let handle = DictHandle::new(EntityMatcher::from_pairs(vec![
///     ("indy 4", EntityId::new(7)),
/// ]));
/// let before = handle.matcher(); // epoch-pinned snapshot
///
/// let mut delta = DictDelta::new();
/// delta.upsert("madagascar 2", EntityId::new(9));
/// handle.apply(delta);
///
/// let after = handle.matcher();
/// assert_eq!(after.lookup("madagascar 2"), Some(EntityId::new(9)));
/// assert_eq!(after.lookup("indy 4"), Some(EntityId::new(7)));
/// // The pinned snapshot never saw the delta.
/// assert_eq!(before.lookup("madagascar 2"), None);
/// ```
#[derive(Debug, Clone)]
pub struct DictHandle {
    inner: Arc<HandleInner>,
}

/// One coherent view of a [`DictHandle`]'s serving state, captured
/// under a single read lock by [`DictHandle::sync`].
#[derive(Debug, Clone)]
pub struct DictSync {
    /// Dictionary identity (changes only on a base replacement).
    pub lineage: u64,
    /// Commits since the lineage began.
    pub revision: u64,
    /// The serving snapshot at that revision.
    pub matcher: Arc<EntityMatcher>,
    /// Footprints covering `(since_revision, revision]`, oldest
    /// first; `None` when selective invalidation is impossible.
    pub footprints: Option<Vec<Arc<DeltaFootprint>>>,
}

impl DictHandle {
    /// Wraps a compiled matcher as the base of a new lineage, with
    /// background auto-compaction at [`DEFAULT_AUTO_COMPACT`]
    /// segments.
    pub fn new(base: EntityMatcher) -> Self {
        Self {
            inner: Arc::new(HandleInner {
                dict: RwLock::new(SegmentedDict::new(base)),
                auto_compact: AtomicUsize::new(DEFAULT_AUTO_COMPACT),
                merging: AtomicBool::new(false),
            }),
        }
    }

    /// Loads a dictionary artifact (the [`EntityMatcher::to_tsv`]
    /// format, optional `#!fuzzy` header) as a new lineage.
    ///
    /// ```
    /// use websyn_core::DictHandle;
    ///
    /// let handle = DictHandle::from_tsv("indy 4\t7\n").unwrap();
    /// assert_eq!(handle.matcher().len(), 1);
    /// ```
    ///
    /// # Errors
    /// Returns a codec error on malformed rows or a malformed fuzzy
    /// header.
    pub fn from_tsv(tsv: &str) -> websyn_common::Result<Self> {
        #[allow(deprecated)]
        Ok(Self::new(EntityMatcher::from_tsv(tsv)?))
    }

    /// Sets the segment-count threshold for background compaction
    /// (0 disables it).
    pub fn set_auto_compact(&self, segments: usize) {
        self.inner.auto_compact.store(segments, Ordering::Relaxed);
    }

    /// The current epoch-pinned serving snapshot.
    pub fn matcher(&self) -> Arc<EntityMatcher> {
        self.read().matcher()
    }

    /// Stages a delta without publishing it.
    pub fn apply_delta(&self, delta: DictDelta) {
        self.write().stage(delta);
    }

    /// Publishes every staged delta as one new segment; returns the
    /// new epoch. May spawn a background compaction.
    pub fn commit(&self) -> u64 {
        let epoch = self.write().commit();
        self.maybe_spawn_compact();
        epoch
    }

    /// Stages and publishes a delta in one step; returns the new
    /// epoch.
    pub fn apply(&self, delta: DictDelta) -> u64 {
        let epoch = {
            let mut dict = self.write();
            dict.stage(delta);
            dict.commit()
        };
        self.maybe_spawn_compact();
        epoch
    }

    /// Folds the chain into a fresh base synchronously.
    pub fn compact(&self) {
        self.write().compact();
    }

    /// Installs an unrelated artifact as a new lineage (dropping the
    /// chain and staged deltas).
    pub fn replace_base(&self, base: EntityMatcher) {
        self.write().replace_base(base);
    }

    /// Lifecycle counters.
    pub fn stats(&self) -> DictStats {
        self.read().stats()
    }

    /// Commits since the current lineage.
    pub fn revision(&self) -> u64 {
        self.read().revision()
    }

    /// Lineage identity.
    pub fn lineage(&self) -> u64 {
        self.read().lineage()
    }

    /// See [`SegmentedDict::footprints_since`].
    pub fn footprints_since(&self, revision: u64) -> Option<Vec<Arc<DeltaFootprint>>> {
        self.read().footprints_since(revision)
    }

    /// Atomic synchronization snapshot for a downstream result cache:
    /// one read lock covers the lineage, the revision, the serving
    /// matcher, and the footprints needed to advance from the
    /// caller's last-seen `(lineage, since_revision)` — so the four
    /// are mutually consistent even while writers commit concurrently.
    ///
    /// `footprints` is `None` when the caller cannot invalidate
    /// selectively: the lineage changed (an unrelated base was
    /// installed), or the footprint log no longer reaches back to
    /// `since_revision`. It is `Some(vec![])` when nothing changed.
    pub fn sync(&self, lineage: u64, since_revision: u64) -> DictSync {
        let dict = self.read();
        let footprints = if dict.lineage() == lineage {
            dict.footprints_since(since_revision)
        } else {
            None
        };
        DictSync {
            lineage: dict.lineage(),
            revision: dict.revision(),
            matcher: dict.matcher(),
            footprints,
        }
    }

    fn read(&self) -> std::sync::RwLockReadGuard<'_, SegmentedDict> {
        self.inner.dict.read().expect("dict handle poisoned")
    }

    fn write(&self) -> std::sync::RwLockWriteGuard<'_, SegmentedDict> {
        self.inner.dict.write().expect("dict handle poisoned")
    }

    /// Spawns a background compaction when the chain has grown past
    /// the threshold and none is already in flight. The merge
    /// compiles outside the lock from a pinned snapshot of the merged
    /// surface set, then installs only if no commit raced past it.
    fn maybe_spawn_compact(&self) {
        let threshold = self.inner.auto_compact.load(Ordering::Relaxed);
        if threshold == 0 {
            return;
        }
        {
            let dict = self.read();
            if dict.segments.len() < threshold {
                return;
            }
        }
        if self.inner.merging.swap(true, Ordering::AcqRel) {
            return;
        }
        let inner = Arc::clone(&self.inner);
        std::thread::spawn(move || {
            let (lineage, revision, compiled) = {
                let dict = inner.dict.read().expect("dict handle poisoned");
                (dict.lineage(), dict.revision(), dict.compile_merged())
            };
            let mut dict = inner.dict.write().expect("dict handle poisoned");
            // A racing commit or base replacement made this compile
            // stale: abandon it, the next commit re-triggers.
            if dict.lineage() == lineage && dict.revision() == revision && dict.epoch() > 0 {
                dict.install_compacted(compiled);
            }
            drop(dict);
            inner.merging.store(false, Ordering::Release);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> EntityMatcher {
        EntityMatcher::from_pairs(vec![
            ("indy 4", EntityId::new(0)),
            ("madagascar 2", EntityId::new(1)),
            ("canon eos 350d", EntityId::new(2)),
        ])
        .with_fuzzy(FuzzyConfig::default())
    }

    #[test]
    fn delta_tsv_roundtrip_and_errors() {
        let d = DictDelta::parse_tsv("# comment\nIndy 5\t7\n\nmadagascar 2\t-\n").unwrap();
        assert_eq!(d.len(), 2);
        let ops: Vec<_> = d.ops().collect();
        assert_eq!(ops[0], ("indy 5", Some(EntityId::new(7))));
        assert_eq!(ops[1], ("madagascar 2", None));
        assert!(DictDelta::parse_tsv("no tab").is_err());
        assert!(DictDelta::parse_tsv("x\tnot-a-number").is_err());
        assert!(DictDelta::parse_tsv("???\t3").is_err(), "empty surface");
    }

    #[test]
    fn upsert_tombstone_and_override_resolve_live() {
        let handle = DictHandle::new(base());
        let mut delta = DictDelta::new();
        delta.upsert("indiana jones 5", EntityId::new(4));
        delta.tombstone("madagascar 2");
        delta.upsert("indy 4", EntityId::new(9)); // re-point
        let epoch = handle.apply(delta);
        assert_eq!(epoch, 1);
        let m = handle.matcher();
        assert_eq!(m.lookup("indiana jones 5"), Some(EntityId::new(4)));
        assert_eq!(m.lookup("madagascar 2"), None);
        assert_eq!(m.lookup("indy 4"), Some(EntityId::new(9)));
        assert_eq!(m.lookup("canon eos 350d"), Some(EntityId::new(2)));
        // Fuzzy resolution reaches the new surface too.
        let spans = m.segment("watch indianna jones 5 online");
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].entity, EntityId::new(4));
        assert_eq!(spans[0].distance, 1);
        // And stops reaching the tombstoned one.
        assert!(m.segment("madagascar 2 showtimes").is_empty());
    }

    #[test]
    fn later_segments_override_earlier() {
        let handle = DictHandle::new(base());
        let mut d1 = DictDelta::new();
        d1.upsert("new movie", EntityId::new(5));
        handle.apply(d1);
        let mut d2 = DictDelta::new();
        d2.tombstone("new movie");
        handle.apply(d2);
        assert_eq!(handle.matcher().lookup("new movie"), None);
        let mut d3 = DictDelta::new();
        d3.upsert("new movie", EntityId::new(6));
        handle.apply(d3);
        assert_eq!(handle.matcher().lookup("new movie"), Some(EntityId::new(6)));
        assert_eq!(handle.stats().segments, 3);
        assert_eq!(handle.stats().epoch, 3);
    }

    #[test]
    fn compaction_preserves_resolution_and_revision() {
        let handle = DictHandle::new(base());
        handle.set_auto_compact(0);
        let mut delta = DictDelta::new();
        delta.upsert("indiana jones 5", EntityId::new(4));
        delta.tombstone("madagascar 2");
        handle.apply(delta);
        let before = handle.matcher();
        let queries = [
            "watch indianna jones 5 online",
            "madagascar 2 showtimes",
            "cannon eos 350d deals",
            "indy 4 near san fran",
        ];
        let expect: Vec<_> = queries.iter().map(|q| before.segment(q)).collect();
        let rev = handle.revision();
        handle.compact();
        let after = handle.matcher();
        let stats = handle.stats();
        assert_eq!(stats.segments, 0);
        assert_eq!(stats.epoch, 0);
        assert_eq!(stats.compactions, 1);
        assert_eq!(handle.revision(), rev, "compaction keeps the revision");
        for (q, want) in queries.iter().zip(&expect) {
            let got = after.segment(q);
            assert_eq!(got.len(), want.len(), "{q}");
            for (g, w) in got.iter().zip(want) {
                assert_eq!(
                    (g.start, g.end, g.entity, g.distance, g.surface()),
                    (w.start, w.end, w.entity, w.distance, w.surface()),
                    "{q}"
                );
            }
        }
    }

    #[test]
    fn background_compaction_triggers_at_threshold() {
        let handle = DictHandle::new(base());
        handle.set_auto_compact(2);
        for i in 0..2 {
            let mut d = DictDelta::new();
            d.upsert(&format!("surface number {i}"), EntityId::new(10 + i));
            handle.apply(d);
        }
        // The merge runs on a detached thread; poll for it.
        for _ in 0..500 {
            if handle.stats().compactions == 1 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let stats = handle.stats();
        assert_eq!(stats.compactions, 1, "{stats:?}");
        assert_eq!(stats.segments, 0);
        let m = handle.matcher();
        assert_eq!(m.lookup("surface number 0"), Some(EntityId::new(10)));
        assert_eq!(m.lookup("surface number 1"), Some(EntityId::new(11)));
    }

    #[test]
    fn replace_base_starts_a_new_lineage() {
        let handle = DictHandle::new(base());
        let lineage = handle.lineage();
        let mut d = DictDelta::new();
        d.upsert("x y z", EntityId::new(3));
        handle.apply(d);
        handle.replace_base(EntityMatcher::from_pairs(vec![(
            "fresh artifact",
            EntityId::new(8),
        )]));
        assert_ne!(handle.lineage(), lineage);
        assert_eq!(handle.revision(), 0);
        assert_eq!(handle.matcher().lookup("x y z"), None);
        assert_eq!(
            handle.matcher().lookup("fresh artifact"),
            Some(EntityId::new(8))
        );
    }

    #[test]
    fn footprint_clears_unrelated_queries() {
        let handle = DictHandle::new(base());
        let mut d = DictDelta::new();
        d.upsert("indiana jones 5", EntityId::new(4));
        handle.apply(d);
        let fps = handle.footprints_since(0).unwrap();
        assert_eq!(fps.len(), 1);
        let fp = &fps[0];
        // Queries touching the changed surface (exactly or fuzzily)
        // are affected.
        assert!(fp.affects_query("indiana jones 5"));
        assert!(fp.affects_query("watch indianna jones 5 online"));
        assert!(fp.affects_query("jones"));
        // An unrelated query is provably stable.
        assert!(!fp.affects_query("weather in paris tonight"));
        // Stale and future revisions are unpromotable.
        assert!(handle.footprints_since(2).is_none());
        assert_eq!(handle.footprints_since(1).unwrap().len(), 0);
    }
}
