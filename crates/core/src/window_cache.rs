//! A matcher-level, cross-batch cache of *resolved fuzzy windows*.
//!
//! The serving layer already memoizes whole queries
//! (`websyn_serve::cache`), and [`crate::matcher::MatchScratch`]
//! memoizes windows within one shard's run — but a **novel** query
//! shares none of the former and a fresh shard shares none of the
//! latter, so every batch (and every shard of every batch) re-pays
//! first-sight resolution for windows the process has already
//! verified. Real query streams repeat *fragments* far more often than
//! whole queries ("canon eos 350d review" after "canon eos 350d
//! price"), which is exactly what this cache captures: a bounded,
//! sharded map from window text to its fuzzy resolution, shared across
//! batches and threads.
//!
//! Correctness story:
//!
//! - a window's resolution is a pure function of its text for a fixed
//!   fuzzy dictionary, so cached entries can never change an output —
//!   only skip recomputing it (pinned by the cache-on ≡ cache-off
//!   property tests);
//! - entries are **generation-checked** like the serve cache: every
//!   entry records the generation it was inserted at, and a probe
//!   under a newer generation treats it as a miss;
//! - the cache **binds** to the fuzzy dictionary that fills it
//!   (`WindowCache::bind`): each [`crate::FuzzyDictionary`] carries a
//!   unique id, and binding a different id bumps the generation — so a
//!   cache shared across a rebuild-and-swap (or accidentally across
//!   two matchers) can never serve a stale window, without any caller
//!   discipline.
//!
//! Keys are raw query windows — on a serving path that is untrusted
//! input, so the shard maps use std's randomly seeded SipHash hasher,
//! not `FxHashMap` (which `websyn_common::hash` forbids for untrusted
//! input).

use std::collections::hash_map::RandomState;
use std::collections::{HashMap, VecDeque};
use std::hash::BuildHasher;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use websyn_common::SurfaceId;

/// A cached window resolution: `None` is a verified miss (windows that
/// resolve to nothing dominate real traffic and must be cached too).
pub(crate) type Resolution = Option<(SurfaceId, usize)>;

/// Number of independently locked shards. Power of two; sixteen keeps
/// lock contention negligible at serving thread counts while the
/// per-shard maps stay dense.
const SHARDS: usize = 16;

/// One locked shard: the window map plus FIFO insertion order for
/// eviction. Keys are shared between the two containers.
#[derive(Debug, Default)]
struct Shard {
    /// window text → (generation at insert, resolution).
    map: HashMap<std::sync::Arc<str>, (u64, Resolution), RandomState>,
    /// Insertion order, oldest first. May hold keys whose map entry
    /// was overwritten (re-inserted under a newer generation); eviction
    /// simply pops until the map is under budget.
    order: VecDeque<std::sync::Arc<str>>,
}

/// Point-in-time counters of a [`WindowCache`] (see
/// [`WindowCache::stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WindowCacheStats {
    /// Probes answered from the cache (current generation).
    pub hits: u64,
    /// Probes that found nothing usable (absent or stale generation).
    pub misses: u64,
    /// Live entries across all shards, including stale ones not yet
    /// evicted.
    pub entries: usize,
    /// Total capacity across all shards.
    pub capacity: usize,
}

/// The bounded, sharded, generation-checked window-resolution cache.
/// Construct via [`WindowCache::new`], attach with
/// [`crate::EntityMatcher::with_window_cache`] (or share one across
/// matchers with [`crate::EntityMatcher::with_shared_window_cache`]).
#[derive(Debug)]
pub struct WindowCache {
    shards: Box<[Mutex<Shard>]>,
    /// Max entries per shard.
    shard_capacity: usize,
    /// Bumped whenever a different fuzzy dictionary binds; entries
    /// from older generations are invisible.
    generation: AtomicU64,
    /// Unique id of the fuzzy dictionary currently bound (0 = none).
    bound: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    /// Shared seed state so every shard hashes keys identically for
    /// shard selection.
    hasher: RandomState,
}

impl WindowCache {
    /// A cache holding at most (roughly) `capacity` window entries.
    pub fn new(capacity: usize) -> Self {
        let shards = (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect();
        Self {
            shards,
            shard_capacity: capacity.div_ceil(SHARDS).max(1),
            generation: AtomicU64::new(0),
            bound: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            hasher: RandomState::new(),
        }
    }

    /// Binds the cache to fuzzy dictionary `uid`, returning the
    /// generation under which its windows live. Rebinding to a
    /// *different* uid bumps the generation, making every prior entry
    /// invisible — the stale-window safety the swap proptests pin.
    /// Cheap when already bound (two atomic loads), so the segmenter
    /// calls it once per query.
    pub(crate) fn bind(&self, uid: u64) -> u64 {
        if self.bound.load(Ordering::Acquire) != uid {
            // Serialize concurrent rebinds through a shard lock so the
            // (bound, generation) pair moves together.
            let _guard = self.shards[0].lock().expect("window cache poisoned");
            if self.bound.load(Ordering::Acquire) != uid {
                self.generation.fetch_add(1, Ordering::AcqRel);
                self.bound.store(uid, Ordering::Release);
            }
        }
        self.generation.load(Ordering::Acquire)
    }

    /// The shard index of `key`.
    fn shard_of(&self, key: &str) -> usize {
        (self.hasher.hash_one(key) as usize) % SHARDS
    }

    /// Looks `key` up under `generation` (from [`WindowCache::bind`]).
    /// A present entry from an older generation is a miss.
    pub(crate) fn get(&self, key: &str, generation: u64) -> Option<Resolution> {
        let shard = self.shards[self.shard_of(key)]
            .lock()
            .expect("window cache poisoned");
        match shard.map.get(key) {
            Some(&(gen, resolution)) if gen == generation => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(resolution)
            }
            _ => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Records `key`'s resolution under `generation`, evicting oldest
    /// entries (FIFO) past the shard budget.
    pub(crate) fn insert(&self, key: &str, generation: u64, resolution: Resolution) {
        let mut shard = self.shards[self.shard_of(key)]
            .lock()
            .expect("window cache poisoned");
        while shard.map.len() >= self.shard_capacity {
            match shard.order.pop_front() {
                Some(old) => {
                    shard.map.remove(&*old);
                }
                None => break,
            }
        }
        let key: std::sync::Arc<str> = key.into();
        shard.order.push_back(std::sync::Arc::clone(&key));
        shard.map.insert(key, (generation, resolution));
    }

    /// Current counters.
    pub fn stats(&self) -> WindowCacheStats {
        WindowCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self
                .shards
                .iter()
                .map(|s| s.lock().expect("window cache poisoned").map.len())
                .sum(),
            capacity: self.shard_capacity * SHARDS,
        }
    }

    /// The current generation (diagnostics and tests).
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }
}

/// Source of the unique ids fuzzy dictionaries bind with. Zero is
/// reserved for "nothing bound yet".
static NEXT_UID: AtomicU64 = AtomicU64::new(1);

/// A fresh nonzero uid for a newly compiled (or mutated) fuzzy
/// dictionary.
pub(crate) fn next_uid() -> u64 {
    NEXT_UID.fetch_add(1, Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_insert_same_generation() {
        let c = WindowCache::new(64);
        let g = c.bind(1);
        assert_eq!(c.get("canon eos", g), None);
        c.insert("canon eos", g, Some((SurfaceId::new(3), 1)));
        assert_eq!(c.get("canon eos", g), Some(Some((SurfaceId::new(3), 1))));
        c.insert("junk window", g, None);
        assert_eq!(c.get("junk window", g), Some(None));
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.entries), (2, 1, 2));
    }

    #[test]
    fn rebinding_a_different_dictionary_hides_old_entries() {
        let c = WindowCache::new(64);
        let g1 = c.bind(1);
        c.insert("window", g1, Some((SurfaceId::new(9), 2)));
        assert!(c.get("window", g1).is_some());
        let g2 = c.bind(2);
        assert_ne!(g1, g2);
        assert_eq!(c.get("window", g2), None, "stale entry must be invisible");
        // Rebinding the same uid keeps the generation stable.
        assert_eq!(c.bind(2), g2);
        // And binding back to uid 1 bumps again — the old entries stay
        // dead (their recorded generation can never recur).
        let g3 = c.bind(1);
        assert!(g3 > g2);
        assert_eq!(c.get("window", g3), None);
    }

    #[test]
    fn eviction_keeps_the_map_bounded() {
        let c = WindowCache::new(SHARDS); // one entry per shard
        let g = c.bind(1);
        for i in 0..1000 {
            c.insert(&format!("window {i}"), g, None);
        }
        let s = c.stats();
        assert!(s.entries <= s.capacity, "{s:?}");
        assert_eq!(s.capacity, SHARDS);
    }

    #[test]
    fn uids_are_unique_and_nonzero() {
        let a = next_uid();
        let b = next_uid();
        assert_ne!(a, 0);
        assert_ne!(a, b);
    }
}
