//! A matcher-level, cross-batch cache of *resolved fuzzy windows*.
//!
//! The serving layer already memoizes whole queries
//! (`websyn_serve::cache`), and [`crate::matcher::MatchScratch`]
//! memoizes windows within one shard's run — but a **novel** query
//! shares none of the former and a fresh shard shares none of the
//! latter, so every batch (and every shard of every batch) re-pays
//! first-sight resolution for windows the process has already
//! verified. Real query streams repeat *fragments* far more often than
//! whole queries ("canon eos 350d review" after "canon eos 350d
//! price"), which is exactly what this cache captures: a bounded,
//! sharded map from window text to its fuzzy resolution, shared across
//! batches and threads.
//!
//! Correctness story:
//!
//! - a window's resolution is a pure function of its text for a fixed
//!   fuzzy dictionary, so cached entries can never change an output —
//!   only skip recomputing it (pinned by the cache-on ≡ cache-off
//!   property tests);
//! - entries are **generation-checked** like the serve cache: every
//!   entry records the generation it was inserted at, and a probe
//!   under a newer generation treats it as a miss;
//! - the cache **binds** to the fuzzy dictionary that fills it
//!   (`WindowCache::bind`): each [`crate::FuzzyDictionary`] carries a
//!   unique id, and binding a different id bumps the generation — so a
//!   cache shared across a rebuild-and-swap (or accidentally across
//!   two matchers) can never serve a stale window, without any caller
//!   discipline.
//!
//! Keys are the 64-bit SipHash of the window text, with the full text
//! stored in the entry and **verified on every hit** — a probe whose
//! hash matches but whose text differs is a miss, so a (astronomically
//! unlikely) 64-bit collision can only evict, never corrupt an output.
//! Hashing the slice instead of owning the key means a re-insert of a
//! known window (the common churn case: same window under a fresh
//! generation after a dictionary swap) updates its entry **in place
//! with zero allocation**; only first-sight windows pay one `Box<str>`.
//! Window text is untrusted serving input, so the one hash uses std's
//! randomly seeded SipHash, not `FxHashMap` (which
//! `websyn_common::hash` forbids for untrusted input); the shard maps
//! themselves then key on that already-uniform hash through a
//! passthrough hasher rather than hashing twice.

use std::collections::hash_map::RandomState;
use std::collections::{HashMap, VecDeque};
use std::hash::{BuildHasher, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use websyn_common::SurfaceId;

/// A cached window resolution: `None` is a verified miss (windows that
/// resolve to nothing dominate real traffic and must be cached too).
pub(crate) type Resolution = Option<(SurfaceId, usize)>;

/// Number of independently locked shards. Power of two; sixteen keeps
/// lock contention negligible at serving thread counts while the
/// per-shard maps stay dense.
const SHARDS: usize = 16;

/// Identity hasher for keys that are already SipHash outputs. The
/// shard maps would otherwise re-hash the 64-bit hash on every probe.
#[derive(Debug, Default, Clone, Copy)]
struct Passthrough(u64);

impl Hasher for Passthrough {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, _bytes: &[u8]) {
        unreachable!("window-cache maps only hash u64 keys");
    }
    fn write_u64(&mut self, v: u64) {
        self.0 = v;
    }
}

impl BuildHasher for Passthrough {
    type Hasher = Passthrough;
    fn build_hasher(&self) -> Passthrough {
        Passthrough(0)
    }
}

/// One cached window: the full text (for hit verification), the
/// generation it was recorded under, and its resolution.
#[derive(Debug)]
struct CacheEntry {
    key: Box<str>,
    generation: u64,
    resolution: Resolution,
}

/// One locked shard: hash → entry, plus FIFO insertion order for
/// eviction (hashes, not keys — eviction bookkeeping allocates
/// nothing).
#[derive(Debug, Default)]
struct Shard {
    map: HashMap<u64, CacheEntry, Passthrough>,
    /// Insertion order, oldest first. In-place updates keep their
    /// original position, so every map entry appears here exactly once.
    order: VecDeque<u64>,
}

/// Point-in-time counters of a [`WindowCache`] (see
/// [`WindowCache::stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WindowCacheStats {
    /// Probes answered from the cache (current generation).
    pub hits: u64,
    /// Probes that found nothing usable (absent, stale generation, or
    /// hash-collided with different text).
    pub misses: u64,
    /// Hits served by *promoting* a stale entry across a delta commit
    /// (counted in `hits` too): the entry predated the newest delta
    /// segments but its window was provably unaffected by them.
    pub promotions: u64,
    /// Live entries across all shards, including stale ones not yet
    /// evicted.
    pub entries: usize,
    /// Total capacity across all shards.
    pub capacity: usize,
}

/// The bounded, sharded, generation-checked window-resolution cache.
/// Construct via [`WindowCache::new`], attach with
/// [`crate::EntityMatcher::with_window_cache`] (or share one across
/// matchers with [`crate::EntityMatcher::with_shared_window_cache`]).
#[derive(Debug)]
pub struct WindowCache {
    shards: Box<[Mutex<Shard>]>,
    /// Max entries per shard.
    shard_capacity: usize,
    /// Bumped whenever a different fuzzy dictionary binds; entries
    /// from older generations are invisible.
    generation: AtomicU64,
    /// Generation at which the currently bound dictionary's *base*
    /// attached (see [`WindowCache::bind_epoch`]): the live generation
    /// is `floor + delta epoch`, so entries between `floor` and the
    /// live generation are stale-but-promotable — they were recorded
    /// under the same base, only missing the most recent delta
    /// segments.
    floor: AtomicU64,
    /// Unique id of the fuzzy dictionary currently bound (0 = none).
    bound: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    /// Stale entries revalidated across a delta commit instead of
    /// recomputed (see [`WindowCache::get_or_promote`]).
    promotions: AtomicU64,
    /// Shared seed state so every shard hashes keys identically for
    /// shard selection.
    hasher: RandomState,
}

impl WindowCache {
    /// A cache holding at most (roughly) `capacity` window entries.
    pub fn new(capacity: usize) -> Self {
        let shards = (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect();
        Self {
            shards,
            shard_capacity: capacity.div_ceil(SHARDS).max(1),
            generation: AtomicU64::new(0),
            floor: AtomicU64::new(0),
            bound: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            promotions: AtomicU64::new(0),
            hasher: RandomState::new(),
        }
    }

    /// Binds the cache to fuzzy dictionary `uid`, returning the
    /// generation under which its windows live. Rebinding to a
    /// *different* uid bumps the generation, making every prior entry
    /// invisible — the stale-window safety the swap proptests pin.
    /// Cheap when already bound (two atomic loads), so the segmenter
    /// calls it once per query.
    pub(crate) fn bind(&self, uid: u64) -> u64 {
        self.bind_epoch(uid, 0).0
    }

    /// Epoch-aware binding — the segmented-dictionary generation
    /// ladder. `uid` identifies the *base* compilation and `epoch`
    /// counts delta commits on top of it; the live generation is
    /// `floor + epoch`, where `floor` is minted when `uid` first binds
    /// (or re-binds after another dictionary used the cache). A base
    /// swap or compaction changes `uid` and resets the floor — the
    /// wholesale invalidation of old — while a delta commit only
    /// advances the epoch, leaving every prior entry in the
    /// promotable band `[floor, generation)` for
    /// [`WindowCache::get_or_promote`]. Returns `(generation, floor)`.
    pub(crate) fn bind_epoch(&self, uid: u64, epoch: u64) -> (u64, u64) {
        let target = |floor: u64| floor + epoch;
        if self.bound.load(Ordering::Acquire) == uid {
            let floor = self.floor.load(Ordering::Acquire);
            if self.generation.load(Ordering::Acquire) >= target(floor) {
                return (target(floor), floor);
            }
        }
        // Serialize rebinds and epoch advances through a shard lock so
        // the (bound, floor, generation) triple moves together.
        let _guard = self.shards[0].lock().expect("window cache poisoned");
        if self.bound.load(Ordering::Acquire) != uid {
            let floor = self.generation.load(Ordering::Acquire) + 1;
            self.floor.store(floor, Ordering::Release);
            self.generation.store(target(floor), Ordering::Release);
            self.bound.store(uid, Ordering::Release);
        } else {
            let floor = self.floor.load(Ordering::Acquire);
            if self.generation.load(Ordering::Acquire) < target(floor) {
                self.generation.store(target(floor), Ordering::Release);
            }
        }
        (
            target(self.floor.load(Ordering::Acquire)),
            self.floor.load(Ordering::Acquire),
        )
    }

    /// The (hash, shard index) of `key` — one SipHash pass serves both
    /// shard selection and the map lookup. The shard comes from the
    /// *top* bits: the passthrough map spends the low bits on bucket
    /// selection, and reusing them for sharding would leave each
    /// shard's buckets systematically sparse.
    fn locate(&self, key: &str) -> (u64, usize) {
        let h = self.hasher.hash_one(key);
        (h, (h >> 60) as usize % SHARDS)
    }

    /// Looks `key` up under `generation` (from [`WindowCache::bind`]).
    /// A present entry from an older generation is a miss, as is a
    /// hash match whose stored text differs from `key`.
    pub(crate) fn get(&self, key: &str, generation: u64) -> Option<Resolution> {
        let (h, idx) = self.locate(key);
        let shard = self.shards[idx].lock().expect("window cache poisoned");
        match shard.map.get(&h) {
            Some(e) if e.generation == generation && *e.key == *key => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(e.resolution)
            }
            _ => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// [`WindowCache::get`] with the segmented-dictionary promotion
    /// ladder: an entry recorded under the *same base* but an older
    /// delta epoch (`floor ≤ entry generation < generation`) is not
    /// discarded outright — `unaffected_since(window, entry_epoch)`
    /// decides whether the delta segments committed after the entry's
    /// epoch could possibly change this window's resolution. When they
    /// provably cannot (the conservative footprint test of
    /// `crate::segment`), the entry is re-stamped to the live
    /// generation in place and served as a hit: a delta commit
    /// invalidates only the windows it could actually touch, not the
    /// whole cache.
    pub(crate) fn get_or_promote(
        &self,
        key: &str,
        generation: u64,
        floor: u64,
        unaffected_since: impl FnOnce(&str, u64) -> bool,
    ) -> Option<Resolution> {
        let (h, idx) = self.locate(key);
        let mut shard = self.shards[idx].lock().expect("window cache poisoned");
        match shard.map.get_mut(&h) {
            Some(e) if *e.key == *key && e.generation == generation => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(e.resolution)
            }
            Some(e)
                if *e.key == *key
                    && e.generation >= floor
                    && e.generation < generation
                    && unaffected_since(&e.key, e.generation - floor) =>
            {
                e.generation = generation;
                self.hits.fetch_add(1, Ordering::Relaxed);
                self.promotions.fetch_add(1, Ordering::Relaxed);
                Some(e.resolution)
            }
            _ => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Records `key`'s resolution under `generation`, evicting oldest
    /// entries (FIFO) past the shard budget. Re-recording a window the
    /// cache already holds (same text, e.g. under a fresh generation)
    /// updates the entry in place without allocating; a hash collision
    /// with different text overwrites the colliding entry.
    pub(crate) fn insert(&self, key: &str, generation: u64, resolution: Resolution) {
        let (h, idx) = self.locate(key);
        let mut shard = self.shards[idx].lock().expect("window cache poisoned");
        if let Some(e) = shard.map.get_mut(&h) {
            if *e.key != *key {
                e.key = key.into();
            }
            e.generation = generation;
            e.resolution = resolution;
            return;
        }
        while shard.map.len() >= self.shard_capacity {
            match shard.order.pop_front() {
                Some(old) => {
                    shard.map.remove(&old);
                }
                None => break,
            }
        }
        shard.order.push_back(h);
        shard.map.insert(
            h,
            CacheEntry {
                key: key.into(),
                generation,
                resolution,
            },
        );
    }

    /// Current counters.
    pub fn stats(&self) -> WindowCacheStats {
        WindowCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            promotions: self.promotions.load(Ordering::Relaxed),
            entries: self
                .shards
                .iter()
                .map(|s| s.lock().expect("window cache poisoned").map.len())
                .sum(),
            capacity: self.shard_capacity * SHARDS,
        }
    }

    /// The current generation (diagnostics and tests).
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }
}

/// Source of the unique ids fuzzy dictionaries bind with. Zero is
/// reserved for "nothing bound yet".
static NEXT_UID: AtomicU64 = AtomicU64::new(1);

/// A fresh nonzero uid for a newly compiled (or mutated) fuzzy
/// dictionary.
pub(crate) fn next_uid() -> u64 {
    NEXT_UID.fetch_add(1, Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_insert_same_generation() {
        let c = WindowCache::new(64);
        let g = c.bind(1);
        assert_eq!(c.get("canon eos", g), None);
        c.insert("canon eos", g, Some((SurfaceId::new(3), 1)));
        assert_eq!(c.get("canon eos", g), Some(Some((SurfaceId::new(3), 1))));
        c.insert("junk window", g, None);
        assert_eq!(c.get("junk window", g), Some(None));
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.entries), (2, 1, 2));
    }

    #[test]
    fn rebinding_a_different_dictionary_hides_old_entries() {
        let c = WindowCache::new(64);
        let g1 = c.bind(1);
        c.insert("window", g1, Some((SurfaceId::new(9), 2)));
        assert!(c.get("window", g1).is_some());
        let g2 = c.bind(2);
        assert_ne!(g1, g2);
        assert_eq!(c.get("window", g2), None, "stale entry must be invisible");
        // Rebinding the same uid keeps the generation stable.
        assert_eq!(c.bind(2), g2);
        // And binding back to uid 1 bumps again — the old entries stay
        // dead (their recorded generation can never recur).
        let g3 = c.bind(1);
        assert!(g3 > g2);
        assert_eq!(c.get("window", g3), None);
    }

    #[test]
    fn reinsert_updates_in_place() {
        let c = WindowCache::new(64);
        let g1 = c.bind(1);
        c.insert("canon eos", g1, None);
        assert_eq!(c.stats().entries, 1);
        // Same window under a fresh generation: the stale entry is
        // refreshed in place — entry count stays flat and the new
        // resolution wins.
        let g2 = c.bind(2);
        c.insert("canon eos", g2, Some((SurfaceId::new(7), 1)));
        assert_eq!(c.stats().entries, 1);
        assert_eq!(c.get("canon eos", g2), Some(Some((SurfaceId::new(7), 1))));
        assert_eq!(c.get("canon eos", g1), None, "old generation stays dead");
    }

    #[test]
    fn eviction_keeps_the_map_bounded() {
        let c = WindowCache::new(SHARDS); // one entry per shard
        let g = c.bind(1);
        for i in 0..1000 {
            c.insert(&format!("window {i}"), g, None);
        }
        let s = c.stats();
        assert!(s.entries <= s.capacity, "{s:?}");
        assert_eq!(s.capacity, SHARDS);
    }

    #[test]
    fn uids_are_unique_and_nonzero() {
        let a = next_uid();
        let b = next_uid();
        assert_ne!(a, 0);
        assert_ne!(a, b);
    }
}
