//! Fuzzy matching of Web queries to structured data — the downstream
//! application that motivates the whole paper (its opening example:
//! "Indy 4 near San Fran" resolving to showtimes for the right movie).
//!
//! The matcher compiles canonical strings plus mined synonyms into a
//! token-ID dictionary ([`crate::dict::CompiledDict`]), then segments
//! incoming queries with greedy longest-match so entity mentions are
//! found even when embedded in longer queries. The exact path is
//! allocation-free per window: the query is tokenized to ids once, and
//! each window probe is an integer-slice binary search — no `join`, no
//! string hashing. With [`FuzzyConfig`] attached
//! ([`EntityMatcher::with_fuzzy`]) every window that misses the exact
//! dictionary falls back to the [`crate::fuzzy`] candidate pipeline
//! (token-run signature / char n-gram generation + bounded
//! edit-distance verification, plus the optional phonetic/abbreviation
//! sources), so unmined misspellings still resolve — but only after
//! the window passes the compiled dictionary's reachability screen
//! ([`CompiledDict::can_reach`]), which skips provably hopeless
//! windows without any generation work.
//! [`EntityMatcher::match_batch`] shards a query batch across scoped
//! threads for serving-path throughput while keeping output order
//! (and content) deterministic.

use crate::data::MiningContext;
use crate::dict::CompiledDict;
use crate::fuzzy::{FuzzyConfig, FuzzyDictionary, FuzzyMatch, PrefixContext};
use crate::miner::MiningResult;
use crate::segment::OverlayState;
use crate::window_cache::WindowCache;
use std::sync::Arc;
use websyn_common::{EntityId, SurfaceId};
use websyn_text::{normalize, normalized, PrefixHit};

/// Tag bit marking a memoized window resolution as overlay-owned (the
/// surface id lives in the delta overlay's dictionary, not the base).
/// Surface id spaces are bounded far below 2^31, so the bit is free.
const OVERLAY_SID_BIT: u32 = 1 << 31;

/// Reusable per-shard segmentation state: a window-text → fuzzy
/// resolution memo.
///
/// Fuzzy window resolution is a pure function of the window text (for a
/// fixed dictionary and config), and real batches are Zipfian — the
/// same mentions recur across a batch. Threading one scratch through a
/// run of [`EntityMatcher::segment_with`] calls makes every duplicate
/// window verify once: the first miss pays for candidate generation and
/// edit-distance verification, every later occurrence is one hash
/// lookup. [`EntityMatcher::match_batch`] keeps one scratch per shard
/// thread, so memoization never crosses (or serializes) shards.
///
/// A scratch is tied to the matcher it was used with: reusing it
/// against a different dictionary or fuzzy config returns stale
/// resolutions. Call [`MatchScratch::clear`] (or drop it) when the
/// matcher changes.
#[derive(Debug, Default)]
pub struct MatchScratch {
    /// window text → fuzzy resolution (`None` = verified miss). Only
    /// windows that miss the exact dictionary land here. Keys are raw
    /// query windows — on a serving path that is untrusted input, so
    /// this is std's randomly seeded SipHash map, not `FxHashMap`
    /// (which `websyn_common::hash` forbids for untrusted input).
    memo: std::collections::HashMap<String, Option<(SurfaceId, usize)>>,
}

impl MatchScratch {
    /// An empty scratch (no allocation until the first fuzzy window).
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of memoized window resolutions.
    pub fn len(&self) -> usize {
        self.memo.len()
    }

    /// Whether nothing has been memoized yet.
    pub fn is_empty(&self) -> bool {
        self.memo.is_empty()
    }

    /// Forgets all memoized resolutions. Required before reusing the
    /// scratch with a different matcher.
    pub fn clear(&mut self) {
        self.memo.clear();
    }
}

/// One matched entity mention inside a query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MatchSpan {
    /// Index of the first matched token.
    pub start: usize,
    /// One past the last matched token.
    pub end: usize,
    /// Interned id of the dictionary surface the mention resolved to
    /// (ids ascend lexicographically over the dictionary's surfaces).
    pub surface_id: SurfaceId,
    /// The entity it resolves to.
    pub entity: EntityId,
    /// Edit distance between the query window and the surface
    /// (0 = exact match).
    pub distance: usize,
    /// Shared handle on the surface string (see [`MatchSpan::surface`]).
    surface: Arc<str>,
}

impl MatchSpan {
    /// The dictionary surface the mention resolved to (normalized).
    /// For exact matches this equals the query window verbatim. The
    /// string is shared with the dictionary — reading it costs nothing
    /// beyond the pointer chase.
    pub fn surface(&self) -> &str {
        &self.surface
    }
}

/// One segmentation request: the query text, whether it is already
/// normalized, and an optional cross-query [`MatchScratch`] — the
/// single entry point behind every `segment*` convenience wrapper.
///
/// The four historical entry points (`segment`, `segment_with`,
/// `segment_normalized`, `segment_normalized_with`) are a 2×2 grid of
/// (raw | normalized) × (no scratch | scratch). `SegmentRequest` names
/// those two axes explicitly, so call sites compose them instead of
/// picking the right method name — and a future axis (say, a span
/// limit) extends the request rather than doubling the method count.
///
/// # Examples
///
/// ```
/// use websyn_common::EntityId;
/// use websyn_core::{EntityMatcher, MatchScratch, SegmentRequest};
///
/// let m = EntityMatcher::from_pairs(vec![("indy 4", EntityId::new(7))]);
///
/// // Raw query, one-shot:
/// let spans = m.resolve(SegmentRequest::raw("Indy 4 near san fran"));
/// assert_eq!(spans[0].entity, EntityId::new(7));
///
/// // Pre-normalized query with a batch scratch (the serving path):
/// let mut scratch = MatchScratch::new();
/// let spans = m.resolve(SegmentRequest::normalized("indy 4").scratch(&mut scratch));
/// assert_eq!(spans.len(), 1);
/// ```
#[derive(Debug)]
pub struct SegmentRequest<'q, 's> {
    query: &'q str,
    /// Caller guarantees `query` is canonical ([`websyn_text::normalize()`]
    /// output) — skips the normalization pass.
    pre_normalized: bool,
    scratch: Option<&'s mut MatchScratch>,
}

impl<'q, 's> SegmentRequest<'q, 's> {
    /// A request over raw query text: normalization runs first.
    pub fn raw(query: &'q str) -> Self {
        Self {
            query,
            pre_normalized: false,
            scratch: None,
        }
    }

    /// A request over text the caller guarantees is already canonical
    /// (the output of [`websyn_text::normalize()`]) — the serving-path
    /// constructor: a result cache keyed by normalized query normalizes
    /// once, probes the cache, and on a miss hands the *same* string
    /// here without a second normalization pass. Canonical form is
    /// asserted in debug builds.
    pub fn normalized(query: &'q str) -> Self {
        Self {
            query,
            pre_normalized: true,
            scratch: None,
        }
    }

    /// Attaches a cross-query [`MatchScratch`], so duplicate fuzzy
    /// windows across a run of requests verify once. The memo is a
    /// pure-function cache: output is byte-identical with or without it.
    pub fn scratch(mut self, scratch: &'s mut MatchScratch) -> Self {
        self.scratch = Some(scratch);
        self
    }
}

/// A compiled surface → entity dictionary with a query segmenter.
#[derive(Debug, Clone, Default)]
pub struct EntityMatcher {
    /// The compiled token-ID dictionary, shared with the fuzzy side.
    dict: Arc<CompiledDict>,
    /// Distinct surfaces dropped because they mapped to multiple
    /// entities.
    ambiguous_dropped: usize,
    /// Approximate-lookup side, present once
    /// [`EntityMatcher::with_fuzzy`] has compiled it.
    fuzzy: Option<FuzzyDictionary>,
    /// Cross-batch window-resolution cache, attached via
    /// [`EntityMatcher::with_window_cache`]. Shared by every shard of
    /// every [`EntityMatcher::match_batch`] call (and by clones of this
    /// matcher), so first-sight fuzzy verification for a recurring
    /// window is paid once per process, not once per shard per batch.
    window_cache: Option<Arc<WindowCache>>,
    /// Live delta overlay (`crate::segment`): when present, every
    /// probe consults the base dictionary *and* the overlay's small
    /// compiled dictionary in lock-step, with overridden/tombstoned
    /// base surfaces masked out — resolution is byte-identical to a
    /// monolithic recompile of the merged surface set. Attached only
    /// by [`crate::segment::SegmentedDict`]; plain matchers pay one
    /// `Option` check.
    overlay: Option<Arc<OverlayState>>,
}

impl EntityMatcher {
    /// Builds a matcher from raw `(surface, entity)` pairs. Surfaces
    /// are normalized; a surface claimed by two entities is dropped
    /// entirely (an ambiguous surface cannot resolve a query).
    pub fn from_pairs<S: AsRef<str>>(pairs: impl IntoIterator<Item = (S, EntityId)>) -> Self {
        let mut surfaces: websyn_common::FxHashMap<String, EntityId> = Default::default();
        let mut banned: websyn_common::FxHashSet<String> = Default::default();
        for (raw, entity) in pairs {
            let surface = normalize(raw.as_ref());
            if surface.is_empty() || banned.contains(&surface) {
                continue;
            }
            match surfaces.get(&surface) {
                None => {
                    surfaces.insert(surface, entity);
                }
                Some(&existing) if existing == entity => {}
                Some(_) => {
                    surfaces.remove(&surface);
                    banned.insert(surface);
                }
            }
        }
        let dict = CompiledDict::build(surfaces.into_iter().collect());
        Self {
            dict: Arc::new(dict),
            // Each banned surface was dropped exactly once, however
            // many conflicting claims arrived for it.
            ambiguous_dropped: banned.len(),
            fuzzy: None,
            window_cache: None,
            overlay: None,
        }
    }

    /// Builds a matcher from a mining result: every entity's canonical
    /// string plus every mined synonym.
    pub fn from_mining(result: &MiningResult, ctx: &MiningContext) -> Self {
        let canonical = ctx
            .u_set
            .iter()
            .enumerate()
            .map(|(i, u)| (u.clone(), EntityId::from_usize(i)));
        let mined = result
            .per_entity
            .iter()
            .flat_map(|es| es.synonyms.iter().map(move |s| (s.text.clone(), es.entity)));
        Self::from_pairs(canonical.chain(mined))
    }

    /// Compiles the fuzzy side of the dictionary (the candidate-source
    /// chain of [`crate::fuzzy`] over the already-compiled surfaces)
    /// and returns the matcher with approximate lookup enabled. Exact
    /// surfaces still resolve first; see [`crate::fuzzy`] for the
    /// resolution rules.
    pub fn with_fuzzy(mut self, config: FuzzyConfig) -> Self {
        self.fuzzy = Some(FuzzyDictionary::from_dict(Arc::clone(&self.dict), config));
        self
    }

    /// The fuzzy config, when fuzzy lookup is enabled.
    pub fn fuzzy_config(&self) -> Option<&FuzzyConfig> {
        self.fuzzy.as_ref().map(|f| f.config())
    }

    /// The compiled fuzzy side, when enabled (`crate::segment` runs
    /// footprint proposal probes against it).
    pub(crate) fn fuzzy_dict(&self) -> Option<&FuzzyDictionary> {
        self.fuzzy.as_ref()
    }

    /// Attaches a live delta overlay — [`crate::segment::SegmentedDict`]
    /// only; the overlay must have been built against *this* matcher's
    /// dictionary and fuzzy config.
    pub(crate) fn with_overlay(mut self, overlay: Arc<OverlayState>) -> Self {
        self.overlay = Some(overlay);
        self
    }

    /// The attached delta overlay, if any.
    pub(crate) fn overlay(&self) -> Option<&OverlayState> {
        self.overlay.as_deref()
    }

    /// Attaches a fresh cross-batch [`WindowCache`] holding roughly
    /// `capacity` resolved windows. Unlike the per-shard
    /// [`MatchScratch`] memo (batch-scoped, shared-nothing), the window
    /// cache persists across batches and is shared by every shard
    /// thread — the first batch pays first-sight fuzzy verification,
    /// later batches (and later shards) reuse it. Pure-function cache:
    /// spans are byte-identical with or without it (pinned by the
    /// cache-on ≡ cache-off proptests). No-op for exact-only matchers
    /// until [`EntityMatcher::with_fuzzy`] runs.
    pub fn with_window_cache(self, capacity: usize) -> Self {
        self.with_shared_window_cache(Arc::new(WindowCache::new(capacity)))
    }

    /// Attaches an existing [`WindowCache`] — how a rebuild-and-swap
    /// deployment carries one cache across matcher generations (the
    /// cache re-binds to the new fuzzy dictionary on first use, making
    /// stale windows invisible; see `WindowCache::bind`).
    pub fn with_shared_window_cache(mut self, cache: Arc<WindowCache>) -> Self {
        self.window_cache = Some(cache);
        self
    }

    /// The attached window cache, if any (stats, sharing).
    pub fn window_cache(&self) -> Option<&Arc<WindowCache>> {
        self.window_cache.as_ref()
    }

    /// The compiled dictionary (token vocabulary, surface table,
    /// entities).
    pub fn dict(&self) -> &CompiledDict {
        &self.dict
    }

    /// The compiled dictionary as a shared handle. [`CompiledDict`] is
    /// immutable, so deployments update it by *rebuild and swap*:
    /// compile a new matcher off-line, then atomically replace the old
    /// `Arc` (and invalidate any result cache keyed on it). Pointer
    /// identity of this handle is the cheap "is this still the same
    /// dictionary?" test — see `websyn_serve::Engine`.
    pub fn shared_dict(&self) -> Arc<CompiledDict> {
        Arc::clone(&self.dict)
    }

    /// Number of distinct *live* surfaces: the base dictionary, minus
    /// surfaces shadowed by a delta overlay, plus overlay upserts.
    pub fn len(&self) -> usize {
        match &self.overlay {
            Some(ov) => ov.live_len(self.dict.len()),
            None => self.dict.len(),
        }
    }

    /// Whether the dictionary has no live surface.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of distinct surfaces dropped as ambiguous: each surface
    /// claimed by two or more entities counts exactly once, no matter
    /// how many claims arrived.
    pub fn ambiguous_dropped(&self) -> usize {
        self.ambiguous_dropped
    }

    /// Exact whole-query match after normalization (overlay-aware:
    /// overlay upserts win, tombstoned base surfaces miss).
    pub fn lookup(&self, query: &str) -> Option<EntityId> {
        let normalized = normalized(query);
        if let Some(ov) = &self.overlay {
            let odict = ov.matcher.dict();
            if let Some(sid) = odict.get_str(&normalized) {
                return Some(odict.entity(sid));
            }
            return self
                .dict
                .get_str(&normalized)
                .filter(|sid| !ov.shadowed(sid.raw()))
                .map(|sid| self.dict.entity(sid));
        }
        self.dict
            .get_str(&normalized)
            .map(|sid| self.dict.entity(sid))
    }

    /// Whole-query match with the fuzzy fallback: exact first, then
    /// approximate resolution when fuzzy lookup is enabled. Exact hits
    /// report distance 0.
    pub fn lookup_fuzzy(&self, query: &str) -> Option<FuzzyMatch> {
        let normalized = normalized(query);
        if let Some(ov) = self.overlay.clone() {
            return self.lookup_fuzzy_merged(&ov, &normalized);
        }
        if let Some(sid) = self.dict.get_str(&normalized) {
            return Some(self.exact_match(sid));
        }
        self.fuzzy.as_ref()?.resolve(&normalized)
    }

    /// [`EntityMatcher::lookup_fuzzy`] over base + overlay: the merged
    /// exact probe, then the lock-step merged candidate chains.
    fn lookup_fuzzy_merged(&self, ov: &OverlayState, normalized: &str) -> Option<FuzzyMatch> {
        let odict = ov.matcher.dict();
        if let Some(sid) = odict.get_str(normalized) {
            return Some(FuzzyMatch::new(
                sid,
                odict.entity(sid),
                0,
                odict.surface_arc(sid),
            ));
        }
        if let Some(sid) = self
            .dict
            .get_str(normalized)
            .filter(|sid| !ov.shadowed(sid.raw()))
        {
            return Some(self.exact_match(sid));
        }
        let bf = self.fuzzy.as_ref()?;
        let of = ov.matcher.fuzzy.as_ref()?;
        let (mut bounds, mut ids) = (Vec::new(), Vec::new());
        let (mut obounds, mut oids) = (Vec::new(), Vec::new());
        self.dict.map_query(normalized, &mut bounds, &mut ids);
        odict.map_query(normalized, &mut obounds, &mut oids);
        if ids.is_empty() {
            return None;
        }
        let chars = normalized.chars().count();
        let budget = bf.config().max_distance_for(chars);
        let breach = self.dict.can_reach(&ids, chars, budget);
        let oreach = odict.can_reach(&oids, chars, budget);
        let (side, sid, distance) = crate::fuzzy::resolve_merged_window(
            bf,
            of,
            |sid| ov.shadowed(sid),
            |tok| ov.dead_token(tok),
            normalized,
            &ids,
            &oids,
            budget,
            breach.edit_reachable || oreach.edit_reachable,
        )?;
        let dict = if side { odict } else { &*self.dict };
        Some(FuzzyMatch::new(
            sid,
            dict.entity(sid),
            distance,
            dict.surface_arc(sid),
        ))
    }

    /// A distance-0 [`FuzzyMatch`] for an exact dictionary hit.
    fn exact_match(&self, sid: SurfaceId) -> FuzzyMatch {
        FuzzyMatch::new(sid, self.dict.entity(sid), 0, self.dict.surface_arc(sid))
    }

    /// Serializes the dictionary as deterministic TSV
    /// (`surface \t entity-id\n`, sorted by surface) — the deployment
    /// artifact a serving layer would load. When fuzzy lookup is
    /// enabled, a `#!fuzzy` header line carries the [`FuzzyConfig`], so
    /// [`EntityMatcher::from_tsv`] rebuilds the approximate side too
    /// (the derived indexes themselves are recompiled, not stored).
    pub fn to_tsv(&self) -> String {
        let mut out = String::with_capacity(self.dict.len() * 24 + 80);
        if let Some(config) = self.fuzzy_config() {
            out.push_str(&format!(
                "#!fuzzy\tgram_size={}\tmin_len_one_edit={}\tmin_len_two_edits={}\tmax_distance={}\ttranspositions={}\tphonetic={}\tabbrev={}\ttoken_signature={}\n",
                config.gram_size,
                config.min_len_one_edit,
                config.min_len_two_edits,
                config.max_distance,
                config.transpositions,
                config.phonetic,
                config.abbrev,
                config.token_signature,
            ));
        }
        match &self.overlay {
            // Surface ids are lexicographic, so id order is sorted
            // order.
            None => {
                for (_, surface, entity) in self.dict.iter() {
                    out.push_str(surface);
                    out.push('\t');
                    out.push_str(&entity.raw().to_string());
                    out.push('\n');
                }
            }
            // Merged view: live base surfaces plus overlay upserts,
            // re-sorted so the artifact stays deterministic and
            // byte-identical to a compacted recompile's.
            Some(ov) => {
                let odict = ov.matcher.dict();
                let mut rows: Vec<(&str, EntityId)> = self
                    .dict
                    .iter()
                    .filter(|(sid, _, _)| !ov.shadowed(sid.raw()))
                    .map(|(_, s, e)| (s, e))
                    .chain(odict.iter().map(|(_, s, e)| (s, e)))
                    .collect();
                rows.sort_unstable_by(|a, b| a.0.cmp(b.0));
                for (surface, entity) in rows {
                    out.push_str(surface);
                    out.push('\t');
                    out.push_str(&entity.raw().to_string());
                    out.push('\n');
                }
            }
        }
        out
    }

    /// Loads a dictionary produced by [`EntityMatcher::to_tsv`],
    /// recompiling the fuzzy side if the artifact carries a `#!fuzzy`
    /// header.
    ///
    /// Deprecated in favor of `DictHandle::from_tsv`: the lifecycle
    /// handle is the single entry point for loading, live-updating
    /// (`apply_delta`/`commit`), and compacting a serving dictionary,
    /// and a bare matcher loaded here cannot take deltas.
    ///
    /// # Errors
    /// Returns a codec error on malformed rows (missing tab,
    /// non-numeric id, embedded tab in surface) or a malformed fuzzy
    /// header.
    #[deprecated(
        note = "use DictHandle::from_tsv — the dictionary-lifecycle API (loads, live deltas, compaction)"
    )]
    pub fn from_tsv(tsv: &str) -> websyn_common::Result<Self> {
        let mut pairs = Vec::new();
        let mut fuzzy: Option<FuzzyConfig> = None;
        for (lineno, line) in tsv.lines().enumerate() {
            if line.is_empty() {
                continue;
            }
            if let Some(header) = line.strip_prefix("#!fuzzy") {
                fuzzy = Some(parse_fuzzy_header(header, lineno + 1)?);
                continue;
            }
            let (surface, id) = line.rsplit_once('\t').ok_or_else(|| {
                websyn_common::Error::codec(format!("line {}: missing tab", lineno + 1))
            })?;
            if surface.contains('\t') {
                return Err(websyn_common::Error::codec(format!(
                    "line {}: embedded tab in surface",
                    lineno + 1
                )));
            }
            let id: u32 = id.parse().map_err(|e| {
                websyn_common::Error::codec(format!("line {}: bad entity id: {e}", lineno + 1))
            })?;
            pairs.push((surface.to_string(), EntityId::new(id)));
        }
        let matcher = Self::from_pairs(pairs);
        Ok(match fuzzy {
            Some(config) => matcher.with_fuzzy(config),
            None => matcher,
        })
    }

    /// Segments a free-form query into entity mentions with greedy
    /// longest-match, left to right. Unmatched tokens are skipped.
    ///
    /// Within each window the compiled dictionary is probed first (an
    /// allocation-free token-id comparison); when fuzzy lookup is
    /// enabled ([`EntityMatcher::with_fuzzy`]) a window that misses
    /// exactly is resolved approximately before the window shrinks, so
    /// a typo inside a long mention does not fragment it. The fuzzy
    /// probe slices the window's text straight out of the normalized
    /// query — tokens are single-spaced after normalization, so no
    /// `join` is ever needed.
    ///
    /// # Examples
    ///
    /// ```
    /// use websyn_core::EntityMatcher;
    /// use websyn_common::EntityId;
    ///
    /// let m = EntityMatcher::from_pairs(vec![
    ///     ("indy 4", EntityId::new(7)),
    /// ]);
    /// let spans = m.segment("Indy 4 near san fran");
    /// assert_eq!(spans.len(), 1);
    /// assert_eq!(spans[0].entity, EntityId::new(7));
    /// assert_eq!(spans[0].surface(), "indy 4");
    /// assert_eq!(spans[0].distance, 0);
    /// ```
    pub fn segment(&self, query: &str) -> Vec<MatchSpan> {
        // No scratch: a single query rarely repeats a window, so the
        // memo would be pure insert overhead here.
        self.resolve(SegmentRequest::raw(query))
    }

    /// [`EntityMatcher::segment`] with a caller-provided
    /// [`MatchScratch`], so duplicate fuzzy windows across a run of
    /// queries verify once. The memo is a pure-function cache: for any
    /// scratch state the output is byte-identical to
    /// [`EntityMatcher::segment`].
    pub fn segment_with(&self, query: &str, scratch: &mut MatchScratch) -> Vec<MatchSpan> {
        self.resolve(SegmentRequest::raw(query).scratch(scratch))
    }

    /// Segments a query that is already in normalized form (the output
    /// of [`websyn_text::normalize()`]) — the serving-path entry point; see
    /// [`SegmentRequest::normalized`]. Output is byte-identical to
    /// `segment(normalized)`.
    pub fn segment_normalized(&self, normalized: &str) -> Vec<MatchSpan> {
        self.resolve(SegmentRequest::normalized(normalized))
    }

    /// [`EntityMatcher::segment_normalized`] with a caller-provided
    /// [`MatchScratch`].
    pub fn segment_normalized_with(
        &self,
        normalized: &str,
        scratch: &mut MatchScratch,
    ) -> Vec<MatchSpan> {
        self.resolve(SegmentRequest::normalized(normalized).scratch(scratch))
    }

    /// Segments a query described by a [`SegmentRequest`] — the unified
    /// entry point every `segment*` wrapper above delegates to.
    ///
    /// For a fixed matcher the result is a pure function of the query
    /// text: normalization state and scratch attachment change only the
    /// work done, never the spans produced.
    pub fn resolve(&self, request: SegmentRequest<'_, '_>) -> Vec<MatchSpan> {
        if request.pre_normalized {
            debug_assert_eq!(
                normalize(request.query),
                request.query,
                "SegmentRequest::normalized requires canonical input"
            );
            self.segment_inner(request.query, request.scratch)
        } else {
            self.segment_inner(&normalized(request.query), request.scratch)
        }
    }

    /// The segmenter core over a normalized query. `scratch` carries
    /// the cross-query window memo when the caller is running a batch;
    /// `None` skips memoization entirely (single-query entry points).
    fn segment_inner(
        &self,
        normalized: &str,
        mut scratch: Option<&mut MatchScratch>,
    ) -> Vec<MatchSpan> {
        if let Some(ov) = self.overlay.clone() {
            return self.segment_merged(&ov, normalized, scratch);
        }
        // Per-query scratch (token byte ranges + token ids + token char
        // ranges) lives in thread-local buffers: segment allocates only
        // the normalized string (and not even that when the query is
        // already canonical) plus the output spans.
        thread_local! {
            static SCRATCH: crate::dict::QueryScratch =
                const { std::cell::RefCell::new((Vec::new(), Vec::new())) };
            static CHAR_BOUNDS: std::cell::RefCell<Vec<(u32, u32)>> =
                const { std::cell::RefCell::new(Vec::new()) };
            static PREFIX_HITS: std::cell::RefCell<Vec<PrefixHit>> =
                const { std::cell::RefCell::new(Vec::new()) };
        }
        SCRATCH.with_borrow_mut(|(bounds, ids)| {
            self.dict.map_query(normalized, bounds, ids);
            let n = ids.len();
            let mut spans = Vec::new();
            let mut i = 0;
            match &self.fuzzy {
                // Exact-only: one probe-table descent per position
                // finds the longest match there.
                None => {
                    while i < n {
                        let longest = self.dict.max_tokens().min(n - i);
                        match self.dict.longest_match(&ids[i..], longest) {
                            Some((window, sid)) => {
                                spans.push(self.span(i, window, sid, 0));
                                i += window;
                            }
                            None => i += 1,
                        }
                    }
                }
                // Fuzzy: per position, one exact descent bounds the
                // fuzzy work — only windows *longer* than the longest
                // exact match need approximate resolution (a fuzzy hit
                // on a longer window beats the exact hit; at the exact
                // length and below, the old per-length walk would have
                // stopped at the exact hit anyway). Each candidate
                // window is screened by the compiled dictionary's
                // reachability tables before any candidate generation,
                // and resolutions are memoized in `scratch` — duplicate
                // windows across a batch pay for generation and
                // verification once.
                Some(fuzzy) => CHAR_BOUNDS.with_borrow_mut(|char_bounds| {
                    PREFIX_HITS.with_borrow_mut(|prefix_hits| {
                        token_char_bounds(normalized, bounds, char_bounds);
                        let prune = fuzzy.all_verifying();
                        // Bind the cross-batch window cache to this fuzzy
                        // dictionary once per query; the returned
                        // generation scopes every probe below.
                        let wc = self
                            .window_cache
                            .as_deref()
                            .map(|c| (c, c.bind(fuzzy.uid())));
                        while i < n {
                            let longest = self.dict.max_tokens().min(n - i);
                            let exact = self.dict.longest_match(&ids[i..], longest);
                            let exact_w = exact.map_or(0, |(w, _)| w);
                            let mut hit = exact.map(|(w, sid)| (w, sid, 0));
                            // One candidate probe pass at this position
                            // serves every window below: prefix-capable
                            // sources collect hits over the *longest*
                            // window once (lazily, inside the first actual
                            // resolution) and re-filter per window, instead
                            // of re-probing the index per window.
                            let mut prefix_ctx = if fuzzy.has_prefix_source() && longest > exact_w {
                                let max_chars =
                                    (char_bounds[i + longest - 1].1 - char_bounds[i].0) as usize;
                                let max_text = &normalized
                                    [bounds[i].0 as usize..bounds[i + longest - 1].1 as usize];
                                Some(PrefixContext::new(
                                    max_text,
                                    fuzzy.config().max_distance_for(max_chars),
                                    &mut *prefix_hits,
                                ))
                            } else {
                                None
                            };
                            for window in (exact_w + 1..=longest).rev() {
                                let window_ids = &ids[i..i + window];
                                let chars =
                                    (char_bounds[i + window - 1].1 - char_bounds[i].0) as usize;
                                let budget = fuzzy.config().max_distance_for(chars);
                                if prune && budget == 0 {
                                    // Shorter windows only get shorter:
                                    // every remaining budget is 0 too, and
                                    // with a fully-verifying chain nothing
                                    // below can resolve.
                                    break;
                                }
                                let reach = self.dict.can_reach(window_ids, chars, budget);
                                if prune && !reach.edit_reachable {
                                    crate::telemetry::WINDOWS_PRUNED.incr();
                                    continue;
                                }
                                // A window with no vocabulary token that no
                                // applicable source can propose for
                                // (anchor-keyed chain, no space-damage
                                // anchor at this shape): skip without memo.
                                if !reach.has_vocab_token
                                    && !fuzzy.may_resolve_unanchored(window, budget)
                                {
                                    continue;
                                }
                                let window_text = &normalized
                                    [bounds[i].0 as usize..bounds[i + window - 1].1 as usize];
                                // Resolution ladder: batch-local memo
                                // (lock-free) → shared window cache (one
                                // shard lock) → full candidate generation
                                // + verification. A window-cache hit is
                                // deliberately NOT copied into the memo:
                                // re-probing the cache costs one short
                                // lock + hash, while the copy would pay a
                                // String allocation per window per shard —
                                // measurably slower on warm batches.
                                crate::telemetry::WINDOWS_RESOLVED.incr();
                                let resolved = 'resolved: {
                                    if let Some(scratch) = scratch.as_deref_mut() {
                                        if let Some(&cached) = scratch.memo.get(window_text) {
                                            crate::telemetry::LADDER_MEMO_HITS.incr();
                                            break 'resolved cached;
                                        }
                                    }
                                    if let Some((cache, generation)) = wc {
                                        if let Some(cached) = cache.get(window_text, generation) {
                                            crate::telemetry::LADDER_CACHE_HITS.incr();
                                            break 'resolved cached;
                                        }
                                    }
                                    crate::telemetry::LADDER_FULL_RESOLVES.incr();
                                    let r = fuzzy
                                        .resolve_pruned_prefix(
                                            window_text,
                                            window_ids,
                                            chars,
                                            budget,
                                            reach.edit_reachable,
                                            prefix_ctx.as_mut(),
                                        )
                                        .map(|hit| (hit.surface_id, hit.distance));
                                    if let Some(scratch) = scratch.as_deref_mut() {
                                        scratch.memo.insert(window_text.to_string(), r);
                                    }
                                    if let Some((cache, generation)) = wc {
                                        cache.insert(window_text, generation, r);
                                    }
                                    r
                                };
                                if let Some((sid, distance)) = resolved {
                                    hit = Some((window, sid, distance));
                                    break;
                                }
                            }
                            match hit {
                                Some((window, sid, distance)) => {
                                    spans.push(self.span(i, window, sid, distance));
                                    i += window;
                                }
                                None => i += 1,
                            }
                        }
                    })
                }),
            }
            spans
        })
    }

    /// The longest exact match at a position of the *merged* view:
    /// the base descent masked by the overlay's shadow set, against
    /// the overlay's own descent; the longer window wins. An
    /// equal-length tie is impossible (both segments exact-matching
    /// the same window text would mean the same surface string lives
    /// in both, but a delta'd surface always shadows its base copy) —
    /// the overlay is preferred if it ever arises.
    fn merged_exact(
        &self,
        ov: &OverlayState,
        ids: &[u32],
        oids: &[u32],
        longest: usize,
    ) -> Option<(usize, bool, SurfaceId)> {
        if longest == 0 {
            return None;
        }
        let base = self
            .dict
            .longest_match_where(ids, longest, |sid| !ov.shadowed(sid));
        let over = ov.matcher.dict().longest_match(oids, longest);
        match (base, over) {
            (Some((bw, bs)), Some((ow, os))) => {
                debug_assert_ne!(bw, ow, "live surface duplicated across segments");
                if ow >= bw {
                    Some((ow, true, os))
                } else {
                    Some((bw, false, bs))
                }
            }
            (Some((bw, bs)), None) => Some((bw, false, bs)),
            (None, Some((ow, os))) => Some((ow, true, os)),
            (None, None) => None,
        }
    }

    /// [`EntityMatcher::segment_inner`] over base + delta overlay:
    /// the same greedy longest-match walk, with every probe running
    /// both segments in lock-step so output is byte-identical (up to
    /// segment-local surface ids) to a monolithic recompile of the
    /// merged surface set — pinned by the `segmented_dict` proptests.
    ///
    /// Differences from the monolithic walk, all equivalence-preserving:
    /// the window bound is the merged view's `live_max_tokens`; the
    /// reachability screen is the union of both segments' screens
    /// (pruning is results-invariant, and the union is conservative
    /// over the merged surface set); fuzzy windows resolve through
    /// [`crate::fuzzy::resolve_merged_window`]; and the shared window
    /// cache binds to (base uid, overlay epoch) with stale entries
    /// *promoted* across commits whose footprints provably miss them.
    /// Prefix-collected candidate probing is skipped on this path
    /// (plain per-window proposal — same results, somewhat slower;
    /// compaction restores the fast path).
    fn segment_merged(
        &self,
        ov: &OverlayState,
        normalized: &str,
        mut scratch: Option<&mut MatchScratch>,
    ) -> Vec<MatchSpan> {
        thread_local! {
            static SCRATCH: crate::dict::QueryScratch =
                const { std::cell::RefCell::new((Vec::new(), Vec::new())) };
            static OVER_SCRATCH: crate::dict::QueryScratch =
                const { std::cell::RefCell::new((Vec::new(), Vec::new())) };
            static CHAR_BOUNDS: std::cell::RefCell<Vec<(u32, u32)>> =
                const { std::cell::RefCell::new(Vec::new()) };
        }
        SCRATCH.with_borrow_mut(|(bounds, ids)| {
            OVER_SCRATCH.with_borrow_mut(|(obounds, oids)| {
                let odict = ov.matcher.dict();
                self.dict.map_query(normalized, bounds, ids);
                odict.map_query(normalized, obounds, oids);
                debug_assert_eq!(bounds, obounds, "tokenization is vocabulary-independent");
                let n = ids.len();
                let mut spans = Vec::new();
                let mut i = 0;
                let (bf, of) = match (&self.fuzzy, &ov.matcher.fuzzy) {
                    (Some(bf), Some(of)) => (bf, of),
                    // Exact-only dictionary: one merged descent per
                    // position.
                    _ => {
                        while i < n {
                            let longest = ov.live_max_tokens.min(n - i);
                            match self.merged_exact(ov, &ids[i..], &oids[i..], longest) {
                                Some((window, side, sid)) => {
                                    let dict = if side { odict } else { &*self.dict };
                                    spans.push(span_in(dict, i, window, sid, 0));
                                    i += window;
                                }
                                None => i += 1,
                            }
                        }
                        return spans;
                    }
                };
                CHAR_BOUNDS.with_borrow_mut(|char_bounds| {
                    token_char_bounds(normalized, bounds, char_bounds);
                    let prune = bf.all_verifying();
                    let wc = self.window_cache.as_deref().map(|c| {
                        let (generation, floor) = c.bind_epoch(bf.uid(), ov.epoch);
                        (c, generation, floor)
                    });
                    while i < n {
                        let longest = ov.live_max_tokens.min(n - i);
                        let exact = self.merged_exact(ov, &ids[i..], &oids[i..], longest);
                        let exact_w = exact.map_or(0, |(w, _, _)| w);
                        let mut hit = exact.map(|(w, side, sid)| (w, side, sid, 0));
                        for window in (exact_w + 1..=longest).rev() {
                            let window_ids = &ids[i..i + window];
                            let over_ids = &oids[i..i + window];
                            let chars = (char_bounds[i + window - 1].1 - char_bounds[i].0) as usize;
                            let budget = bf.config().max_distance_for(chars);
                            if prune && budget == 0 {
                                break;
                            }
                            let breach = self.dict.can_reach(window_ids, chars, budget);
                            let oreach = odict.can_reach(over_ids, chars, budget);
                            let edit_reachable = breach.edit_reachable || oreach.edit_reachable;
                            if prune && !edit_reachable {
                                crate::telemetry::WINDOWS_PRUNED.incr();
                                continue;
                            }
                            if !(breach.has_vocab_token
                                || oreach.has_vocab_token
                                || bf.may_resolve_unanchored(window, budget))
                            {
                                continue;
                            }
                            let window_text = &normalized
                                [bounds[i].0 as usize..bounds[i + window - 1].1 as usize];
                            crate::telemetry::WINDOWS_RESOLVED.incr();
                            let resolved = 'resolved: {
                                if let Some(scratch) = scratch.as_deref_mut() {
                                    if let Some(&cached) = scratch.memo.get(window_text) {
                                        crate::telemetry::LADDER_MEMO_HITS.incr();
                                        break 'resolved cached.map(|(sid, d)| {
                                            let raw = sid.raw();
                                            (
                                                raw & OVERLAY_SID_BIT != 0,
                                                SurfaceId::new(raw & !OVERLAY_SID_BIT),
                                                d,
                                            )
                                        });
                                    }
                                }
                                if let Some((cache, generation, floor)) = wc {
                                    // Stale-but-promotable entries: a
                                    // verdict cached `k` commits ago is
                                    // still exact if every footprint
                                    // since provably misses the window.
                                    let probe = cache.get_or_promote(
                                        window_text,
                                        generation,
                                        floor,
                                        |key, entry_epoch| {
                                            ov.footprints[entry_epoch as usize..]
                                                .iter()
                                                .all(|fp| !fp.affects_window(key))
                                        },
                                    );
                                    if let Some(cached) = probe {
                                        crate::telemetry::LADDER_CACHE_HITS.incr();
                                        break 'resolved cached.map(|(sid, d)| (false, sid, d));
                                    }
                                }
                                crate::telemetry::LADDER_FULL_RESOLVES.incr();
                                let r = crate::fuzzy::resolve_merged_window(
                                    bf,
                                    of,
                                    |sid| ov.shadowed(sid),
                                    |tok| ov.dead_token(tok),
                                    window_text,
                                    window_ids,
                                    over_ids,
                                    budget,
                                    edit_reachable,
                                );
                                if let Some(scratch) = scratch.as_deref_mut() {
                                    scratch.memo.insert(
                                        window_text.to_string(),
                                        r.map(|(side, sid, d)| {
                                            let tag = if side { OVERLAY_SID_BIT } else { 0 };
                                            (SurfaceId::new(sid.raw() | tag), d)
                                        }),
                                    );
                                }
                                if let Some((cache, generation, _)) = wc {
                                    // Only base-owned verdicts (and
                                    // misses) are durable: overlay
                                    // surface ids are re-minted every
                                    // commit, so an overlay winner must
                                    // not outlive its epoch.
                                    match r {
                                        Some((true, _, _)) => {}
                                        Some((false, sid, d)) => {
                                            cache.insert(window_text, generation, Some((sid, d)));
                                        }
                                        None => cache.insert(window_text, generation, None),
                                    }
                                }
                                r
                            };
                            if let Some((side, sid, distance)) = resolved {
                                hit = Some((window, side, sid, distance));
                                break;
                            }
                        }
                        match hit {
                            Some((window, side, sid, distance)) => {
                                let dict = if side { odict } else { &*self.dict };
                                spans.push(span_in(dict, i, window, sid, distance));
                                i += window;
                            }
                            None => i += 1,
                        }
                    }
                    spans
                })
            })
        })
    }

    /// Assembles one output span.
    fn span(&self, start: usize, window: usize, sid: SurfaceId, distance: usize) -> MatchSpan {
        MatchSpan {
            start,
            end: start + window,
            surface_id: sid,
            entity: self.dict.entity(sid),
            distance,
            surface: self.dict.surface_arc(sid),
        }
    }

    /// Minimum queries a shard must receive before `match_batch` will
    /// spawn a thread for it. Scoped spawn+join costs ~20–25µs per
    /// thread on this class of hardware while a warm-cache query costs
    /// ~2µs, so a shard needs dozens of queries just to pay for its own
    /// thread; below this chunk size extra shards *slow the batch
    /// down* (the "inverted shard scaling" once visible in
    /// `BENCH_matcher.json`). Callers can still ask for any shard
    /// count — the clamp only refuses to oversplit small batches.
    const MIN_SHARD_CHUNK: usize = 64;

    /// Segments a batch of queries on up to `shards` scoped threads.
    ///
    /// The batch is split into contiguous chunks, one thread per chunk,
    /// and results are reassembled in input order — so for any shard
    /// count the output is identical (byte for byte) to mapping
    /// [`EntityMatcher::segment`] over the batch sequentially. Each
    /// shard carries its own [`MatchScratch`], so duplicate fuzzy
    /// windows within a shard's chunk verify once (shared-nothing
    /// except the optional [`WindowCache`], which memoizes resolved
    /// windows across shards and batches). The effective shard count is
    /// clamped so every thread gets at least
    /// `MIN_SHARD_CHUNK` queries — spawning threads for
    /// smaller chunks costs more than the work they carry.
    pub fn match_batch<S: AsRef<str> + Sync>(
        &self,
        queries: &[S],
        shards: usize,
    ) -> Vec<Vec<MatchSpan>> {
        let shards = shards
            .max(1)
            .min((queries.len() / Self::MIN_SHARD_CHUNK).max(1));
        if shards == 1 {
            let mut scratch = MatchScratch::new();
            return queries
                .iter()
                .map(|q| self.segment_with(q.as_ref(), &mut scratch))
                .collect();
        }
        let chunk_size = queries.len().div_ceil(shards);
        let mut out = Vec::with_capacity(queries.len());
        std::thread::scope(|scope| {
            let handles: Vec<_> = queries
                .chunks(chunk_size)
                .map(|chunk| {
                    scope.spawn(move || {
                        let mut scratch = MatchScratch::new();
                        chunk
                            .iter()
                            .map(|q| self.segment_with(q.as_ref(), &mut scratch))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            for handle in handles {
                out.extend(handle.join().expect("matcher shard panicked"));
            }
        });
        out
    }
}

/// Assembles one output span whose surface lives in `dict` (the base
/// or a delta overlay's dictionary — span surface ids are
/// segment-local).
fn span_in(
    dict: &CompiledDict,
    start: usize,
    window: usize,
    sid: SurfaceId,
    distance: usize,
) -> MatchSpan {
    MatchSpan {
        start,
        end: start + window,
        surface_id: sid,
        entity: dict.entity(sid),
        distance,
        surface: dict.surface_arc(sid),
    }
}

/// Char-position ranges of the tokens whose byte ranges are `bounds`,
/// filled into `out` (cleared first). Normalized text is almost always
/// ASCII, where char positions equal byte positions and the copy is
/// free; otherwise one pass over the chars recovers the mapping. The
/// segmenter uses these to compute window char lengths (edit budgets
/// are char-level) without an O(len) count per window.
fn token_char_bounds(normalized: &str, bounds: &[(u32, u32)], out: &mut Vec<(u32, u32)>) {
    out.clear();
    if normalized.is_ascii() {
        out.extend_from_slice(bounds);
        return;
    }
    let mut chars = 0u32;
    let mut byte = 0usize;
    let mut iter = normalized.chars();
    for &(a, b) in bounds {
        while byte < a as usize {
            byte += iter.next().expect("bounds within string").len_utf8();
            chars += 1;
        }
        let start = chars;
        while byte < b as usize {
            byte += iter.next().expect("bounds within string").len_utf8();
            chars += 1;
        }
        out.push((start, chars));
    }
}

/// Parses the `#!fuzzy` header tail: tab-separated `key=value` pairs
/// over [`FuzzyConfig`] fields, starting from the default config.
fn parse_fuzzy_header(header: &str, lineno: usize) -> websyn_common::Result<FuzzyConfig> {
    let bad =
        |what: &str| websyn_common::Error::codec(format!("line {lineno}: fuzzy header: {what}"));
    let mut config = FuzzyConfig::default();
    for field in header.split('\t').filter(|f| !f.is_empty()) {
        let (key, value) = field
            .split_once('=')
            .ok_or_else(|| bad(&format!("missing '=' in {field:?}")))?;
        let parse_usize = |v: &str| {
            v.parse::<usize>()
                .map_err(|_| bad(&format!("bad number {v:?}")))
        };
        let parse_bool = |v: &str| match v {
            "true" => Ok(true),
            "false" => Ok(false),
            _ => Err(bad(&format!("bad bool {v:?}"))),
        };
        match key {
            "gram_size" => config.gram_size = parse_usize(value)?,
            "min_len_one_edit" => config.min_len_one_edit = parse_usize(value)?,
            "min_len_two_edits" => config.min_len_two_edits = parse_usize(value)?,
            "max_distance" => config.max_distance = parse_usize(value)?,
            "transpositions" => config.transpositions = parse_bool(value)?,
            "phonetic" => config.phonetic = parse_bool(value)?,
            "abbrev" => config.abbrev = parse_bool(value)?,
            "token_signature" => config.token_signature = parse_bool(value)?,
            _ => return Err(bad(&format!("unknown key {key:?}"))),
        }
    }
    Ok(config)
}

#[cfg(test)]
// The TSV-roundtrip tests pin the deprecated `from_tsv` shim on
// purpose: it must keep working until call sites finish migrating to
// `DictHandle::from_tsv`.
#[allow(deprecated)]
mod tests {
    use super::*;

    fn matcher() -> EntityMatcher {
        EntityMatcher::from_pairs(vec![
            (
                "Indiana Jones and the Kingdom of the Crystal Skull",
                EntityId::new(0),
            ),
            ("indy 4", EntityId::new(0)),
            ("indiana jones 4", EntityId::new(0)),
            ("madagascar 2", EntityId::new(1)),
            ("canon eos 350d", EntityId::new(2)),
            ("350d", EntityId::new(2)),
        ])
    }

    fn fuzzy_matcher() -> EntityMatcher {
        matcher().with_fuzzy(FuzzyConfig::default())
    }

    #[test]
    fn window_cache_serves_repeat_windows() {
        let m = fuzzy_matcher().with_window_cache(1024);
        let first = m.segment("canon eso 350d price");
        let after_first = m.window_cache().unwrap().stats();
        assert!(after_first.misses > 0, "{after_first:?}");
        assert!(after_first.entries > 0, "{after_first:?}");
        // Same query again: every fuzzy window the first run resolved
        // is now answered from the cache, spans unchanged.
        let second = m.segment("canon eso 350d price");
        let after_second = m.window_cache().unwrap().stats();
        assert!(after_second.hits > after_first.hits, "{after_second:?}");
        assert_eq!(first, second);
        assert_eq!(first[0].surface(), "canon eos 350d");
        // A clone shares the cache (and the fuzzy dictionary's uid, so
        // no generation bump): its probes hit too.
        let clone = m.clone();
        clone.segment("canon eso 350d price");
        let after_clone = clone.window_cache().unwrap().stats();
        assert!(after_clone.hits > after_second.hits, "{after_clone:?}");
    }

    #[test]
    fn exact_lookup_normalizes() {
        let m = matcher();
        assert_eq!(m.lookup("INDY 4"), Some(EntityId::new(0)));
        assert_eq!(m.lookup("Indy-4"), Some(EntityId::new(0)));
        assert_eq!(m.lookup("350D"), Some(EntityId::new(2)));
        assert_eq!(m.lookup("unknown movie"), None);
    }

    #[test]
    fn segments_the_papers_example() {
        let m = matcher();
        let spans = m.segment("indy 4 near san fran");
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].start, 0);
        assert_eq!(spans[0].end, 2);
        assert_eq!(spans[0].entity, EntityId::new(0));
    }

    #[test]
    fn greedy_longest_match_wins() {
        // "indiana jones 4" must match as one 3-token surface, not fall
        // back to shorter fragments.
        let m = matcher();
        let spans = m.segment("showtimes indiana jones 4 tonight");
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].surface(), "indiana jones 4");
    }

    #[test]
    fn multiple_entities_in_one_query() {
        let m = matcher();
        let spans = m.segment("compare canon eos 350d with madagascar 2");
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].entity, EntityId::new(2));
        assert_eq!(spans[1].entity, EntityId::new(1));
        assert!(spans[0].end <= spans[1].start);
    }

    #[test]
    fn span_surface_ids_resolve_through_the_dict() {
        let m = matcher();
        let spans = m.segment("compare canon eos 350d with madagascar 2");
        for span in &spans {
            assert_eq!(m.dict().surface(span.surface_id), span.surface());
            assert_eq!(m.dict().entity(span.surface_id), span.entity);
        }
    }

    #[test]
    fn ambiguous_surfaces_dropped() {
        let m = EntityMatcher::from_pairs(vec![
            ("shared name", EntityId::new(0)),
            ("shared name", EntityId::new(1)),
            ("unique", EntityId::new(0)),
        ]);
        assert_eq!(m.lookup("shared name"), None);
        assert_eq!(m.lookup("unique"), Some(EntityId::new(0)));
        // One surface was dropped, so the count is one — however many
        // entities claimed it.
        assert_eq!(m.ambiguous_dropped(), 1);
        // Re-adding after the ban does not resurrect, and repeated
        // claims do not inflate the count.
        let m2 = EntityMatcher::from_pairs(vec![
            ("x", EntityId::new(0)),
            ("x", EntityId::new(1)),
            ("x", EntityId::new(0)),
            ("x", EntityId::new(2)),
        ]);
        assert_eq!(m2.lookup("x"), None);
        assert_eq!(m2.ambiguous_dropped(), 1);
    }

    #[test]
    fn duplicate_same_entity_is_fine() {
        let m =
            EntityMatcher::from_pairs(vec![("same", EntityId::new(3)), ("same", EntityId::new(3))]);
        assert_eq!(m.lookup("same"), Some(EntityId::new(3)));
        assert_eq!(m.ambiguous_dropped(), 0);
    }

    #[test]
    fn empty_matcher_and_query() {
        let m = EntityMatcher::from_pairs(Vec::<(&str, EntityId)>::new());
        assert!(m.is_empty());
        assert!(m.segment("anything at all").is_empty());
        let m2 = matcher();
        assert!(m2.segment("").is_empty());
        assert!(m2.segment("???").is_empty());
    }

    #[test]
    fn tsv_roundtrip() {
        let m = matcher();
        let tsv = m.to_tsv();
        let restored = EntityMatcher::from_tsv(&tsv).unwrap();
        assert_eq!(restored.len(), m.len());
        assert_eq!(restored.lookup("indy 4"), m.lookup("indy 4"));
        assert_eq!(restored.lookup("350d"), m.lookup("350d"));
        // No fuzzy side, no header.
        assert!(restored.fuzzy_config().is_none());
        // Deterministic output: re-serializing is byte-identical.
        assert_eq!(restored.to_tsv(), tsv);
        // Sorted by surface.
        let lines: Vec<&str> = tsv.lines().collect();
        let mut sorted = lines.clone();
        sorted.sort_unstable();
        assert_eq!(lines, sorted);
    }

    #[test]
    fn tsv_roundtrip_preserves_fuzzy_config() {
        let config = FuzzyConfig {
            gram_size: 3,
            max_distance: 1,
            phonetic: true,
            ..FuzzyConfig::default()
        };
        let m = matcher().with_fuzzy(config.clone());
        let tsv = m.to_tsv();
        assert!(tsv.starts_with("#!fuzzy\t"), "{tsv:?}");
        let restored = EntityMatcher::from_tsv(&tsv).unwrap();
        assert_eq!(restored.fuzzy_config(), Some(&config));
        // Fuzzy lookups survive the round-trip.
        let hit = restored.lookup_fuzzy("cannon eos 350d").expect("fuzzy hit");
        assert_eq!(hit.entity, EntityId::new(2));
        assert_eq!(hit.distance, 1);
        // And the round-trip is a fixed point.
        assert_eq!(restored.to_tsv(), tsv);
    }

    #[test]
    fn tsv_rejects_malformed_rows() {
        assert!(EntityMatcher::from_tsv("no tab here").is_err());
        assert!(EntityMatcher::from_tsv("surface\tnot-a-number").is_err());
        assert!(EntityMatcher::from_tsv("a\tb\t3").is_err(), "embedded tab");
        // Malformed fuzzy headers are rejected too.
        assert!(EntityMatcher::from_tsv("#!fuzzy\tgram_size=x\n").is_err());
        assert!(EntityMatcher::from_tsv("#!fuzzy\tnot_a_key=1\n").is_err());
        assert!(EntityMatcher::from_tsv("#!fuzzy\ttranspositions=maybe\n").is_err());
        // Empty input is a valid (empty) dictionary.
        let empty = EntityMatcher::from_tsv("").unwrap();
        assert!(empty.is_empty());
        // Blank lines are skipped.
        let ok = EntityMatcher::from_tsv("alpha\t1\n\nbeta\t2\n").unwrap();
        assert_eq!(ok.len(), 2);
    }

    #[test]
    fn no_overlapping_spans() {
        let m = matcher();
        let spans = m.segment("indy 4 indy 4 madagascar 2");
        for w in spans.windows(2) {
            assert!(w[0].end <= w[1].start);
        }
        assert_eq!(spans.len(), 3);
    }

    #[test]
    fn fuzzy_lookup_resolves_typos_exact_misses() {
        let m = fuzzy_matcher();
        assert_eq!(m.lookup("cannon eos 350d"), None);
        let hit = m.lookup_fuzzy("cannon eos 350d").expect("fuzzy hit");
        assert_eq!(hit.entity, EntityId::new(2));
        assert_eq!(hit.surface(), "canon eos 350d");
        assert_eq!(hit.distance, 1);
        // Exact surfaces still resolve exactly (distance 0).
        let exact = m.lookup_fuzzy("INDY 4").expect("exact hit");
        assert_eq!(exact.entity, EntityId::new(0));
        assert_eq!(exact.distance, 0);
    }

    #[test]
    fn fuzzy_disabled_is_exact_only() {
        let m = matcher();
        assert!(m.fuzzy_config().is_none());
        assert!(m.lookup_fuzzy("cannon eos 350d").is_none());
        // ("350d" alone would exact-match, so misspell every token.)
        assert!(m.segment("cannon eos 350dd best price").is_empty());
    }

    #[test]
    fn fuzzy_segment_recovers_misspelled_mention() {
        let m = fuzzy_matcher();
        let spans = m.segment("cheapest cannon eos 350d deals");
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].entity, EntityId::new(2));
        assert_eq!(spans[0].surface(), "canon eos 350d");
        assert_eq!(spans[0].distance, 1);
        assert_eq!((spans[0].start, spans[0].end), (1, 4));
    }

    #[test]
    fn fuzzy_segment_prefers_exact_window() {
        // An exact hit in a window must win over any fuzzy resolution
        // of the same window.
        let m = fuzzy_matcher();
        let spans = m.segment("watch madagascar 2 online");
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].distance, 0);
        assert_eq!(spans[0].surface(), "madagascar 2");
    }

    #[test]
    fn match_batch_is_order_preserving() {
        let m = fuzzy_matcher();
        let queries: Vec<String> = vec![
            "indy 4 near san fran".into(),
            "cheapest cannon eos 350d deals".into(),
            "no entities here".into(),
            "madagascar 2 showtimes".into(),
            "watch indiana jones 4 online".into(),
        ];
        let sequential: Vec<Vec<MatchSpan>> = queries.iter().map(|q| m.segment(q)).collect();
        for shards in [1usize, 2, 3, 8, 64] {
            let batched = m.match_batch(&queries, shards);
            assert_eq!(batched, sequential, "shards={shards}");
        }
        // Empty batch, any shard count.
        assert!(m.match_batch(&Vec::<String>::new(), 4).is_empty());
    }

    #[test]
    fn segment_normalized_matches_segment() {
        let m = fuzzy_matcher();
        for q in [
            "Indy 4 near San Fran!",
            "cheapest CANNON eos 350d deals",
            "no entities here",
            "",
        ] {
            let normalized = normalize(q);
            assert_eq!(m.segment(q), m.segment_normalized(&normalized), "{q:?}");
        }
    }

    #[test]
    fn shared_scratch_is_invisible_and_memoizes() {
        let m = fuzzy_matcher();
        let queries = [
            "cheapest cannon eos 350d deals",
            "cannon eos 350d refurbished",
            "cannon eos 350d near me",
        ];
        let mut scratch = MatchScratch::new();
        let with_scratch: Vec<_> = queries
            .iter()
            .map(|q| m.segment_with(q, &mut scratch))
            .collect();
        let fresh: Vec<_> = queries.iter().map(|q| m.segment(q)).collect();
        assert_eq!(with_scratch, fresh);
        // The repeated misspelled mention (and its sub-windows) were
        // memoized on first sight.
        assert!(!scratch.is_empty());
        let after_first_pass = scratch.len();
        let again: Vec<_> = queries
            .iter()
            .map(|q| m.segment_with(q, &mut scratch))
            .collect();
        assert_eq!(again, fresh);
        assert_eq!(
            scratch.len(),
            after_first_pass,
            "second pass must not re-resolve any window"
        );
        scratch.clear();
        assert!(scratch.is_empty());
    }

    #[test]
    fn shared_dict_is_the_same_allocation() {
        let m = matcher();
        assert!(Arc::ptr_eq(&m.shared_dict(), &m.shared_dict()));
        let clone = m.clone();
        assert!(Arc::ptr_eq(&m.shared_dict(), &clone.shared_dict()));
    }

    #[test]
    fn abbrev_enabled_segmenter_resolves_acronyms() {
        let m = EntityMatcher::from_pairs(vec![("lord of the rings", EntityId::new(9))])
            .with_fuzzy(FuzzyConfig {
                abbrev: true,
                ..FuzzyConfig::default()
            });
        let spans = m.segment("watch lotr online");
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].entity, EntityId::new(9));
        assert_eq!(spans[0].surface(), "lord of the rings");
        assert_eq!(spans[0].distance, 0);
    }
}
