//! Fuzzy matching of Web queries to structured data — the downstream
//! application that motivates the whole paper (its opening example:
//! "Indy 4 near San Fran" resolving to showtimes for the right movie).
//!
//! The matcher compiles canonical strings plus mined synonyms into a
//! normalized token-level dictionary, then segments incoming queries
//! with greedy longest-match so entity mentions are found even when
//! embedded in longer queries.

use crate::data::MiningContext;
use crate::miner::MiningResult;
use websyn_common::{EntityId, FxHashMap};
use websyn_text::normalize;

/// One matched entity mention inside a query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MatchSpan {
    /// Index of the first matched token.
    pub start: usize,
    /// One past the last matched token.
    pub end: usize,
    /// The matched surface (normalized).
    pub surface: String,
    /// The entity it resolves to.
    pub entity: EntityId,
}

/// A compiled surface → entity dictionary with a query segmenter.
#[derive(Debug, Clone, Default)]
pub struct EntityMatcher {
    /// Normalized surface → entity.
    surfaces: FxHashMap<String, EntityId>,
    /// Longest surface length in tokens (bounds the segmenter window).
    max_tokens: usize,
    /// Surfaces dropped because they mapped to multiple entities.
    ambiguous_dropped: usize,
}

impl EntityMatcher {
    /// Builds a matcher from raw `(surface, entity)` pairs. Surfaces
    /// are normalized; a surface claimed by two entities is dropped
    /// entirely (an ambiguous surface cannot resolve a query).
    pub fn from_pairs<S: AsRef<str>>(pairs: impl IntoIterator<Item = (S, EntityId)>) -> Self {
        let mut surfaces: FxHashMap<String, EntityId> = FxHashMap::default();
        let mut banned: websyn_common::FxHashSet<String> = Default::default();
        let mut ambiguous = 0usize;
        for (raw, entity) in pairs {
            let surface = normalize(raw.as_ref());
            if surface.is_empty() || banned.contains(&surface) {
                continue;
            }
            match surfaces.get(&surface) {
                None => {
                    surfaces.insert(surface, entity);
                }
                Some(&existing) if existing == entity => {}
                Some(_) => {
                    surfaces.remove(&surface);
                    banned.insert(surface);
                    ambiguous += 2;
                }
            }
        }
        let max_tokens = surfaces
            .keys()
            .map(|s| s.split(' ').count())
            .max()
            .unwrap_or(0);
        Self {
            surfaces,
            max_tokens,
            ambiguous_dropped: ambiguous,
        }
    }

    /// Builds a matcher from a mining result: every entity's canonical
    /// string plus every mined synonym.
    pub fn from_mining(result: &MiningResult, ctx: &MiningContext) -> Self {
        let canonical = ctx
            .u_set
            .iter()
            .enumerate()
            .map(|(i, u)| (u.clone(), EntityId::from_usize(i)));
        let mined = result
            .per_entity
            .iter()
            .flat_map(|es| es.synonyms.iter().map(move |s| (s.text.clone(), es.entity)));
        Self::from_pairs(canonical.chain(mined))
    }

    /// Number of distinct surfaces.
    pub fn len(&self) -> usize {
        self.surfaces.len()
    }

    /// Whether the dictionary is empty.
    pub fn is_empty(&self) -> bool {
        self.surfaces.is_empty()
    }

    /// Surfaces dropped as ambiguous.
    pub fn ambiguous_dropped(&self) -> usize {
        self.ambiguous_dropped
    }

    /// Exact whole-query match after normalization.
    pub fn lookup(&self, query: &str) -> Option<EntityId> {
        self.surfaces.get(&normalize(query)).copied()
    }

    /// Serializes the dictionary as deterministic TSV
    /// (`surface \t entity-id\n`, sorted by surface) — the deployment
    /// artifact a serving layer would load.
    pub fn to_tsv(&self) -> String {
        let mut rows: Vec<(&str, u32)> = self
            .surfaces
            .iter()
            .map(|(s, e)| (s.as_str(), e.raw()))
            .collect();
        rows.sort_unstable();
        let mut out = String::with_capacity(rows.len() * 24);
        for (surface, entity) in rows {
            out.push_str(surface);
            out.push('\t');
            out.push_str(&entity.to_string());
            out.push('\n');
        }
        out
    }

    /// Loads a dictionary produced by [`EntityMatcher::to_tsv`].
    ///
    /// # Errors
    /// Returns a codec error on malformed rows (missing tab,
    /// non-numeric id, embedded tab in surface).
    pub fn from_tsv(tsv: &str) -> websyn_common::Result<Self> {
        let mut pairs = Vec::new();
        for (lineno, line) in tsv.lines().enumerate() {
            if line.is_empty() {
                continue;
            }
            let (surface, id) = line.rsplit_once('\t').ok_or_else(|| {
                websyn_common::Error::codec(format!("line {}: missing tab", lineno + 1))
            })?;
            if surface.contains('\t') {
                return Err(websyn_common::Error::codec(format!(
                    "line {}: embedded tab in surface",
                    lineno + 1
                )));
            }
            let id: u32 = id.parse().map_err(|e| {
                websyn_common::Error::codec(format!("line {}: bad entity id: {e}", lineno + 1))
            })?;
            pairs.push((surface.to_string(), EntityId::new(id)));
        }
        Ok(Self::from_pairs(pairs))
    }

    /// Segments a free-form query into entity mentions with greedy
    /// longest-match, left to right. Unmatched tokens are skipped.
    ///
    /// # Examples
    ///
    /// ```
    /// use websyn_core::EntityMatcher;
    /// use websyn_common::EntityId;
    ///
    /// let m = EntityMatcher::from_pairs(vec![
    ///     ("indy 4", EntityId::new(7)),
    /// ]);
    /// let spans = m.segment("Indy 4 near san fran");
    /// assert_eq!(spans.len(), 1);
    /// assert_eq!(spans[0].entity, EntityId::new(7));
    /// assert_eq!(spans[0].surface, "indy 4");
    /// ```
    pub fn segment(&self, query: &str) -> Vec<MatchSpan> {
        let normalized = normalize(query);
        let tokens: Vec<&str> = normalized.split(' ').filter(|t| !t.is_empty()).collect();
        let mut spans = Vec::new();
        let mut i = 0;
        while i < tokens.len() {
            let mut matched = false;
            let longest = self.max_tokens.min(tokens.len() - i);
            for window in (1..=longest).rev() {
                let surface = tokens[i..i + window].join(" ");
                if let Some(&entity) = self.surfaces.get(&surface) {
                    spans.push(MatchSpan {
                        start: i,
                        end: i + window,
                        surface,
                        entity,
                    });
                    i += window;
                    matched = true;
                    break;
                }
            }
            if !matched {
                i += 1;
            }
        }
        spans
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matcher() -> EntityMatcher {
        EntityMatcher::from_pairs(vec![
            (
                "Indiana Jones and the Kingdom of the Crystal Skull",
                EntityId::new(0),
            ),
            ("indy 4", EntityId::new(0)),
            ("indiana jones 4", EntityId::new(0)),
            ("madagascar 2", EntityId::new(1)),
            ("canon eos 350d", EntityId::new(2)),
            ("350d", EntityId::new(2)),
        ])
    }

    #[test]
    fn exact_lookup_normalizes() {
        let m = matcher();
        assert_eq!(m.lookup("INDY 4"), Some(EntityId::new(0)));
        assert_eq!(m.lookup("Indy-4"), Some(EntityId::new(0)));
        assert_eq!(m.lookup("350D"), Some(EntityId::new(2)));
        assert_eq!(m.lookup("unknown movie"), None);
    }

    #[test]
    fn segments_the_papers_example() {
        let m = matcher();
        let spans = m.segment("indy 4 near san fran");
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].start, 0);
        assert_eq!(spans[0].end, 2);
        assert_eq!(spans[0].entity, EntityId::new(0));
    }

    #[test]
    fn greedy_longest_match_wins() {
        // "indiana jones 4" must match as one 3-token surface, not fall
        // back to shorter fragments.
        let m = matcher();
        let spans = m.segment("showtimes indiana jones 4 tonight");
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].surface, "indiana jones 4");
    }

    #[test]
    fn multiple_entities_in_one_query() {
        let m = matcher();
        let spans = m.segment("compare canon eos 350d with madagascar 2");
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].entity, EntityId::new(2));
        assert_eq!(spans[1].entity, EntityId::new(1));
        assert!(spans[0].end <= spans[1].start);
    }

    #[test]
    fn ambiguous_surfaces_dropped() {
        let m = EntityMatcher::from_pairs(vec![
            ("shared name", EntityId::new(0)),
            ("shared name", EntityId::new(1)),
            ("unique", EntityId::new(0)),
        ]);
        assert_eq!(m.lookup("shared name"), None);
        assert_eq!(m.lookup("unique"), Some(EntityId::new(0)));
        assert_eq!(m.ambiguous_dropped(), 2);
        // Re-adding after the ban does not resurrect.
        let m2 = EntityMatcher::from_pairs(vec![
            ("x", EntityId::new(0)),
            ("x", EntityId::new(1)),
            ("x", EntityId::new(0)),
        ]);
        assert_eq!(m2.lookup("x"), None);
    }

    #[test]
    fn duplicate_same_entity_is_fine() {
        let m =
            EntityMatcher::from_pairs(vec![("same", EntityId::new(3)), ("same", EntityId::new(3))]);
        assert_eq!(m.lookup("same"), Some(EntityId::new(3)));
        assert_eq!(m.ambiguous_dropped(), 0);
    }

    #[test]
    fn empty_matcher_and_query() {
        let m = EntityMatcher::from_pairs(Vec::<(&str, EntityId)>::new());
        assert!(m.is_empty());
        assert!(m.segment("anything at all").is_empty());
        let m2 = matcher();
        assert!(m2.segment("").is_empty());
        assert!(m2.segment("???").is_empty());
    }

    #[test]
    fn tsv_roundtrip() {
        let m = matcher();
        let tsv = m.to_tsv();
        let restored = EntityMatcher::from_tsv(&tsv).unwrap();
        assert_eq!(restored.len(), m.len());
        assert_eq!(restored.lookup("indy 4"), m.lookup("indy 4"));
        assert_eq!(restored.lookup("350d"), m.lookup("350d"));
        // Deterministic output: re-serializing is byte-identical.
        assert_eq!(restored.to_tsv(), tsv);
        // Sorted by surface.
        let lines: Vec<&str> = tsv.lines().collect();
        let mut sorted = lines.clone();
        sorted.sort_unstable();
        assert_eq!(lines, sorted);
    }

    #[test]
    fn tsv_rejects_malformed_rows() {
        assert!(EntityMatcher::from_tsv("no tab here").is_err());
        assert!(EntityMatcher::from_tsv("surface\tnot-a-number").is_err());
        assert!(EntityMatcher::from_tsv("a\tb\t3").is_err(), "embedded tab");
        // Empty input is a valid (empty) dictionary.
        let empty = EntityMatcher::from_tsv("").unwrap();
        assert!(empty.is_empty());
        // Blank lines are skipped.
        let ok = EntityMatcher::from_tsv("alpha\t1\n\nbeta\t2\n").unwrap();
        assert_eq!(ok.len(), 2);
    }

    #[test]
    fn no_overlapping_spans() {
        let m = matcher();
        let spans = m.segment("indy 4 indy 4 madagascar 2");
        for w in spans.windows(2) {
            assert!(w[0].end <= w[1].start);
        }
        assert_eq!(spans.len(), 3);
    }
}
