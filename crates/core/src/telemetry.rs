//! Process-wide matcher telemetry.
//!
//! The segmenter's fuzzy window loop and the fuzzy dictionary's
//! candidate pipeline increment these counters on their hot paths
//! (one relaxed `fetch_add` per event — no locks, no allocation).
//! They are process-global statics rather than per-matcher fields
//! because the serving fleet runs one matcher per worker *process*,
//! so a per-process aggregate is exactly the per-worker series the
//! `/metrics` endpoint wants; the cluster router re-labels each
//! worker's snapshot, keeping the fleet merge exact.
//!
//! [`matcher_telemetry`] reads a coherent-enough snapshot (each
//! counter individually exact; cross-counter skew bounded by
//! in-flight requests) for rendering.

use websyn_obs::Counter;

/// Windows that reached the resolution ladder (memo → shared window
/// cache → full candidate generation + verification).
pub(crate) static WINDOWS_RESOLVED: Counter = Counter::new();
/// Windows skipped outright because [`crate::dict::CompiledDict::can_reach`]
/// proved no in-budget surface exists (fully-verifying chains only).
pub(crate) static WINDOWS_PRUNED: Counter = Counter::new();
/// Resolution-ladder rung 1: batch-local memo hits.
pub(crate) static LADDER_MEMO_HITS: Counter = Counter::new();
/// Resolution-ladder rung 2: cross-batch shared window-cache hits.
pub(crate) static LADDER_CACHE_HITS: Counter = Counter::new();
/// Resolution-ladder rung 3: full candidate generation + verification.
pub(crate) static LADDER_FULL_RESOLVES: Counter = Counter::new();
/// Candidate surface ids emitted by the source chain, pre-verification.
pub(crate) static CANDIDATES_PROPOSED: Counter = Counter::new();
/// Candidates that survived verification (trusted-source proposals and
/// proposals whose banded edit distance landed within budget).
pub(crate) static CANDIDATES_VERIFIED: Counter = Counter::new();

/// A point-in-time snapshot of the matcher-internal counters.
///
/// All values are cumulative since process start. `windows_resolved`
/// equals `ladder_memo_hits + ladder_cache_hits + ladder_full_resolves`
/// up to in-flight skew.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MatcherTelemetry {
    /// Windows that entered the resolution ladder.
    pub windows_resolved: u64,
    /// Windows pruned by the reachability screen before any candidate work.
    pub windows_pruned: u64,
    /// Ladder rung 1 hits: batch-local memo.
    pub ladder_memo_hits: u64,
    /// Ladder rung 2 hits: cross-batch shared window cache.
    pub ladder_cache_hits: u64,
    /// Ladder rung 3: full candidate generation + verification runs.
    pub ladder_full_resolves: u64,
    /// Candidates proposed by the source chain.
    pub candidates_proposed: u64,
    /// Candidates that survived verification.
    pub candidates_verified: u64,
}

/// Reads the process-wide matcher counters.
pub fn matcher_telemetry() -> MatcherTelemetry {
    MatcherTelemetry {
        windows_resolved: WINDOWS_RESOLVED.get(),
        windows_pruned: WINDOWS_PRUNED.get(),
        ladder_memo_hits: LADDER_MEMO_HITS.get(),
        ladder_cache_hits: LADDER_CACHE_HITS.get(),
        ladder_full_resolves: LADDER_FULL_RESOLVES.get(),
        candidates_proposed: CANDIDATES_PROPOSED.get(),
        candidates_verified: CANDIDATES_VERIFIED.get(),
    }
}
