//! The end-to-end miner: candidate generation + scoring (expensive,
//! parallel, done once) and threshold selection (cheap, done per sweep
//! point).

use crate::candidates::generate_candidates;
use crate::config::MinerConfig;
use crate::data::MiningContext;
use crate::measures::{score_candidate, CandidateScore};
use crate::select::select;
use crate::surrogate::SurrogateTable;
use websyn_common::{EntityId, QueryId};

/// Scored candidates of one entity.
#[derive(Debug, Clone)]
pub struct EntityCandidates {
    /// The entity.
    pub entity: EntityId,
    /// Its surrogate count (diagnostics).
    pub n_surrogates: usize,
    /// All candidates with their IPC/ICR, sorted by query id.
    pub candidates: Vec<CandidateScore>,
}

/// The output of the scoring phase: everything needed to evaluate any
/// (β, γ) operating point without touching the logs again.
#[derive(Debug, Clone)]
pub struct ScoredCandidates {
    /// Per-entity scored candidates, in entity order.
    pub per_entity: Vec<EntityCandidates>,
    /// The surrogate depth used.
    pub top_k: usize,
}

/// One mined synonym.
#[derive(Debug, Clone, PartialEq)]
pub struct MinedSynonym {
    /// The query id in the click log.
    pub query: QueryId,
    /// The synonym text.
    pub text: String,
    /// Its IPC at mining time.
    pub ipc: u32,
    /// Its ICR at mining time.
    pub icr: f64,
}

/// The synonyms mined for one entity.
#[derive(Debug, Clone)]
pub struct EntitySynonyms {
    /// The entity.
    pub entity: EntityId,
    /// Mined synonyms, sorted by descending IPC then descending ICR
    /// then query id.
    pub synonyms: Vec<MinedSynonym>,
}

/// The output of a full mining run.
#[derive(Debug, Clone)]
pub struct MiningResult {
    /// Per-entity synonyms, in entity order.
    pub per_entity: Vec<EntitySynonyms>,
    /// The configuration that produced this result.
    pub config: MinerConfig,
}

impl MiningResult {
    /// Total mined synonyms across entities.
    pub fn total_synonyms(&self) -> usize {
        self.per_entity.iter().map(|e| e.synonyms.len()).sum()
    }

    /// Number of entities with at least one synonym (Table I "Hits").
    pub fn hits(&self) -> usize {
        self.per_entity
            .iter()
            .filter(|e| !e.synonyms.is_empty())
            .count()
    }
}

/// The synonym miner.
#[derive(Debug, Clone, Copy, Default)]
pub struct SynonymMiner {
    /// Miner parameters.
    pub config: MinerConfig,
}

impl SynonymMiner {
    /// Creates a miner with the given configuration.
    ///
    /// # Panics
    /// Panics on an invalid configuration.
    pub fn new(config: MinerConfig) -> Self {
        config.validate().expect("invalid MinerConfig");
        Self { config }
    }

    /// Phase 1+2a: generate candidates and compute IPC/ICR for every
    /// entity. Parallelized across entities; output order is
    /// deterministic (entity order, candidates by query id).
    pub fn score(&self, ctx: &MiningContext) -> ScoredCandidates {
        let surrogates =
            SurrogateTable::build_from(ctx, self.config.top_k, self.config.surrogate_source);
        let n = ctx.n_entities();
        let mut per_entity: Vec<Option<EntityCandidates>> = Vec::new();
        per_entity.resize_with(n, || None);

        let threads = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
            .min(n.max(1));
        let chunk = n.div_ceil(threads.max(1));

        if n > 0 {
            let slots = std::sync::Mutex::new(&mut per_entity);
            std::thread::scope(|scope| {
                for t in 0..threads {
                    let lo = t * chunk;
                    let hi = ((t + 1) * chunk).min(n);
                    if lo >= hi {
                        continue;
                    }
                    let surrogates = &surrogates;
                    let slots = &slots;
                    scope.spawn(move || {
                        let mut local = Vec::with_capacity(hi - lo);
                        for i in lo..hi {
                            let e = EntityId::from_usize(i);
                            local.push((i, score_entity(ctx, surrogates, e)));
                        }
                        let mut guard = slots.lock().expect("scoring mutex poisoned");
                        for (i, ec) in local {
                            guard[i] = Some(ec);
                        }
                    });
                }
            });
        }

        ScoredCandidates {
            per_entity: per_entity
                .into_iter()
                .map(|s| s.expect("every entity scored"))
                .collect(),
            top_k: self.config.top_k,
        }
    }

    /// Phase 2b: apply this miner's thresholds to pre-computed scores.
    pub fn select_from(&self, ctx: &MiningContext, scored: &ScoredCandidates) -> MiningResult {
        select_with(
            ctx,
            scored,
            self.config.ipc_threshold,
            self.config.icr_threshold,
            self.config,
        )
    }

    /// The full pipeline: score then select.
    pub fn mine(&self, ctx: &MiningContext) -> MiningResult {
        let scored = self.score(ctx);
        self.select_from(ctx, &scored)
    }
}

/// Scores one entity (candidate generation + measures).
fn score_entity(ctx: &MiningContext, surrogates: &SurrogateTable, e: EntityId) -> EntityCandidates {
    let cands = generate_candidates(ctx, surrogates, e);
    let candidates = cands
        .into_iter()
        .map(|w| score_candidate(ctx, surrogates, e, w))
        .collect();
    EntityCandidates {
        entity: e,
        n_surrogates: surrogates.of(e).len(),
        candidates,
    }
}

/// Applies explicit thresholds to pre-computed scores (the sweep entry
/// point used by the Figure 2/3 harnesses).
pub fn select_with(
    ctx: &MiningContext,
    scored: &ScoredCandidates,
    ipc_threshold: u32,
    icr_threshold: f64,
    config_echo: MinerConfig,
) -> MiningResult {
    let per_entity = scored
        .per_entity
        .iter()
        .map(|ec| {
            let mut synonyms: Vec<MinedSynonym> =
                select(&ec.candidates, ipc_threshold, icr_threshold)
                    .map(|s| MinedSynonym {
                        query: s.query,
                        text: ctx.log.query_text(s.query).to_string(),
                        ipc: s.ipc,
                        icr: s.icr,
                    })
                    .collect();
            synonyms.sort_by(|a, b| {
                b.ipc
                    .cmp(&a.ipc)
                    .then_with(|| b.icr.partial_cmp(&a.icr).expect("icr finite"))
                    .then_with(|| a.query.cmp(&b.query))
            });
            EntitySynonyms {
                entity: ec.entity,
                synonyms,
            }
        })
        .collect();
    MiningResult {
        per_entity,
        config: MinerConfig {
            ipc_threshold,
            icr_threshold,
            ..config_echo
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use websyn_click::ClickLogBuilder;
    use websyn_common::PageId;
    use websyn_engine::{SearchData, SearchEngine};

    /// Two entities with disjoint page sets; one strong synonym each,
    /// one shared hypernym-ish query, one unrelated query.
    fn ctx() -> MiningContext {
        let docs = vec![
            (PageId::new(0), "alpha one", "alpha one official site"),
            (PageId::new(1), "alpha one shop", "alpha one buy a1"),
            (PageId::new(2), "alpha two", "alpha two official site"),
            (PageId::new(3), "alpha two shop", "alpha two buy a2"),
            (PageId::new(4), "alpha series", "alpha one alpha two list"),
            (PageId::new(5), "noise", "recipe garden"),
        ];
        let engine = SearchEngine::from_docs(docs);
        let u_set = vec!["alpha one".to_string(), "alpha two".to_string()];
        let search = SearchData::collect(&engine, &u_set, 4);
        let mut b = ClickLogBuilder::new();
        let a1 = b.add_impression("a1");
        let a2 = b.add_impression("a2");
        let hyper = b.add_impression("alpha");
        let noise = b.add_impression("recipe");
        for _ in 0..10 {
            b.add_click(a1, PageId::new(0));
            b.add_click(a1, PageId::new(1));
            b.add_click(a2, PageId::new(2));
            b.add_click(a2, PageId::new(3));
        }
        // The hypernym spreads clicks across both entities + hub.
        for _ in 0..3 {
            b.add_click(hyper, PageId::new(0));
            b.add_click(hyper, PageId::new(2));
        }
        for _ in 0..14 {
            b.add_click(hyper, PageId::new(4));
        }
        b.add_click(noise, PageId::new(5));
        MiningContext::new(u_set, search, b.build(), 6)
    }

    #[test]
    fn mine_finds_the_planted_synonyms() {
        let ctx = ctx();
        // k=2: each entity's surrogates are its own two pages. (At k=4
        // the franchise hub — which mentions both entities — becomes a
        // surrogate and legitimately absorbs the hypernym's clicks.)
        let miner = SynonymMiner::new(MinerConfig {
            top_k: 2,
            ipc_threshold: 2,
            icr_threshold: 0.5,
            ..Default::default()
        });
        let result = miner.mine(&ctx);
        assert_eq!(result.per_entity.len(), 2);
        let syn0: Vec<&str> = result.per_entity[0]
            .synonyms
            .iter()
            .map(|s| s.text.as_str())
            .collect();
        assert_eq!(syn0, vec!["a1"]);
        let syn1: Vec<&str> = result.per_entity[1]
            .synonyms
            .iter()
            .map(|s| s.text.as_str())
            .collect();
        assert_eq!(syn1, vec!["a2"]);
        assert_eq!(result.hits(), 2);
        assert_eq!(result.total_synonyms(), 2);
    }

    #[test]
    fn icr_threshold_rejects_hypernym() {
        let ctx = ctx();
        // With a loose ICR the hypernym "alpha" sneaks in (it clicked
        // one surrogate of each entity).
        let loose = SynonymMiner::new(MinerConfig {
            top_k: 2,
            ipc_threshold: 1,
            icr_threshold: 0.0,
            ..Default::default()
        });
        let r = loose.mine(&ctx);
        let syn0: Vec<&str> = r.per_entity[0]
            .synonyms
            .iter()
            .map(|s| s.text.as_str())
            .collect();
        assert!(syn0.contains(&"alpha"), "loose thresholds admit hypernym");
        // Tightening ICR evicts it: "alpha" has 3/20 clicks on entity
        // 0's surrogates.
        let tight = SynonymMiner::new(MinerConfig {
            top_k: 2,
            ipc_threshold: 1,
            icr_threshold: 0.3,
            ..Default::default()
        });
        let r = tight.mine(&ctx);
        let syn0: Vec<&str> = r.per_entity[0]
            .synonyms
            .iter()
            .map(|s| s.text.as_str())
            .collect();
        assert!(!syn0.contains(&"alpha"));
        assert!(syn0.contains(&"a1"));
    }

    #[test]
    fn score_once_select_many_matches_direct_mining() {
        let ctx = ctx();
        let miner = SynonymMiner::new(MinerConfig {
            top_k: 2,
            ipc_threshold: 2,
            icr_threshold: 0.5,
            ..Default::default()
        });
        let scored = miner.score(&ctx);
        let via_split = miner.select_from(&ctx, &scored);
        let direct = miner.mine(&ctx);
        for (a, b) in via_split.per_entity.iter().zip(direct.per_entity.iter()) {
            assert_eq!(a.synonyms, b.synonyms);
        }
    }

    #[test]
    fn scoring_is_deterministic_across_runs() {
        let ctx = ctx();
        let miner = SynonymMiner::new(MinerConfig {
            top_k: 4, // the Search Data collection depth
            ..Default::default()
        });
        let a = miner.score(&ctx);
        let b = miner.score(&ctx);
        for (x, y) in a.per_entity.iter().zip(b.per_entity.iter()) {
            assert_eq!(x.entity, y.entity);
            assert_eq!(x.candidates, y.candidates);
        }
    }

    #[test]
    fn raising_thresholds_never_adds_synonyms() {
        let ctx = ctx();
        let miner = SynonymMiner::new(MinerConfig {
            top_k: 4,
            ipc_threshold: 1,
            icr_threshold: 0.0,
            ..Default::default()
        });
        let scored = miner.score(&ctx);
        let mut prev = usize::MAX;
        for beta in 1..=5u32 {
            let r = select_with(&ctx, &scored, beta, 0.0, miner.config);
            let total = r.total_synonyms();
            assert!(total <= prev, "β={beta}: {total} > {prev}");
            prev = total;
        }
        let mut prev = usize::MAX;
        for gamma in [0.0, 0.1, 0.3, 0.5, 0.7, 0.9] {
            let r = select_with(&ctx, &scored, 1, gamma, miner.config);
            let total = r.total_synonyms();
            assert!(total <= prev, "γ={gamma}: {total} > {prev}");
            prev = total;
        }
    }

    #[test]
    fn noise_queries_never_mined() {
        let ctx = ctx();
        let r = SynonymMiner::new(MinerConfig {
            top_k: 4,
            ipc_threshold: 1,
            icr_threshold: 0.0,
            ..Default::default()
        })
        .mine(&ctx);
        for es in &r.per_entity {
            for s in &es.synonyms {
                assert_ne!(s.text, "recipe");
            }
        }
    }

    #[test]
    #[should_panic(expected = "invalid MinerConfig")]
    fn invalid_config_panics() {
        let _ = SynonymMiner::new(MinerConfig {
            top_k: 0,
            ..Default::default()
        });
    }

    #[test]
    fn empty_context_mines_nothing() {
        let engine = SearchEngine::from_docs(std::iter::empty());
        let search = SearchData::collect::<&str>(&engine, &[], 10);
        let ctx = MiningContext::new(Vec::new(), search, ClickLogBuilder::new().build(), 0);
        let r = SynonymMiner::default().mine(&ctx);
        assert!(r.per_entity.is_empty());
        assert_eq!(r.hits(), 0);
    }
}
