//! Candidate generation (paper Section III-A, "Referencing
//! Surrogates").
//!
//! `G_L(w', P) = {l.p | l ∈ L, l.q = w' ∧ l.n ≥ 1}` (Eq. 2), and `w'`
//! is a candidate for `u` iff `G_A(u,P) ∩ G_L(w',P) ≠ ∅` (Definition
//! 6): at least one surrogate of `u` was clicked from `w'`. Computed by
//! walking the *page → queries* direction of the click graph over `u`'s
//! surrogates — the cheap direction, which is the reason the click
//! graph keeps both CSR orientations.

use crate::data::MiningContext;
use crate::surrogate::SurrogateTable;
use websyn_common::{EntityId, FxHashSet, QueryId};

/// The candidate set `W'_u` for one entity: every query that clicked at
/// least one surrogate page, minus the canonical string itself.
///
/// Returned sorted by `QueryId` for determinism.
pub fn generate_candidates(
    ctx: &MiningContext,
    surrogates: &SurrogateTable,
    e: EntityId,
) -> Vec<QueryId> {
    let mut seen: FxHashSet<QueryId> = FxHashSet::default();
    for &page in surrogates.of(e) {
        for &(q, _n) in ctx.graph.queries_of(page) {
            seen.insert(q);
        }
    }
    // The canonical string trivially co-clicks with itself; it is the
    // input, not a synonym (the paper counts it under "Orig").
    if let Some(canonical_q) = ctx.canonical_query(e) {
        seen.remove(&canonical_q);
    }
    let mut out: Vec<QueryId> = seen.into_iter().collect();
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use websyn_click::ClickLogBuilder;
    use websyn_common::PageId;
    use websyn_engine::{SearchData, SearchEngine};

    /// Entity 0 ("alpha beta") has surrogate pages 0 and 1. Queries:
    /// "ab" clicks page 0, "alpha" clicks page 1, "elsewhere" clicks
    /// page 2 only, and the canonical "alpha beta" clicks page 0.
    fn ctx() -> MiningContext {
        let docs = vec![
            (PageId::new(0), "alpha beta", "alpha beta official"),
            (PageId::new(1), "alpha beta shop", "alpha beta buy"),
            (PageId::new(2), "gamma", "gamma page"),
        ];
        let engine = SearchEngine::from_docs(docs);
        let u_set = vec!["alpha beta".to_string()];
        let search = SearchData::collect(&engine, &u_set, 10);
        let mut b = ClickLogBuilder::new();
        let ab = b.add_impression("ab");
        let alpha = b.add_impression("alpha");
        let elsewhere = b.add_impression("elsewhere");
        let canonical = b.add_impression("alpha beta");
        b.add_click(ab, PageId::new(0));
        b.add_click(alpha, PageId::new(1));
        b.add_click(elsewhere, PageId::new(2));
        b.add_click(canonical, PageId::new(0));
        MiningContext::new(u_set, search, b.build(), 3)
    }

    #[test]
    fn candidates_touch_surrogates() {
        let ctx = ctx();
        let table = SurrogateTable::build(&ctx, 10);
        let cands = generate_candidates(&ctx, &table, EntityId::new(0));
        let texts: Vec<&str> = cands.iter().map(|&q| ctx.log.query_text(q)).collect();
        assert!(texts.contains(&"ab"));
        assert!(texts.contains(&"alpha"));
        assert!(!texts.contains(&"elsewhere"), "no surrogate was clicked");
    }

    #[test]
    fn canonical_string_is_excluded() {
        let ctx = ctx();
        let table = SurrogateTable::build(&ctx, 10);
        let cands = generate_candidates(&ctx, &table, EntityId::new(0));
        let texts: Vec<&str> = cands.iter().map(|&q| ctx.log.query_text(q)).collect();
        assert!(!texts.contains(&"alpha beta"));
    }

    #[test]
    fn sorted_and_deduplicated() {
        let ctx = ctx();
        let table = SurrogateTable::build(&ctx, 10);
        let cands = generate_candidates(&ctx, &table, EntityId::new(0));
        for w in cands.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn entity_without_surrogates_has_no_candidates() {
        let docs = vec![(PageId::new(0), "other", "other")];
        let engine = SearchEngine::from_docs(docs);
        let u_set = vec!["missing entity".to_string()];
        let search = SearchData::collect(&engine, &u_set, 10);
        let mut b = ClickLogBuilder::new();
        let q = b.add_impression("other");
        b.add_click(q, PageId::new(0));
        let ctx = MiningContext::new(u_set, search, b.build(), 1);
        let table = SurrogateTable::build(&ctx, 10);
        assert!(generate_candidates(&ctx, &table, EntityId::new(0)).is_empty());
    }
}
