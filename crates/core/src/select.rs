//! Candidate selection (paper Section III-B, final paragraph):
//! "We produce the final Web synonym by applying threshold values β
//! and γ on IPC and ICR respectively."

use crate::measures::CandidateScore;

/// Applies the β/γ thresholds to a scored candidate list, preserving
/// order. This tiny function is separated out because the experiment
/// harness calls it thousands of times per sweep over scores computed
/// once.
#[inline]
pub fn select(
    scores: &[CandidateScore],
    ipc_threshold: u32,
    icr_threshold: f64,
) -> impl Iterator<Item = &CandidateScore> + '_ {
    scores
        .iter()
        .filter(move |s| s.ipc >= ipc_threshold && s.icr >= icr_threshold)
}

#[cfg(test)]
mod tests {
    use super::*;
    use websyn_common::QueryId;

    fn scores() -> Vec<CandidateScore> {
        vec![
            CandidateScore {
                query: QueryId::new(0),
                ipc: 6,
                icr: 0.9,
            },
            CandidateScore {
                query: QueryId::new(1),
                ipc: 2,
                icr: 0.9,
            },
            CandidateScore {
                query: QueryId::new(2),
                ipc: 6,
                icr: 0.05,
            },
            CandidateScore {
                query: QueryId::new(3),
                ipc: 1,
                icr: 0.01,
            },
        ]
    }

    #[test]
    fn both_thresholds_apply() {
        let s = scores();
        let kept: Vec<u32> = select(&s, 4, 0.1).map(|c| c.query.raw()).collect();
        assert_eq!(kept, vec![0]);
    }

    #[test]
    fn loose_thresholds_keep_more() {
        let s = scores();
        let kept: Vec<u32> = select(&s, 1, 0.0).map(|c| c.query.raw()).collect();
        assert_eq!(kept, vec![0, 1, 2, 3]);
    }

    #[test]
    fn monotone_in_both_thresholds() {
        let s = scores();
        let count = |b: u32, g: f64| select(&s, b, g).count();
        for b in 1..8 {
            assert!(count(b + 1, 0.0) <= count(b, 0.0));
        }
        for g in [0.0, 0.05, 0.1, 0.5, 0.9] {
            assert!(count(1, g + 0.05) <= count(1, g));
        }
    }

    #[test]
    fn thresholds_are_inclusive() {
        let s = vec![CandidateScore {
            query: QueryId::new(0),
            ipc: 4,
            icr: 0.1,
        }];
        assert_eq!(select(&s, 4, 0.1).count(), 1);
    }
}
