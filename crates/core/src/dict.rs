//! The compiled token-ID dictionary behind [`crate::matcher`].
//!
//! The PR-2 matcher kept its dictionary as a `String → EntityId` hash
//! map, so every segmenter window paid for a `join(" ")` allocation and
//! a string hash before it could even miss. At web-serving rates the
//! segmenter *is* the front end (cf. Gollapudi et al., "Efficient Query
//! Rewrite for Structured Web Queries", which compiles rewrites into a
//! lookup structure for exactly this reason), so the dictionary is now
//! *compiled*:
//!
//! - every distinct dictionary token is interned to a dense
//!   [`TokenId`] through [`websyn_common::StringInterner`];
//! - every surface becomes a token-id slice in one flat arena
//!   (`offsets` delimit surface `i` — no per-surface `Vec`);
//! - surfaces are ordered by token sequence in a probe table that is
//!   bucketed by first token and binary-searched within the bucket.
//!
//! Query side, the normalized query is tokenized **once** into byte
//! ranges ([`websyn_text::token_bounds`]) and mapped to token ids; a
//! segmenter window is then a `&[u32]` slice probe — integer compares,
//! no allocation, no string hashing. A token the dictionary has never
//! seen maps to [`UNKNOWN_TOKEN`], which can never equal an arena
//! entry, so unknown-token windows miss for free.
//!
//! Surface ids ([`SurfaceId`]) are assigned in lexicographic surface
//! order. That makes id order meaningful (comparing ids compares
//! surfaces), keeps candidate-generation output deterministic, and lets
//! the fuzzy resolver's "lexicographically smallest surface wins ties"
//! rule fall out of plain id ascension.

use std::sync::Arc;
use websyn_common::{EntityId, StringInterner, SurfaceId, TokenId};
use websyn_text::token_bounds;

/// Sentinel for a query token absent from the dictionary vocabulary.
/// Dictionary token ids are dense from 0, so `u32::MAX` is never a real
/// id and a window containing it can never equal an arena slice.
pub const UNKNOWN_TOKEN: u32 = u32::MAX;

/// Per-query scratch shared by the query-side entry points: token byte
/// ranges and token ids, reused across calls on the same thread.
pub(crate) type QueryScratch = std::cell::RefCell<(Vec<(u32, u32)>, Vec<u32>)>;

/// Verdict of [`CompiledDict::can_reach`] for one query window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowReach {
    /// Whether some surface *may* lie within the edit budget of the
    /// window. `false` is a proof of unreachability; `true` promises
    /// nothing.
    pub edit_reachable: bool,
    /// Whether any window token is in the dictionary vocabulary.
    pub has_vocab_token: bool,
}

/// Reachability envelope of one vocabulary token: the range of surface
/// char lengths and token counts over every surface *containing* the
/// token. A query window within edit budget `k` of some surface that
/// keeps one of its tokens intact must satisfy both ranges widened by
/// `k` — the window-pruning tables of [`CompiledDict::can_reach`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct TokenReach {
    min_len: u32,
    max_len: u32,
    min_tokens: u32,
    max_tokens: u32,
}

/// A surface → entity dictionary compiled to token ids.
///
/// Construction sorts surfaces lexicographically and assigns
/// [`SurfaceId`]s in that order; all per-surface parallel arrays
/// (entity, string, char length) are indexed by surface id.
///
/// # Examples
///
/// ```
/// use websyn_common::EntityId;
/// use websyn_core::dict::CompiledDict;
///
/// let d = CompiledDict::build(vec![
///     ("indy 4".to_string(), EntityId::new(7)),
///     ("madagascar 2".to_string(), EntityId::new(1)),
/// ]);
/// let sid = d.get_str("indy 4").unwrap();
/// assert_eq!(d.entity(sid), EntityId::new(7));
/// assert_eq!(d.surface(sid), "indy 4");
/// assert_eq!(d.get_str("indy 5"), None);
/// ```
#[derive(Debug, Clone, Default)]
pub struct CompiledDict {
    /// Dictionary token vocabulary.
    tokens: StringInterner<TokenId>,
    /// Token ids of every surface, concatenated in surface-id order.
    arena: Vec<u32>,
    /// `arena[offsets[i] .. offsets[i+1]]` is surface `i`; `len + 1`
    /// entries.
    offsets: Vec<u32>,
    /// Entity of each surface, by surface id.
    entities: Vec<EntityId>,
    /// The normalized surface strings, by surface id (lexicographic).
    /// Shared `Arc`s so emitting a match clones a pointer, not a
    /// string.
    surfaces: Vec<Arc<str>>,
    /// Char length of each surface, by surface id.
    char_lens: Vec<u32>,
    /// Surface ids ordered by token sequence — the probe table.
    order: Vec<u32>,
    /// `[start, end)` range of `order` per first token, indexed
    /// directly by token id (dense, one entry per vocabulary token) —
    /// a window probe costs one array read, no hashing at all.
    first_ranges: Vec<(u32, u32)>,
    /// Longest surface in tokens (bounds the segmenter window).
    max_tokens: usize,
    /// Per-token reachability envelope, indexed by token id (the
    /// window-pruning tables behind [`CompiledDict::can_reach`]).
    token_reach: Vec<TokenReach>,
    /// Token-count bitmask per surface char length:
    /// `counts_by_len[len] & (1 << tc)` — the token-count × length-band
    /// half of the reachability check, one array read per candidate
    /// length. Token counts above 31 saturate into bit 31 (a window
    /// that long is reachable by construction anyway).
    counts_by_len: Vec<u32>,
}

impl CompiledDict {
    /// Compiles `(normalized surface, entity)` pairs. Pairs may arrive
    /// in any order; duplicates are kept verbatim (callers that need
    /// ambiguity semantics dedupe first, as [`crate::EntityMatcher`]
    /// does). Empty surfaces are skipped.
    pub fn build(mut pairs: Vec<(String, EntityId)>) -> Self {
        pairs.retain(|(s, _)| !s.is_empty());
        pairs.sort_unstable();
        let mut tokens = StringInterner::new();
        let mut arena = Vec::new();
        let mut offsets = Vec::with_capacity(pairs.len() + 1);
        let mut entities = Vec::with_capacity(pairs.len());
        let mut surfaces = Vec::with_capacity(pairs.len());
        let mut char_lens = Vec::with_capacity(pairs.len());
        let mut max_tokens = 0;
        let mut ids: Vec<TokenId> = Vec::new();
        offsets.push(0);
        for (surface, entity) in &pairs {
            tokens.intern_tokens(surface, &mut ids);
            max_tokens = max_tokens.max(ids.len());
            arena.extend(ids.iter().map(|id| id.raw()));
            offsets.push(u32::try_from(arena.len()).expect("dictionary arena overflow"));
            entities.push(*entity);
            surfaces.push(Arc::from(surface.as_str()));
            char_lens.push(surface.chars().count() as u32);
        }
        tokens.shrink_to_fit();

        let mut order: Vec<u32> = (0..pairs.len() as u32).collect();
        let slice = |id: u32| {
            let (a, b) = (offsets[id as usize], offsets[id as usize + 1]);
            &arena[a as usize..b as usize]
        };
        order.sort_unstable_by(|&a, &b| slice(a).cmp(slice(b)));
        let mut first_ranges: Vec<(u32, u32)> = vec![(0, 0); tokens.len()];
        for (pos, &sid) in order.iter().enumerate() {
            let Some(&first) = slice(sid).first() else {
                continue;
            };
            let entry = &mut first_ranges[first as usize];
            if entry.0 == entry.1 {
                entry.0 = pos as u32;
            }
            entry.1 = pos as u32 + 1;
        }

        // Reachability tables for window pruning: the per-token
        // length/count envelopes and the per-token-count length bitsets
        // consumed by `can_reach`.
        let mut token_reach = vec![
            TokenReach {
                min_len: u32::MAX,
                max_len: 0,
                min_tokens: u32::MAX,
                max_tokens: 0,
            };
            tokens.len()
        ];
        let mut counts_by_len: Vec<u32> = Vec::new();
        for sid in 0..entities.len() {
            let ids = {
                let (a, b) = (offsets[sid], offsets[sid + 1]);
                &arena[a as usize..b as usize]
            };
            let len = char_lens[sid];
            let tc = ids.len();
            for &tid in ids {
                let r = &mut token_reach[tid as usize];
                r.min_len = r.min_len.min(len);
                r.max_len = r.max_len.max(len);
                r.min_tokens = r.min_tokens.min(tc as u32);
                r.max_tokens = r.max_tokens.max(tc as u32);
            }
            if counts_by_len.len() <= len as usize {
                counts_by_len.resize(len as usize + 1, 0);
            }
            counts_by_len[len as usize] |= 1u32 << tc.min(31);
        }
        Self {
            tokens,
            arena,
            offsets,
            entities,
            surfaces,
            char_lens,
            order,
            first_ranges,
            max_tokens,
            token_reach,
            counts_by_len,
        }
    }

    /// Conservative reachability of a query window for fuzzy lookup:
    /// [`WindowReach::edit_reachable`] `false` proves that **no**
    /// dictionary surface lies within edit distance `budget` of the
    /// window, so fuzzy resolution (candidate generation *and*
    /// verification) can be skipped without changing any result.
    /// `true` promises nothing — the window may still resolve to
    /// nothing. [`WindowReach::has_vocab_token`] reports, from the
    /// same walk, whether any window token is in the dictionary
    /// vocabulary (the segmenter's anchor-only skip); band-screen
    /// early exits skip that walk and report `false`, so read it only
    /// behind a positive `edit_reachable`.
    ///
    /// `window` holds the window's dictionary token ids
    /// ([`UNKNOWN_TOKEN`] for out-of-vocabulary tokens) and `chars` its
    /// char length. Three sound checks, all integer reads against
    /// tables compiled with the dictionary:
    ///
    /// 1. **budget** — at budget 0 only an exact surface matches, and
    ///    the caller has already probed the exact dictionary;
    /// 2. **token-count × length band** — a char edit changes the
    ///    window's token count by at most one (a space inserted or
    ///    deleted) and its char length by at most one, so a surface
    ///    within `budget` must have a token count in `m ± budget` and,
    ///    for some such count, a char length in `chars ± budget`;
    /// 3. **anchorless-run bound** — a window token untouched by every
    ///    edit survives verbatim as a token of the matched surface, so
    ///    it must be a vocabulary token whose reach envelope
    ///    (first-token-bucket generalization: the lengths and counts of
    ///    the surfaces containing it) overlaps the window's `± budget`
    ///    bands. A token failing that — out of vocabulary, or only in
    ///    far-away surfaces — must be touched by an edit; one edit
    ///    touches at most two *adjacent* tokens (a space edit), so each
    ///    maximal run of `r` such tokens costs at least `⌈r/2⌉` edits.
    ///    If the runs together exceed the budget, no surface is
    ///    reachable.
    pub fn can_reach(&self, window: &[u32], chars: usize, budget: usize) -> WindowReach {
        let unreachable = WindowReach {
            edit_reachable: false,
            has_vocab_token: false,
        };
        if budget == 0 || window.is_empty() {
            return unreachable;
        }
        let m = window.len();
        let (len_lo, len_hi) = (chars.saturating_sub(budget), chars + budget);
        let (tc_lo, tc_hi) = (m.saturating_sub(budget).max(1), m + budget);
        // Token-count × length band: one table read per candidate
        // length (the band is `2 · budget + 1` wide), one mask test.
        let tc_mask = if tc_hi >= 31 {
            u32::MAX << tc_lo.min(31)
        } else {
            (u32::MAX << tc_lo) & !(u32::MAX << (tc_hi + 1))
        };
        let reachable_band = (len_lo..=len_hi).any(|len| {
            self.counts_by_len
                .get(len)
                .is_some_and(|&m| m & tc_mask != 0)
        });
        if !reachable_band {
            return unreachable;
        }
        let mut has_vocab_token = false;
        let mut cost = 0usize;
        let mut run = 0usize;
        for &tid in window {
            let vocab = (tid as usize) < self.token_reach.len();
            has_vocab_token |= vocab;
            let anchored = vocab && {
                let r = &self.token_reach[tid as usize];
                r.min_len as usize <= len_hi
                    && r.max_len as usize >= len_lo
                    && r.min_tokens as usize <= tc_hi
                    && r.max_tokens as usize >= tc_lo
            };
            if anchored {
                cost += run.div_ceil(2);
                run = 0;
            } else {
                run += 1;
                if (cost + run.div_ceil(2)) > budget {
                    // The bound can only grow from here unless... it
                    // cannot: later anchors commit the pending run's
                    // cost, so once committed-plus-pending exceeds the
                    // budget the window is done. Still scan for a
                    // vocabulary token if none was seen.
                    if !has_vocab_token {
                        has_vocab_token = window
                            .iter()
                            .any(|&t| (t as usize) < self.token_reach.len());
                    }
                    return WindowReach {
                        edit_reachable: false,
                        has_vocab_token,
                    };
                }
            }
        }
        cost += run.div_ceil(2);
        WindowReach {
            edit_reachable: cost <= budget,
            has_vocab_token,
        }
    }

    /// Number of surfaces.
    pub fn len(&self) -> usize {
        self.entities.len()
    }

    /// Whether the dictionary holds no surfaces.
    pub fn is_empty(&self) -> bool {
        self.entities.is_empty()
    }

    /// Number of distinct dictionary tokens.
    pub fn n_tokens(&self) -> usize {
        self.tokens.len()
    }

    /// Longest surface in tokens.
    pub fn max_tokens(&self) -> usize {
        self.max_tokens
    }

    /// Entity of surface `id`.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn entity(&self, id: SurfaceId) -> EntityId {
        self.entities[id.as_usize()]
    }

    /// The normalized surface string of `id`.
    pub fn surface(&self, id: SurfaceId) -> &str {
        &self.surfaces[id.as_usize()]
    }

    /// The surface string of `id` as a shared `Arc` — what match spans
    /// carry, so emitting a span never copies the string.
    pub fn surface_arc(&self, id: SurfaceId) -> Arc<str> {
        Arc::clone(&self.surfaces[id.as_usize()])
    }

    /// Char length of surface `id` as recorded at build time.
    pub fn char_len(&self, id: SurfaceId) -> usize {
        self.char_lens[id.as_usize()] as usize
    }

    /// The token-id slice of surface `id`.
    pub fn token_ids(&self, id: SurfaceId) -> &[u32] {
        let (a, b) = (self.offsets[id.as_usize()], self.offsets[id.as_usize() + 1]);
        &self.arena[a as usize..b as usize]
    }

    /// Iterates `(id, surface, entity)` in surface-id (lexicographic)
    /// order.
    pub fn iter(&self) -> impl Iterator<Item = (SurfaceId, &str, EntityId)> + '_ {
        self.surfaces
            .iter()
            .zip(&self.entities)
            .enumerate()
            .map(|(i, (s, &e))| (SurfaceId::from_usize(i), s.as_ref(), e))
    }

    /// Iterates the surface strings in surface-id order — the build
    /// input for candidate sources, whose proposal ids then coincide
    /// with surface ids.
    pub fn surface_strs(&self) -> impl Iterator<Item = &str> + '_ {
        self.surfaces.iter().map(AsRef::as_ref)
    }

    /// Exact lookup of a token-id window. This is the segmenter's
    /// per-window probe: one array read for the first-token bucket,
    /// then a binary search of integer-slice compares. No allocation,
    /// no string hashing.
    pub fn get(&self, window: &[u32]) -> Option<SurfaceId> {
        let &first = window.first()?;
        let &(lo, hi) = self.first_ranges.get(first as usize)?;
        let bucket = &self.order[lo as usize..hi as usize];
        bucket
            .binary_search_by(|&sid| {
                let (a, b) = (self.offsets[sid as usize], self.offsets[sid as usize + 1]);
                self.arena[a as usize..b as usize].cmp(window)
            })
            .ok()
            .map(|pos| SurfaceId::new(bucket[pos]))
    }

    /// The token id at position `depth` of surface `sid`, or `None`
    /// past its end — `None` sorts before every `Some`, matching how a
    /// shorter sequence sorts before its extensions.
    #[inline]
    fn token_at(&self, sid: u32, depth: usize) -> Option<u32> {
        let (a, b) = (self.offsets[sid as usize], self.offsets[sid as usize + 1]);
        self.arena[a as usize..b as usize].get(depth).copied()
    }

    /// Longest surface matching a prefix of `ids` (up to `max_len`
    /// tokens), in one descent of the probe table. The order is sorted
    /// by token sequence, so the surfaces extending any fixed prefix
    /// form one contiguous run whose *first* element is the surface
    /// equal to the prefix, if it exists; the descent narrows the run
    /// one token at a time and remembers the deepest exact hit. This is
    /// the exact-only segmenter's per-position probe — strictly less
    /// work than one binary search per window length.
    pub fn longest_match(&self, ids: &[u32], max_len: usize) -> Option<(usize, SurfaceId)> {
        let &first = ids.first()?;
        let &(lo, hi) = self.first_ranges.get(first as usize)?;
        let (mut lo, mut hi) = (lo as usize, hi as usize);
        let mut best = None;
        let max_len = max_len.min(ids.len());
        let mut depth = 1;
        while lo != hi {
            // All of order[lo..hi] share the prefix ids[..depth]; the
            // run head is the prefix itself when its length matches.
            let head = self.order[lo];
            if (self.offsets[head as usize + 1] - self.offsets[head as usize]) as usize == depth {
                best = Some((depth, SurfaceId::new(head)));
            }
            if depth == max_len {
                break;
            }
            // Narrow to surfaces whose next token equals ids[depth].
            let next = ids[depth];
            let run = &self.order[lo..hi];
            let start = run.partition_point(|&sid| self.token_at(sid, depth) < Some(next));
            let end = run.partition_point(|&sid| self.token_at(sid, depth) <= Some(next));
            (lo, hi) = (lo + start, lo + end);
            depth += 1;
        }
        best
    }

    /// [`CompiledDict::longest_match`] restricted to surfaces `keep`
    /// accepts — the segmented-dictionary exact probe, where base
    /// surfaces shadowed by a delta segment (overridden or tombstoned)
    /// must lose to shorter live prefixes. Same single descent; the
    /// deepest *kept* exact hit wins. Requires a deduplicated
    /// dictionary (one surface per token sequence), which
    /// [`crate::EntityMatcher`] guarantees.
    pub(crate) fn longest_match_where(
        &self,
        ids: &[u32],
        max_len: usize,
        keep: impl Fn(u32) -> bool,
    ) -> Option<(usize, SurfaceId)> {
        let &first = ids.first()?;
        let &(lo, hi) = self.first_ranges.get(first as usize)?;
        let (mut lo, mut hi) = (lo as usize, hi as usize);
        let mut best = None;
        let max_len = max_len.min(ids.len());
        let mut depth = 1;
        while lo != hi {
            let head = self.order[lo];
            if (self.offsets[head as usize + 1] - self.offsets[head as usize]) as usize == depth
                && keep(head)
            {
                best = Some((depth, SurfaceId::new(head)));
            }
            if depth == max_len {
                break;
            }
            let next = ids[depth];
            let run = &self.order[lo..hi];
            let start = run.partition_point(|&sid| self.token_at(sid, depth) < Some(next));
            let end = run.partition_point(|&sid| self.token_at(sid, depth) <= Some(next));
            (lo, hi) = (lo + start, lo + end);
            depth += 1;
        }
        best
    }

    /// Maps every token of the normalized query to its byte range and
    /// dictionary token id ([`UNKNOWN_TOKEN`] when out of vocabulary),
    /// clearing and filling the caller's scratch buffers. One call per
    /// query; every window probe afterwards is allocation-free.
    pub fn map_query(&self, normalized: &str, bounds: &mut Vec<(u32, u32)>, ids: &mut Vec<u32>) {
        token_bounds(normalized, bounds);
        ids.clear();
        ids.extend(bounds.iter().map(|&(a, b)| {
            self.tokens
                .get(&normalized[a as usize..b as usize])
                .map_or(UNKNOWN_TOKEN, TokenId::raw)
        }));
    }

    /// Exact whole-string lookup of an already-normalized surface.
    pub fn get_str(&self, normalized: &str) -> Option<SurfaceId> {
        thread_local! {
            static SCRATCH: QueryScratch =
                const { std::cell::RefCell::new((Vec::new(), Vec::new())) };
        }
        SCRATCH.with_borrow_mut(|(bounds, ids)| {
            self.map_query(normalized, bounds, ids);
            if ids.is_empty() {
                return None;
            }
            self.get(ids)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dict() -> CompiledDict {
        CompiledDict::build(vec![
            ("indiana jones 4".into(), EntityId::new(0)),
            ("indy 4".into(), EntityId::new(0)),
            ("madagascar 2".into(), EntityId::new(1)),
            ("canon eos 350d".into(), EntityId::new(2)),
            ("350d".into(), EntityId::new(2)),
        ])
    }

    #[test]
    fn surface_ids_are_lexicographic() {
        let d = dict();
        let surfaces: Vec<&str> = d.surface_strs().collect();
        let mut sorted = surfaces.clone();
        sorted.sort_unstable();
        assert_eq!(surfaces, sorted);
        assert_eq!(d.len(), 5);
        assert_eq!(d.max_tokens(), 3);
    }

    #[test]
    fn get_str_resolves_and_misses() {
        let d = dict();
        let sid = d.get_str("canon eos 350d").unwrap();
        assert_eq!(d.entity(sid), EntityId::new(2));
        assert_eq!(d.surface(sid), "canon eos 350d");
        assert_eq!(d.char_len(sid), 14);
        assert_eq!(d.token_ids(sid).len(), 3);
        // Prefixes, extensions and unknown tokens all miss.
        assert_eq!(d.get_str("canon eos"), None);
        assert_eq!(d.get_str("canon eos 350d x"), None);
        assert_eq!(d.get_str("zzz"), None);
        assert_eq!(d.get_str(""), None);
    }

    #[test]
    fn window_probe_with_sentinel_misses() {
        let d = dict();
        let mut bounds = Vec::new();
        let mut ids = Vec::new();
        d.map_query("indy 4 zzz", &mut bounds, &mut ids);
        assert_eq!(ids.len(), 3);
        assert_eq!(ids[2], UNKNOWN_TOKEN);
        assert!(d.get(&ids[..2]).is_some());
        assert!(d.get(&ids).is_none());
        assert!(d.get(&ids[2..]).is_none());
        assert!(d.get(&[]).is_none());
    }

    #[test]
    fn longest_match_agrees_with_per_window_probes() {
        let d = CompiledDict::build(vec![
            ("a".into(), EntityId::new(0)),
            ("a b".into(), EntityId::new(1)),
            ("a b c".into(), EntityId::new(2)),
            ("b c".into(), EntityId::new(3)),
            ("c".into(), EntityId::new(4)),
        ]);
        let mut bounds = Vec::new();
        let mut ids = Vec::new();
        for query in ["a b c", "a b x", "a x c", "b c a", "x a b", "c", "x y z"] {
            d.map_query(query, &mut bounds, &mut ids);
            for i in 0..ids.len() {
                // Reference: probe every window length, longest first.
                let expected = (1..=d.max_tokens().min(ids.len() - i))
                    .rev()
                    .find_map(|w| d.get(&ids[i..i + w]).map(|sid| (w, sid)));
                assert_eq!(
                    d.longest_match(&ids[i..], d.max_tokens()),
                    expected,
                    "query {query:?} position {i}"
                );
            }
        }
        // max_len caps the descent.
        d.map_query("a b c", &mut bounds, &mut ids);
        assert_eq!(
            d.longest_match(&ids, 2),
            Some((2, d.get_str("a b").unwrap()))
        );
    }

    #[test]
    fn duplicate_surfaces_are_kept_verbatim() {
        let d = CompiledDict::build(vec![
            ("same".into(), EntityId::new(0)),
            ("same".into(), EntityId::new(1)),
        ]);
        assert_eq!(d.len(), 2);
        // Both ids carry the duplicate; lookup returns one of them.
        assert!(d.get_str("same").is_some());
    }

    #[test]
    fn empty_and_default() {
        let d = CompiledDict::default();
        assert!(d.is_empty());
        assert_eq!(d.get_str("anything"), None);
        let d2 = CompiledDict::build(vec![("".into(), EntityId::new(0))]);
        assert!(d2.is_empty(), "empty surfaces are skipped");
    }

    #[test]
    fn can_reach_is_conservative_and_prunes_hopeless_windows() {
        let d = dict();
        let probe = |q: &str, budget: usize| {
            let mut bounds = Vec::new();
            let mut ids = Vec::new();
            d.map_query(q, &mut bounds, &mut ids);
            d.can_reach(&ids, q.chars().count(), budget)
        };
        // Surfaces themselves are reachable at any positive budget.
        for (_, s, _) in d.iter() {
            assert!(probe(s, 1).edit_reachable, "{s:?}");
            assert!(probe(s, 1).has_vocab_token, "{s:?}");
        }
        // One-typo neighbours stay reachable (conservativeness: a
        // reachable window must never be pruned).
        assert!(probe("cannon eos 350d", 2).edit_reachable);
        assert!(probe("indy 44", 1).edit_reachable);
        // Budget 0 is always a prune (exact path already probed).
        assert!(!probe("canon eos 350d", 0).edit_reachable);
        // A window of only out-of-vocabulary tokens: every token needs
        // an edit, two adjacent share one — three unknowns exceed a
        // budget of 1.
        let r = probe("best price here", 1);
        assert!(!r.edit_reachable);
        assert!(!r.has_vocab_token);
        // Length band: nothing in the dictionary is within 2 edits of
        // a 30-char window.
        assert!(!probe("canon eos 350d canon eos 350dd", 2).edit_reachable);
        // Vocabulary flag reports from the same walk (for windows that
        // pass the band screen — early band exits skip the token walk
        // and report `false`, which callers only read after checking
        // `edit_reachable`).
        let r = probe("canon pricey zzz", 2);
        assert!(r.has_vocab_token);
    }

    #[test]
    fn can_reach_never_prunes_true_neighbours() {
        // Brute force: for every surface and every single-char
        // mutation of it, the mutated window must stay reachable
        // within budget 1 — the pruning tables may only ever
        // over-approximate.
        let d = dict();
        let mut bounds = Vec::new();
        let mut ids = Vec::new();
        for (_, s, _) in d.iter() {
            let chars: Vec<char> = s.chars().collect();
            for pos in 0..chars.len() {
                for sub in ['q', 'z', '7'] {
                    let mut q: Vec<char> = chars.clone();
                    q[pos] = sub;
                    let q: String = q.into_iter().collect();
                    let q = websyn_text::normalize(&q);
                    if q.is_empty() {
                        continue;
                    }
                    d.map_query(&q, &mut bounds, &mut ids);
                    assert!(
                        d.can_reach(&ids, q.chars().count(), 1).edit_reachable,
                        "mutation {q:?} of {s:?} wrongly pruned"
                    );
                }
            }
        }
    }

    #[test]
    fn iter_aligns_ids_surfaces_entities() {
        let d = dict();
        for (sid, surface, entity) in d.iter() {
            assert_eq!(d.surface(sid), surface);
            assert_eq!(d.entity(sid), entity);
            assert_eq!(d.get_str(surface), Some(sid));
            assert_eq!(&*d.surface_arc(sid), surface);
        }
    }
}
