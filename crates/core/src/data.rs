//! The mining context: everything the algorithm consumes.
//!
//! The paper's inputs (Section II-B): the homogeneous string set `U`
//! (entity data values, index-aligned with `EntityId`), Search Data `A`
//! and Click Data `L`. The bipartite click graph is derived from `L`
//! once and shared.

use websyn_click::{ClickGraph, ClickLog};
use websyn_common::{EntityId, QueryId};
use websyn_engine::SearchData;

/// Immutable bundle of mining inputs.
#[derive(Debug, Clone)]
pub struct MiningContext {
    /// `U`: one canonical string per entity; index == `EntityId`.
    pub u_set: Vec<String>,
    /// Search Data `A` (must have been collected for exactly `u_set`).
    pub search: SearchData,
    /// Click Data `L`.
    pub log: ClickLog,
    /// The click graph derived from `L`.
    pub graph: ClickGraph,
}

impl MiningContext {
    /// Assembles a context, building the click graph.
    ///
    /// `n_pages` is the page-universe size (so unclicked pages are
    /// representable).
    ///
    /// # Panics
    /// Panics if `search` was not collected for `u_set` (query count
    /// mismatch) — that always indicates the caller paired the wrong
    /// tables.
    pub fn new(u_set: Vec<String>, search: SearchData, log: ClickLog, n_pages: usize) -> Self {
        assert_eq!(
            search.queries.len(),
            u_set.len(),
            "Search Data was not collected for this U set"
        );
        let graph = ClickGraph::build(&log, n_pages);
        Self {
            u_set,
            search,
            log,
            graph,
        }
    }

    /// Number of entities.
    pub fn n_entities(&self) -> usize {
        self.u_set.len()
    }

    /// The canonical string of an entity.
    pub fn canonical(&self, e: EntityId) -> &str {
        &self.u_set[e.as_usize()]
    }

    /// The click-log query id of an entity's canonical string, if that
    /// exact string was ever issued as a query.
    pub fn canonical_query(&self, e: EntityId) -> Option<QueryId> {
        self.log.query_id(self.canonical(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use websyn_click::ClickLogBuilder;
    use websyn_common::PageId;
    use websyn_engine::{SearchData, SearchEngine};

    fn tiny_context() -> MiningContext {
        let docs = vec![
            (PageId::new(0), "alpha beta", "alpha beta content"),
            (PageId::new(1), "gamma", "gamma content"),
        ];
        let engine = SearchEngine::from_docs(docs);
        let u_set = vec!["alpha beta".to_string(), "gamma".to_string()];
        let search = SearchData::collect(&engine, &u_set, 5);
        let mut b = ClickLogBuilder::new();
        let q = b.add_impression("alpha");
        b.add_click(q, PageId::new(0));
        MiningContext::new(u_set, search, b.build(), 2)
    }

    #[test]
    fn assembles() {
        let ctx = tiny_context();
        assert_eq!(ctx.n_entities(), 2);
        assert_eq!(ctx.canonical(EntityId::new(0)), "alpha beta");
        assert_eq!(ctx.graph.n_pages(), 2);
    }

    #[test]
    fn canonical_query_resolution() {
        let ctx = tiny_context();
        // "alpha beta" was never issued as a query; "alpha" was.
        assert_eq!(ctx.canonical_query(EntityId::new(0)), None);
        assert!(ctx.log.query_id("alpha").is_some());
    }

    #[test]
    #[should_panic(expected = "not collected for this U set")]
    fn mismatched_search_data_panics() {
        let docs = vec![(PageId::new(0), "a", "a")];
        let engine = SearchEngine::from_docs(docs);
        let search = SearchData::collect(&engine, &["a"], 5);
        let _ = MiningContext::new(
            vec!["a".to_string(), "b".to_string()],
            search,
            ClickLogBuilder::new().build(),
            1,
        );
    }
}
