//! The selection measures (paper Section III-B).
//!
//! - **IPC** — Intersecting Page Count (Eq. 3):
//!   `IPC(w', u) = |G_L(w', P) ∩ G_A(u, P)|`. Strength: how many common
//!   pages are reached via both strings.
//! - **ICR** — Intersecting Click Ratio (Eq. 4):
//!   `ICR(w', u) = Σ_{l: l.p ∈ intersection} l.n / Σ_{l: l.p ∈ G_L(w')} l.n`.
//!   Exclusiveness: the share of `w'`'s total clicks that land inside
//!   the intersection. This is the discriminator between synonyms
//!   (Fig. 1a, high ICR) and hypernyms/hyponyms/related strings
//!   (Figs. 1b-d, low ICR).

use crate::data::MiningContext;
use crate::surrogate::SurrogateTable;
use websyn_common::{EntityId, QueryId};

/// The measures of one candidate against one entity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CandidateScore {
    /// The candidate query.
    pub query: QueryId,
    /// Intersecting Page Count (Eq. 3).
    pub ipc: u32,
    /// Intersecting Click Ratio (Eq. 4), in `[0, 1]`. Zero when the
    /// candidate has no clicks at all (cannot happen for generated
    /// candidates, which by Def. 6 clicked at least one surrogate).
    pub icr: f64,
}

/// Computes IPC and ICR for candidate `w'` against entity `e` in one
/// pass over `w'`'s click tuples.
pub fn score_candidate(
    ctx: &MiningContext,
    surrogates: &SurrogateTable,
    e: EntityId,
    w: QueryId,
) -> CandidateScore {
    let mut ipc = 0u32;
    let mut intersect_clicks = 0u64;
    let mut total_clicks = 0u64;
    for tuple in ctx.log.clicks_of(w) {
        total_clicks += u64::from(tuple.n);
        if surrogates.contains(e, tuple.page) {
            ipc += 1;
            intersect_clicks += u64::from(tuple.n);
        }
    }
    let icr = if total_clicks == 0 {
        0.0
    } else {
        intersect_clicks as f64 / total_clicks as f64
    };
    CandidateScore { query: w, ipc, icr }
}

#[cfg(test)]
mod tests {
    use super::*;
    use websyn_click::ClickLogBuilder;
    use websyn_common::PageId;
    use websyn_engine::{SearchData, SearchEngine};

    /// Entity 0's surrogates: pages 0, 1 (both match "alpha beta").
    /// - "syn" clicks pages 0 (×8) and 1 (×2): IPC 2, ICR 1.0.
    /// - "hyper" clicks pages 0 (×2), 2 (×5), 3 (×5): IPC 1, ICR 1/6.
    /// - "far" clicks page 3 only: IPC 0, ICR 0.
    fn ctx() -> MiningContext {
        let docs = vec![
            (PageId::new(0), "alpha beta", "alpha beta official"),
            (PageId::new(1), "alpha beta shop", "alpha beta buy"),
            (
                PageId::new(2),
                "franchise hub",
                "alpha beta alpha gamma list",
            ),
            (PageId::new(3), "other", "unrelated"),
        ];
        let engine = SearchEngine::from_docs(docs);
        let u_set = vec!["alpha beta".to_string()];
        let search = SearchData::collect(&engine, &u_set, 2);
        let mut b = ClickLogBuilder::new();
        let syn = b.add_impression("syn");
        let hyper = b.add_impression("hyper");
        let far = b.add_impression("far");
        for _ in 0..8 {
            b.add_click(syn, PageId::new(0));
        }
        for _ in 0..2 {
            b.add_click(syn, PageId::new(1));
        }
        for _ in 0..2 {
            b.add_click(hyper, PageId::new(0));
        }
        for _ in 0..5 {
            b.add_click(hyper, PageId::new(2));
            b.add_click(hyper, PageId::new(3));
        }
        b.add_click(far, PageId::new(3));
        MiningContext::new(u_set, search, b.build(), 4)
    }

    fn surrogate_table(ctx: &MiningContext) -> SurrogateTable {
        let t = SurrogateTable::build(ctx, 2);
        // Sanity: entity 0's surrogates are pages 0 and 1.
        assert_eq!(t.of(EntityId::new(0)), &[PageId::new(0), PageId::new(1)]);
        t
    }

    #[test]
    fn synonym_scores_high_on_both() {
        let ctx = ctx();
        let table = surrogate_table(&ctx);
        let q = ctx.log.query_id("syn").unwrap();
        let s = score_candidate(&ctx, &table, EntityId::new(0), q);
        assert_eq!(s.ipc, 2);
        assert!((s.icr - 1.0).abs() < 1e-12);
    }

    #[test]
    fn hypernym_scores_low_icr() {
        let ctx = ctx();
        let table = surrogate_table(&ctx);
        let q = ctx.log.query_id("hyper").unwrap();
        let s = score_candidate(&ctx, &table, EntityId::new(0), q);
        assert_eq!(s.ipc, 1);
        assert!((s.icr - 2.0 / 12.0).abs() < 1e-12, "icr {}", s.icr);
    }

    #[test]
    fn unrelated_scores_zero() {
        let ctx = ctx();
        let table = surrogate_table(&ctx);
        let q = ctx.log.query_id("far").unwrap();
        let s = score_candidate(&ctx, &table, EntityId::new(0), q);
        assert_eq!(s.ipc, 0);
        assert_eq!(s.icr, 0.0);
    }

    #[test]
    fn invariants_hold() {
        let ctx = ctx();
        let table = surrogate_table(&ctx);
        let e = EntityId::new(0);
        for (q, _) in ctx.log.queries() {
            let s = score_candidate(&ctx, &table, e, q);
            // 0 ≤ ICR ≤ 1.
            assert!((0.0..=1.0).contains(&s.icr));
            // IPC bounded by both set sizes.
            assert!(s.ipc as usize <= table.of(e).len());
            assert!(s.ipc as usize <= ctx.log.clicks_of(q).len());
            // ICR > 0 ⇔ IPC > 0.
            assert_eq!(s.icr > 0.0, s.ipc > 0);
        }
    }
}
