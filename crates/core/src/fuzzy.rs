//! Fuzzy surface resolution: candidate generation + verification.
//!
//! The exact dictionary in [`crate::matcher`] only resolves surfaces
//! that were mined or declared verbatim; a query-time typo ("cannon eos
//! 350d") falls straight through it. This module adds the approximate
//! half of the paper's title — *fuzzy* matching of Web queries — as a
//! classic two-stage pipeline:
//!
//! 1. **generate** — a [`websyn_text::NgramIndex`] over the dictionary
//!    surfaces proposes candidates sharing enough character n-grams
//!    with the query (length and count filters applied);
//! 2. **verify** — each candidate pays for a real edit-distance
//!    computation ([`websyn_text::distance`]), and only candidates
//!    within the length-scaled budget of [`FuzzyConfig`] survive.
//!
//! Resolution is *exact-first*: the caller is expected to try the hash
//! lookup before the fuzzy path, so enabling fuzzy matching never
//! changes the result for a surface that already resolves exactly.
//! Among the verified candidates the minimum distance wins; if two
//! *different* entities tie at the minimum distance the mention is
//! ambiguous and resolves to nothing, mirroring how the exact
//! dictionary drops ambiguous surfaces.

use websyn_common::EntityId;
use websyn_text::{
    damerau_levenshtein, damerau_levenshtein_within, levenshtein, levenshtein_within, NgramIndex,
};

/// Tuning for fuzzy surface lookup.
///
/// The edit-distance budget scales with string length the way serving
/// stacks usually configure fuzziness (cf. Lucene/Elasticsearch
/// `AUTO`): very short strings must match exactly — a single edit on a
/// 3-char model number reaches a different product — while long titles
/// tolerate two.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuzzyConfig {
    /// Character n-gram size of the candidate index. Bigrams keep
    /// short, digit-heavy surfaces ("350d") recallable; trigrams prune
    /// harder on long text.
    pub gram_size: usize,
    /// Minimum normalized char length (query and surface) at which one
    /// edit is allowed; shorter strings resolve exactly only.
    pub min_len_one_edit: usize,
    /// Minimum normalized char length at which two edits are allowed.
    pub min_len_two_edits: usize,
    /// Hard cap on the edit distance regardless of length.
    pub max_distance: usize,
    /// Count an adjacent transposition ("cnaon") as one edit
    /// (Damerau/OSA) instead of two (plain Levenshtein).
    pub transpositions: bool,
}

impl Default for FuzzyConfig {
    fn default() -> Self {
        Self {
            gram_size: 2,
            min_len_one_edit: 4,
            min_len_two_edits: 9,
            max_distance: 2,
            transpositions: true,
        }
    }
}

impl FuzzyConfig {
    /// The edit-distance budget for a normalized string of `chars`
    /// characters under this config.
    pub fn max_distance_for(&self, chars: usize) -> usize {
        let by_len = if chars >= self.min_len_two_edits {
            2
        } else if chars >= self.min_len_one_edit {
            1
        } else {
            0
        };
        by_len.min(self.max_distance)
    }

    /// The distance between two normalized strings under the configured
    /// metric.
    pub fn distance(&self, a: &str, b: &str) -> usize {
        if self.transpositions {
            damerau_levenshtein(a, b)
        } else {
            levenshtein(a, b)
        }
    }

    /// Bounded form of [`FuzzyConfig::distance`]: `Some(d)` iff
    /// `d ≤ k`, using the banded O((2k+1)·len) verification kernels —
    /// this is what the hot path calls, since most candidates are
    /// rejected.
    pub fn distance_within(&self, a: &str, b: &str, k: usize) -> Option<usize> {
        if self.transpositions {
            damerau_levenshtein_within(a, b, k)
        } else {
            levenshtein_within(a, b, k)
        }
    }
}

/// A successful fuzzy resolution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuzzyMatch {
    /// The dictionary surface the query resolved to.
    pub surface: String,
    /// The entity that surface maps to.
    pub entity: EntityId,
    /// Verified edit distance between query and surface (0 = exact).
    pub distance: usize,
}

/// The compiled fuzzy side of a matcher dictionary: the surfaces in a
/// fixed order, their n-gram signature index, and the config.
///
/// Surfaces are stored sorted lexicographically, so candidate ids (and
/// therefore tie-breaking) are deterministic however the dictionary map
/// iterates.
#[derive(Debug, Clone)]
pub struct FuzzyDictionary {
    config: FuzzyConfig,
    /// `(surface, entity)` sorted by surface; ids align with `index`.
    surfaces: Vec<(String, EntityId)>,
    index: NgramIndex,
}

impl FuzzyDictionary {
    /// Compiles the fuzzy dictionary from `(surface, entity)` pairs.
    /// Pairs may arrive in any order; they are sorted internally.
    pub fn build(mut pairs: Vec<(String, EntityId)>, config: FuzzyConfig) -> Self {
        pairs.sort_unstable();
        let index = NgramIndex::build(pairs.iter().map(|(s, _)| s.as_str()), config.gram_size);
        Self {
            config,
            surfaces: pairs,
            index,
        }
    }

    /// The config the dictionary was compiled with.
    pub fn config(&self) -> &FuzzyConfig {
        &self.config
    }

    /// Number of indexed surfaces.
    pub fn len(&self) -> usize {
        self.surfaces.len()
    }

    /// Whether the dictionary is empty.
    pub fn is_empty(&self) -> bool {
        self.surfaces.is_empty()
    }

    /// Resolves an already-normalized string approximately.
    ///
    /// Returns the unique entity whose surface sits at the minimum
    /// verified distance within budget, or `None` when nothing is close
    /// enough or the minimum is contested between entities. The caller
    /// handles the exact (distance 0) path; this method still returns
    /// an exact hit correctly if asked, since the surface's own grams
    /// always pass the filters.
    pub fn resolve(&self, normalized: &str) -> Option<FuzzyMatch> {
        let q_len = normalized.chars().count();
        let budget = self.config.max_distance_for(q_len);
        if budget == 0 {
            return None;
        }
        let mut best: Option<FuzzyMatch> = None;
        let mut contested = false;
        for id in self.index.candidates(normalized, budget) {
            let (surface, entity) = &self.surfaces[id as usize];
            // Both sides must afford the distance: a short surface does
            // not become reachable just because the query is long.
            let allowed = budget.min(self.config.max_distance_for(self.index.surface_len(id)));
            if allowed == 0 {
                continue;
            }
            let Some(d) = self.config.distance_within(normalized, surface, allowed) else {
                continue;
            };
            match &best {
                Some(b) if d > b.distance => {}
                Some(b) if d == b.distance => {
                    // Surfaces are sorted, so the incumbent is the
                    // lexicographically smallest at this distance; a
                    // second *entity* at the same distance makes the
                    // mention ambiguous.
                    if *entity != b.entity {
                        contested = true;
                    }
                }
                _ => {
                    best = Some(FuzzyMatch {
                        surface: surface.clone(),
                        entity: *entity,
                        distance: d,
                    });
                    contested = false;
                }
            }
        }
        if contested {
            None
        } else {
            best
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dict() -> FuzzyDictionary {
        FuzzyDictionary::build(
            vec![
                ("canon eos 350d".into(), EntityId::new(2)),
                ("indiana jones 4".into(), EntityId::new(0)),
                ("indy 4".into(), EntityId::new(0)),
                ("madagascar 2".into(), EntityId::new(1)),
            ],
            FuzzyConfig::default(),
        )
    }

    #[test]
    fn budget_scales_with_length() {
        let c = FuzzyConfig::default();
        assert_eq!(c.max_distance_for(0), 0);
        assert_eq!(c.max_distance_for(3), 0);
        assert_eq!(c.max_distance_for(4), 1);
        assert_eq!(c.max_distance_for(8), 1);
        assert_eq!(c.max_distance_for(9), 2);
        assert_eq!(c.max_distance_for(40), 2);
        let capped = FuzzyConfig {
            max_distance: 1,
            ..FuzzyConfig::default()
        };
        assert_eq!(capped.max_distance_for(40), 1);
    }

    #[test]
    fn one_substitution_resolves() {
        let m = dict().resolve("cannon eos 350d").expect("fuzzy hit");
        assert_eq!(m.entity, EntityId::new(2));
        assert_eq!(m.surface, "canon eos 350d");
        assert_eq!(m.distance, 1);
    }

    #[test]
    fn transposition_costs_one_by_default() {
        let m = dict().resolve("madagasacr 2").expect("fuzzy hit");
        assert_eq!(m.entity, EntityId::new(1));
        assert_eq!(m.distance, 1);
        let strict = FuzzyDictionary::build(
            vec![("madagascar 2".into(), EntityId::new(1))],
            FuzzyConfig {
                transpositions: false,
                ..FuzzyConfig::default()
            },
        );
        // Under plain Levenshtein the swap costs 2, still in budget for
        // a 12-char string.
        assert_eq!(strict.resolve("madagasacr 2").expect("hit").distance, 2);
    }

    #[test]
    fn short_strings_never_resolve_fuzzily() {
        // "indy 4" is 6 chars: budget 1. A 3-char query gets budget 0.
        assert!(dict().resolve("ind").is_none());
        // And a short *surface* is not reachable from a long query:
        // surface "indy 4" (6 chars) affords 1 edit, not 2.
        assert!(dict().resolve("inndy 44").is_none());
        assert!(dict().resolve("indy 44").is_some());
    }

    #[test]
    fn beyond_budget_is_rejected() {
        assert!(dict().resolve("canon eos 999x").is_none());
        assert!(dict().resolve("totally unrelated").is_none());
    }

    #[test]
    fn entity_tie_at_min_distance_is_ambiguous() {
        let d = FuzzyDictionary::build(
            vec![
                ("kodak z812".into(), EntityId::new(5)),
                ("kodak z712".into(), EntityId::new(6)),
            ],
            FuzzyConfig::default(),
        );
        // "kodak z912" is distance 1 from both → contested → None.
        assert!(d.resolve("kodak z912").is_none());
        // Distance 1 from exactly one → resolves.
        let m = d.resolve("kodak z8122").expect("unique hit");
        assert_eq!(m.entity, EntityId::new(5));
    }

    #[test]
    fn same_entity_tie_is_fine_and_deterministic() {
        let d = FuzzyDictionary::build(
            vec![
                ("indiana 4".into(), EntityId::new(0)),
                ("indiano 4".into(), EntityId::new(0)),
            ],
            FuzzyConfig::default(),
        );
        let m = d.resolve("indians 4").expect("hit");
        assert_eq!(m.entity, EntityId::new(0));
        // Lexicographically smallest surface at the tie wins.
        assert_eq!(m.surface, "indiana 4");
    }

    #[test]
    fn empty_dictionary_resolves_nothing() {
        let d = FuzzyDictionary::build(Vec::new(), FuzzyConfig::default());
        assert!(d.is_empty());
        assert!(d.resolve("anything here").is_none());
    }
}
