//! Fuzzy surface resolution: candidate generation + verification.
//!
//! The exact dictionary in [`crate::matcher`] only resolves surfaces
//! that were mined or declared verbatim; a query-time typo ("cannon eos
//! 350d") falls straight through it. This module adds the approximate
//! half of the paper's title — *fuzzy* matching of Web queries — as a
//! classic two-stage pipeline:
//!
//! 1. **generate** — a chain of [`CandidateSource`]s over the compiled
//!    dictionary's surfaces proposes candidate surface ids. The default
//!    chain splits by token count: multi-token windows probe the
//!    token-run signature index
//!    ([`websyn_text::TokenSignatureIndex`]: intact-run anchors with
//!    length-band, token-count and aligned-offset filters — the fast
//!    path, since a typo damages one token and the neighbours anchor),
//!    while single-token windows probe the char n-gram signature index
//!    ([`websyn_text::NgramIndex`]: length + count filters), whose
//!    character granularity is the recall backstop when the lone token
//!    itself is damaged. The optional phonetic
//!    ([`websyn_text::PhoneticIndex`]) and abbreviation
//!    ([`websyn_text::AbbrevIndex`]) sources widen recall to
//!    sound-alikes and systematic abbreviations when
//!    [`FuzzyConfig::phonetic`] / [`FuzzyConfig::abbrev`] are set.
//! 2. **verify** — each proposal from a filtering source pays for a
//!    real bounded edit-distance computation
//!    ([`websyn_text::distance`]), and only candidates within the
//!    length-scaled budget of [`FuzzyConfig`] survive. Proposals from a
//!    transform source (abbrev) are exact by construction and resolve
//!    at distance 0.
//!
//! Before either stage runs, the window is screened against the
//! compiled dictionary's reachability tables
//! ([`CompiledDict::can_reach`]): a window that provably cannot reach
//! any surface within its edit budget skips generation and
//! verification entirely. Pruning is conservative — it only ever skips
//! work, never changes a result (pinned by the pruned-vs-unpruned
//! equivalence proptests).
//!
//! Resolution is *exact-first*: the caller is expected to try the
//! compiled-dictionary lookup before the fuzzy path, so enabling fuzzy
//! matching never changes the result for a surface that already
//! resolves exactly. Among the verified candidates the minimum distance
//! wins; if two *different* entities tie at the minimum distance the
//! mention is ambiguous and resolves to nothing, mirroring how the
//! exact dictionary drops ambiguous surfaces. Surface ids ascend
//! lexicographically (see [`crate::dict`]), so a same-entity tie keeps
//! the lexicographically smallest surface, deterministically.

use crate::dict::CompiledDict;
use std::sync::Arc;
use websyn_common::{EntityId, SurfaceId};
use websyn_text::{
    damerau_levenshtein, damerau_levenshtein_within, levenshtein, levenshtein_within, AbbrevIndex,
    CandidateSource, NgramIndex, PhoneticIndex, PrefixHit, TokenSignatureIndex,
};

/// Tuning for fuzzy surface lookup.
///
/// The edit-distance budget scales with string length the way serving
/// stacks usually configure fuzziness (cf. Lucene/Elasticsearch
/// `AUTO`): very short strings must match exactly — a single edit on a
/// 3-char model number reaches a different product — while long titles
/// tolerate two.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuzzyConfig {
    /// Character n-gram size of the candidate index. Bigrams keep
    /// short, digit-heavy surfaces ("350d") recallable; trigrams prune
    /// harder on long text.
    pub gram_size: usize,
    /// Minimum normalized char length (query and surface) at which one
    /// edit is allowed; shorter strings resolve exactly only.
    pub min_len_one_edit: usize,
    /// Minimum normalized char length at which two edits are allowed.
    pub min_len_two_edits: usize,
    /// Hard cap on the edit distance regardless of length.
    pub max_distance: usize,
    /// Count an adjacent transposition ("cnaon") as one edit
    /// (Damerau/OSA) instead of two (plain Levenshtein).
    pub transpositions: bool,
    /// Chain the per-token Soundex source after the n-gram index, so
    /// sound-alike candidates the gram filters miss still reach
    /// verification. Off by default.
    pub phonetic: bool,
    /// Chain the systematic-abbreviation source: queries that *are* a
    /// mechanical variant of a surface (acronym, stopword drop, bare
    /// model tail) resolve at distance 0 without edit verification.
    /// Off by default.
    pub abbrev: bool,
    /// Generate candidates for **multi-token** windows from the
    /// token-run signature index
    /// ([`websyn_text::TokenSignatureIndex`]: length-band, token-count
    /// and aligned-offset filters over intact token runs) instead of
    /// scanning char-gram postings for the joined window. Single-token
    /// windows keep the n-gram index, whose character granularity is
    /// the recall backstop when the lone token itself is damaged, and
    /// two-token windows fall back to it when no run anchors (both
    /// tokens damaged). On by default — this is the fuzzy hot path's
    /// fast generator.
    ///
    /// Recall coverage: typo-class damage (character edits inside
    /// tokens, one space edit next to otherwise-intact tokens) always
    /// leaves an anchor; a two-token window whose single space was
    /// split out of a surface token ("tv set" → "tvset") or transposed
    /// with a letter ("th ebest" → "the best") anchors through the
    /// index's de-spaced keys; and a two-token window with one
    /// character typo in *each* token reaches the n-gram fallback.
    ///
    /// Residual tradeoff (measured zero on the committed evals, but
    /// real): the fallback fires only when both tokens are out of
    /// vocabulary at the full two-edit budget, and windows of ≥ 3
    /// tokens have neither fallback nor de-spaced anchor — so a
    /// damaged token that happens to equal another dictionary token, a
    /// space substituted *by* a letter ("tv set" → "tvxset"), or edits
    /// that collapse three or more tokens at once can miss a surface
    /// the pure n-gram chain would have proposed. Disable to restore
    /// the n-gram-only chain of PR 3.
    pub token_signature: bool,
}

impl Default for FuzzyConfig {
    fn default() -> Self {
        Self {
            gram_size: 2,
            min_len_one_edit: 4,
            min_len_two_edits: 9,
            max_distance: 2,
            transpositions: true,
            phonetic: false,
            abbrev: false,
            token_signature: true,
        }
    }
}

impl FuzzyConfig {
    /// The edit-distance budget for a normalized string of `chars`
    /// characters under this config.
    pub fn max_distance_for(&self, chars: usize) -> usize {
        let by_len = if chars >= self.min_len_two_edits {
            2
        } else if chars >= self.min_len_one_edit {
            1
        } else {
            0
        };
        by_len.min(self.max_distance)
    }

    /// The distance between two normalized strings under the configured
    /// metric.
    pub fn distance(&self, a: &str, b: &str) -> usize {
        if self.transpositions {
            damerau_levenshtein(a, b)
        } else {
            levenshtein(a, b)
        }
    }

    /// Bounded form of [`FuzzyConfig::distance`]: `Some(d)` iff
    /// `d ≤ k`, using the banded O((2k+1)·len) verification kernels —
    /// this is what the hot path calls, since most candidates are
    /// rejected.
    pub fn distance_within(&self, a: &str, b: &str, k: usize) -> Option<usize> {
        if self.transpositions {
            damerau_levenshtein_within(a, b, k)
        } else {
            levenshtein_within(a, b, k)
        }
    }
}

/// A successful fuzzy resolution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuzzyMatch {
    /// Interned id of the dictionary surface the query resolved to.
    pub surface_id: SurfaceId,
    /// The entity that surface maps to.
    pub entity: EntityId,
    /// Verified edit distance between query and surface (0 = exact, or
    /// an exact transform hit from a non-verifying source).
    pub distance: usize,
    /// Shared handle on the surface string (see
    /// [`FuzzyMatch::surface`]).
    surface: Arc<str>,
}

impl FuzzyMatch {
    /// The dictionary surface the query resolved to.
    pub fn surface(&self) -> &str {
        &self.surface
    }

    /// Crate-internal constructor (the matcher builds distance-0 hits
    /// for exact lookups).
    pub(crate) fn new(
        surface_id: SurfaceId,
        entity: EntityId,
        distance: usize,
        surface: Arc<str>,
    ) -> Self {
        Self {
            surface_id,
            entity,
            distance,
            surface,
        }
    }
}

/// One chain entry: a candidate source plus the query token counts it
/// is consulted for. The token-signature index only fires on
/// multi-token windows (an intact-run anchor cannot exist inside a
/// damaged lone token); the n-gram index backstops single tokens when
/// the signature index is enabled and covers everything otherwise. A
/// `fallback` entry backstops the multi-damage case the anchor-keyed
/// sources cannot see — a window where *every* token was damaged (one
/// typo in each of two tokens leaves no intact run) — so it is
/// consulted only when that case is actually live: the sources before
/// it proposed nothing, every window token is out of vocabulary
/// (a damaged token almost never collides with a dictionary token),
/// and the window affords the full two-edit budget that damaging two
/// tokens costs.
#[derive(Clone)]
struct SourceEntry {
    source: Arc<dyn CandidateSource + Send + Sync>,
    /// Inclusive token-count range `[min, max]` this source applies to.
    min_tokens: usize,
    max_tokens: usize,
    /// Cached `!source.needs_verification()` — read on every window.
    verified: bool,
    /// Consulted only when no earlier source proposed anything.
    fallback: bool,
    /// Whether the source supports per-position prefix generation
    /// ([`CandidateSource::propose_prefix`]) — probed once at chain
    /// construction (the support flag is constant per source).
    prefix_capable: bool,
}

impl SourceEntry {
    fn new(
        source: Arc<dyn CandidateSource + Send + Sync>,
        min_tokens: usize,
        max_tokens: usize,
    ) -> Self {
        let verified = !source.needs_verification();
        let prefix_capable = source.propose_prefix("", 0, &mut Vec::new());
        Self {
            source,
            min_tokens,
            max_tokens,
            verified,
            fallback: false,
            prefix_capable,
        }
    }

    fn fallback(mut self) -> Self {
        self.fallback = true;
        self
    }
}

/// The compiled fuzzy side of a matcher dictionary: a shared
/// [`CompiledDict`] plus the chain of candidate sources the config
/// enables.
///
/// Surface ids ascend lexicographically, so candidate order (and
/// therefore tie-breaking) is deterministic however the sources
/// iterate.
#[derive(Clone)]
pub struct FuzzyDictionary {
    config: FuzzyConfig,
    dict: Arc<CompiledDict>,
    /// Generation chain, consulted in order. `Arc`ed so cloning a
    /// matcher shares the compiled indexes.
    sources: Vec<SourceEntry>,
    /// Whether every chain source requires edit-distance verification.
    /// When true, the [`CompiledDict::can_reach`] pruning tables prove
    /// window skips sound: any surviving proposal would be verified
    /// within the edit budget, so an edit-unreachable window cannot
    /// resolve. A non-verifying source (abbrev: transform hits at any
    /// edit distance) disables pruning.
    all_verifying: bool,
    /// Per-budget bitmasks of window token counts at which a window
    /// with **no** in-vocabulary token may still resolve (some
    /// applicable source proposes unanchored — see
    /// [`CandidateSource::proposes_unanchored`]); bit `m` covers
    /// windows of `m` tokens, bit 31 covers 31-and-up. Windows whose
    /// bit is clear provably resolve to nothing and the segmenter
    /// skips them without memo or generation. Index 0 is budget 1,
    /// index 1 is budget 2 (budget 0 never reaches the fuzzy path).
    unanchored_masks: [u32; 2],
    /// Chain index of the (first) source supporting per-position
    /// prefix generation — the one a [`PrefixContext`] feeds.
    prefix_source: Option<usize>,
    /// Unique id of this compiled chain (see
    /// [`crate::window_cache::WindowCache::bind`]): two dictionaries
    /// never share one unless they are clones of the same compilation,
    /// whose resolutions coincide by construction.
    uid: u64,
}

/// Lazily prepared per-position generation state: the segmenter
/// creates one per start position over the position's *longest*
/// window, and [`FuzzyDictionary::resolve_pruned_prefix`] fills it on
/// first use — so positions whose every window is pruned or memoized
/// never pay the probe pass at all.
pub(crate) struct PrefixContext<'a> {
    /// The longest window's text at this position.
    max_text: &'a str,
    /// The longest window's edit budget (monotone in window length, so
    /// ≥ every shorter window's budget — the collection contract of
    /// [`CandidateSource::propose_prefix`]).
    max_budget: usize,
    prepared: bool,
    hits: &'a mut Vec<PrefixHit>,
}

impl<'a> PrefixContext<'a> {
    /// A fresh context over a position's longest window. `hits` is
    /// caller-owned scratch (cleared here).
    pub(crate) fn new(max_text: &'a str, max_budget: usize, hits: &'a mut Vec<PrefixHit>) -> Self {
        hits.clear();
        Self {
            max_text,
            max_budget,
            prepared: false,
            hits,
        }
    }
}

impl std::fmt::Debug for FuzzyDictionary {
    // The trait objects have no `Debug` bound; the source names plus
    // the config describe the chain completely.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FuzzyDictionary")
            .field("config", &self.config)
            .field("surfaces", &self.dict.len())
            .field("sources", &self.source_names())
            .finish()
    }
}

impl FuzzyDictionary {
    /// Compiles the fuzzy dictionary from `(surface, entity)` pairs.
    /// Pairs may arrive in any order; they are sorted internally.
    pub fn build(pairs: Vec<(String, EntityId)>, config: FuzzyConfig) -> Self {
        Self::from_dict(Arc::new(CompiledDict::build(pairs)), config)
    }

    /// Compiles the fuzzy side over an existing compiled dictionary —
    /// how [`crate::EntityMatcher::with_fuzzy`] shares one dictionary
    /// between the exact and approximate paths.
    pub fn from_dict(dict: Arc<CompiledDict>, config: FuzzyConfig) -> Self {
        let mut sources: Vec<SourceEntry> = Vec::new();
        if config.token_signature {
            sources.push(SourceEntry::new(
                Arc::new(TokenSignatureIndex::build(dict.surface_strs())),
                2,
                usize::MAX,
            ));
            let ngram: Arc<dyn CandidateSource + Send + Sync> =
                Arc::new(NgramIndex::build(dict.surface_strs(), config.gram_size));
            sources.push(SourceEntry::new(Arc::clone(&ngram), 1, 1));
            // Two-token recall backstop: a window whose both tokens
            // were damaged (one typo each fits a 2-edit budget) has no
            // intact run for the signature index to anchor, so the
            // char-gram index steps in — gated to the windows where
            // that case is live (see `SourceEntry`), which keeps it
            // off the hot path. Windows of ≥3 tokens need no backstop:
            // within a 2-edit budget at most two space edits land, so
            // runs of up to three tokens always leave an anchor for
            // typo-class damage (the residual losses — multi-merge
            // edits collapsing several tokens, a damaged token that
            // happens to equal another dictionary token — are
            // documented on `FuzzyConfig::token_signature`).
            sources.push(SourceEntry::new(ngram, 2, 2).fallback());
        } else {
            sources.push(SourceEntry::new(
                Arc::new(NgramIndex::build(dict.surface_strs(), config.gram_size)),
                1,
                usize::MAX,
            ));
        }
        if config.phonetic {
            sources.push(SourceEntry::new(
                Arc::new(PhoneticIndex::build(dict.surface_strs())),
                1,
                usize::MAX,
            ));
        }
        if config.abbrev {
            sources.push(SourceEntry::new(
                Arc::new(AbbrevIndex::build(dict.surface_strs())),
                1,
                usize::MAX,
            ));
        }
        let all_verifying = sources.iter().all(|e| e.source.needs_verification());
        let unanchored_masks = Self::compute_unanchored_masks(&sources);
        let prefix_source = sources.iter().position(|e| e.prefix_capable);
        Self {
            config,
            dict,
            sources,
            all_verifying,
            unanchored_masks,
            prefix_source,
            uid: crate::window_cache::next_uid(),
        }
    }

    /// Precomputes [`FuzzyDictionary::unanchored_mask`] for budgets 1
    /// and 2: bit `m` is set when some source applicable to `m`-token
    /// queries (fallback entries only count at the full two-edit
    /// budget) proposes without a vocabulary anchor.
    fn compute_unanchored_masks(sources: &[SourceEntry]) -> [u32; 2] {
        let mut masks = [0u32; 2];
        for (i, mask) in masks.iter_mut().enumerate() {
            let budget = i + 1;
            for m in 1..=31usize {
                let reachable = sources.iter().any(|e| {
                    m >= e.min_tokens
                        && m <= e.max_tokens
                        && (!e.fallback || budget >= 2)
                        && e.source.proposes_unanchored(m, budget)
                });
                if reachable {
                    *mask |= 1 << m;
                }
            }
        }
        masks
    }

    /// The config the dictionary was compiled with.
    pub fn config(&self) -> &FuzzyConfig {
        &self.config
    }

    /// The shared compiled dictionary.
    pub fn dict(&self) -> &Arc<CompiledDict> {
        &self.dict
    }

    /// Names of the candidate sources, in consultation order.
    pub fn source_names(&self) -> Vec<&'static str> {
        self.sources.iter().map(|s| s.source.name()).collect()
    }

    /// Appends a custom candidate source to the chain, consulted for
    /// every query token count. Proposal ids must be surface ids of
    /// [`FuzzyDictionary::dict`] (build any index over
    /// [`CompiledDict::surface_strs`], whose order coincides with
    /// surface ids). Sources are consulted in insertion order;
    /// resolution semantics (verification, budgets, tie rules) apply
    /// uniformly, so adding a source can only widen recall.
    pub fn push_source(&mut self, source: Arc<dyn CandidateSource + Send + Sync>) {
        self.all_verifying = self.all_verifying && source.needs_verification();
        self.sources.push(SourceEntry::new(source, 1, usize::MAX));
        self.unanchored_masks = Self::compute_unanchored_masks(&self.sources);
        self.prefix_source = self.sources.iter().position(|e| e.prefix_capable);
        // The chain changed, so resolutions may change: take a fresh
        // uid so any bound window cache self-invalidates.
        self.uid = crate::window_cache::next_uid();
    }

    /// The unique id a [`crate::window_cache::WindowCache`] binds to:
    /// fresh per compiled chain, refreshed when the chain mutates.
    pub(crate) fn uid(&self) -> u64 {
        self.uid
    }

    /// Whether every chain source verifies its proposals with an edit
    /// distance — the precondition for [`CompiledDict::can_reach`]
    /// window pruning to be sound (see [`crate::EntityMatcher`]).
    pub fn all_verifying(&self) -> bool {
        self.all_verifying
    }

    /// Whether a window of `n_tokens` tokens at edit budget `budget`
    /// containing **no** in-vocabulary token can resolve under this
    /// chain. `false` is the segmenter's cheapest window skip: no
    /// applicable source can propose for such a window, so neither
    /// memoization nor generation is worth starting.
    pub fn may_resolve_unanchored(&self, n_tokens: usize, budget: usize) -> bool {
        if budget == 0 {
            // Only a non-verifying source could fire; those are
            // content-free and the masks conservatively cover them at
            // budget 1, which the caller uses for budget 0 too.
            return self.unanchored_masks[0] >> n_tokens.min(31) & 1 == 1;
        }
        self.unanchored_masks[budget.clamp(1, 2) - 1] >> n_tokens.min(31) & 1 == 1
    }

    /// Number of indexed surfaces.
    pub fn len(&self) -> usize {
        self.dict.len()
    }

    /// Whether the dictionary is empty.
    pub fn is_empty(&self) -> bool {
        self.dict.is_empty()
    }

    /// Resolves an already-normalized string approximately.
    ///
    /// Returns the unique entity whose surface sits at the minimum
    /// verified distance within budget, or `None` when nothing is close
    /// enough or the minimum is contested between entities. The caller
    /// handles the exact (distance 0) path; this method still returns
    /// an exact hit correctly if asked, since the surface's own runs
    /// and grams always pass the filters.
    pub fn resolve(&self, normalized: &str) -> Option<FuzzyMatch> {
        thread_local! {
            static SCRATCH: crate::dict::QueryScratch =
                const { std::cell::RefCell::new((Vec::new(), Vec::new())) };
        }
        SCRATCH.with_borrow_mut(|(bounds, ids)| {
            self.dict.map_query(normalized, bounds, ids);
            self.resolve_mapped(normalized, ids, normalized.chars().count())
        })
    }

    /// [`FuzzyDictionary::resolve`] when the caller already holds the
    /// window's dictionary token ids and char length — sparing a
    /// re-tokenization per window. `ids` must be the
    /// [`CompiledDict::map_query`] ids of `normalized`.
    pub(crate) fn resolve_mapped(
        &self,
        normalized: &str,
        ids: &[u32],
        chars: usize,
    ) -> Option<FuzzyMatch> {
        let budget = self.config.max_distance_for(chars);
        let edit_reachable = self.dict.can_reach(ids, chars, budget).edit_reachable;
        self.resolve_pruned(normalized, ids, budget, edit_reachable)
    }

    /// Whether any source in the chain supports per-position prefix
    /// generation — gates the segmenter's [`PrefixContext`] setup.
    pub(crate) fn has_prefix_source(&self) -> bool {
        self.prefix_source.is_some()
    }

    /// The resolution core, with the window's edit budget and
    /// [`CompiledDict::can_reach`] verdict already computed — see
    /// [`FuzzyDictionary::resolve_pruned_prefix`], which this wraps
    /// without per-position generation state.
    pub(crate) fn resolve_pruned(
        &self,
        normalized: &str,
        ids: &[u32],
        budget: usize,
        edit_reachable: bool,
    ) -> Option<FuzzyMatch> {
        self.resolve_pruned_prefix(
            normalized,
            ids,
            normalized.chars().count(),
            budget,
            edit_reachable,
            None,
        )
    }

    /// The resolution core with the window's edit budget, char length
    /// and [`CompiledDict::can_reach`] verdict already computed — the
    /// segmenter's entry point, which shares those with its own window
    /// pruning instead of recomputing them per resolution. When the
    /// segmenter also passes its position's [`PrefixContext`],
    /// prefix-capable sources draw proposals from one shared
    /// per-position probe pass ([`CandidateSource::propose_prefix`],
    /// prepared lazily here) instead of re-probing per window —
    /// byte-identical proposals either way, pinned by the index's own
    /// equivalence tests and the segmenter proptests.
    pub(crate) fn resolve_pruned_prefix(
        &self,
        normalized: &str,
        ids: &[u32],
        chars: usize,
        budget: usize,
        edit_reachable: bool,
        mut prefix: Option<&mut PrefixContext<'_>>,
    ) -> Option<FuzzyMatch> {
        thread_local! {
            static PROPOSALS: std::cell::RefCell<Vec<u32>> = const { std::cell::RefCell::new(Vec::new()) };
        }
        // Window pruning: when every source verifies within the edit
        // budget, an edit-unreachable window cannot resolve — skip
        // generation and verification outright. (`can_reach` is also
        // false at budget 0, where only a non-verifying source could
        // fire.)
        if self.all_verifying && !edit_reachable {
            return None;
        }
        let m = ids.len();
        let mut best: Option<(SurfaceId, usize)> = None;
        let mut contested = false;
        let mut proposed_any = false;
        PROPOSALS.with_borrow_mut(|proposals| {
            for (entry_idx, entry) in self.sources.iter().enumerate() {
                if m < entry.min_tokens || m > entry.max_tokens {
                    continue;
                }
                // A fallback entry fires only when the multi-damage
                // case it exists for is live: earlier sources came up
                // empty (whether or not their proposals verified),
                // every window token is out of vocabulary, and the
                // budget affords one edit per token.
                if entry.fallback
                    && (proposed_any
                        || budget < 2
                        || ids.iter().any(|&t| t != crate::dict::UNKNOWN_TOKEN))
                {
                    continue;
                }
                let verified = entry.verified;
                if !verified && !edit_reachable {
                    continue;
                }
                proposals.clear();
                let from_prefix =
                    prefix.is_some() && self.prefix_source == Some(entry_idx) && budget > 0;
                if from_prefix {
                    let ctx = prefix.as_mut().expect("checked above");
                    if !ctx.prepared {
                        // One probe pass over the position's longest
                        // window serves every shorter window here.
                        entry
                            .source
                            .propose_prefix(ctx.max_text, ctx.max_budget, ctx.hits);
                        ctx.prepared = true;
                    }
                    entry
                        .source
                        .filter_prefix(ctx.hits, m, chars, budget, proposals);
                } else {
                    entry.source.propose(normalized, budget, proposals);
                }
                proposed_any |= !proposals.is_empty();
                crate::telemetry::CANDIDATES_PROPOSED.add(proposals.len() as u64);
                for &raw in proposals.iter() {
                    let sid = SurfaceId::new(raw);
                    let d = if verified {
                        0
                    } else {
                        // A char edit moves the token count by at most
                        // one, so a far token count cannot verify —
                        // reject before paying for the distance.
                        if self.dict.token_ids(sid).len().abs_diff(m) > budget {
                            continue;
                        }
                        // Both sides must afford the distance: a short
                        // surface does not become reachable just
                        // because the query is long.
                        let allowed =
                            budget.min(self.config.max_distance_for(self.dict.char_len(sid)));
                        if allowed == 0 {
                            continue;
                        }
                        match self.config.distance_within(
                            normalized,
                            self.dict.surface(sid),
                            allowed,
                        ) {
                            Some(d) => d,
                            None => continue,
                        }
                    };
                    crate::telemetry::CANDIDATES_VERIFIED.incr();
                    match best {
                        Some((_, bd)) if d > bd => {}
                        Some((bsid, bd)) if d == bd => {
                            // A second *entity* at the same distance
                            // makes the mention ambiguous; a same-entity
                            // tie keeps the lexicographically smallest
                            // surface. Each source proposes ids
                            // ascending, but a later source may propose
                            // a smaller id than the incumbent, so the
                            // comparison is explicit.
                            if self.dict.entity(sid) != self.dict.entity(bsid) {
                                contested = true;
                            } else if sid < bsid {
                                best = Some((sid, d));
                            }
                        }
                        _ => {
                            best = Some((sid, d));
                            contested = false;
                        }
                    }
                }
            }
        });
        if contested {
            return None;
        }
        best.map(|(sid, distance)| FuzzyMatch {
            surface_id: sid,
            entity: self.dict.entity(sid),
            distance,
            surface: self.dict.surface_arc(sid),
        })
    }

    /// Whether any applicable source proposes at least one candidate
    /// for `normalized` at `budget` — consulted *unconditionally*
    /// (fallback gating ignored), so the answer over-approximates what
    /// resolution would actually consider. This is the conservative
    /// half of the segmented-dictionary footprint test
    /// (`crate::segment`): a window unrelated to every changed surface
    /// — no proposal from any source built over the changes, no
    /// vocabulary token shared, no exact hit — provably resolves the
    /// same before and after the change, because resolution only ever
    /// sees proposed candidates.
    pub(crate) fn proposes_any(&self, normalized: &str, n_tokens: usize, budget: usize) -> bool {
        thread_local! {
            static PROPOSALS: std::cell::RefCell<Vec<u32>> =
                const { std::cell::RefCell::new(Vec::new()) };
        }
        PROPOSALS.with_borrow_mut(|proposals| {
            self.sources.iter().any(|entry| {
                if n_tokens < entry.min_tokens || n_tokens > entry.max_tokens {
                    return false;
                }
                proposals.clear();
                entry.source.propose(normalized, budget, proposals);
                !proposals.is_empty()
            })
        })
    }
}

/// One verified candidate of the merged (base + overlay) resolution:
/// which segment owns the winning surface, its id *in that segment's
/// dictionary*, and the verified distance.
pub(crate) type MergedResolution = (bool, SurfaceId, usize);

/// Resolves one window against a segmented dictionary — the base
/// chain and the delta-overlay chain run side by side, reproducing the
/// monolithic resolution over the *merged* surface set byte for byte:
///
/// - both dictionaries are compiled with the same [`FuzzyConfig`], so
///   their source chains are structurally identical and are consulted
///   in lock-step (chain position `k` of the base, then of the
///   overlay) — the monolithic consultation order;
/// - base proposals for surfaces shadowed by a delta (overridden or
///   tombstoned) are dropped *before* they count toward the fallback
///   gate, exactly as if the surface were absent from a monolithic
///   recompile;
/// - the fallback's all-out-of-vocabulary gate runs against the
///   *merged* vocabulary: a base token carried only by tombstoned
///   surfaces is dead, a token introduced by a delta surface is live;
/// - ties follow the monolithic rules — minimum distance wins, an
///   equal-distance tie between different entities is contested
///   (resolves to nothing), a same-entity tie keeps the
///   lexicographically smallest surface *string* (within one segment
///   that is id order; across segments the strings are compared
///   directly, and the same string can never appear live in both).
///
/// `edit_reachable` is the union of both dictionaries' reachability
/// screens — conservative over the merged surface set, and pruning is
/// results-invariant (the pruned ≡ unpruned property), so the union
/// is sound.
#[allow(clippy::too_many_arguments)]
pub(crate) fn resolve_merged_window(
    base: &FuzzyDictionary,
    over: &FuzzyDictionary,
    shadowed: impl Fn(u32) -> bool,
    dead_token: impl Fn(u32) -> bool,
    text: &str,
    base_ids: &[u32],
    over_ids: &[u32],
    budget: usize,
    edit_reachable: bool,
) -> Option<MergedResolution> {
    thread_local! {
        static PROPOSALS: std::cell::RefCell<Vec<u32>> =
            const { std::cell::RefCell::new(Vec::new()) };
    }
    debug_assert_eq!(base.sources.len(), over.sources.len());
    debug_assert_eq!(base_ids.len(), over_ids.len());
    if base.all_verifying && !edit_reachable {
        return None;
    }
    let m = base_ids.len();
    let config = &base.config;
    let verify = |dict: &CompiledDict, verified: bool, sid: SurfaceId| -> Option<usize> {
        if verified {
            return Some(0);
        }
        if dict.token_ids(sid).len().abs_diff(m) > budget {
            return None;
        }
        let allowed = budget.min(config.max_distance_for(dict.char_len(sid)));
        if allowed == 0 {
            return None;
        }
        config.distance_within(text, dict.surface(sid), allowed)
    };
    let mut best: Option<MergedResolution> = None;
    let mut contested = false;
    let mut proposed_any = false;
    PROPOSALS.with_borrow_mut(|proposals| {
        for k in 0..base.sources.len() {
            let entry = &base.sources[k];
            if m < entry.min_tokens || m > entry.max_tokens {
                continue;
            }
            if entry.fallback
                && (proposed_any
                    || budget < 2
                    || (0..m).any(|i| {
                        (base_ids[i] != crate::dict::UNKNOWN_TOKEN && !dead_token(base_ids[i]))
                            || over_ids[i] != crate::dict::UNKNOWN_TOKEN
                    }))
            {
                continue;
            }
            let verified = entry.verified;
            if !verified && !edit_reachable {
                continue;
            }
            // Base then overlay at the same chain position; the
            // accumulator below is order-invariant within a position
            // (explicit id/string comparisons), so this interleaving
            // reproduces the monolithic single-chain pass.
            for overlay_side in [false, true] {
                let (fd, side_entry) = if overlay_side {
                    (over, &over.sources[k])
                } else {
                    (base, entry)
                };
                proposals.clear();
                side_entry.source.propose(text, budget, proposals);
                let mut live_any = false;
                for &raw in proposals.iter() {
                    if !overlay_side && shadowed(raw) {
                        continue;
                    }
                    live_any = true;
                    crate::telemetry::CANDIDATES_PROPOSED.incr();
                    let sid = SurfaceId::new(raw);
                    let Some(d) = verify(&fd.dict, verified, sid) else {
                        continue;
                    };
                    crate::telemetry::CANDIDATES_VERIFIED.incr();
                    match best {
                        Some((_, _, bd)) if d > bd => {}
                        Some((bo, bsid, bd)) if d == bd => {
                            let bdict = if bo { &over.dict } else { &base.dict };
                            if fd.dict.entity(sid) != bdict.entity(bsid) {
                                contested = true;
                            } else if fd.dict.surface(sid) < bdict.surface(bsid) {
                                best = Some((overlay_side, sid, d));
                            }
                        }
                        _ => {
                            best = Some((overlay_side, sid, d));
                            contested = false;
                        }
                    }
                }
                proposed_any |= live_any;
            }
        }
    });
    if contested {
        return None;
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dict() -> FuzzyDictionary {
        FuzzyDictionary::build(
            vec![
                ("canon eos 350d".into(), EntityId::new(2)),
                ("indiana jones 4".into(), EntityId::new(0)),
                ("indy 4".into(), EntityId::new(0)),
                ("madagascar 2".into(), EntityId::new(1)),
            ],
            FuzzyConfig::default(),
        )
    }

    #[test]
    fn budget_scales_with_length() {
        let c = FuzzyConfig::default();
        assert_eq!(c.max_distance_for(0), 0);
        assert_eq!(c.max_distance_for(3), 0);
        assert_eq!(c.max_distance_for(4), 1);
        assert_eq!(c.max_distance_for(8), 1);
        assert_eq!(c.max_distance_for(9), 2);
        assert_eq!(c.max_distance_for(40), 2);
        let capped = FuzzyConfig {
            max_distance: 1,
            ..FuzzyConfig::default()
        };
        assert_eq!(capped.max_distance_for(40), 1);
    }

    #[test]
    fn one_substitution_resolves() {
        let m = dict().resolve("cannon eos 350d").expect("fuzzy hit");
        assert_eq!(m.entity, EntityId::new(2));
        assert_eq!(m.surface(), "canon eos 350d");
        assert_eq!(m.distance, 1);
    }

    #[test]
    fn transposition_costs_one_by_default() {
        let m = dict().resolve("madagasacr 2").expect("fuzzy hit");
        assert_eq!(m.entity, EntityId::new(1));
        assert_eq!(m.distance, 1);
        let strict = FuzzyDictionary::build(
            vec![("madagascar 2".into(), EntityId::new(1))],
            FuzzyConfig {
                transpositions: false,
                ..FuzzyConfig::default()
            },
        );
        // Under plain Levenshtein the swap costs 2, still in budget for
        // a 12-char string.
        assert_eq!(strict.resolve("madagasacr 2").expect("hit").distance, 2);
    }

    #[test]
    fn short_strings_never_resolve_fuzzily() {
        // "indy 4" is 6 chars: budget 1. A 3-char query gets budget 0.
        assert!(dict().resolve("ind").is_none());
        // And a short *surface* is not reachable from a long query:
        // surface "indy 4" (6 chars) affords 1 edit, not 2.
        assert!(dict().resolve("inndy 44").is_none());
        assert!(dict().resolve("indy 44").is_some());
    }

    #[test]
    fn beyond_budget_is_rejected() {
        assert!(dict().resolve("canon eos 999x").is_none());
        assert!(dict().resolve("totally unrelated").is_none());
    }

    #[test]
    fn entity_tie_at_min_distance_is_ambiguous() {
        let d = FuzzyDictionary::build(
            vec![
                ("kodak z812".into(), EntityId::new(5)),
                ("kodak z712".into(), EntityId::new(6)),
            ],
            FuzzyConfig::default(),
        );
        // "kodak z912" is distance 1 from both → contested → None.
        assert!(d.resolve("kodak z912").is_none());
        // Distance 1 from exactly one → resolves.
        let m = d.resolve("kodak z8122").expect("unique hit");
        assert_eq!(m.entity, EntityId::new(5));
    }

    #[test]
    fn same_entity_tie_is_fine_and_deterministic() {
        let d = FuzzyDictionary::build(
            vec![
                ("indiana 4".into(), EntityId::new(0)),
                ("indiano 4".into(), EntityId::new(0)),
            ],
            FuzzyConfig::default(),
        );
        let m = d.resolve("indians 4").expect("hit");
        assert_eq!(m.entity, EntityId::new(0));
        // Lexicographically smallest surface at the tie wins.
        assert_eq!(m.surface(), "indiana 4");
    }

    #[test]
    fn empty_dictionary_resolves_nothing() {
        let d = FuzzyDictionary::build(Vec::new(), FuzzyConfig::default());
        assert!(d.is_empty());
        assert!(d.resolve("anything here").is_none());
    }

    #[test]
    fn default_chain_is_token_signature_plus_ngram() {
        // The n-gram index appears twice: the single-token generator
        // and the two-token fallback (same shared index).
        assert_eq!(dict().source_names(), vec!["token-sig", "ngram", "ngram"]);
        // All-out-of-vocabulary windows: two-token windows stay live
        // (de-spaced anchors at any budget, n-gram fallback at 2),
        // three-token windows only at the full budget (pair-key merge
        // plus one more space edit), wider windows are provably dead.
        assert!(dict().may_resolve_unanchored(2, 1));
        assert!(dict().may_resolve_unanchored(2, 2));
        assert!(!dict().may_resolve_unanchored(3, 1));
        assert!(dict().may_resolve_unanchored(3, 2));
        assert!(!dict().may_resolve_unanchored(4, 2));
        assert!(!dict().may_resolve_unanchored(8, 2));
        let full = FuzzyDictionary::build(
            vec![("indiana jones 4".into(), EntityId::new(0))],
            FuzzyConfig {
                phonetic: true,
                abbrev: true,
                ..FuzzyConfig::default()
            },
        );
        assert_eq!(
            full.source_names(),
            vec!["token-sig", "ngram", "ngram", "phonetic", "abbrev"]
        );
        assert!(!full.all_verifying(), "abbrev disables window pruning");
        assert!(
            full.may_resolve_unanchored(7, 2),
            "phonetic proposes for any token count"
        );
        // Disabling the signature index restores the PR-3 chain.
        let plain = FuzzyDictionary::build(
            vec![("indiana jones 4".into(), EntityId::new(0))],
            FuzzyConfig {
                token_signature: false,
                ..FuzzyConfig::default()
            },
        );
        assert_eq!(plain.source_names(), vec!["ngram"]);
        assert!(plain.all_verifying());
        assert!(plain.may_resolve_unanchored(7, 2));
    }

    #[test]
    fn split_space_resolves_through_despaced_anchor() {
        // One inserted space splits a surface token: budget 1, both
        // query tokens damaged, recovered by the de-spaced concat key
        // (no n-gram fallback needed — it is gated to budget 2).
        let d = FuzzyDictionary::build(
            vec![("tvset".into(), EntityId::new(3))],
            FuzzyConfig::default(),
        );
        let m = d.resolve("tv set").expect("split-space hit");
        assert_eq!(m.entity, EntityId::new(3));
        assert_eq!(m.distance, 1);
    }

    #[test]
    fn merged_token_resolves_through_despaced_pair_key() {
        // "canoneos 350x" merges a surface pair and typos the tail:
        // the merged token is out of vocabulary yet equals the posted
        // de-spaced pair key "canoneos", so the surface is proposed
        // and verifies at distance 2.
        let d = FuzzyDictionary::build(
            vec![
                ("canon eos 350d".into(), EntityId::new(1)),
                ("nikon 350x".into(), EntityId::new(2)),
            ],
            FuzzyConfig::default(),
        );
        let m = d.resolve("canoneos 350x").expect("pair-key hit");
        assert_eq!(m.entity, EntityId::new(1));
        assert_eq!(m.distance, 2);
        // And the all-out-of-vocabulary three-token merge shape the
        // unanchored mask must keep live: one pair-key merge plus one
        // adjacent merge.
        let d = FuzzyDictionary::build(
            vec![("ab cd efgh".into(), EntityId::new(7))],
            FuzzyConfig::default(),
        );
        let m = d.resolve("abcd ef gh").expect("double space-damage hit");
        assert_eq!(m.entity, EntityId::new(7));
        assert_eq!(m.distance, 2);
    }

    #[test]
    fn two_token_window_with_both_tokens_damaged_falls_back_to_ngrams() {
        // One typo in each token: no intact run for the signature
        // index to anchor, so without the fallback nothing would be
        // proposed. The n-gram backstop keeps the PR-3 resolution.
        let d = FuzzyDictionary::build(
            vec![("canon eos".into(), EntityId::new(1))],
            FuzzyConfig::default(),
        );
        let m = d.resolve("canom eoz").expect("fallback hit");
        assert_eq!(m.entity, EntityId::new(1));
        assert_eq!(m.distance, 2);
        // When the signature index *does* anchor, the fallback stays
        // out of the way (same result either way here).
        let m = d.resolve("canom eos").expect("anchored hit");
        assert_eq!(m.distance, 1);
    }

    #[test]
    fn abbrev_source_resolves_transform_hits_at_distance_zero() {
        let d = FuzzyDictionary::build(
            vec![("lord of the rings".into(), EntityId::new(9))],
            FuzzyConfig {
                abbrev: true,
                ..FuzzyConfig::default()
            },
        );
        let m = d.resolve("lotr").expect("acronym hit");
        assert_eq!(m.entity, EntityId::new(9));
        assert_eq!(m.distance, 0);
        assert_eq!(m.surface(), "lord of the rings");
        // Without the source the acronym is hopeless (distance 13).
        assert!(dict().resolve("lotr").is_none());
    }

    #[test]
    fn abbrev_contested_between_entities_is_ambiguous() {
        let d = FuzzyDictionary::build(
            vec![
                ("lord of the rings".into(), EntityId::new(1)),
                ("legend of the ring".into(), EntityId::new(2)),
            ],
            FuzzyConfig {
                abbrev: true,
                ..FuzzyConfig::default()
            },
        );
        assert!(
            d.resolve("lotr").is_none(),
            "two entities claim the acronym"
        );
    }

    #[test]
    fn cross_source_same_entity_tie_keeps_smallest_surface() {
        // A later source proposing a *smaller* surface id at the same
        // distance must displace the incumbent, keeping the
        // lexicographic-tie invariant across the whole chain.
        struct Reversed(Vec<u32>);
        impl websyn_text::CandidateSource for Reversed {
            fn name(&self) -> &'static str {
                "reversed"
            }
            fn propose(&self, _query: &str, _max_dist: usize, out: &mut Vec<u32>) {
                out.extend(self.0.iter().rev());
            }
        }
        let mut d = FuzzyDictionary::build(
            vec![
                ("indiana 4".into(), EntityId::new(0)),
                ("indiano 4".into(), EntityId::new(0)),
            ],
            FuzzyConfig::default(),
        );
        d.push_source(Arc::new(Reversed(vec![0, 1])));
        assert_eq!(
            d.source_names(),
            vec!["token-sig", "ngram", "ngram", "reversed"]
        );
        // Both surfaces are distance 1 from the query; whatever order
        // the sources propose them in, the smaller id wins.
        let m = d.resolve("indians 4").expect("hit");
        assert_eq!(m.surface(), "indiana 4");
        // And a later-source *different-entity* tie still contests.
        let mut contested = FuzzyDictionary::build(
            vec![
                ("kodak z812".into(), EntityId::new(5)),
                ("kodak z712".into(), EntityId::new(6)),
            ],
            FuzzyConfig::default(),
        );
        contested.push_source(Arc::new(Reversed(vec![0, 1])));
        assert!(contested.resolve("kodak z912").is_none());
    }

    #[test]
    fn phonetic_source_keeps_verification_authoritative() {
        // The phonetic source may propose sound-alikes, but verification
        // still rejects anything beyond the edit budget.
        let d = FuzzyDictionary::build(
            vec![("indiana jones".into(), EntityId::new(0))],
            FuzzyConfig {
                phonetic: true,
                ..FuzzyConfig::default()
            },
        );
        // Same Soundex key, distance 1: resolves.
        let m = d.resolve("indianna jones").expect("hit");
        assert_eq!(m.distance, 1);
        // Sound-alike but 4 edits away: proposed, then rejected.
        assert!(d.resolve("indynni jones").is_none());
    }
}
