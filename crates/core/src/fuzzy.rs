//! Fuzzy surface resolution: candidate generation + verification.
//!
//! The exact dictionary in [`crate::matcher`] only resolves surfaces
//! that were mined or declared verbatim; a query-time typo ("cannon eos
//! 350d") falls straight through it. This module adds the approximate
//! half of the paper's title — *fuzzy* matching of Web queries — as a
//! classic two-stage pipeline:
//!
//! 1. **generate** — a chain of [`CandidateSource`]s over the compiled
//!    dictionary's surfaces proposes candidate surface ids. The default
//!    chain is the n-gram signature index
//!    ([`websyn_text::NgramIndex`]: length + count filters); the
//!    optional phonetic ([`websyn_text::PhoneticIndex`]) and
//!    abbreviation ([`websyn_text::AbbrevIndex`]) sources widen recall
//!    to sound-alikes and systematic abbreviations when
//!    [`FuzzyConfig::phonetic`] / [`FuzzyConfig::abbrev`] are set.
//! 2. **verify** — each proposal from a filtering source pays for a
//!    real bounded edit-distance computation
//!    ([`websyn_text::distance`]), and only candidates within the
//!    length-scaled budget of [`FuzzyConfig`] survive. Proposals from a
//!    transform source (abbrev) are exact by construction and resolve
//!    at distance 0.
//!
//! Resolution is *exact-first*: the caller is expected to try the
//! compiled-dictionary lookup before the fuzzy path, so enabling fuzzy
//! matching never changes the result for a surface that already
//! resolves exactly. Among the verified candidates the minimum distance
//! wins; if two *different* entities tie at the minimum distance the
//! mention is ambiguous and resolves to nothing, mirroring how the
//! exact dictionary drops ambiguous surfaces. Surface ids ascend
//! lexicographically (see [`crate::dict`]), so a same-entity tie keeps
//! the lexicographically smallest surface, deterministically.

use crate::dict::CompiledDict;
use std::sync::Arc;
use websyn_common::{EntityId, SurfaceId};
use websyn_text::{
    damerau_levenshtein, damerau_levenshtein_within, levenshtein, levenshtein_within, AbbrevIndex,
    CandidateSource, NgramIndex, PhoneticIndex,
};

/// Tuning for fuzzy surface lookup.
///
/// The edit-distance budget scales with string length the way serving
/// stacks usually configure fuzziness (cf. Lucene/Elasticsearch
/// `AUTO`): very short strings must match exactly — a single edit on a
/// 3-char model number reaches a different product — while long titles
/// tolerate two.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuzzyConfig {
    /// Character n-gram size of the candidate index. Bigrams keep
    /// short, digit-heavy surfaces ("350d") recallable; trigrams prune
    /// harder on long text.
    pub gram_size: usize,
    /// Minimum normalized char length (query and surface) at which one
    /// edit is allowed; shorter strings resolve exactly only.
    pub min_len_one_edit: usize,
    /// Minimum normalized char length at which two edits are allowed.
    pub min_len_two_edits: usize,
    /// Hard cap on the edit distance regardless of length.
    pub max_distance: usize,
    /// Count an adjacent transposition ("cnaon") as one edit
    /// (Damerau/OSA) instead of two (plain Levenshtein).
    pub transpositions: bool,
    /// Chain the per-token Soundex source after the n-gram index, so
    /// sound-alike candidates the gram filters miss still reach
    /// verification. Off by default (the n-gram filter alone matches
    /// the PR-2 behaviour bit for bit).
    pub phonetic: bool,
    /// Chain the systematic-abbreviation source: queries that *are* a
    /// mechanical variant of a surface (acronym, stopword drop, bare
    /// model tail) resolve at distance 0 without edit verification.
    /// Off by default.
    pub abbrev: bool,
}

impl Default for FuzzyConfig {
    fn default() -> Self {
        Self {
            gram_size: 2,
            min_len_one_edit: 4,
            min_len_two_edits: 9,
            max_distance: 2,
            transpositions: true,
            phonetic: false,
            abbrev: false,
        }
    }
}

impl FuzzyConfig {
    /// The edit-distance budget for a normalized string of `chars`
    /// characters under this config.
    pub fn max_distance_for(&self, chars: usize) -> usize {
        let by_len = if chars >= self.min_len_two_edits {
            2
        } else if chars >= self.min_len_one_edit {
            1
        } else {
            0
        };
        by_len.min(self.max_distance)
    }

    /// The distance between two normalized strings under the configured
    /// metric.
    pub fn distance(&self, a: &str, b: &str) -> usize {
        if self.transpositions {
            damerau_levenshtein(a, b)
        } else {
            levenshtein(a, b)
        }
    }

    /// Bounded form of [`FuzzyConfig::distance`]: `Some(d)` iff
    /// `d ≤ k`, using the banded O((2k+1)·len) verification kernels —
    /// this is what the hot path calls, since most candidates are
    /// rejected.
    pub fn distance_within(&self, a: &str, b: &str, k: usize) -> Option<usize> {
        if self.transpositions {
            damerau_levenshtein_within(a, b, k)
        } else {
            levenshtein_within(a, b, k)
        }
    }
}

/// A successful fuzzy resolution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuzzyMatch {
    /// Interned id of the dictionary surface the query resolved to.
    pub surface_id: SurfaceId,
    /// The entity that surface maps to.
    pub entity: EntityId,
    /// Verified edit distance between query and surface (0 = exact, or
    /// an exact transform hit from a non-verifying source).
    pub distance: usize,
    /// Shared handle on the surface string (see
    /// [`FuzzyMatch::surface`]).
    surface: Arc<str>,
}

impl FuzzyMatch {
    /// The dictionary surface the query resolved to.
    pub fn surface(&self) -> &str {
        &self.surface
    }

    /// Crate-internal constructor (the matcher builds distance-0 hits
    /// for exact lookups).
    pub(crate) fn new(
        surface_id: SurfaceId,
        entity: EntityId,
        distance: usize,
        surface: Arc<str>,
    ) -> Self {
        Self {
            surface_id,
            entity,
            distance,
            surface,
        }
    }
}

/// The compiled fuzzy side of a matcher dictionary: a shared
/// [`CompiledDict`] plus the chain of candidate sources the config
/// enables.
///
/// Surface ids ascend lexicographically, so candidate order (and
/// therefore tie-breaking) is deterministic however the sources
/// iterate.
#[derive(Clone)]
pub struct FuzzyDictionary {
    config: FuzzyConfig,
    dict: Arc<CompiledDict>,
    /// Generation chain, consulted in order. `Arc`ed so cloning a
    /// matcher shares the compiled indexes.
    sources: Vec<Arc<dyn CandidateSource + Send + Sync>>,
}

impl std::fmt::Debug for FuzzyDictionary {
    // The trait objects have no `Debug` bound; the source names plus
    // the config describe the chain completely.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FuzzyDictionary")
            .field("config", &self.config)
            .field("surfaces", &self.dict.len())
            .field("sources", &self.source_names())
            .finish()
    }
}

impl FuzzyDictionary {
    /// Compiles the fuzzy dictionary from `(surface, entity)` pairs.
    /// Pairs may arrive in any order; they are sorted internally.
    pub fn build(pairs: Vec<(String, EntityId)>, config: FuzzyConfig) -> Self {
        Self::from_dict(Arc::new(CompiledDict::build(pairs)), config)
    }

    /// Compiles the fuzzy side over an existing compiled dictionary —
    /// how [`crate::EntityMatcher::with_fuzzy`] shares one dictionary
    /// between the exact and approximate paths.
    pub fn from_dict(dict: Arc<CompiledDict>, config: FuzzyConfig) -> Self {
        let mut sources: Vec<Arc<dyn CandidateSource + Send + Sync>> = vec![Arc::new(
            NgramIndex::build(dict.surface_strs(), config.gram_size),
        )];
        if config.phonetic {
            sources.push(Arc::new(PhoneticIndex::build(dict.surface_strs())));
        }
        if config.abbrev {
            sources.push(Arc::new(AbbrevIndex::build(dict.surface_strs())));
        }
        Self {
            config,
            dict,
            sources,
        }
    }

    /// The config the dictionary was compiled with.
    pub fn config(&self) -> &FuzzyConfig {
        &self.config
    }

    /// The shared compiled dictionary.
    pub fn dict(&self) -> &Arc<CompiledDict> {
        &self.dict
    }

    /// Names of the candidate sources, in consultation order.
    pub fn source_names(&self) -> Vec<&'static str> {
        self.sources.iter().map(|s| s.name()).collect()
    }

    /// Appends a custom candidate source to the chain. Proposal ids
    /// must be surface ids of [`FuzzyDictionary::dict`] (build any
    /// index over [`CompiledDict::surface_strs`], whose order coincides
    /// with surface ids). Sources are consulted in insertion order;
    /// resolution semantics (verification, budgets, tie rules) apply
    /// uniformly, so adding a source can only widen recall.
    pub fn push_source(&mut self, source: Arc<dyn CandidateSource + Send + Sync>) {
        self.sources.push(source);
    }

    /// Number of indexed surfaces.
    pub fn len(&self) -> usize {
        self.dict.len()
    }

    /// Whether the dictionary is empty.
    pub fn is_empty(&self) -> bool {
        self.dict.is_empty()
    }

    /// Resolves an already-normalized string approximately.
    ///
    /// Returns the unique entity whose surface sits at the minimum
    /// verified distance within budget, or `None` when nothing is close
    /// enough or the minimum is contested between entities. The caller
    /// handles the exact (distance 0) path; this method still returns
    /// an exact hit correctly if asked, since the surface's own grams
    /// always pass the filters.
    pub fn resolve(&self, normalized: &str) -> Option<FuzzyMatch> {
        thread_local! {
            static PROPOSALS: std::cell::RefCell<Vec<u32>> = const { std::cell::RefCell::new(Vec::new()) };
        }
        let q_len = normalized.chars().count();
        let budget = self.config.max_distance_for(q_len);
        let mut best: Option<(SurfaceId, usize)> = None;
        let mut contested = false;
        PROPOSALS.with_borrow_mut(|proposals| {
            for source in &self.sources {
                let verified = !source.needs_verification();
                if !verified && budget == 0 {
                    continue;
                }
                proposals.clear();
                source.propose(normalized, budget, proposals);
                for &raw in proposals.iter() {
                    let sid = SurfaceId::new(raw);
                    let d = if verified {
                        0
                    } else {
                        // Both sides must afford the distance: a short
                        // surface does not become reachable just
                        // because the query is long.
                        let allowed =
                            budget.min(self.config.max_distance_for(self.dict.char_len(sid)));
                        if allowed == 0 {
                            continue;
                        }
                        match self.config.distance_within(
                            normalized,
                            self.dict.surface(sid),
                            allowed,
                        ) {
                            Some(d) => d,
                            None => continue,
                        }
                    };
                    match best {
                        Some((_, bd)) if d > bd => {}
                        Some((bsid, bd)) if d == bd => {
                            // A second *entity* at the same distance
                            // makes the mention ambiguous; a same-entity
                            // tie keeps the lexicographically smallest
                            // surface. Each source proposes ids
                            // ascending, but a later source may propose
                            // a smaller id than the incumbent, so the
                            // comparison is explicit.
                            if self.dict.entity(sid) != self.dict.entity(bsid) {
                                contested = true;
                            } else if sid < bsid {
                                best = Some((sid, d));
                            }
                        }
                        _ => {
                            best = Some((sid, d));
                            contested = false;
                        }
                    }
                }
            }
        });
        if contested {
            return None;
        }
        best.map(|(sid, distance)| FuzzyMatch {
            surface_id: sid,
            entity: self.dict.entity(sid),
            distance,
            surface: self.dict.surface_arc(sid),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dict() -> FuzzyDictionary {
        FuzzyDictionary::build(
            vec![
                ("canon eos 350d".into(), EntityId::new(2)),
                ("indiana jones 4".into(), EntityId::new(0)),
                ("indy 4".into(), EntityId::new(0)),
                ("madagascar 2".into(), EntityId::new(1)),
            ],
            FuzzyConfig::default(),
        )
    }

    #[test]
    fn budget_scales_with_length() {
        let c = FuzzyConfig::default();
        assert_eq!(c.max_distance_for(0), 0);
        assert_eq!(c.max_distance_for(3), 0);
        assert_eq!(c.max_distance_for(4), 1);
        assert_eq!(c.max_distance_for(8), 1);
        assert_eq!(c.max_distance_for(9), 2);
        assert_eq!(c.max_distance_for(40), 2);
        let capped = FuzzyConfig {
            max_distance: 1,
            ..FuzzyConfig::default()
        };
        assert_eq!(capped.max_distance_for(40), 1);
    }

    #[test]
    fn one_substitution_resolves() {
        let m = dict().resolve("cannon eos 350d").expect("fuzzy hit");
        assert_eq!(m.entity, EntityId::new(2));
        assert_eq!(m.surface(), "canon eos 350d");
        assert_eq!(m.distance, 1);
    }

    #[test]
    fn transposition_costs_one_by_default() {
        let m = dict().resolve("madagasacr 2").expect("fuzzy hit");
        assert_eq!(m.entity, EntityId::new(1));
        assert_eq!(m.distance, 1);
        let strict = FuzzyDictionary::build(
            vec![("madagascar 2".into(), EntityId::new(1))],
            FuzzyConfig {
                transpositions: false,
                ..FuzzyConfig::default()
            },
        );
        // Under plain Levenshtein the swap costs 2, still in budget for
        // a 12-char string.
        assert_eq!(strict.resolve("madagasacr 2").expect("hit").distance, 2);
    }

    #[test]
    fn short_strings_never_resolve_fuzzily() {
        // "indy 4" is 6 chars: budget 1. A 3-char query gets budget 0.
        assert!(dict().resolve("ind").is_none());
        // And a short *surface* is not reachable from a long query:
        // surface "indy 4" (6 chars) affords 1 edit, not 2.
        assert!(dict().resolve("inndy 44").is_none());
        assert!(dict().resolve("indy 44").is_some());
    }

    #[test]
    fn beyond_budget_is_rejected() {
        assert!(dict().resolve("canon eos 999x").is_none());
        assert!(dict().resolve("totally unrelated").is_none());
    }

    #[test]
    fn entity_tie_at_min_distance_is_ambiguous() {
        let d = FuzzyDictionary::build(
            vec![
                ("kodak z812".into(), EntityId::new(5)),
                ("kodak z712".into(), EntityId::new(6)),
            ],
            FuzzyConfig::default(),
        );
        // "kodak z912" is distance 1 from both → contested → None.
        assert!(d.resolve("kodak z912").is_none());
        // Distance 1 from exactly one → resolves.
        let m = d.resolve("kodak z8122").expect("unique hit");
        assert_eq!(m.entity, EntityId::new(5));
    }

    #[test]
    fn same_entity_tie_is_fine_and_deterministic() {
        let d = FuzzyDictionary::build(
            vec![
                ("indiana 4".into(), EntityId::new(0)),
                ("indiano 4".into(), EntityId::new(0)),
            ],
            FuzzyConfig::default(),
        );
        let m = d.resolve("indians 4").expect("hit");
        assert_eq!(m.entity, EntityId::new(0));
        // Lexicographically smallest surface at the tie wins.
        assert_eq!(m.surface(), "indiana 4");
    }

    #[test]
    fn empty_dictionary_resolves_nothing() {
        let d = FuzzyDictionary::build(Vec::new(), FuzzyConfig::default());
        assert!(d.is_empty());
        assert!(d.resolve("anything here").is_none());
    }

    #[test]
    fn default_chain_is_ngram_only() {
        assert_eq!(dict().source_names(), vec!["ngram"]);
        let full = FuzzyDictionary::build(
            vec![("indiana jones 4".into(), EntityId::new(0))],
            FuzzyConfig {
                phonetic: true,
                abbrev: true,
                ..FuzzyConfig::default()
            },
        );
        assert_eq!(full.source_names(), vec!["ngram", "phonetic", "abbrev"]);
    }

    #[test]
    fn abbrev_source_resolves_transform_hits_at_distance_zero() {
        let d = FuzzyDictionary::build(
            vec![("lord of the rings".into(), EntityId::new(9))],
            FuzzyConfig {
                abbrev: true,
                ..FuzzyConfig::default()
            },
        );
        let m = d.resolve("lotr").expect("acronym hit");
        assert_eq!(m.entity, EntityId::new(9));
        assert_eq!(m.distance, 0);
        assert_eq!(m.surface(), "lord of the rings");
        // Without the source the acronym is hopeless (distance 13).
        assert!(dict().resolve("lotr").is_none());
    }

    #[test]
    fn abbrev_contested_between_entities_is_ambiguous() {
        let d = FuzzyDictionary::build(
            vec![
                ("lord of the rings".into(), EntityId::new(1)),
                ("legend of the ring".into(), EntityId::new(2)),
            ],
            FuzzyConfig {
                abbrev: true,
                ..FuzzyConfig::default()
            },
        );
        assert!(
            d.resolve("lotr").is_none(),
            "two entities claim the acronym"
        );
    }

    #[test]
    fn cross_source_same_entity_tie_keeps_smallest_surface() {
        // A later source proposing a *smaller* surface id at the same
        // distance must displace the incumbent, keeping the
        // lexicographic-tie invariant across the whole chain.
        struct Reversed(Vec<u32>);
        impl websyn_text::CandidateSource for Reversed {
            fn name(&self) -> &'static str {
                "reversed"
            }
            fn propose(&self, _query: &str, _max_dist: usize, out: &mut Vec<u32>) {
                out.extend(self.0.iter().rev());
            }
        }
        let mut d = FuzzyDictionary::build(
            vec![
                ("indiana 4".into(), EntityId::new(0)),
                ("indiano 4".into(), EntityId::new(0)),
            ],
            FuzzyConfig::default(),
        );
        d.push_source(Arc::new(Reversed(vec![0, 1])));
        assert_eq!(d.source_names(), vec!["ngram", "reversed"]);
        // Both surfaces are distance 1 from the query; whatever order
        // the sources propose them in, the smaller id wins.
        let m = d.resolve("indians 4").expect("hit");
        assert_eq!(m.surface(), "indiana 4");
        // And a later-source *different-entity* tie still contests.
        let mut contested = FuzzyDictionary::build(
            vec![
                ("kodak z812".into(), EntityId::new(5)),
                ("kodak z712".into(), EntityId::new(6)),
            ],
            FuzzyConfig::default(),
        );
        contested.push_source(Arc::new(Reversed(vec![0, 1])));
        assert!(contested.resolve("kodak z912").is_none());
    }

    #[test]
    fn phonetic_source_keeps_verification_authoritative() {
        // The phonetic source may propose sound-alikes, but verification
        // still rejects anything beyond the edit budget.
        let d = FuzzyDictionary::build(
            vec![("indiana jones".into(), EntityId::new(0))],
            FuzzyConfig {
                phonetic: true,
                ..FuzzyConfig::default()
            },
        );
        // Same Soundex key, distance 1: resolves.
        let m = d.resolve("indianna jones").expect("hit");
        assert_eq!(m.distance, 1);
        // Sound-alike but 4 edits away: proposed, then rejected.
        assert!(d.resolve("indynni jones").is_none());
    }
}
