//! Miner configuration.

use crate::surrogate::SurrogateSource;
use serde::{Deserialize, Serialize};
use websyn_common::{Error, Result};

/// Parameters of the synonym miner.
///
/// Defaults are the paper's final operating point: "our solution Us
/// (thresholds IPC 4, ICR 0.1)" with top-10 search surrogates.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MinerConfig {
    /// Surrogate depth `k`: how many top search results of `u` count as
    /// surrogates (Eq. 1).
    pub top_k: usize,
    /// `β`: minimum Intersecting Page Count (Eq. 3).
    pub ipc_threshold: u32,
    /// `γ`: minimum Intersecting Click Ratio (Eq. 4).
    pub icr_threshold: f64,
    /// Where surrogate sets come from (the paper uses Search Data;
    /// Clicks implements the alternative its Section III-A dismisses).
    pub surrogate_source: SurrogateSource,
}

impl Default for MinerConfig {
    fn default() -> Self {
        Self {
            top_k: 10,
            ipc_threshold: 4,
            icr_threshold: 0.1,
            surrogate_source: SurrogateSource::Search,
        }
    }
}

impl MinerConfig {
    /// A config with explicit thresholds and default surrogate depth.
    pub fn with_thresholds(ipc_threshold: u32, icr_threshold: f64) -> Self {
        Self {
            ipc_threshold,
            icr_threshold,
            ..Default::default()
        }
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<()> {
        if self.top_k == 0 {
            return Err(Error::invalid_config("top_k", "must be >= 1"));
        }
        if self.ipc_threshold == 0 {
            return Err(Error::invalid_config(
                "ipc_threshold",
                "must be >= 1 (IPC 0 would admit non-candidates)",
            ));
        }
        if !self.icr_threshold.is_finite() || !(0.0..=1.0).contains(&self.icr_threshold) {
            return Err(Error::invalid_config(
                "icr_threshold",
                format!("must be in [0, 1], got {}", self.icr_threshold),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_the_papers_operating_point() {
        let c = MinerConfig::default();
        assert_eq!(c.top_k, 10);
        assert_eq!(c.ipc_threshold, 4);
        assert_eq!(c.icr_threshold, 0.1);
        c.validate().unwrap();
    }

    #[test]
    fn with_thresholds() {
        let c = MinerConfig::with_thresholds(6, 0.4);
        assert_eq!(c.ipc_threshold, 6);
        assert_eq!(c.icr_threshold, 0.4);
        assert_eq!(c.top_k, 10);
        c.validate().unwrap();
    }

    #[test]
    fn rejects_invalid() {
        assert!(MinerConfig {
            top_k: 0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(MinerConfig {
            ipc_threshold: 0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(MinerConfig {
            icr_threshold: 1.5,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(MinerConfig {
            icr_threshold: f64::NAN,
            ..Default::default()
        }
        .validate()
        .is_err());
    }
}
