//! # websyn-click
//!
//! The click substrate: the synthetic equivalent of "query and click
//! logs from Bing Search (July to November 2008)".
//!
//! - [`model`] — behavioural click models (position-biased and
//!   cascade): the bridge from hidden relevance to observable clicks;
//! - [`session`] — replays the query stream against the search engine
//!   and simulates user clicks;
//! - [`log`] — Click Data `L`: the aggregated `⟨q, p, n⟩` tuples the
//!   paper mines, with per-query impression counts for the coverage
//!   metrics;
//! - [`graph`] — the bipartite query–page click graph in CSR form;
//! - [`walk`] — random walks on the click graph (the machinery behind
//!   the paper's Table I baseline, Craswell & Szummer style);
//! - [`codec`] — a compact binary codec for persisting click logs.

pub mod codec;
pub mod graph;
pub mod log;
pub mod model;
pub mod session;
pub mod walk;

pub use graph::ClickGraph;
pub use log::{ClickLog, ClickLogBuilder, ClickTuple};
pub use model::ClickModel;
pub use session::{simulate_sessions, SessionConfig, SessionStats};
pub use walk::RandomWalk;
