//! Session simulation: replaying the query stream against the engine
//! and the click model to produce Click Data.
//!
//! For every query event: retrieve the SERP (cached per distinct query
//! string), look up each result's hidden affinity to the user's intent,
//! let the click model decide, and record the clicks. This is the
//! "five months of Bing logs" step compressed into a deterministic
//! simulation.

use crate::log::{ClickLog, ClickLogBuilder};
use crate::model::ClickModel;
use websyn_common::{FxHashMap, PageId};
use websyn_engine::SearchEngine;
use websyn_synth::{affinity, QueryEvent, World};

/// Session simulation parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SessionConfig {
    /// SERP depth shown to users.
    pub serp_size: usize,
    /// Retrieval pool the per-impression SERP is sampled from. Real
    /// result lists churn over months (index updates, freshness,
    /// personalization); sampling `serp_size` of the top `serp_pool`
    /// per impression reproduces that churn, which is what lets click
    /// sets grow beyond a single static SERP. Set equal to `serp_size`
    /// to disable.
    pub serp_pool: usize,
    /// The behavioural click model.
    pub model: ClickModel,
    /// RNG label (vary to get independent replicas of the same world).
    pub replica: u64,
}

impl Default for SessionConfig {
    fn default() -> Self {
        Self {
            serp_size: 10,
            serp_pool: 14,
            model: ClickModel::default(),
            replica: 0,
        }
    }
}

/// Aggregate statistics of a simulation run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Total events replayed.
    pub events: u64,
    /// Events with an empty SERP.
    pub empty_serps: u64,
    /// Total clicks recorded.
    pub clicks: u64,
    /// Distinct query strings seen.
    pub distinct_queries: usize,
}

/// Replays `events` and aggregates clicks into a [`ClickLog`].
pub fn simulate_sessions(
    world: &World,
    engine: &SearchEngine,
    events: &[QueryEvent],
    config: &SessionConfig,
) -> (ClickLog, SessionStats) {
    let mut rng = world.seq().rng_indexed("click.sessions", config.replica);
    let mut builder = ClickLogBuilder::new();
    let mut stats = SessionStats::default();

    let pool_size = config.serp_pool.max(config.serp_size);
    // Retrieval pools depend only on the query string: cache per
    // distinct text. The per-impression SERP is sampled from the pool.
    let mut pool_cache: FxHashMap<&str, Vec<PageId>> = FxHashMap::default();
    let mut serp = Vec::with_capacity(config.serp_size);

    for event in events {
        stats.events += 1;
        let q = builder.add_impression(&event.text);

        let pool = pool_cache.entry(event.text.as_str()).or_insert_with(|| {
            engine
                .search(&event.text, pool_size)
                .into_iter()
                .map(|h| h.page)
                .collect()
        });
        if pool.is_empty() {
            stats.empty_serps += 1;
            continue;
        }

        sample_serp(pool, config.serp_size, &mut serp, &mut rng);

        // Hidden relevance of each result to this user's intent.
        let relevance: Vec<f64> = serp
            .iter()
            .map(|&p| affinity(event.intent, &world.pages[p.as_usize()], world))
            .collect();

        for pos in config.model.simulate(&relevance, &mut rng) {
            builder.add_click(q, serp[pos]);
            stats.clicks += 1;
        }
    }

    let log = builder.build();
    stats.distinct_queries = log.n_queries();
    (log, stats)
}

/// Samples this impression's SERP from the retrieval pool: rank-biased
/// selection without replacement (weight `0.8^rank`), output in
/// original rank order. When the pool is no larger than the SERP, the
/// pool is shown as-is.
fn sample_serp<R: rand::Rng + ?Sized>(
    pool: &[PageId],
    serp_size: usize,
    out: &mut Vec<PageId>,
    rng: &mut R,
) {
    out.clear();
    if pool.len() <= serp_size {
        out.extend_from_slice(pool);
        return;
    }
    const RANK_DECAY: f64 = 0.8;
    let mut weights: Vec<f64> = (0..pool.len()).map(|i| RANK_DECAY.powi(i as i32)).collect();
    let mut chosen = vec![false; pool.len()];
    for _ in 0..serp_size {
        let total: f64 = weights.iter().sum();
        if total <= 0.0 {
            break;
        }
        let mut u = rng.gen_range(0.0..total);
        let mut pick = pool.len() - 1;
        for (i, &w) in weights.iter().enumerate() {
            if u < w {
                pick = i;
                break;
            }
            u -= w;
        }
        chosen[pick] = true;
        weights[pick] = 0.0;
    }
    out.extend(
        pool.iter()
            .zip(chosen.iter())
            .filter_map(|(&p, &c)| c.then_some(p)),
    );
}

/// Builds a [`SearchEngine`] over a world's page universe.
pub fn engine_for_world(world: &World) -> SearchEngine {
    SearchEngine::from_docs(
        world
            .pages
            .iter()
            .map(|p| (p.id, p.title.as_str(), p.body.as_str())),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use websyn_synth::{QueryStreamConfig, WorldConfig};

    fn setup(n_events: usize) -> (World, SearchEngine, Vec<QueryEvent>) {
        let mut world = World::build(&WorldConfig::small_movies(25, 33));
        let events =
            websyn_synth::queries::generate(&mut world, &QueryStreamConfig::small(n_events));
        let engine = engine_for_world(&world);
        (world, engine, events)
    }

    #[test]
    fn produces_clicks() {
        let (world, engine, events) = setup(4_000);
        let (log, stats) = simulate_sessions(&world, &engine, &events, &SessionConfig::default());
        assert_eq!(stats.events, 4_000);
        assert!(stats.clicks > 1_000, "too few clicks: {}", stats.clicks);
        assert!(log.n_tuples() > 0);
        assert_eq!(log.total_impressions(), 4_000);
        // Few queries should come back empty — the engine indexes the
        // surfaces users type (including planted nicknames).
        assert!(
            (stats.empty_serps as f64) < 0.05 * stats.events as f64,
            "too many empty SERPs: {}",
            stats.empty_serps
        );
    }

    #[test]
    fn deterministic() {
        let (world, engine, events) = setup(1_000);
        let (a, sa) = simulate_sessions(&world, &engine, &events, &SessionConfig::default());
        let (b, sb) = simulate_sessions(&world, &engine, &events, &SessionConfig::default());
        assert_eq!(sa, sb);
        assert_eq!(a.tuples(), b.tuples());
    }

    #[test]
    fn replicas_differ() {
        let (world, engine, events) = setup(1_000);
        let (_, s0) = simulate_sessions(&world, &engine, &events, &SessionConfig::default());
        let cfg1 = SessionConfig {
            replica: 1,
            ..Default::default()
        };
        let (_, s1) = simulate_sessions(&world, &engine, &events, &cfg1);
        assert_ne!(s0.clicks, s1.clicks, "replicas should differ in detail");
    }

    #[test]
    fn canonical_queries_click_own_pages() {
        let (world, engine, events) = setup(6_000);
        let (log, _) = simulate_sessions(&world, &engine, &events, &SessionConfig::default());
        // For the most popular entity: clicks from its canonical query
        // should land mostly on its own pages.
        let e0 = &world.entities[0];
        let Some(q) = log.query_id(&e0.canonical_norm) else {
            return; // head entity not queried canonically in this stream
        };
        let own_pages: std::collections::HashSet<u32> = world
            .pages
            .iter()
            .filter(|p| p.target == Some(websyn_synth::AliasTarget::Entity(e0.id)))
            .map(|p| p.id.raw())
            .collect();
        let (own, total) = log.clicks_of(q).iter().fold((0u64, 0u64), |(o, t), tup| {
            let n = u64::from(tup.n);
            if own_pages.contains(&tup.page.raw()) {
                (o + n, t + n)
            } else {
                (o, t + n)
            }
        });
        if total > 10 {
            assert!(
                own * 10 >= total * 7,
                "only {own}/{total} canonical clicks landed on own pages"
            );
        }
    }

    #[test]
    fn cascade_model_also_works() {
        let (world, engine, events) = setup(1_000);
        let cfg = SessionConfig {
            model: ClickModel::cascade(),
            ..Default::default()
        };
        let (log, stats) = simulate_sessions(&world, &engine, &events, &cfg);
        assert!(stats.clicks > 0);
        assert!(log.n_tuples() > 0);
    }

    #[test]
    fn empty_event_stream() {
        let (world, engine, _) = setup(10);
        let (log, stats) = simulate_sessions(&world, &engine, &[], &SessionConfig::default());
        assert_eq!(stats.events, 0);
        assert_eq!(log.n_queries(), 0);
    }
}
