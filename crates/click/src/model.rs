//! Behavioural click models.
//!
//! A click model turns hidden relevance (the world's affinity oracle)
//! into observable clicks on a ranked result list. Two standard models
//! are provided; the mined synonyms should be robust to the choice
//! (DESIGN.md ablation #3):
//!
//! - **Position-biased**: each position is *examined* independently
//!   with probability `decay^rank`; an examined result is clicked with
//!   probability equal to its relevance (plus a small misclick noise).
//! - **Cascade**: the user scans top-down, clicks with probability
//!   equal to relevance, stops when satisfied, and abandons with a
//!   fixed probability after each unclicked result.

use rand::Rng;

/// A behavioural click model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ClickModel {
    /// Independent examination with geometric position decay.
    PositionBiased {
        /// Examination probability multiplier per position
        /// (`P(examine rank r) = decay^r`, 0-based).
        decay: f64,
        /// Probability that an examined, irrelevant result is clicked
        /// anyway (misclicks / curiosity).
        noise: f64,
    },
    /// Sequential scan with satisfaction-based stopping.
    Cascade {
        /// Probability of abandoning the scan after each unclicked
        /// result.
        abandon: f64,
    },
}

impl Default for ClickModel {
    fn default() -> Self {
        // Calibrated to ≈1.2-1.5 clicks per impression on typical
        // entity SERPs, in line with published search CTR figures.
        ClickModel::PositionBiased {
            decay: 0.58,
            noise: 0.015,
        }
    }
}

impl ClickModel {
    /// The standard cascade configuration.
    pub fn cascade() -> Self {
        ClickModel::Cascade { abandon: 0.15 }
    }

    /// Simulates clicks over one SERP. `relevance[i]` is the hidden
    /// affinity of the result at 0-based position `i`. Returns the
    /// clicked positions in ascending order.
    pub fn simulate<R: Rng + ?Sized>(&self, relevance: &[f64], rng: &mut R) -> Vec<usize> {
        match *self {
            ClickModel::PositionBiased { decay, noise } => {
                let mut clicks = Vec::new();
                let mut exam = 1.0f64;
                for (pos, &rel) in relevance.iter().enumerate() {
                    debug_assert!((0.0..=1.0).contains(&rel));
                    if rng.gen_bool(exam.clamp(0.0, 1.0)) {
                        let p_click = (rel + noise * (1.0 - rel)).clamp(0.0, 1.0);
                        if rng.gen_bool(p_click) {
                            clicks.push(pos);
                        }
                    }
                    exam *= decay;
                }
                clicks
            }
            ClickModel::Cascade { abandon } => {
                let mut clicks = Vec::new();
                for (pos, &rel) in relevance.iter().enumerate() {
                    debug_assert!((0.0..=1.0).contains(&rel));
                    if rng.gen_bool(rel.clamp(0.0, 1.0)) {
                        clicks.push(pos);
                        // Satisfaction: the more relevant the clicked
                        // result, the likelier the user stops.
                        if rng.gen_bool(rel.clamp(0.0, 1.0)) {
                            break;
                        }
                    } else if rng.gen_bool(abandon.clamp(0.0, 1.0)) {
                        break;
                    }
                }
                clicks
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use websyn_common::SeedSequence;

    fn rng() -> rand::rngs::SmallRng {
        SeedSequence::new(21).rng("click-model")
    }

    fn click_rate(model: ClickModel, relevance: &[f64], trials: usize) -> Vec<f64> {
        let mut r = rng();
        let mut counts = vec![0u32; relevance.len()];
        for _ in 0..trials {
            for pos in model.simulate(relevance, &mut r) {
                counts[pos] += 1;
            }
        }
        counts
            .iter()
            .map(|&c| f64::from(c) / trials as f64)
            .collect()
    }

    #[test]
    fn relevant_results_clicked_more() {
        for model in [ClickModel::default(), ClickModel::cascade()] {
            let rates = click_rate(model, &[0.9, 0.1, 0.9, 0.1], 4000);
            assert!(rates[0] > rates[1], "{model:?}: {rates:?}");
            assert!(rates[2] > rates[3], "{model:?}: {rates:?}");
        }
    }

    #[test]
    fn position_bias_discounts_lower_ranks() {
        // Same relevance everywhere → clicks must decay with position.
        let rates = click_rate(ClickModel::default(), &[0.8; 8], 4000);
        assert!(rates[0] > rates[3], "{rates:?}");
        assert!(rates[3] > rates[7], "{rates:?}");
    }

    #[test]
    fn cascade_rarely_clicks_deep_after_satisfaction() {
        let rates = click_rate(ClickModel::cascade(), &[0.95, 0.95, 0.95, 0.95], 4000);
        // The first highly relevant result satisfies most users.
        assert!(rates[0] > 3.0 * rates[2], "{rates:?}");
    }

    #[test]
    fn zero_relevance_zero_noise_never_clicks() {
        let model = ClickModel::PositionBiased {
            decay: 0.7,
            noise: 0.0,
        };
        let mut r = rng();
        for _ in 0..500 {
            assert!(model.simulate(&[0.0, 0.0, 0.0], &mut r).is_empty());
        }
        let mut r2 = rng();
        for _ in 0..500 {
            assert!(ClickModel::cascade()
                .simulate(&[0.0; 3], &mut r2)
                .is_empty());
        }
    }

    #[test]
    fn noise_produces_occasional_misclicks() {
        let model = ClickModel::PositionBiased {
            decay: 0.9,
            noise: 0.05,
        };
        let rates = click_rate(model, &[0.0, 0.0], 8000);
        assert!(rates[0] > 0.0, "noise should produce some clicks");
        assert!(rates[0] < 0.15, "noise too strong: {rates:?}");
    }

    #[test]
    fn empty_serp() {
        let mut r = rng();
        assert!(ClickModel::default().simulate(&[], &mut r).is_empty());
    }

    #[test]
    fn clicks_are_sorted_positions() {
        let mut r = rng();
        for _ in 0..200 {
            let clicks = ClickModel::default().simulate(&[0.9; 6], &mut r);
            for w in clicks.windows(2) {
                assert!(w[0] < w[1]);
            }
            for &c in &clicks {
                assert!(c < 6);
            }
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let run = || {
            let mut r = SeedSequence::new(9).rng("det");
            (0..64)
                .map(|_| ClickModel::default().simulate(&[0.5, 0.4, 0.3], &mut r))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
