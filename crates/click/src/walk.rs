//! Random walks on the click graph.
//!
//! Implements the Craswell & Szummer-style lazy random walk used by the
//! paper's Table I baseline ("Random Walk on a Click Graph", citing
//! Fuxman et al. for keyword generation). The walk alternates between
//! query and page nodes over the bipartite click graph; at every step
//! it stays put with probability `self_transition` (the "0.8" in the
//! paper's `Walk(0.8)`), otherwise it moves along an edge with
//! probability proportional to click counts.
//!
//! The implementation propagates the full probability distribution
//! (sparse, with mass pruning) rather than sampling trajectories, so
//! results are exact and deterministic.

use crate::graph::ClickGraph;
use websyn_common::{FxHashMap, PageId, QueryId};

/// Configuration of the lazy bipartite random walk.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RandomWalk {
    /// Probability of staying at the current node each step.
    pub self_transition: f64,
    /// Number of steps. One step = one potential move (query→page or
    /// page→query). Even counts end on the starting side.
    pub steps: usize,
    /// Probability mass below which an entry is pruned (keeps the
    /// frontier sparse on large graphs).
    pub prune: f64,
}

impl Default for RandomWalk {
    fn default() -> Self {
        Self {
            // The paper's Table I runs "Walk(0.8)".
            self_transition: 0.8,
            // Ten alternations ≈ the published walk lengths (Craswell &
            // Szummer use 11-step walks).
            steps: 10,
            prune: 1e-9,
        }
    }
}

/// A sparse probability distribution over bipartite nodes.
#[derive(Debug, Clone, Default)]
struct Frontier {
    queries: FxHashMap<QueryId, f64>,
    pages: FxHashMap<PageId, f64>,
}

impl RandomWalk {
    /// Runs the walk from a query node and returns the resulting
    /// probability mass over *query* nodes, sorted by descending mass
    /// (ties: ascending id). The start node itself is included.
    pub fn from_query(&self, graph: &ClickGraph, start: QueryId) -> Vec<(QueryId, f64)> {
        assert!(
            (0.0..=1.0).contains(&self.self_transition),
            "self_transition must be a probability"
        );
        let mut frontier = Frontier::default();
        frontier.queries.insert(start, 1.0);

        for _ in 0..self.steps {
            frontier = self.step(graph, &frontier);
        }

        let mut out: Vec<(QueryId, f64)> = frontier.queries.into_iter().collect();
        out.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .expect("mass is finite")
                .then_with(|| a.0.cmp(&b.0))
        });
        out
    }

    /// One lazy transition of the whole distribution.
    fn step(&self, graph: &ClickGraph, frontier: &Frontier) -> Frontier {
        let s = self.self_transition;
        let mut next = Frontier::default();

        // Query-side mass.
        for (&q, &mass) in &frontier.queries {
            if mass < self.prune {
                continue;
            }
            *next.queries.entry(q).or_insert(0.0) += mass * s;
            let degree = graph.query_degree(q);
            if degree == 0 {
                // Dangling node: the move mass stays put (standard lazy
                // walk treatment, keeps the distribution stochastic).
                *next.queries.entry(q).or_insert(0.0) += mass * (1.0 - s);
                continue;
            }
            let move_mass = mass * (1.0 - s);
            if move_mass > 0.0 {
                for &(p, n) in graph.pages_of(q) {
                    *next.pages.entry(p).or_insert(0.0) += move_mass * f64::from(n) / degree as f64;
                }
            }
        }

        // Page-side mass.
        for (&p, &mass) in &frontier.pages {
            if mass < self.prune {
                continue;
            }
            *next.pages.entry(p).or_insert(0.0) += mass * s;
            let degree = graph.page_degree(p);
            if degree == 0 {
                *next.pages.entry(p).or_insert(0.0) += mass * (1.0 - s);
                continue;
            }
            let move_mass = mass * (1.0 - s);
            if move_mass > 0.0 {
                for &(q, n) in graph.queries_of(p) {
                    *next.queries.entry(q).or_insert(0.0) +=
                        move_mass * f64::from(n) / degree as f64;
                }
            }
        }

        next
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::ClickLogBuilder;

    /// q0 and q1 co-click page 0 heavily; q2 clicks an unrelated page.
    fn graph() -> (ClickGraph, QueryId, QueryId, QueryId) {
        let mut b = ClickLogBuilder::new();
        let q0 = b.add_impression("canonical name");
        let q1 = b.add_impression("nickname");
        let q2 = b.add_impression("unrelated");
        for _ in 0..10 {
            b.add_click(q0, PageId::new(0));
            b.add_click(q1, PageId::new(0));
        }
        b.add_click(q1, PageId::new(1));
        for _ in 0..5 {
            b.add_click(q2, PageId::new(2));
        }
        (ClickGraph::build(&b.build(), 3), q0, q1, q2)
    }

    #[test]
    fn mass_is_conserved() {
        let (g, q0, _, _) = graph();
        let walk = RandomWalk::default();
        let dist = walk.from_query(&g, q0);
        // After an even number of steps most mass is on queries; sum of
        // *all* mass (query side only here) must be ≤ 1 and the start
        // must retain the plurality.
        let total: f64 = dist.iter().map(|&(_, m)| m).sum();
        assert!(total <= 1.0 + 1e-9, "total {total}");
        assert!(total > 0.5, "too much mass lost to pages: {total}");
        assert_eq!(dist[0].0, q0, "start node keeps the most mass");
    }

    #[test]
    fn co_clicking_queries_get_mass() {
        let (g, q0, q1, q2) = graph();
        let dist = RandomWalk::default().from_query(&g, q0);
        let mass = |q: QueryId| {
            dist.iter()
                .find(|&&(x, _)| x == q)
                .map(|&(_, m)| m)
                .unwrap_or(0.0)
        };
        assert!(mass(q1) > 0.0, "co-clicking query gets mass");
        assert!(
            mass(q1) > 100.0 * mass(q2).max(1e-12) || mass(q2) == 0.0,
            "unrelated query should get (essentially) no mass: q1={} q2={}",
            mass(q1),
            mass(q2)
        );
    }

    #[test]
    fn disconnected_query_keeps_all_mass() {
        let mut b = ClickLogBuilder::new();
        let q0 = b.add_impression("lonely");
        let log = b.build();
        let g = ClickGraph::build(&log, 0);
        let dist = RandomWalk::default().from_query(&g, q0);
        assert_eq!(dist.len(), 1);
        assert!((dist[0].1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_steps_is_identity() {
        let (g, q0, _, _) = graph();
        let walk = RandomWalk {
            steps: 0,
            ..Default::default()
        };
        let dist = walk.from_query(&g, q0);
        assert_eq!(dist, vec![(q0, 1.0)]);
    }

    #[test]
    fn self_transition_one_never_moves() {
        let (g, q0, _, _) = graph();
        let walk = RandomWalk {
            self_transition: 1.0,
            steps: 8,
            prune: 0.0,
        };
        let dist = walk.from_query(&g, q0);
        assert_eq!(dist.len(), 1);
        assert!((dist[0].1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn deterministic() {
        let (g, q0, _, _) = graph();
        let a = RandomWalk::default().from_query(&g, q0);
        let b = RandomWalk::default().from_query(&g, q0);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn invalid_self_transition_panics() {
        let (g, q0, _, _) = graph();
        let walk = RandomWalk {
            self_transition: 1.5,
            ..Default::default()
        };
        let _ = walk.from_query(&g, q0);
    }
}
