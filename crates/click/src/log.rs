//! Click Data `L` (paper Section II-B).
//!
//! `L` is a set of tuples `l = ⟨q, p, n⟩`: the number of times `n` that
//! users clicked page `p` after issuing query `q`. Alongside the click
//! tuples the log keeps per-query *impression* counts (how often each
//! query was issued), which the paper's weighted precision and coverage
//! metrics need.

use websyn_common::{FxHashMap, PageId, QueryId, StringInterner};

/// One aggregated click tuple `⟨q, p, n⟩`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClickTuple {
    /// The issuing query.
    pub query: QueryId,
    /// The clicked page.
    pub page: PageId,
    /// Number of clicks (`n ≥ 1`).
    pub n: u32,
}

/// Accumulates raw impressions/clicks, then freezes into a [`ClickLog`].
#[derive(Debug, Default)]
pub struct ClickLogBuilder {
    queries: StringInterner<QueryId>,
    impressions: Vec<u32>,
    clicks: FxHashMap<(QueryId, PageId), u32>,
}

impl ClickLogBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a query string, growing the impression table.
    fn intern(&mut self, text: &str) -> QueryId {
        let q = self.queries.intern(text);
        if q.as_usize() >= self.impressions.len() {
            self.impressions.resize(q.as_usize() + 1, 0);
        }
        q
    }

    /// Records one issuance of `text`. Returns the query id.
    pub fn add_impression(&mut self, text: &str) -> QueryId {
        let q = self.intern(text);
        self.impressions[q.as_usize()] += 1;
        q
    }

    /// Records one click from query `q` on `page`.
    pub fn add_click(&mut self, q: QueryId, page: PageId) {
        debug_assert!(q.as_usize() < self.impressions.len(), "unknown query id");
        *self.clicks.entry((q, page)).or_insert(0) += 1;
    }

    /// Freezes into an immutable log with CSR layout.
    pub fn build(self) -> ClickLog {
        let n_queries = self.queries.len();
        let mut tuples: Vec<ClickTuple> = self
            .clicks
            .into_iter()
            .map(|((query, page), n)| ClickTuple { query, page, n })
            .collect();
        tuples.sort_unstable_by_key(|t| (t.query, t.page));

        let mut offsets = Vec::with_capacity(n_queries + 1);
        offsets.push(0u32);
        let mut cursor = 0usize;
        for q in 0..n_queries {
            while cursor < tuples.len() && tuples[cursor].query.as_usize() == q {
                cursor += 1;
            }
            offsets.push(cursor as u32);
        }

        ClickLog {
            queries: self.queries,
            impressions: self.impressions,
            tuples,
            offsets,
        }
    }
}

/// The immutable Click Data table.
#[derive(Debug, Clone)]
pub struct ClickLog {
    queries: StringInterner<QueryId>,
    /// Impressions per query (issuances, clicked or not).
    impressions: Vec<u32>,
    /// Tuples sorted by (query, page).
    tuples: Vec<ClickTuple>,
    /// CSR offsets: tuples of query `q` live in
    /// `tuples[offsets[q]..offsets[q+1]]`.
    offsets: Vec<u32>,
}

impl ClickLog {
    /// Number of distinct query strings.
    pub fn n_queries(&self) -> usize {
        self.queries.len()
    }

    /// Number of aggregated tuples.
    pub fn n_tuples(&self) -> usize {
        self.tuples.len()
    }

    /// Looks up a query string.
    pub fn query_id(&self, text: &str) -> Option<QueryId> {
        self.queries.get(text)
    }

    /// Resolves a query id to its string.
    pub fn query_text(&self, q: QueryId) -> &str {
        self.queries.resolve(q)
    }

    /// Impressions (issuances) of a query.
    pub fn impressions(&self, q: QueryId) -> u32 {
        self.impressions[q.as_usize()]
    }

    /// Total impressions across all queries.
    pub fn total_impressions(&self) -> u64 {
        self.impressions.iter().map(|&n| u64::from(n)).sum()
    }

    /// The click tuples of one query (sorted by page id). `G_L(q, P)`
    /// per Eq. 2 is the page set of these tuples (every stored tuple
    /// has `n ≥ 1`).
    pub fn clicks_of(&self, q: QueryId) -> &[ClickTuple] {
        let lo = self.offsets[q.as_usize()] as usize;
        let hi = self.offsets[q.as_usize() + 1] as usize;
        &self.tuples[lo..hi]
    }

    /// Total clicks issued from one query (the denominator of Eq. 4).
    pub fn total_clicks_of(&self, q: QueryId) -> u64 {
        self.clicks_of(q).iter().map(|t| u64::from(t.n)).sum()
    }

    /// All tuples.
    pub fn tuples(&self) -> &[ClickTuple] {
        &self.tuples
    }

    /// Iterates `(QueryId, &str)` for all queries.
    pub fn queries(&self) -> impl Iterator<Item = (QueryId, &str)> + '_ {
        self.queries.iter()
    }

    /// The largest page id referenced, plus one (the page-space bound
    /// needed to build CSR structures over pages).
    pub fn page_bound(&self) -> usize {
        self.tuples
            .iter()
            .map(|t| t.page.as_usize() + 1)
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_log() -> ClickLog {
        let mut b = ClickLogBuilder::new();
        let q0 = b.add_impression("indy 4");
        b.add_impression("indy 4");
        b.add_impression("indy 4");
        let q1 = b.add_impression("harrison ford");
        b.add_click(q0, PageId::new(10));
        b.add_click(q0, PageId::new(10));
        b.add_click(q0, PageId::new(3));
        b.add_click(q1, PageId::new(7));
        // A query with impressions but no clicks.
        b.add_impression("no clicks here");
        b.build()
    }

    #[test]
    fn aggregation_counts_clicks() {
        let log = sample_log();
        let q0 = log.query_id("indy 4").unwrap();
        let tuples = log.clicks_of(q0);
        assert_eq!(tuples.len(), 2);
        // Sorted by page id: page 3 first.
        assert_eq!(tuples[0].page, PageId::new(3));
        assert_eq!(tuples[0].n, 1);
        assert_eq!(tuples[1].page, PageId::new(10));
        assert_eq!(tuples[1].n, 2);
        assert_eq!(log.total_clicks_of(q0), 3);
    }

    #[test]
    fn impressions_tracked_separately() {
        let log = sample_log();
        let q0 = log.query_id("indy 4").unwrap();
        assert_eq!(log.impressions(q0), 3);
        let q2 = log.query_id("no clicks here").unwrap();
        assert_eq!(log.impressions(q2), 1);
        assert!(log.clicks_of(q2).is_empty());
        assert_eq!(log.total_impressions(), 5);
    }

    #[test]
    fn query_text_roundtrip() {
        let log = sample_log();
        let q1 = log.query_id("harrison ford").unwrap();
        assert_eq!(log.query_text(q1), "harrison ford");
        assert_eq!(log.query_id("unknown"), None);
    }

    #[test]
    fn csr_covers_all_queries() {
        let log = sample_log();
        let mut total = 0;
        for (q, _) in log.queries() {
            total += log.clicks_of(q).len();
        }
        assert_eq!(total, log.n_tuples());
    }

    #[test]
    fn empty_log() {
        let log = ClickLogBuilder::new().build();
        assert_eq!(log.n_queries(), 0);
        assert_eq!(log.n_tuples(), 0);
        assert_eq!(log.total_impressions(), 0);
        assert_eq!(log.page_bound(), 0);
    }

    #[test]
    fn page_bound() {
        let log = sample_log();
        assert_eq!(log.page_bound(), 11);
    }

    #[test]
    fn tuples_globally_sorted() {
        let log = sample_log();
        for w in log.tuples().windows(2) {
            assert!((w[0].query, w[0].page) < (w[1].query, w[1].page));
        }
    }
}
