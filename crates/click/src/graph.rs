//! The bipartite query–page click graph.
//!
//! Both the paper's candidate generation ("find out how users access
//! those surrogates" — the page→queries direction) and the random-walk
//! baseline need fast adjacency in both directions. The graph stores
//! both as CSR (compressed sparse row) arrays built in one pass from
//! the click log.

use crate::log::ClickLog;
use websyn_common::{PageId, QueryId};

/// An immutable bipartite click graph.
#[derive(Debug, Clone)]
pub struct ClickGraph {
    n_queries: usize,
    n_pages: usize,
    /// CSR query → (page, n).
    q_offsets: Vec<u32>,
    q_edges: Vec<(PageId, u32)>,
    /// CSR page → (query, n).
    p_offsets: Vec<u32>,
    p_edges: Vec<(QueryId, u32)>,
}

impl ClickGraph {
    /// Builds the graph from a click log. `n_pages` must be at least
    /// [`ClickLog::page_bound`]; pass the page-universe size so that
    /// unclicked pages get (empty) rows too.
    pub fn build(log: &ClickLog, n_pages: usize) -> Self {
        assert!(
            n_pages >= log.page_bound(),
            "n_pages {} below page bound {}",
            n_pages,
            log.page_bound()
        );
        let n_queries = log.n_queries();
        let tuples = log.tuples();

        // Query-side CSR mirrors the log's own layout.
        let mut q_offsets = Vec::with_capacity(n_queries + 1);
        let mut q_edges = Vec::with_capacity(tuples.len());
        q_offsets.push(0u32);
        {
            let mut cursor = 0usize;
            for q in 0..n_queries {
                while cursor < tuples.len() && tuples[cursor].query.as_usize() == q {
                    q_edges.push((tuples[cursor].page, tuples[cursor].n));
                    cursor += 1;
                }
                q_offsets.push(q_edges.len() as u32);
            }
        }

        // Page-side CSR: counting sort by page.
        let mut counts = vec![0u32; n_pages];
        for t in tuples {
            counts[t.page.as_usize()] += 1;
        }
        let mut p_offsets = Vec::with_capacity(n_pages + 1);
        p_offsets.push(0u32);
        for p in 0..n_pages {
            let prev = p_offsets[p];
            p_offsets.push(prev + counts[p]);
        }
        let mut fill = p_offsets.clone();
        let mut p_edges = vec![(QueryId::new(0), 0u32); tuples.len()];
        for t in tuples {
            let slot = fill[t.page.as_usize()] as usize;
            p_edges[slot] = (t.query, t.n);
            fill[t.page.as_usize()] += 1;
        }

        Self {
            n_queries,
            n_pages,
            q_offsets,
            q_edges,
            p_offsets,
            p_edges,
        }
    }

    /// Number of query nodes.
    pub fn n_queries(&self) -> usize {
        self.n_queries
    }

    /// Number of page nodes.
    pub fn n_pages(&self) -> usize {
        self.n_pages
    }

    /// Number of (directed-once) edges.
    pub fn n_edges(&self) -> usize {
        self.q_edges.len()
    }

    /// Pages clicked from `q`, with click counts.
    pub fn pages_of(&self, q: QueryId) -> &[(PageId, u32)] {
        let lo = self.q_offsets[q.as_usize()] as usize;
        let hi = self.q_offsets[q.as_usize() + 1] as usize;
        &self.q_edges[lo..hi]
    }

    /// Queries that clicked into `p`, with click counts.
    pub fn queries_of(&self, p: PageId) -> &[(QueryId, u32)] {
        let lo = self.p_offsets[p.as_usize()] as usize;
        let hi = self.p_offsets[p.as_usize() + 1] as usize;
        &self.p_edges[lo..hi]
    }

    /// Total click mass out of a query node.
    pub fn query_degree(&self, q: QueryId) -> u64 {
        self.pages_of(q).iter().map(|&(_, n)| u64::from(n)).sum()
    }

    /// Total click mass into a page node.
    pub fn page_degree(&self, p: PageId) -> u64 {
        self.queries_of(p).iter().map(|&(_, n)| u64::from(n)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::ClickLogBuilder;

    fn graph() -> ClickGraph {
        let mut b = ClickLogBuilder::new();
        let q0 = b.add_impression("a");
        let q1 = b.add_impression("b");
        let q2 = b.add_impression("c");
        b.add_click(q0, PageId::new(0));
        b.add_click(q0, PageId::new(1));
        b.add_click(q0, PageId::new(1));
        b.add_click(q1, PageId::new(1));
        b.add_click(q2, PageId::new(3));
        ClickGraph::build(&b.build(), 5)
    }

    #[test]
    fn shape() {
        let g = graph();
        assert_eq!(g.n_queries(), 3);
        assert_eq!(g.n_pages(), 5);
        assert_eq!(g.n_edges(), 4);
    }

    #[test]
    fn forward_adjacency() {
        let g = graph();
        let q0 = QueryId::new(0);
        let pages: Vec<(u32, u32)> = g.pages_of(q0).iter().map(|&(p, n)| (p.raw(), n)).collect();
        assert_eq!(pages, vec![(0, 1), (1, 2)]);
        assert_eq!(g.query_degree(q0), 3);
    }

    #[test]
    fn reverse_adjacency() {
        let g = graph();
        let p1 = PageId::new(1);
        let mut queries: Vec<(u32, u32)> = g
            .queries_of(p1)
            .iter()
            .map(|&(q, n)| (q.raw(), n))
            .collect();
        queries.sort_unstable();
        assert_eq!(queries, vec![(0, 2), (1, 1)]);
        assert_eq!(g.page_degree(p1), 3);
    }

    #[test]
    fn unclicked_page_has_empty_row() {
        let g = graph();
        assert!(g.queries_of(PageId::new(2)).is_empty());
        assert!(g.queries_of(PageId::new(4)).is_empty());
        assert_eq!(g.page_degree(PageId::new(2)), 0);
    }

    #[test]
    fn edge_mass_conserved_between_directions() {
        let g = graph();
        let forward: u64 = (0..g.n_queries())
            .map(|q| g.query_degree(QueryId::from_usize(q)))
            .sum();
        let backward: u64 = (0..g.n_pages())
            .map(|p| g.page_degree(PageId::from_usize(p)))
            .sum();
        assert_eq!(forward, backward);
        assert_eq!(forward, 5);
    }

    #[test]
    #[should_panic(expected = "below page bound")]
    fn too_small_page_space_panics() {
        let mut b = ClickLogBuilder::new();
        let q = b.add_impression("a");
        b.add_click(q, PageId::new(9));
        let _ = ClickGraph::build(&b.build(), 5);
    }

    #[test]
    fn empty_graph() {
        let g = ClickGraph::build(&ClickLogBuilder::new().build(), 0);
        assert_eq!(g.n_queries(), 0);
        assert_eq!(g.n_pages(), 0);
        assert_eq!(g.n_edges(), 0);
    }
}
