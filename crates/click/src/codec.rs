//! Binary codec for click logs.
//!
//! Large synthetic logs (the camera dataset needs hundreds of thousands
//! of events) are expensive to regenerate; the codec serializes a
//! [`ClickLog`] into a compact length-prefixed binary buffer so bench
//! harnesses can cache them between runs.
//!
//! Format (all integers little-endian):
//! ```text
//! magic  u32  = 0x434c4b31 ("CLK1")
//! n_q    u32  number of queries
//! n_t    u32  number of tuples
//! per query:  len u16, utf-8 bytes, impressions u32
//! per tuple:  query u32, page u32, n u32
//! ```

use crate::log::{ClickLog, ClickLogBuilder};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use websyn_common::{Error, PageId, Result};

const MAGIC: u32 = 0x434c_4b31;

/// Serializes a log into a compact binary buffer.
pub fn encode(log: &ClickLog) -> Bytes {
    let mut buf = BytesMut::with_capacity(16 + log.n_queries() * 24 + log.n_tuples() * 12);
    buf.put_u32_le(MAGIC);
    buf.put_u32_le(log.n_queries() as u32);
    buf.put_u32_le(log.n_tuples() as u32);
    for (q, text) in log.queries() {
        let bytes = text.as_bytes();
        debug_assert!(bytes.len() <= u16::MAX as usize, "query text too long");
        buf.put_u16_le(bytes.len() as u16);
        buf.put_slice(bytes);
        buf.put_u32_le(log.impressions(q));
    }
    for t in log.tuples() {
        buf.put_u32_le(t.query.raw());
        buf.put_u32_le(t.page.raw());
        buf.put_u32_le(t.n);
    }
    buf.freeze()
}

/// Deserializes a buffer produced by [`encode`].
pub fn decode(mut buf: impl Buf) -> Result<ClickLog> {
    if buf.remaining() < 12 {
        return Err(Error::codec("buffer too short for header"));
    }
    if buf.get_u32_le() != MAGIC {
        return Err(Error::codec("bad magic"));
    }
    let n_q = buf.get_u32_le() as usize;
    let n_t = buf.get_u32_le() as usize;

    let mut builder = ClickLogBuilder::new();
    let mut query_ids = Vec::with_capacity(n_q);
    for i in 0..n_q {
        if buf.remaining() < 2 {
            return Err(Error::codec(format!("truncated at query {i}")));
        }
        let len = buf.get_u16_le() as usize;
        if buf.remaining() < len + 4 {
            return Err(Error::codec(format!("truncated text at query {i}")));
        }
        let mut bytes = vec![0u8; len];
        buf.copy_to_slice(&mut bytes);
        let text = String::from_utf8(bytes)
            .map_err(|e| Error::codec(format!("invalid utf-8 at query {i}: {e}")))?;
        let impressions = buf.get_u32_le();
        // Reconstitute impressions exactly.
        let mut qid = None;
        for _ in 0..impressions.max(1) {
            qid = Some(builder.add_impression(&text));
        }
        // A query can exist with zero impressions only if it was never
        // issued, which the builder cannot represent without an
        // impression; treat the forced impression as part of the format
        // contract (encode never writes 0 for a query that was issued).
        if impressions == 0 {
            return Err(Error::codec(format!("query {i} has zero impressions")));
        }
        query_ids.push(qid.expect("at least one impression added"));
    }
    for i in 0..n_t {
        if buf.remaining() < 12 {
            return Err(Error::codec(format!("truncated at tuple {i}")));
        }
        let q = buf.get_u32_le() as usize;
        let page = buf.get_u32_le();
        let n = buf.get_u32_le();
        let &qid = query_ids
            .get(q)
            .ok_or_else(|| Error::codec(format!("tuple {i} references unknown query {q}")))?;
        for _ in 0..n {
            builder.add_click(qid, PageId::new(page));
        }
    }
    Ok(builder.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use websyn_common::QueryId;

    fn sample() -> ClickLog {
        let mut b = ClickLogBuilder::new();
        let q0 = b.add_impression("indy 4");
        b.add_impression("indy 4");
        let q1 = b.add_impression("pokémon snap"); // multi-byte text
        b.add_click(q0, PageId::new(3));
        b.add_click(q0, PageId::new(3));
        b.add_click(q1, PageId::new(7));
        b.build()
    }

    #[test]
    fn roundtrip() {
        let log = sample();
        let bytes = encode(&log);
        let decoded = decode(bytes).unwrap();
        assert_eq!(decoded.n_queries(), log.n_queries());
        assert_eq!(decoded.n_tuples(), log.n_tuples());
        assert_eq!(decoded.tuples(), log.tuples());
        for (q, text) in log.queries() {
            let dq = decoded.query_id(text).unwrap();
            assert_eq!(decoded.impressions(dq), log.impressions(q));
            assert_eq!(decoded.total_clicks_of(dq), log.total_clicks_of(q));
        }
    }

    #[test]
    fn empty_log_roundtrip() {
        let log = ClickLogBuilder::new().build();
        let decoded = decode(encode(&log)).unwrap();
        assert_eq!(decoded.n_queries(), 0);
        assert_eq!(decoded.n_tuples(), 0);
    }

    #[test]
    fn rejects_bad_magic() {
        let mut buf = BytesMut::new();
        buf.put_u32_le(0xdead_beef);
        buf.put_u32_le(0);
        buf.put_u32_le(0);
        assert!(decode(buf.freeze()).is_err());
    }

    #[test]
    fn rejects_truncation() {
        let bytes = encode(&sample());
        for cut in [0, 4, 11, bytes.len() - 1] {
            let truncated = bytes.slice(0..cut);
            assert!(decode(truncated).is_err(), "cut at {cut} should fail");
        }
    }

    #[test]
    fn rejects_dangling_tuple_reference() {
        let mut buf = BytesMut::new();
        buf.put_u32_le(MAGIC);
        buf.put_u32_le(1); // one query
        buf.put_u32_le(1); // one tuple
        buf.put_u16_le(1);
        buf.put_slice(b"a");
        buf.put_u32_le(1); // impressions
        buf.put_u32_le(9); // tuple references query 9 (unknown)
        buf.put_u32_le(0);
        buf.put_u32_le(1);
        assert!(decode(buf.freeze()).is_err());
    }

    #[test]
    fn query_ids_preserved_in_order() {
        // Interning order must survive the roundtrip so that QueryIds
        // remain stable identifiers.
        let log = sample();
        let decoded = decode(encode(&log)).unwrap();
        assert_eq!(decoded.query_text(QueryId::new(0)), "indy 4");
        assert_eq!(decoded.query_text(QueryId::new(1)), "pokémon snap");
    }
}
