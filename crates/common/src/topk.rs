//! Bounded top-k selection.
//!
//! Search (retrieve top-k pages for a query) and mining (rank candidate
//! synonyms) both need "keep the k best of n" with n ≫ k. A bounded
//! binary min-heap does this in O(n log k) and O(k) space, with
//! deterministic tie-breaking so that experiment output is stable across
//! runs and platforms.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An item with an `f64` score and a tie-breaking key.
///
/// Ordering: higher score wins; on equal scores, the *smaller* key wins
/// (deterministic tie-break, e.g. lower `PageId` ranks first like a
/// stable search engine).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scored<T> {
    /// Ranking score (must not be NaN; enforced at push).
    pub score: f64,
    /// Tie-break key and payload.
    pub item: T,
}

impl<T: Ord> Scored<T> {
    fn cmp_rank(&self, other: &Self) -> Ordering {
        // Scores are screened for NaN at push; partial_cmp is total here.
        match self.score.partial_cmp(&other.score) {
            Some(Ordering::Equal) | None => other.item.cmp(&self.item),
            Some(ord) => ord,
        }
    }
}

/// Reversed wrapper so `BinaryHeap` (a max-heap) behaves as a min-heap
/// keyed by rank order: the heap root is the *worst* retained item.
#[derive(Debug, Clone, Copy, PartialEq)]
struct MinRank<T>(Scored<T>);

impl<T: Ord> Eq for MinRank<T> {}
impl<T: Ord> PartialOrd for MinRank<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T: Ord> Ord for MinRank<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        other.0.cmp_rank(&self.0)
    }
}

/// Collects the top `k` items by score with O(k) memory.
///
/// # Examples
///
/// ```
/// use websyn_common::TopK;
///
/// let mut topk = TopK::new(2);
/// topk.push(1.0, "c");
/// topk.push(3.0, "a");
/// topk.push(2.0, "b");
/// let ranked = topk.into_sorted_vec();
/// assert_eq!(ranked.len(), 2);
/// assert_eq!(ranked[0].item, "a");
/// assert_eq!(ranked[1].item, "b");
/// ```
#[derive(Debug, Clone)]
pub struct TopK<T> {
    k: usize,
    heap: BinaryHeap<MinRank<T>>,
}

impl<T: Ord> TopK<T> {
    /// Creates a collector retaining the best `k` items. `k == 0` is
    /// allowed and retains nothing.
    pub fn new(k: usize) -> Self {
        Self {
            k,
            heap: BinaryHeap::with_capacity(k.saturating_add(1)),
        }
    }

    /// Offers an item.
    ///
    /// # Panics
    /// Panics if `score` is NaN — a NaN score is always a bug in the
    /// scoring function, and admitting it would poison the ordering.
    pub fn push(&mut self, score: f64, item: T) {
        assert!(!score.is_nan(), "TopK::push called with NaN score");
        if self.k == 0 {
            return;
        }
        if self.heap.len() < self.k {
            self.heap.push(MinRank(Scored { score, item }));
            return;
        }
        // Full: replace the current worst if the newcomer ranks higher.
        let candidate = Scored { score, item };
        if let Some(worst) = self.heap.peek() {
            if candidate.cmp_rank(&worst.0) == Ordering::Greater {
                self.heap.pop();
                self.heap.push(MinRank(candidate));
            }
        }
    }

    /// Number of retained items (≤ k).
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// The retention threshold: the score of the current worst retained
    /// item once the collector is full. Pushes scoring strictly below
    /// this cannot change the result — useful for early pruning.
    pub fn threshold(&self) -> Option<f64> {
        if self.heap.len() < self.k {
            None
        } else {
            self.heap.peek().map(|w| w.0.score)
        }
    }

    /// Consumes the collector, returning items best-first.
    pub fn into_sorted_vec(self) -> Vec<Scored<T>> {
        let mut v: Vec<Scored<T>> = self.heap.into_iter().map(|m| m.0).collect();
        v.sort_by(|a, b| b.cmp_rank(a));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_best_k() {
        let mut t = TopK::new(3);
        for (s, i) in [(5.0, 50u32), (1.0, 10), (4.0, 40), (2.0, 20), (3.0, 30)] {
            t.push(s, i);
        }
        let out = t.into_sorted_vec();
        let items: Vec<u32> = out.iter().map(|s| s.item).collect();
        assert_eq!(items, vec![50, 40, 30]);
    }

    #[test]
    fn fewer_than_k_items() {
        let mut t = TopK::new(10);
        t.push(1.0, 1u32);
        t.push(2.0, 2u32);
        let out = t.into_sorted_vec();
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].item, 2);
    }

    #[test]
    fn k_zero_retains_nothing() {
        let mut t = TopK::new(0);
        t.push(1.0, 1u32);
        assert!(t.is_empty());
        assert!(t.into_sorted_vec().is_empty());
    }

    #[test]
    fn ties_break_on_smaller_item() {
        let mut t = TopK::new(2);
        t.push(1.0, 9u32);
        t.push(1.0, 3u32);
        t.push(1.0, 7u32);
        let out = t.into_sorted_vec();
        let items: Vec<u32> = out.iter().map(|s| s.item).collect();
        // All scores equal → keep and rank the smallest keys first.
        assert_eq!(items, vec![3, 7]);
    }

    #[test]
    fn threshold_reports_worst_retained() {
        let mut t = TopK::new(2);
        assert_eq!(t.threshold(), None);
        t.push(5.0, 1u32);
        assert_eq!(t.threshold(), None, "not full yet");
        t.push(3.0, 2u32);
        assert_eq!(t.threshold(), Some(3.0));
        t.push(4.0, 3u32);
        assert_eq!(t.threshold(), Some(4.0));
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_score_panics() {
        let mut t = TopK::new(1);
        t.push(f64::NAN, 1u32);
    }

    #[test]
    fn matches_full_sort_oracle() {
        // Deterministic pseudo-random probe comparing against sort.
        let mut vals = Vec::new();
        let mut x = 0x12345678u64;
        for i in 0..200u32 {
            x = crate::rng::splitmix64(x);
            vals.push(((x % 1000) as f64 / 10.0, i));
        }
        for k in [1usize, 5, 50, 200, 500] {
            let mut t = TopK::new(k);
            for &(s, i) in &vals {
                t.push(s, i);
            }
            let got: Vec<(f64, u32)> = t
                .into_sorted_vec()
                .iter()
                .map(|s| (s.score, s.item))
                .collect();
            let mut oracle = vals.clone();
            oracle.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap().then(a.1.cmp(&b.1)));
            oracle.truncate(k);
            assert_eq!(got, oracle, "k={k}");
        }
    }

    #[test]
    fn negative_and_zero_scores() {
        let mut t = TopK::new(2);
        t.push(-1.0, 1u32);
        t.push(0.0, 2u32);
        t.push(-5.0, 3u32);
        let items: Vec<u32> = t.into_sorted_vec().iter().map(|s| s.item).collect();
        assert_eq!(items, vec![2, 1]);
    }
}
