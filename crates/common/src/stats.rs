//! Descriptive statistics for experiment reporting.
//!
//! The experiment harness summarizes metric distributions (per-entity
//! precision, per-query latency, ...) with the usual five-number-style
//! summary. Implemented in-house to keep the dependency set to the
//! approved list.

use std::fmt;

/// Summary statistics of an `f64` sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub count: usize,
    /// Arithmetic mean (0 when `count == 0`).
    pub mean: f64,
    /// Population standard deviation (0 when `count < 2`).
    pub std_dev: f64,
    /// Minimum (0 when empty).
    pub min: f64,
    /// Median (0 when empty).
    pub median: f64,
    /// 95th percentile (0 when empty).
    pub p95: f64,
    /// Maximum (0 when empty).
    pub max: f64,
}

impl Summary {
    /// Computes the summary of `values`. NaNs are rejected.
    ///
    /// # Panics
    /// Panics if any value is NaN — NaN metrics always indicate a bug in
    /// the metric computation.
    pub fn of(values: &[f64]) -> Self {
        assert!(
            values.iter().all(|v| !v.is_nan()),
            "Summary::of called with NaN"
        );
        if values.is_empty() {
            return Summary {
                count: 0,
                mean: 0.0,
                std_dev: 0.0,
                min: 0.0,
                median: 0.0,
                p95: 0.0,
                max: 0.0,
            };
        }
        let count = values.len();
        let mean = values.iter().sum::<f64>() / count as f64;
        let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / count as f64;
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        Summary {
            count,
            mean,
            std_dev: var.sqrt(),
            min: sorted[0],
            median: percentile_sorted(&sorted, 0.50),
            p95: percentile_sorted(&sorted, 0.95),
            max: sorted[count - 1],
        }
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.4} sd={:.4} min={:.4} med={:.4} p95={:.4} max={:.4}",
            self.count, self.mean, self.std_dev, self.min, self.median, self.p95, self.max
        )
    }
}

/// Linear-interpolated percentile of an ascending-sorted slice.
/// `q` is in `[0, 1]`.
///
/// # Panics
/// Panics if `sorted` is empty or `q` outside `[0,1]`.
pub fn percentile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of empty slice");
    assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// Online mean/variance accumulator (Welford), for streaming metrics
/// where materializing all observations is wasteful.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Welford {
    count: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an observation.
    pub fn push(&mut self, x: f64) {
        debug_assert!(!x.is_nan());
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Running mean (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (0 when fewer than 2 observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Merges another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &Welford) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        self.mean += delta * other.count as f64 / total as f64;
        self.m2 +=
            other.m2 + delta * delta * (self.count as f64) * (other.count as f64) / total as f64;
        self.count = total;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary_is_zeroed() {
        let s = Summary::of(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.max, 0.0);
    }

    #[test]
    fn single_value() {
        let s = Summary::of(&[3.5]);
        assert_eq!(s.count, 1);
        assert_eq!(s.mean, 3.5);
        assert_eq!(s.median, 3.5);
        assert_eq!(s.min, 3.5);
        assert_eq!(s.max, 3.5);
        assert_eq!(s.std_dev, 0.0);
    }

    #[test]
    fn known_distribution() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert!((s.std_dev - 2.0f64.sqrt()).abs() < 1e-6);
    }

    #[test]
    fn unsorted_input_is_fine() {
        let s = Summary::of(&[5.0, 1.0, 3.0, 2.0, 4.0]);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.min, 1.0);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_rejected() {
        let _ = Summary::of(&[1.0, f64::NAN]);
    }

    #[test]
    fn percentile_interpolates() {
        let sorted = [0.0, 10.0];
        assert_eq!(percentile_sorted(&sorted, 0.0), 0.0);
        assert_eq!(percentile_sorted(&sorted, 0.5), 5.0);
        assert_eq!(percentile_sorted(&sorted, 1.0), 10.0);
    }

    #[test]
    fn display_formats() {
        let s = Summary::of(&[1.0, 2.0]);
        let text = s.to_string();
        assert!(text.contains("n=2"));
        assert!(text.contains("mean=1.5"));
    }

    #[test]
    fn welford_matches_batch() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64) * 0.37 - 5.0).collect();
        let mut w = Welford::new();
        for &x in &data {
            w.push(x);
        }
        let s = Summary::of(&data);
        assert_eq!(w.count(), 100);
        assert!((w.mean() - s.mean).abs() < 1e-9);
        assert!((w.std_dev() - s.std_dev).abs() < 1e-9);
    }

    #[test]
    fn welford_merge_matches_single_stream() {
        let data: Vec<f64> = (0..64).map(|i| ((i * 13) % 7) as f64).collect();
        let (left, right) = data.split_at(20);
        let mut a = Welford::new();
        left.iter().for_each(|&x| a.push(x));
        let mut b = Welford::new();
        right.iter().for_each(|&x| b.push(x));
        let mut whole = Welford::new();
        data.iter().for_each(|&x| whole.push(x));
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn welford_merge_with_empty() {
        let mut a = Welford::new();
        a.push(1.0);
        let b = Welford::new();
        let before = a;
        a.merge(&b);
        assert_eq!(a, before);
        let mut c = Welford::new();
        c.merge(&before);
        assert_eq!(c, before);
    }
}
