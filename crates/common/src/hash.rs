//! FxHash: the fast, non-cryptographic hash used throughout the
//! workspace.
//!
//! Query-log mining is dominated by hash-map operations keyed on small
//! integers (interned query/page ids). SipHash — the standard library
//! default — is needlessly slow for this workload and HashDoS is not a
//! concern for an offline mining library, so we use the Firefox/rustc
//! "Fx" multiply-rotate hash. The implementation is self-contained to
//! keep the dependency set minimal (see DESIGN.md §3).

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// A `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// The Fx multiply-rotate hasher (as used by rustc and Firefox).
///
/// Not HashDoS resistant; do not expose to untrusted input in a
/// networked service. For this offline library it is the right
/// trade-off: 2-6x faster than SipHash on small keys.
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    state: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.state = (self.state.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Consume 8 bytes at a time, then mop up the tail. This is the
        // layout-compatible equivalent of the canonical fxhash byte loop.
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let word = u64::from_le_bytes(chunk.try_into().expect("chunk is 8 bytes"));
            self.add_to_hash(word);
        }
        let tail = chunks.remainder();
        if !tail.is_empty() {
            let mut word = 0u64;
            for (i, &b) in tail.iter().enumerate() {
                word |= u64::from(b) << (8 * i);
            }
            self.add_to_hash(word);
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(u64::from(n));
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add_to_hash(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }
}

/// Hash a single value with [`FxHasher`]; convenience for tests and
/// bucketing helpers.
pub fn fx_hash_one<T: std::hash::Hash>(value: &T) -> u64 {
    let mut h = FxHasher::default();
    value.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        assert_eq!(fx_hash_one(&12345u64), fx_hash_one(&12345u64));
        assert_eq!(fx_hash_one(&"indiana jones"), fx_hash_one(&"indiana jones"));
    }

    #[test]
    fn different_inputs_differ() {
        assert_ne!(fx_hash_one(&1u64), fx_hash_one(&2u64));
        assert_ne!(fx_hash_one(&"indy 4"), fx_hash_one(&"indy 5"));
    }

    #[test]
    fn map_basic_ops() {
        let mut m: FxHashMap<&str, u32> = FxHashMap::default();
        m.insert("a", 1);
        m.insert("b", 2);
        assert_eq!(m.get("a"), Some(&1));
        assert_eq!(m.len(), 2);
        m.remove("a");
        assert_eq!(m.get("a"), None);
    }

    #[test]
    fn set_basic_ops() {
        let mut s: FxHashSet<u32> = FxHashSet::default();
        assert!(s.insert(7));
        assert!(!s.insert(7));
        assert!(s.contains(&7));
    }

    #[test]
    fn byte_stream_equivalence_of_lengths() {
        // Different-length strings sharing a prefix must not collide
        // trivially (they exercise the tail-word path).
        let a = fx_hash_one(&"abcdefg");
        let b = fx_hash_one(&"abcdefgh");
        let c = fx_hash_one(&"abcdefghi");
        assert_ne!(a, b);
        assert_ne!(b, c);
        assert_ne!(a, c);
    }

    #[test]
    fn empty_write_is_stable() {
        let mut h = FxHasher::default();
        h.write(&[]);
        assert_eq!(h.finish(), FxHasher::default().finish());
    }

    #[test]
    fn spread_over_buckets_is_reasonable() {
        // Sanity check on distribution: hashing 0..4096 into 64 buckets
        // should not leave any bucket empty.
        let mut buckets = [0u32; 64];
        for i in 0..4096u64 {
            buckets[(fx_hash_one(&i) % 64) as usize] += 1;
        }
        assert!(buckets.iter().all(|&c| c > 0), "buckets: {buckets:?}");
    }
}
