//! # websyn-common
//!
//! Shared substrate for the `websyn` workspace: compact identifiers,
//! fast (non-cryptographic) hashing, string interning, top-k selection,
//! descriptive statistics, Zipf sampling, and deterministic RNG
//! derivation.
//!
//! Everything in this crate is deliberately dependency-light and
//! deterministic so that every experiment in the workspace is exactly
//! reproducible from a single master seed.

pub mod error;
pub mod hash;
pub mod ids;
pub mod intern;
pub mod rng;
pub mod stats;
pub mod topk;
pub mod zipf;

pub use error::{Error, Result};
pub use hash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use ids::{EntityId, PageId, QueryId, SurfaceId, TermId, TokenId};
pub use intern::StringInterner;
pub use rng::SeedSequence;
pub use stats::Summary;
pub use topk::TopK;
pub use zipf::Zipf;
