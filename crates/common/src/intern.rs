//! String interning.
//!
//! The mining pipeline handles millions of query strings, but the set of
//! *distinct* strings is far smaller. Interning maps each distinct
//! string to a dense `u32`, after which every downstream structure
//! (click tuples, graph edges, postings) operates on 4-byte ids instead
//! of heap strings.
//!
//! The interner is generic over the id newtype so the same machinery
//! backs the query universe (`QueryId`), page universe (`PageId`) and
//! index vocabulary (`TermId`) without allowing the id spaces to mix.

use crate::hash::FxHashMap;
use std::marker::PhantomData;

/// A bidirectional `string -> dense u32 id` map.
///
/// Ids are handed out in insertion order starting at 0, so they can be
/// used to index `Vec`s that are grown in lockstep with the interner.
///
/// # Examples
///
/// ```
/// use websyn_common::{StringInterner, QueryId};
///
/// let mut interner: StringInterner<QueryId> = StringInterner::new();
/// let a = interner.intern("indy 4");
/// let b = interner.intern("indiana jones 4");
/// assert_ne!(a, b);
/// assert_eq!(interner.intern("indy 4"), a); // stable
/// assert_eq!(interner.resolve(a), "indy 4");
/// assert_eq!(interner.len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct StringInterner<Id> {
    /// id -> string, dense.
    strings: Vec<Box<str>>,
    /// string -> id. Keys are owned copies; for the string sizes in this
    /// workload (short queries / urls) the duplication is cheaper than a
    /// self-referential arena and keeps the type safe.
    lookup: FxHashMap<Box<str>, u32>,
    _marker: PhantomData<Id>,
}

impl<Id> Default for StringInterner<Id> {
    fn default() -> Self {
        Self::new()
    }
}

impl<Id> StringInterner<Id> {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self {
            strings: Vec::new(),
            lookup: FxHashMap::default(),
            _marker: PhantomData,
        }
    }

    /// Creates an empty interner with room for `capacity` strings.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            strings: Vec::with_capacity(capacity),
            lookup: FxHashMap::with_capacity_and_hasher(capacity, Default::default()),
            _marker: PhantomData,
        }
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// Whether the interner is empty.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// Iterates over the interned strings in id order.
    pub fn strings(&self) -> impl Iterator<Item = &str> + '_ {
        self.strings.iter().map(AsRef::as_ref)
    }
}

impl<Id> StringInterner<Id>
where
    Id: Copy + From<u32> + Into<u32>,
{
    /// Interns `s`, returning its id. Repeated calls with the same
    /// string return the same id.
    pub fn intern(&mut self, s: &str) -> Id {
        if let Some(&id) = self.lookup.get(s) {
            return Id::from(id);
        }
        let id = u32::try_from(self.strings.len()).expect("interner id overflow");
        let boxed: Box<str> = s.into();
        self.strings.push(boxed.clone());
        self.lookup.insert(boxed, id);
        Id::from(id)
    }

    /// Returns the id for `s` if it has been interned.
    pub fn get(&self, s: &str) -> Option<Id> {
        self.lookup.get(s).map(|&id| Id::from(id))
    }

    /// Resolves an id back to its string.
    ///
    /// # Panics
    /// Panics if `id` was not produced by this interner.
    pub fn resolve(&self, id: Id) -> &str {
        &self.strings[id.into() as usize]
    }

    /// Resolves an id back to its string, or `None` if out of range.
    pub fn try_resolve(&self, id: Id) -> Option<&str> {
        self.strings.get(id.into() as usize).map(AsRef::as_ref)
    }

    /// Iterates over `(id, string)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (Id, &str)> + '_ {
        self.strings
            .iter()
            .enumerate()
            .map(|(i, s)| (Id::from(i as u32), s.as_ref()))
    }

    /// Interns every whitespace-separated token of `s`, returning the
    /// ids in token order. The workhorse of compiled-dictionary builds,
    /// where surfaces arrive as normalized single-spaced strings.
    pub fn intern_tokens(&mut self, s: &str, out: &mut Vec<Id>) {
        out.clear();
        for tok in s.split(' ').filter(|t| !t.is_empty()) {
            out.push(self.intern(tok));
        }
    }

    /// Drops the slack capacity of both directions of the map. Builders
    /// call this once the vocabulary is final, so long-lived compiled
    /// dictionaries don't carry growth headroom around.
    pub fn shrink_to_fit(&mut self) {
        self.strings.shrink_to_fit();
        self.lookup.shrink_to_fit();
    }
}

impl<'a, Id> Extend<&'a str> for StringInterner<Id>
where
    Id: Copy + From<u32> + Into<u32>,
{
    fn extend<T: IntoIterator<Item = &'a str>>(&mut self, iter: T) {
        for s in iter {
            self.intern(s);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{PageId, QueryId};

    #[test]
    fn intern_is_stable_and_dense() {
        let mut i: StringInterner<QueryId> = StringInterner::new();
        let a = i.intern("a");
        let b = i.intern("b");
        let c = i.intern("c");
        assert_eq!(a.raw(), 0);
        assert_eq!(b.raw(), 1);
        assert_eq!(c.raw(), 2);
        assert_eq!(i.intern("b"), b);
        assert_eq!(i.len(), 3);
    }

    #[test]
    fn resolve_roundtrip() {
        let mut i: StringInterner<PageId> = StringInterner::new();
        let id = i.intern("http://example.com/page");
        assert_eq!(i.resolve(id), "http://example.com/page");
        assert_eq!(i.try_resolve(id), Some("http://example.com/page"));
        assert_eq!(i.try_resolve(PageId::new(999)), None);
    }

    #[test]
    fn get_without_interning() {
        let mut i: StringInterner<QueryId> = StringInterner::new();
        assert_eq!(i.get("missing"), None);
        let id = i.intern("present");
        assert_eq!(i.get("present"), Some(id));
        assert_eq!(i.len(), 1, "get must not intern");
        i.get("missing2");
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn iter_in_id_order() {
        let mut i: StringInterner<QueryId> = StringInterner::new();
        i.intern("x");
        i.intern("y");
        let items: Vec<_> = i.iter().map(|(id, s)| (id.raw(), s.to_string())).collect();
        assert_eq!(items, vec![(0, "x".to_string()), (1, "y".to_string())]);
        let strings: Vec<_> = i.strings().collect();
        assert_eq!(strings, vec!["x", "y"]);
    }

    #[test]
    fn empty_and_capacity() {
        let i: StringInterner<QueryId> = StringInterner::with_capacity(10);
        assert!(i.is_empty());
        assert_eq!(i.len(), 0);
    }

    #[test]
    fn intern_tokens_and_extend() {
        let mut i: StringInterner<QueryId> = StringInterner::new();
        let mut ids = Vec::new();
        i.intern_tokens("indiana jones 4", &mut ids);
        assert_eq!(ids.len(), 3);
        assert_eq!(i.resolve(ids[0]), "indiana");
        assert_eq!(i.resolve(ids[2]), "4");
        // Repeated tokens reuse ids; `out` is cleared each call.
        i.intern_tokens("jones jones", &mut ids);
        assert_eq!(ids, vec![i.get("jones").unwrap(); 2]);
        i.extend(["x", "jones", "y"]);
        assert_eq!(i.len(), 5);
        i.shrink_to_fit();
        assert_eq!(i.resolve(i.get("x").unwrap()), "x");
    }

    #[test]
    fn unicode_strings() {
        let mut i: StringInterner<QueryId> = StringInterner::new();
        let id = i.intern("pokémon");
        assert_eq!(i.resolve(id), "pokémon");
        assert_eq!(i.intern("pokémon"), id);
    }
}
