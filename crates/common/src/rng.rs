//! Deterministic RNG derivation.
//!
//! Every stochastic component in the workspace (catalog generation,
//! alias sampling, query stream, click model, typo channel, ...) draws
//! its randomness from an RNG derived from a single master seed plus a
//! component label. This gives two properties the experiments rely on:
//!
//! 1. **Reproducibility** — the same master seed regenerates the exact
//!    same world, logs and mined synonyms.
//! 2. **Independence under refactoring** — because each component's
//!    stream is keyed by its label rather than by draw order, adding a
//!    new component does not perturb the streams of existing ones.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Derives independent, labelled RNG streams from one master seed.
///
/// # Examples
///
/// ```
/// use websyn_common::SeedSequence;
///
/// let seq = SeedSequence::new(42);
/// let mut catalog_rng = seq.rng("catalog");
/// let mut clicks_rng = seq.rng("clicks");
/// // Streams are independent and reproducible:
/// let again = SeedSequence::new(42).rng("catalog");
/// # let _ = (catalog_rng, clicks_rng, again);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeedSequence {
    master: u64,
}

impl SeedSequence {
    /// Creates a sequence rooted at `master`.
    pub const fn new(master: u64) -> Self {
        Self { master }
    }

    /// The master seed this sequence was created with.
    pub const fn master(&self) -> u64 {
        self.master
    }

    /// Derives the raw 64-bit seed for `label`.
    ///
    /// Uses splitmix64 finalization over the master seed xored with a
    /// hash of the label, which is the standard recipe for splitting one
    /// seed into many statistically independent ones.
    pub fn derive(&self, label: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325; // FNV offset basis
        for &b in label.as_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3); // FNV prime
        }
        splitmix64(self.master ^ h)
    }

    /// Derives a seed for `label` specialized by an index, for
    /// per-entity / per-user streams.
    pub fn derive_indexed(&self, label: &str, index: u64) -> u64 {
        splitmix64(self.derive(label) ^ splitmix64(index.wrapping_add(0x9e37_79b9_7f4a_7c15)))
    }

    /// A [`SmallRng`] seeded for `label`.
    pub fn rng(&self, label: &str) -> SmallRng {
        SmallRng::seed_from_u64(self.derive(label))
    }

    /// A [`SmallRng`] seeded for `label` and `index`.
    pub fn rng_indexed(&self, label: &str, index: u64) -> SmallRng {
        SmallRng::seed_from_u64(self.derive_indexed(label, index))
    }

    /// A child sequence, for nesting components (e.g. the synth world
    /// hands each dataset its own sequence).
    pub fn child(&self, label: &str) -> SeedSequence {
        SeedSequence::new(self.derive(label))
    }
}

/// splitmix64 finalizer: a strong 64-bit mixing function.
#[inline]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_label_same_stream() {
        let a = SeedSequence::new(7);
        let b = SeedSequence::new(7);
        let xs: Vec<u64> = (0..8).map(|_| a.rng("x").gen::<u64>()).collect();
        // Fresh RNG each call → same first draw every time.
        assert!(xs.windows(2).all(|w| w[0] == w[1]));
        let mut ra = a.rng("x");
        let mut rb = b.rng("x");
        for _ in 0..32 {
            assert_eq!(ra.gen::<u64>(), rb.gen::<u64>());
        }
    }

    #[test]
    fn different_labels_differ() {
        let s = SeedSequence::new(7);
        assert_ne!(s.derive("catalog"), s.derive("clicks"));
        assert_ne!(s.derive("a"), s.derive("b"));
    }

    #[test]
    fn different_masters_differ() {
        assert_ne!(
            SeedSequence::new(1).derive("x"),
            SeedSequence::new(2).derive("x")
        );
    }

    #[test]
    fn indexed_streams_differ() {
        let s = SeedSequence::new(7);
        let d0 = s.derive_indexed("user", 0);
        let d1 = s.derive_indexed("user", 1);
        assert_ne!(d0, d1);
        assert_eq!(d0, SeedSequence::new(7).derive_indexed("user", 0));
    }

    #[test]
    fn child_sequences_nest_deterministically() {
        let root = SeedSequence::new(99);
        let c1 = root.child("movies");
        let c2 = root.child("movies");
        assert_eq!(c1, c2);
        assert_ne!(c1.derive("alias"), root.derive("alias"));
    }

    #[test]
    fn splitmix_is_a_bijection_probe() {
        // Not a full bijectivity proof, but distinct inputs in a window
        // must yield distinct outputs (splitmix64 is a permutation).
        let outs: Vec<u64> = (0..1000u64).map(splitmix64).collect();
        let set: std::collections::HashSet<_> = outs.iter().collect();
        assert_eq!(set.len(), outs.len());
    }

    #[test]
    fn empty_label_is_valid() {
        let s = SeedSequence::new(5);
        let _ = s.rng("");
        assert_ne!(s.derive(""), s.derive("x"));
    }
}
