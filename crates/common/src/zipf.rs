//! Zipf-distributed sampling.
//!
//! Query-log phenomena are heavy-tailed: a few entities attract most of
//! the traffic, a few aliases dominate each entity's query mix. The
//! synthetic world models every popularity choice with a Zipf
//! distribution `P(rank i) ∝ 1 / i^s` over `n` ranks.
//!
//! The sampler precomputes the cumulative distribution and draws by
//! binary search — O(log n) per sample, exact (no rejection), and
//! deterministic given the RNG stream.

use crate::error::{Error, Result};
use rand::Rng;

/// An exact Zipf sampler over ranks `0..n` with exponent `s`.
///
/// Rank 0 is the most popular. `s = 0` degenerates to uniform; typical
/// query-log fits use `s` around 0.8–1.1.
///
/// # Examples
///
/// ```
/// use websyn_common::{SeedSequence, Zipf};
/// use rand::Rng;
///
/// let zipf = Zipf::new(100, 1.0).unwrap();
/// let mut rng = SeedSequence::new(1).rng("demo");
/// let rank = zipf.sample(&mut rng);
/// assert!(rank < 100);
/// ```
#[derive(Debug, Clone)]
pub struct Zipf {
    /// Cumulative probabilities; `cdf[i]` = P(rank ≤ i). Last entry is 1.
    cdf: Vec<f64>,
    exponent: f64,
}

impl Zipf {
    /// Creates a sampler over `n` ranks with exponent `s`.
    ///
    /// # Errors
    /// Returns [`Error::InvalidConfig`] if `n == 0`, or if `s` is
    /// negative or not finite.
    pub fn new(n: usize, s: f64) -> Result<Self> {
        if n == 0 {
            return Err(Error::invalid_config("zipf.n", "must be >= 1"));
        }
        if !s.is_finite() || s < 0.0 {
            return Err(Error::invalid_config(
                "zipf.s",
                format!("must be finite and >= 0, got {s}"),
            ));
        }
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for i in 1..=n {
            acc += 1.0 / (i as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        // Guard against floating point drift at the top end.
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        Ok(Self { cdf, exponent: s })
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True iff there is exactly one rank (sampling is then constant).
    pub fn is_empty(&self) -> bool {
        false // constructor rejects n == 0
    }

    /// The exponent `s`.
    pub fn exponent(&self) -> f64 {
        self.exponent
    }

    /// Probability mass of `rank`.
    ///
    /// # Panics
    /// Panics if `rank >= len()`.
    pub fn pmf(&self, rank: usize) -> f64 {
        let hi = self.cdf[rank];
        let lo = if rank == 0 { 0.0 } else { self.cdf[rank - 1] };
        hi - lo
    }

    /// Draws a rank in `0..len()`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        // partition_point: first index whose cdf >= u.
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SeedSequence;

    #[test]
    fn rejects_bad_params() {
        assert!(Zipf::new(0, 1.0).is_err());
        assert!(Zipf::new(10, -1.0).is_err());
        assert!(Zipf::new(10, f64::NAN).is_err());
        assert!(Zipf::new(10, f64::INFINITY).is_err());
    }

    #[test]
    fn pmf_sums_to_one() {
        for (n, s) in [(1usize, 1.0f64), (10, 0.0), (100, 0.8), (1000, 1.2)] {
            let z = Zipf::new(n, s).unwrap();
            let total: f64 = (0..n).map(|i| z.pmf(i)).sum();
            assert!((total - 1.0).abs() < 1e-9, "n={n} s={s} total={total}");
        }
    }

    #[test]
    fn pmf_is_monotone_decreasing() {
        let z = Zipf::new(50, 1.0).unwrap();
        for i in 1..50 {
            assert!(
                z.pmf(i) <= z.pmf(i - 1) + 1e-12,
                "pmf must not increase with rank"
            );
        }
    }

    #[test]
    fn uniform_when_s_zero() {
        let z = Zipf::new(4, 0.0).unwrap();
        for i in 0..4 {
            assert!((z.pmf(i) - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn single_rank_always_zero() {
        let z = Zipf::new(1, 1.0).unwrap();
        let mut rng = SeedSequence::new(3).rng("zipf");
        for _ in 0..16 {
            assert_eq!(z.sample(&mut rng), 0);
        }
    }

    #[test]
    fn samples_in_range_and_head_heavy() {
        let z = Zipf::new(100, 1.0).unwrap();
        let mut rng = SeedSequence::new(9).rng("zipf");
        let mut counts = vec![0u32; 100];
        let draws = 20_000;
        for _ in 0..draws {
            let r = z.sample(&mut rng);
            assert!(r < 100);
            counts[r] += 1;
        }
        // Rank 0 should hold roughly pmf(0) ≈ 0.193 of the mass.
        let head = f64::from(counts[0]) / f64::from(draws);
        assert!((head - z.pmf(0)).abs() < 0.02, "head mass {head}");
        // Head must dominate tail decisively.
        assert!(counts[0] > counts[50].max(1) * 5);
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let z = Zipf::new(32, 1.1).unwrap();
        let draw = |seed: u64| -> Vec<usize> {
            let mut rng = SeedSequence::new(seed).rng("zipf");
            (0..64).map(|_| z.sample(&mut rng)).collect()
        };
        assert_eq!(draw(5), draw(5));
        assert_ne!(draw(5), draw(6));
    }
}
