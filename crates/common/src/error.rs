//! Workspace-wide error type.
//!
//! The workspace is a pure-algorithm library; errors are rare and almost
//! always indicate a misconfiguration (an empty catalog, a threshold
//! outside its domain, a reference to an unknown id). We use a single
//! closed enum rather than a boxed trait object so that callers can
//! match on causes and so the type stays `Send + Sync + 'static`.

use std::fmt;

/// Convenience alias used across the workspace.
pub type Result<T, E = Error> = std::result::Result<T, E>;

/// Errors produced anywhere in the websyn workspace.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// A configuration value was outside its legal domain.
    InvalidConfig {
        /// Name of the offending parameter, e.g. `"icr_threshold"`.
        param: &'static str,
        /// Human-readable description of the violated constraint.
        message: String,
    },
    /// An identifier did not resolve against the collection it indexes.
    UnknownId {
        /// The kind of identifier, e.g. `"QueryId"`.
        kind: &'static str,
        /// The raw numeric value that failed to resolve.
        value: u64,
    },
    /// An input collection that must be non-empty was empty.
    EmptyInput {
        /// What was empty, e.g. `"entity catalog"`.
        what: &'static str,
    },
    /// A (de)serialization or codec failure.
    Codec {
        /// Description of what went wrong.
        message: String,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidConfig { param, message } => {
                write!(f, "invalid configuration for `{param}`: {message}")
            }
            Error::UnknownId { kind, value } => {
                write!(f, "unknown {kind}: {value}")
            }
            Error::EmptyInput { what } => write!(f, "empty input: {what}"),
            Error::Codec { message } => write!(f, "codec error: {message}"),
        }
    }
}

impl std::error::Error for Error {}

impl Error {
    /// Shorthand for an [`Error::InvalidConfig`].
    pub fn invalid_config(param: &'static str, message: impl Into<String>) -> Self {
        Error::InvalidConfig {
            param,
            message: message.into(),
        }
    }

    /// Shorthand for an [`Error::UnknownId`].
    pub fn unknown_id(kind: &'static str, value: u64) -> Self {
        Error::UnknownId { kind, value }
    }

    /// Shorthand for an [`Error::EmptyInput`].
    pub fn empty(what: &'static str) -> Self {
        Error::EmptyInput { what }
    }

    /// Shorthand for an [`Error::Codec`].
    pub fn codec(message: impl Into<String>) -> Self {
        Error::Codec {
            message: message.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_invalid_config() {
        let e = Error::invalid_config("beta", "must be >= 1");
        assert_eq!(
            e.to_string(),
            "invalid configuration for `beta`: must be >= 1"
        );
    }

    #[test]
    fn display_unknown_id() {
        let e = Error::unknown_id("QueryId", 42);
        assert_eq!(e.to_string(), "unknown QueryId: 42");
    }

    #[test]
    fn display_empty() {
        let e = Error::empty("entity catalog");
        assert_eq!(e.to_string(), "empty input: entity catalog");
    }

    #[test]
    fn display_codec() {
        let e = Error::codec("truncated record");
        assert_eq!(e.to_string(), "codec error: truncated record");
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync + 'static>() {}
        assert_send_sync::<Error>();
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(Error::empty("x"), Error::empty("x"));
        assert_ne!(Error::empty("x"), Error::empty("y"));
    }
}
