//! Compact typed identifiers.
//!
//! All corpora in the workspace (queries, pages, entities, index terms)
//! are interned into dense `u32` id spaces. Newtypes keep the id spaces
//! from being mixed up at compile time while staying 4 bytes each —
//! small enough that postings lists, click tuples and graph edges stay
//! cache-friendly (see the type-size guidance in the workspace coding
//! guides).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Defines a `u32`-backed identifier newtype with the standard
/// conversions and a dense-index contract (`as_usize` for direct
/// indexing into `Vec`s laid out by the owning collection).
macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $tag:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        #[serde(transparent)]
        pub struct $name(pub u32);

        impl $name {
            /// Construct from a raw index.
            #[inline]
            pub const fn new(raw: u32) -> Self {
                Self(raw)
            }

            /// Construct from a `usize` index.
            ///
            /// # Panics
            /// Panics if `raw` does not fit in `u32`; id spaces in this
            /// workspace are bounded far below `u32::MAX`.
            #[inline]
            pub fn from_usize(raw: usize) -> Self {
                Self(u32::try_from(raw).expect(concat!($tag, " id overflow")))
            }

            /// The raw `u32` value.
            #[inline]
            pub const fn raw(self) -> u32 {
                self.0
            }

            /// The id as a dense `Vec` index.
            #[inline]
            pub const fn as_usize(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($tag, "{}"), self.0)
            }
        }

        impl From<u32> for $name {
            #[inline]
            fn from(raw: u32) -> Self {
                Self(raw)
            }
        }

        impl From<$name> for u32 {
            #[inline]
            fn from(id: $name) -> u32 {
                id.0
            }
        }
    };
}

define_id!(
    /// Identifier of a distinct query string in the query-log universe.
    QueryId,
    "q"
);
define_id!(
    /// Identifier of a Web page (document) in the page universe.
    PageId,
    "p"
);
define_id!(
    /// Identifier of a structured-data entity (movie, camera, ...).
    EntityId,
    "e"
);
define_id!(
    /// Identifier of an analyzer term in the inverted index vocabulary.
    TermId,
    "t"
);
define_id!(
    /// Identifier of a dictionary token in a compiled matcher
    /// dictionary's token vocabulary (see `websyn-core`'s `dict`
    /// module). Distinct from [`TermId`]: the matcher's token space is
    /// compiled per dictionary, not per inverted index.
    TokenId,
    "tok"
);
define_id!(
    /// Identifier of a dictionary surface (a normalized synonym or
    /// canonical string) in a compiled matcher dictionary. Surface ids
    /// are assigned in lexicographic surface order, so comparing ids
    /// compares surfaces.
    SurfaceId,
    "s"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let q = QueryId::new(7);
        assert_eq!(q.raw(), 7);
        assert_eq!(q.as_usize(), 7);
        assert_eq!(QueryId::from_usize(7), q);
        assert_eq!(u32::from(q), 7);
        assert_eq!(QueryId::from(7u32), q);
    }

    #[test]
    fn display_is_tagged() {
        assert_eq!(QueryId::new(3).to_string(), "q3");
        assert_eq!(PageId::new(4).to_string(), "p4");
        assert_eq!(EntityId::new(5).to_string(), "e5");
        assert_eq!(TermId::new(6).to_string(), "t6");
        assert_eq!(TokenId::new(7).to_string(), "tok7");
        assert_eq!(SurfaceId::new(8).to_string(), "s8");
    }

    #[test]
    fn ordering_follows_raw() {
        assert!(PageId::new(1) < PageId::new(2));
        let mut v = vec![EntityId::new(3), EntityId::new(1), EntityId::new(2)];
        v.sort();
        assert_eq!(
            v,
            vec![EntityId::new(1), EntityId::new(2), EntityId::new(3)]
        );
    }

    #[test]
    fn ids_are_4_bytes() {
        assert_eq!(std::mem::size_of::<QueryId>(), 4);
        assert_eq!(std::mem::size_of::<PageId>(), 4);
        assert_eq!(std::mem::size_of::<EntityId>(), 4);
        assert_eq!(std::mem::size_of::<TermId>(), 4);
        assert_eq!(std::mem::size_of::<TokenId>(), 4);
        assert_eq!(std::mem::size_of::<SurfaceId>(), 4);
        // Option<id> should also stay small enough to embed in tuples.
        assert!(std::mem::size_of::<Option<PageId>>() <= 8);
    }

    #[test]
    #[should_panic(expected = "id overflow")]
    fn from_usize_overflow_panics() {
        let _ = QueryId::from_usize(u32::MAX as usize + 1);
    }

    #[test]
    fn serde_roundtrip_is_transparent() {
        // serde_json is not a dependency; use the serde-compatible
        // in-house debug assertion instead: transparent means the id
        // serializes exactly like its inner u32. We verify via bincode-like
        // manual check using serde's data model through serde_test-style
        // token comparison is overkill; a compile-time guarantee suffices:
        fn assert_impls<T: serde::Serialize + serde::de::DeserializeOwned>() {}
        assert_impls::<QueryId>();
        assert_impls::<PageId>();
        assert_impls::<EntityId>();
        assert_impls::<TermId>();
    }
}
