//! The serving engine: a live-updatable dictionary behind a sharded
//! result cache of per-protocol pre-rendered responses.
//!
//! [`Engine`] is the layer every network front end calls into — it is
//! transport-agnostic, which is what lets one engine back a line
//! server and an HTTP server at once. It owns
//!
//! - a [`DictHandle`] — the segmented-dictionary lifecycle handle.
//!   Resolution pins an epoch snapshot (`Arc` clone, no contention
//!   beyond a lock word); [`Engine::apply_delta`] publishes a small
//!   add/override/tombstone delta *live*, without recompiling the
//!   base artifact, and [`DictHandle::replace_base`] (through
//!   [`Engine::dict`]) remains the rebuild-and-swap deployment story
//!   for wholesale artifact changes;
//! - a [`ShardedCache`] of `normalized query →` [`Rendered`]: the
//!   spans *and* one pre-serialized response per wire format — the
//!   line-protocol `OK …` line ([`crate::proto::format_spans`]) and
//!   the complete HTTP/1.1 200 response ([`crate::http::spans_json`])
//!   — all rendered once, on the miss that filled the entry. A
//!   protocol-level cache hit is therefore a pure lookup-and-write for
//!   *every* transport: no serializer walk, no `String` allocation,
//!   just an `Arc` clone handed to the connection writer. The cache is
//!   keyed *after* normalization, so "Indy 4", "indy 4" and "INDY-4"
//!   share one entry, and a hit skips normalization's allocation too
//!   (the `Cow` fast path) on the segmenter side.
//!
//! **Cache invalidation follows the dictionary's own granularity.**
//! Each batch synchronizes the cache with the handle ([`Engine::sync`]
//! internally): a *lineage* change (new base artifact) wholesale-
//! invalidates, because nothing cached is trustworthy; a *revision*
//! advance (delta commits) merely advances the cache generation and
//! remembers each delta's [`DeltaFootprint`] — cached results whose
//! keys the footprints provably cannot affect are *promoted* (re-
//! stamped, served) on their next lookup instead of recomputed, so a
//! ten-surface delta does not cold-start a four-thousand-entry cache.
//!
//! Cached and uncached paths return byte-identical results: the cache
//! stores exactly what the matcher produced (and the renderings
//! serialized from it), and generation-checked inserts (see
//! [`ShardedCache::insert_at`]) make it impossible for a result
//! computed against a retired dictionary revision to be served at a
//! newer one.

use crate::cache::{CacheStats, ShardedCache};
use crate::http;
use crate::metrics::{as_us, ServeMetrics};
use crate::proto::format_spans;
use crate::protocol::Wire;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;
use websyn_core::{
    DeltaFootprint, DictDelta, DictHandle, DictStats, EntityMatcher, MatchScratch, MatchSpan,
    SegmentRequest,
};
use websyn_text::normalized;

/// Most footprints the engine keeps for selective cache promotion.
/// Entries older than the oldest remembered footprint can no longer be
/// proven safe and simply stay unpromotable (they age out by LRU).
const GEN_LOG_CAP: usize = 64;

/// One cached resolution: the spans plus the pre-rendered response in
/// every wire format the server speaks, produced together on the
/// filling miss. All fields are shared handles — cloning a `Rendered`
/// costs three reference-count bumps.
#[derive(Debug, Clone)]
pub struct Rendered {
    /// The segmentation result itself.
    pub spans: Arc<Vec<MatchSpan>>,
    /// The line-protocol response line (no terminator);
    /// see [`crate::proto::format_spans`].
    pub line: Arc<str>,
    /// The complete HTTP/1.1 200 response — status line, headers and
    /// JSON body; see [`crate::http::spans_json`].
    pub http: Arc<str>,
}

impl Rendered {
    /// The pre-rendered response for `wire` — what a connection writer
    /// puts on the socket (plus the protocol's terminator).
    pub fn for_wire(&self, wire: Wire) -> Arc<str> {
        match wire {
            Wire::Line => Arc::clone(&self.line),
            Wire::Http => Arc::clone(&self.http),
        }
    }
}

/// Cache sizing for an [`Engine`]. [`Engine::builder`] is the
/// ergonomic way to set these; the struct remains public so sizing can
/// be computed, stored and passed around as plain data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Number of independently locked cache shards. Size this at or
    /// above the worker count so concurrent hits never serialize.
    pub cache_shards: usize,
    /// Total cached results across shards. Zipfian logs concentrate
    /// mass in the head, so a few thousand entries absorb most
    /// traffic; see the README's cache-sizing note.
    pub cache_capacity: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            cache_shards: 8,
            cache_capacity: 4096,
        }
    }
}

/// Builder for [`Engine`] — validated knobs over positional arguments.
///
/// Starts from [`EngineConfig::default`]; [`EngineBuilder::build`]
/// clamps every knob into its valid range (shards ≥ 1, capacity ≥
/// shards so no shard is created empty) rather than failing, so a
/// config assembled from untrusted flags still produces a working
/// engine.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use websyn_common::EntityId;
/// use websyn_core::EntityMatcher;
/// use websyn_serve::Engine;
///
/// let matcher = Arc::new(EntityMatcher::from_pairs(vec![("indy 4", EntityId::new(7))]));
/// let engine = Engine::builder(matcher)
///     .cache_shards(4)
///     .cache_capacity(1024)
///     .build();
/// assert_eq!(engine.resolve("indy 4").len(), 1);
/// ```
#[derive(Debug)]
pub struct EngineBuilder {
    dict: DictHandle,
    config: EngineConfig,
}

impl EngineBuilder {
    /// Number of independently locked cache shards (clamped to ≥ 1 at
    /// build time).
    pub fn cache_shards(mut self, shards: usize) -> Self {
        self.config.cache_shards = shards;
        self
    }

    /// Total cached results across shards (clamped to ≥ `cache_shards`
    /// at build time, so every shard holds at least one entry).
    pub fn cache_capacity(mut self, capacity: usize) -> Self {
        self.config.cache_capacity = capacity;
        self
    }

    /// Applies the whole sizing struct at once.
    pub fn config(mut self, config: EngineConfig) -> Self {
        self.config = config;
        self
    }

    /// Validates the knobs (clamping them into range) and builds the
    /// engine.
    pub fn build(self) -> Engine {
        let shards = self.config.cache_shards.max(1);
        let capacity = self.config.cache_capacity.max(shards);
        Engine::with_dict(
            self.dict,
            EngineConfig {
                cache_shards: shards,
                cache_capacity: capacity,
            },
        )
    }
}

/// The engine-side slice of one request's stage breakdown, filled by
/// [`Engine::resolve_rendered_batch_timed`]. On a result-cache hit only
/// `cache_us` is nonzero — the segment and render stages never ran.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageTiming {
    /// Normalize + result-cache probe, microseconds.
    pub cache_us: u64,
    /// Matcher segmentation, microseconds (0 on a hit).
    pub segment_us: u64,
    /// Response serialization + cache fill, microseconds (0 on a hit).
    pub render_us: u64,
}

/// The engine's view of which dictionary state the cache generation
/// corresponds to, advanced by [`Engine::sync`] under one mutex so
/// (matcher, generation, promotion log) snapshots are coherent.
#[derive(Debug)]
struct ServedState {
    /// Last dictionary lineage the cache was synchronized to.
    lineage: u64,
    /// Last dictionary revision the cache was synchronized to.
    revision: u64,
    /// `(generation the commit landed at, its footprint)`, oldest
    /// first, shared with in-flight batches as an immutable snapshot.
    /// A cached entry stamped `g` is promotable to the current
    /// generation iff `g >= floor` and every log entry with
    /// generation > `g` has a footprint that cannot affect the key.
    log: Arc<Vec<(u64, Arc<DeltaFootprint>)>>,
    /// Entries stamped below this generation predate the log's reach
    /// (or the last wholesale invalidation) and are never promoted.
    floor: u64,
}

/// A live-updatable dictionary + result cache, shared by every
/// connection and worker — and by every protocol front end serving
/// the same dictionary.
#[derive(Debug)]
pub struct Engine {
    dict: DictHandle,
    served: Mutex<ServedState>,
    cache: ShardedCache<Rendered>,
    swaps: AtomicU64,
    deltas: AtomicU64,
    metrics: ServeMetrics,
}

impl Engine {
    /// Starts building an engine around `matcher` with validated,
    /// defaulted knobs, wrapping it as the base of a fresh
    /// [`DictHandle`] lineage. To serve a handle you already manage
    /// (shared with an updater, pre-staged deltas), use
    /// [`Engine::builder_with_dict`].
    pub fn builder(matcher: Arc<EntityMatcher>) -> EngineBuilder {
        // EntityMatcher is cheap to clone (Arc-backed internals); the
        // handle needs ownership to seed its lineage.
        Self::builder_with_dict(DictHandle::new((*matcher).clone()))
    }

    /// Starts building an engine that serves (and synchronizes its
    /// result cache with) an existing dictionary handle.
    pub fn builder_with_dict(dict: DictHandle) -> EngineBuilder {
        EngineBuilder {
            dict,
            config: EngineConfig::default(),
        }
    }

    /// Creates an engine serving `matcher` with the given cache
    /// sizing. Prefer [`Engine::builder`]; this constructor trusts
    /// `config` as-is (the cache still clamps internally).
    pub fn new(matcher: Arc<EntityMatcher>, config: EngineConfig) -> Self {
        Self::with_dict(DictHandle::new((*matcher).clone()), config)
    }

    /// Creates an engine serving `dict` with the given cache sizing.
    pub fn with_dict(dict: DictHandle, config: EngineConfig) -> Self {
        let cache = ShardedCache::new(config.cache_shards, config.cache_capacity);
        let served = ServedState {
            lineage: dict.lineage(),
            revision: dict.revision(),
            log: Arc::new(Vec::new()),
            floor: cache.generation(),
        };
        Self {
            dict,
            served: Mutex::new(served),
            cache,
            swaps: AtomicU64::new(0),
            deltas: AtomicU64::new(0),
            metrics: ServeMetrics::new(),
        }
    }

    /// The engine's observability surface: stage histograms, the
    /// slow-query ring, uptime. Shared by every server front end that
    /// serves this engine.
    pub fn metrics(&self) -> &ServeMetrics {
        &self.metrics
    }

    /// Whole seconds since this engine was built.
    pub fn uptime_seconds(&self) -> u64 {
        self.metrics.uptime_seconds()
    }

    /// The dictionary lifecycle handle this engine serves. Changes
    /// published through it (deltas, compaction, base replacement) are
    /// picked up — and the result cache synchronized — on the next
    /// batch; [`Engine::apply_delta`] does both in one step.
    pub fn dict(&self) -> &DictHandle {
        &self.dict
    }

    /// The currently served matcher snapshot.
    pub fn matcher(&self) -> Arc<EntityMatcher> {
        self.dict.matcher()
    }

    /// Dictionary lifecycle counters (segment count, live delta
    /// sizes, epoch/revision, compactions) for `/stats` and
    /// `/metrics`.
    pub fn dict_stats(&self) -> DictStats {
        self.dict.stats()
    }

    /// Synchronizes the result cache with the dictionary handle and
    /// returns a coherent `(matcher, generation, floor, log)`
    /// snapshot: results computed by this matcher may be inserted at
    /// this generation, and promotion decisions against this log are
    /// sound for entries at or above this floor.
    ///
    /// - lineage change (unrelated base installed): wholesale
    ///   invalidation — bump + sweep, empty log;
    /// - revision advance with footprints available: one generation
    ///   bump covering all new commits, footprints appended to the
    ///   log (capped at [`GEN_LOG_CAP`], raising the floor);
    /// - revision advance with footprints unavailable (handle's log
    ///   ran out): wholesale invalidation.
    ///
    /// The cache generation only ever moves under the `served` mutex,
    /// which is what makes the returned snapshot race-free.
    #[allow(clippy::type_complexity)]
    fn sync(
        &self,
    ) -> (
        Arc<EntityMatcher>,
        u64,
        u64,
        Arc<Vec<(u64, Arc<DeltaFootprint>)>>,
    ) {
        let mut st = self.served.lock().expect("served state poisoned");
        let view = self.dict.sync(st.lineage, st.revision);
        if view.lineage != st.lineage {
            self.cache.invalidate();
            self.swaps.fetch_add(1, Ordering::AcqRel);
            st.lineage = view.lineage;
            st.revision = view.revision;
            st.floor = self.cache.generation();
            st.log = Arc::new(Vec::new());
        } else if view.revision != st.revision {
            match view.footprints {
                Some(fps) if !fps.is_empty() => {
                    let generation = self.cache.advance_generation();
                    let mut log: Vec<_> = (*st.log).clone();
                    log.extend(fps.into_iter().map(|fp| (generation, fp)));
                    while log.len() > GEN_LOG_CAP {
                        let (gen, _) = log.remove(0);
                        // Entries stamped before the dropped footprint
                        // can no longer be proven safe.
                        st.floor = st.floor.max(gen);
                    }
                    st.log = Arc::new(log);
                }
                Some(_) => {}
                None => {
                    self.cache.invalidate();
                    st.floor = self.cache.generation();
                    st.log = Arc::new(Vec::new());
                }
            }
            st.revision = view.revision;
        }
        (
            view.matcher,
            self.cache.generation(),
            st.floor,
            Arc::clone(&st.log),
        )
    }

    /// Stages and publishes `delta` through the handle, then
    /// synchronizes the result cache (selectively, via the delta's
    /// footprint) so the very next request is served against the new
    /// surface set — no restart, no base recompile, no wholesale cache
    /// flush. Returns the post-apply lifecycle counters.
    pub fn apply_delta(&self, delta: DictDelta) -> DictStats {
        self.dict.apply(delta);
        self.deltas.fetch_add(1, Ordering::AcqRel);
        self.sync();
        self.dict.stats()
    }

    /// [`Engine::apply_delta`] from the delta TSV wire format
    /// ([`DictDelta::parse_tsv`]: `surface\tentity` upserts,
    /// `surface\t-` tombstones). Returns the delta's op count plus the
    /// post-apply lifecycle counters — everything a protocol needs to
    /// acknowledge the update.
    ///
    /// # Errors
    /// Returns the parse error verbatim; nothing is applied.
    pub fn apply_delta_tsv(&self, tsv: &str) -> websyn_common::Result<(usize, DictStats)> {
        let delta = DictDelta::parse_tsv(tsv)?;
        let applied = delta.len();
        Ok((applied, self.apply_delta(delta)))
    }

    /// Number of deltas applied through [`Engine::apply_delta`].
    pub fn deltas(&self) -> u64 {
        self.deltas.load(Ordering::Acquire)
    }

    /// Replaces the served dictionary wholesale — the legacy
    /// rebuild-and-swap deployment step, now a thin wrapper over
    /// [`DictHandle::replace_base`] plus an immediate cache
    /// synchronization (which wholesale-invalidates, since a new
    /// lineage shares nothing with the old). Workers mid-batch keep
    /// their old snapshot and finish against the retired dictionary,
    /// but their late cache inserts are rejected by the generation
    /// check.
    #[deprecated(
        since = "0.1.0",
        note = "use Engine::dict().replace_base(..) for artifact swaps, \
                or Engine::apply_delta(..) for incremental updates"
    )]
    pub fn swap_matcher(&self, new: Arc<EntityMatcher>) {
        self.dict.replace_base((*new).clone());
        self.sync();
    }

    /// Number of completed lineage replacements (base swaps) observed
    /// by this engine's cache synchronization.
    pub fn swaps(&self) -> u64 {
        self.swaps.load(Ordering::Acquire)
    }

    /// Resolves one raw query: normalize, probe the cache, segment on a
    /// miss. Byte-identical to `matcher().segment(query)`.
    pub fn resolve(&self, query: &str) -> Arc<Vec<MatchSpan>> {
        self.resolve_batch(std::slice::from_ref(&query)).remove(0)
    }

    /// Resolves one raw query to its serialized line-protocol response
    /// (see [`crate::proto::format_spans`]): on a cache hit this is a
    /// pure lookup — the line was rendered when the entry was filled.
    pub fn resolve_line(&self, query: &str) -> Arc<str> {
        self.resolve_rendered_batch(std::slice::from_ref(&query))
            .remove(0)
            .line
    }

    /// Resolves a batch of raw queries in order. Cache misses within
    /// the batch share one [`MatchScratch`], so a mention that recurs
    /// across the batch pays for fuzzy verification once even before it
    /// reaches the cache.
    pub fn resolve_batch<S: AsRef<str>>(&self, queries: &[S]) -> Vec<Arc<Vec<MatchSpan>>> {
        self.resolve_rendered_batch(queries)
            .into_iter()
            .map(|r| r.spans)
            .collect()
    }

    /// [`Engine::resolve_batch`], returning the serialized
    /// line-protocol response of each query.
    pub fn resolve_line_batch<S: AsRef<str>>(&self, queries: &[S]) -> Vec<Arc<str>> {
        self.resolve_rendered_batch(queries)
            .into_iter()
            .map(|r| r.line)
            .collect()
    }

    /// The shared resolution core — the worker-loop entry point: every
    /// query comes back with its spans and every per-protocol
    /// rendering, so a hit costs no serialization on any transport.
    pub fn resolve_rendered_batch<S: AsRef<str>>(&self, queries: &[S]) -> Vec<Rendered> {
        self.resolve_inner(queries, None)
    }

    /// [`Engine::resolve_rendered_batch`], additionally recording one
    /// [`StageTiming`] per query into `timings` — the per-request
    /// engine-stage breakdown the slow-query trace records. `timings`
    /// is cleared first, so on return it holds exactly one entry per
    /// query, index-aligned with the returned renderings; callers may
    /// reuse the Vec across batches.
    pub fn resolve_rendered_batch_timed<S: AsRef<str>>(
        &self,
        queries: &[S],
        timings: &mut Vec<StageTiming>,
    ) -> Vec<Rendered> {
        timings.clear();
        self.resolve_inner(queries, Some(timings))
    }

    fn resolve_inner<S: AsRef<str>>(
        &self,
        queries: &[S],
        mut timings: Option<&mut Vec<StageTiming>>,
    ) -> Vec<Rendered> {
        let (matcher, generation, floor, log) = self.sync();
        let mut scratch = MatchScratch::new();
        queries
            .iter()
            .map(|query| {
                let probe_start = Instant::now();
                let normalized = normalized(query.as_ref());
                // Generation-checked lookup: if a dictionary change
                // landed mid-batch, a plain hit could carry
                // new-dictionary spans and mix two revisions within
                // one batch — the generation check rejects (and
                // counts a miss) instead, and the query is recomputed
                // against the snapshot. An entry stamped at an older
                // generation of the *same* lineage is promoted when
                // every intervening delta's footprint provably leaves
                // this key's result unchanged.
                let probe = self
                    .cache
                    .get_at_or_promote(generation, &normalized, |key, stamp| {
                        stamp >= floor
                            && log
                                .iter()
                                .all(|(gen, fp)| *gen <= stamp || !fp.affects_query(key))
                    });
                let cache_us = as_us(probe_start.elapsed());
                self.metrics.cache_lookup.record(cache_us);
                if let Some(hit) = probe {
                    // Hit: segment and render never ran, so only the
                    // lookup stage is recorded — zeros would dilute the
                    // miss-path stage distributions.
                    if let Some(timings) = timings.as_deref_mut() {
                        timings.push(StageTiming {
                            cache_us,
                            ..StageTiming::default()
                        });
                    }
                    return hit;
                }
                let segment_start = Instant::now();
                let spans = Arc::new(
                    matcher.resolve(SegmentRequest::normalized(&normalized).scratch(&mut scratch)),
                );
                let segment_us = as_us(segment_start.elapsed());
                self.metrics.segment.record(segment_us);
                let render_start = Instant::now();
                let entry = Rendered {
                    line: Arc::from(format_spans(&spans).as_str()),
                    http: Arc::from(http::response(200, "OK", &http::spans_json(&spans)).as_str()),
                    spans,
                };
                self.cache.insert_at(generation, &normalized, entry.clone());
                let render_us = as_us(render_start.elapsed());
                self.metrics.render.record(render_us);
                if let Some(timings) = timings.as_deref_mut() {
                    timings.push(StageTiming {
                        cache_us,
                        segment_us,
                        render_us,
                    });
                }
                entry
            })
            .collect()
    }

    /// Aggregated cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Window-cache counters of the currently served matcher, when one
    /// is attached ([`websyn_core::EntityMatcher::with_window_cache`]).
    /// Unlike the result cache these survive a base replacement only
    /// if the new matcher shares the old cache
    /// ([`websyn_core::EntityMatcher::with_shared_window_cache`]);
    /// delta commits keep the cache and invalidate by generation.
    pub fn window_cache_stats(&self) -> Option<websyn_core::WindowCacheStats> {
        self.matcher().window_cache().map(|c| c.stats())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use websyn_common::EntityId;
    use websyn_core::FuzzyConfig;

    fn matcher() -> Arc<EntityMatcher> {
        Arc::new(
            EntityMatcher::from_pairs(vec![
                ("indy 4", EntityId::new(0)),
                ("madagascar 2", EntityId::new(1)),
                ("canon eos 350d", EntityId::new(2)),
            ])
            .with_fuzzy(FuzzyConfig::default()),
        )
    }

    fn small_engine() -> Engine {
        Engine::builder(matcher())
            .cache_shards(2)
            .cache_capacity(16)
            .build()
    }

    #[test]
    fn cached_and_uncached_results_are_identical() {
        let e = small_engine();
        let m = e.matcher();
        for query in [
            "Indy 4 near san fran",
            "cheapest cannon eos 350d deals",
            "nothing to see",
            "",
        ] {
            let cold = e.resolve(query);
            let warm = e.resolve(query);
            assert_eq!(*cold, m.segment(query), "{query:?} cold");
            assert_eq!(cold, warm, "{query:?} warm hit equals cold fill");
        }
        let stats = e.cache_stats();
        assert_eq!(stats.hits, 4);
        assert_eq!(stats.misses, 4);
    }

    #[test]
    fn normalization_variants_share_one_entry() {
        let e = small_engine();
        assert_eq!(*e.resolve("INDY-4!"), e.matcher().segment("indy 4"));
        assert_eq!(*e.resolve("indy 4"), e.matcher().segment("indy 4"));
        let stats = e.cache_stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert_eq!(stats.entries, 1);
    }

    #[test]
    fn builder_clamps_degenerate_knobs() {
        let e = Engine::builder(matcher())
            .cache_shards(0)
            .cache_capacity(0)
            .build();
        // Clamped to one shard holding at least one entry — a working
        // (if tiny) cache, not a panic.
        assert_eq!(e.resolve("indy 4").len(), 1);
        assert_eq!(e.resolve("indy 4").len(), 1);
        assert_eq!(e.cache_stats().hits, 1);
        // The whole-config setter is equivalent to the field setters.
        let e = Engine::builder(matcher())
            .config(EngineConfig {
                cache_shards: 2,
                cache_capacity: 16,
            })
            .build();
        assert_eq!(e.cache_stats().capacity, 16);
    }

    #[test]
    // Pins the deprecated shim's contract on purpose.
    #[allow(deprecated)]
    fn swap_invalidates_and_serves_the_new_dictionary() {
        let e = small_engine();
        // Warm the cache with the old dictionary.
        assert_eq!(e.resolve("indy 4").len(), 1);
        assert_eq!(e.cache_stats().entries, 1);
        // Rebuild-and-swap: the new dictionary maps the same surface to
        // a different entity, so a stale cache entry would be visible.
        let new = Arc::new(EntityMatcher::from_pairs(vec![(
            "indy 4",
            EntityId::new(42),
        )]));
        e.swap_matcher(Arc::clone(&new));
        assert_eq!(e.swaps(), 1);
        assert_eq!(e.cache_stats().entries, 0, "swap cleared the cache");
        let spans = e.resolve("indy 4");
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].entity, EntityId::new(42));
        assert_eq!(*spans, new.segment("indy 4"));
    }

    #[test]
    fn timed_batches_reuse_one_vec_without_stale_entries() {
        // Regression: the worker loop reuses one timings Vec across
        // batches. The engine must clear it, or from the second batch
        // on each job zips against another batch's stale entries (and
        // the Vec grows forever).
        let e = small_engine();
        let mut timings = Vec::new();
        let first = e.resolve_rendered_batch_timed(&["indy 4", "madagascar 2"], &mut timings);
        assert_eq!(first.len(), 2);
        assert_eq!(timings.len(), 2, "one entry per query in the batch");
        let second = e.resolve_rendered_batch_timed(&["indy 4"], &mut timings);
        assert_eq!(second.len(), 1);
        assert_eq!(timings.len(), 1, "previous batch's entries cleared");
        // That lone query warm-hit the cache, so its (index-aligned)
        // entry records no segmentation or render work.
        assert_eq!(timings[0].segment_us, 0);
        assert_eq!(timings[0].render_us, 0);
    }

    #[test]
    // Exercises the deprecated shim's post-swap coherence on purpose.
    #[allow(deprecated)]
    fn cached_renderings_are_byte_identical_per_wire() {
        let e = small_engine();
        let m = e.matcher();
        for query in [
            "Indy 4 near san fran",
            "cheapest cannon eos 350d deals",
            "nothing to see",
            "",
        ] {
            let golden_line = format_spans(&m.segment(query));
            let golden_http = http::response(200, "OK", &http::spans_json(&m.segment(query)));
            let cold = e.resolve_rendered_batch(&[query]).remove(0);
            let warm = e.resolve_rendered_batch(&[query]).remove(0);
            assert_eq!(&*cold.line, golden_line, "{query:?} cold line");
            assert_eq!(&*cold.http, golden_http, "{query:?} cold http");
            assert_eq!(&*warm.for_wire(Wire::Line), golden_line, "{query:?} warm");
            assert_eq!(&*warm.for_wire(Wire::Http), golden_http, "{query:?} warm");
            // The warm hit is the same allocation the miss filled — a
            // pure lookup-and-write, not a re-serialization, on both
            // wires.
            assert!(Arc::ptr_eq(&cold.line, &warm.line), "{query:?} line share");
            assert!(Arc::ptr_eq(&cold.http, &warm.http), "{query:?} http share");
        }
        // Span and rendering views of the same entry stay coherent
        // after a swap too.
        let new = Arc::new(EntityMatcher::from_pairs(vec![(
            "indy 4",
            EntityId::new(42),
        )]));
        e.swap_matcher(Arc::clone(&new));
        assert_eq!(
            &*e.resolve_line("indy 4"),
            format_spans(&new.segment("indy 4"))
        );
        assert_eq!(
            &*e.resolve_rendered_batch(&["indy 4"]).remove(0).http,
            http::response(200, "OK", &http::spans_json(&new.segment("indy 4")))
        );
    }

    #[test]
    fn delta_is_served_live_without_restart_or_base_recompile() {
        let e = small_engine();
        assert!(e.resolve("starwars kid").is_empty());
        let mut delta = DictDelta::new();
        delta.upsert("starwars kid", EntityId::new(9));
        let stats = e.apply_delta(delta);
        assert_eq!(stats.segments, 1, "published as a segment, not a rebuild");
        assert_eq!(e.deltas(), 1);
        assert_eq!(e.swaps(), 0, "a delta is not a lineage change");
        // Served immediately — exact and fuzzy — with no swap.
        let spans = e.resolve("starwars kid");
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].entity, EntityId::new(9));
        let fuzzy = e.resolve("starwrs kid");
        assert_eq!(fuzzy.len(), 1, "fuzzy path sees the delta too");
        assert_eq!(fuzzy[0].entity, EntityId::new(9));
        // The TSV wire form feeds the same path.
        e.apply_delta_tsv("starwars kid\t-\n").unwrap();
        assert!(e.resolve("starwars kid").is_empty(), "tombstone applied");
        assert!(
            e.apply_delta_tsv("broken row with no tab\n").is_err(),
            "parse errors apply nothing"
        );
    }

    #[test]
    fn delta_promotes_unaffected_cache_entries_instead_of_flushing() {
        let e = small_engine();
        // Warm two entries: one far from the delta, one it overrides.
        assert_eq!(e.resolve("madagascar 2")[0].entity, EntityId::new(1));
        assert_eq!(e.resolve("indy 4")[0].entity, EntityId::new(0));
        let before = e.cache_stats();
        assert_eq!(before.entries, 2);
        let mut delta = DictDelta::new();
        delta.upsert("indy 4", EntityId::new(77));
        e.apply_delta(delta);
        // The overridden key re-resolves against the new surface set…
        assert_eq!(e.resolve("indy 4")[0].entity, EntityId::new(77));
        // …while the unaffected key is promoted, not recomputed: its
        // warm lookup is a hit and no wholesale invalidation happened.
        assert_eq!(e.resolve("madagascar 2")[0].entity, EntityId::new(1));
        let after = e.cache_stats();
        assert_eq!(after.invalidations, before.invalidations);
        assert_eq!(after.promotions, 1, "exactly the unaffected key");
        assert_eq!(
            after.misses,
            before.misses + 1,
            "only the overridden key missed"
        );
    }

    #[test]
    fn engine_tracks_deltas_applied_directly_to_the_handle() {
        // An updater holding the DictHandle (not the engine) publishes
        // a delta; the engine's next batch must pick it up and keep
        // the cache coherent.
        let e = small_engine();
        assert_eq!(e.resolve("indy 4")[0].entity, EntityId::new(0));
        let handle = e.dict().clone();
        let mut delta = DictDelta::new();
        delta.upsert("indy 4", EntityId::new(5));
        handle.apply(delta);
        assert_eq!(e.resolve("indy 4")[0].entity, EntityId::new(5));
        assert_eq!(e.dict_stats().revision, 1);
    }

    #[test]
    fn batch_resolution_matches_sequential_segment() {
        let e = small_engine();
        let queries = vec![
            "indy 4 showtimes".to_string(),
            "cannon eos 350d price".to_string(),
            "indy 4 showtimes".to_string(), // duplicate: cache hit
            "madagascar 2".to_string(),
        ];
        let m = e.matcher();
        let batch = e.resolve_batch(&queries);
        for (query, spans) in queries.iter().zip(&batch) {
            assert_eq!(**spans, m.segment(query), "{query:?}");
        }
        let stats = e.cache_stats();
        assert_eq!(stats.hits, 1, "duplicate in the batch hit the cache");
        assert_eq!(stats.misses, 3);
    }
}
